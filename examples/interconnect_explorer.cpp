/**
 * @file
 * Interconnect protocol explorer: build FinePack transactions by hand
 * against different sub-header geometries and PCIe generations, and
 * print exactly where every wire byte goes. A low-level tour of the
 * public API (no workloads, no event simulation).
 *
 * Usage: interconnect_explorer [num_stores] [store_bytes]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "interconnect/protocol.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::finepack;

    auto num_stores =
        static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 42);
    auto store_bytes =
        static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 8);

    icn::PcieProtocol pcie(icn::PcieGen::gen4);

    std::cout << "Packing " << num_stores << " stores of "
              << store_bytes << " B (stride 2 lines, one window)\n";

    common::Table table("Wire cost per sub-header geometry");
    table.setHeader({"sub-header", "window", "packets", "sub-packets",
                     "payload B", "header B", "raw P2P B", "saving"});

    for (std::uint32_t subheader = 2; subheader <= 6; ++subheader) {
        FinePackConfig config = configWithSubheader(subheader);
        RemoteWriteQueue rwq(0, 2, config);
        Packetizer packetizer(0, config);

        std::uint64_t payload = 0, header = 0, packets = 0, subs = 0;
        auto account = [&](const FlushedPartition &flushed) {
            if (flushed.empty())
                return;
            auto msg = packetizer.toMessage(flushed, pcie);
            payload += msg->payload_bytes;
            header += msg->header_bytes;
            ++packets;
            subs += msg->stores.size();
        };

        std::vector<FlushedPartition> sink;
        for (std::uint32_t i = 0; i < num_stores; ++i) {
            // Scatter across every other cache line, FinePack's bread
            // and butter: no intra-warp locality, strong window
            // locality.
            icn::Store store(0x40000000 + i * 256ull, store_bytes, 0,
                             1);
            sink.clear();
            rwq.push(store, sink);
            for (const auto &flushed : sink)
                account(flushed);
        }
        for (const auto &flushed :
             rwq.flushAll(FlushReason::release))
            account(flushed);

        std::uint64_t raw = num_stores * pcie.storeWireBytes(0, store_bytes);
        std::uint64_t finepack_total = payload + header;
        auto window = config.addressableRange();
        std::string window_str =
            window >= GiB ? std::to_string(window / GiB) + "GB"
            : window >= MiB ? std::to_string(window / MiB) + "MB"
            : window >= KiB ? std::to_string(window / KiB) + "KB"
                            : std::to_string(window) + "B";
        table.addRow({std::to_string(subheader) + "B", window_str,
                      std::to_string(packets), std::to_string(subs),
                      std::to_string(payload), std::to_string(header),
                      std::to_string(raw),
                      common::Table::num(
                          100.0 * (1.0 -
                                   static_cast<double>(finepack_total) /
                                       static_cast<double>(raw)),
                          1) +
                          "%"});
    }
    table.print(std::cout);

    std::cout
        << "\nSmall windows (2-3 B sub-headers) flush constantly and"
           " pay per-packet overhead;\nlarge windows waste sub-header"
           " bits. The paper lands on 4-5 B (Figure 12).\n";
    return 0;
}
