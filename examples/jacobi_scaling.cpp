/**
 * @file
 * Strong-scaling study of the Jacobi solver: sweep the GPU count from
 * 1 to 8 under each communication paradigm and watch where the
 * interconnect starts limiting a regular, compute-friendly workload.
 * Also demonstrates that the workload really solves its linear system
 * (the residual is printed per configuration).
 *
 * Usage: jacobi_scaling [scale]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/driver.hh"
#include "workloads/jacobi.hh"

int
main(int argc, char **argv)
{
    using namespace fp;

    double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

    common::Table table("Jacobi strong scaling (speedup over 1 GPU)");
    table.setHeader({"GPUs", "p2p-stores", "bulk-dma", "finepack",
                     "infinite-bw", "final residual"});

    sim::SimulationDriver driver;

    // 1-GPU reference time comes from any trace's single-GPU work.
    for (std::uint32_t gpus : {2u, 4u, 8u}) {
        workloads::WorkloadParams params;
        params.num_gpus = gpus;
        params.scale = scale;

        workloads::JacobiWorkload jacobi;
        trace::WorkloadTrace trace = jacobi.generateTrace(params);
        double residual = jacobi.residual();

        Tick single =
            driver.run(trace, sim::Paradigm::single_gpu).total_time;
        auto speedup = [&](sim::Paradigm paradigm) {
            Tick t = driver.run(trace, paradigm).total_time;
            return common::Table::num(
                static_cast<double>(single) / static_cast<double>(t),
                2);
        };

        table.addRow({std::to_string(gpus),
                      speedup(sim::Paradigm::p2p_stores),
                      speedup(sim::Paradigm::bulk_dma),
                      speedup(sim::Paradigm::finepack),
                      speedup(sim::Paradigm::infinite_bw),
                      common::Table::num(residual, 6)});
    }
    table.print(std::cout);

    std::cout << "\nRegular halo exchanges coalesce into full cache"
                 " lines, so plain P2P stores already run near the"
                 " FinePack\nline here - exactly the paper's point"
                 " that regular apps were never the problem.\n";
    return 0;
}
