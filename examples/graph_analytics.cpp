/**
 * @file
 * Graph analytics on a 4-GPU system: PageRank and SSSP, the paper's
 * motivating irregular applications. Shows the FinePack mechanism
 * observably at work: remote-store size mix, stores folded per packet,
 * flush-reason breakdown, and the resulting time/traffic advantage.
 *
 * Usage: graph_analytics [scale]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "finepack/remote_write_queue.hh"
#include "finepack/packetizer.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"

namespace {

/** Replay a trace's stores through one FinePack queue to expose the
 *  flush-reason mix (the timing sim keeps this internal). */
void
flushReasonBreakdown(const fp::trace::WorkloadTrace &trace)
{
    using namespace fp;
    using namespace fp::finepack;

    RemoteWriteQueue rwq(0, trace.num_gpus, defaultConfig());
    std::vector<FlushedPartition> sink;
    for (const auto &iter : trace.iterations) {
        for (const auto &store : iter.per_gpu[0].remote_stores)
            rwq.push(store, sink);
        rwq.flushAll(FlushReason::release);
    }

    std::cout << "  GPU0 flush reasons:";
    for (auto reason :
         {FlushReason::window_violation, FlushReason::payload_full,
          FlushReason::entries_full, FlushReason::release}) {
        std::uint64_t count = 0;
        for (GpuId g = 0; g < trace.num_gpus; ++g) {
            if (g == 0)
                continue;
            count += rwq.partition(g).flushes(reason);
        }
        std::cout << "  " << toString(reason) << "=" << count;
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fp;

    double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    sim::SimulationDriver driver;

    for (const char *app : {"pagerank", "sssp"}) {
        workloads::WorkloadParams params;
        params.scale = scale;
        const auto &trace =
            sim::TraceCache::instance().get(app, params);

        std::cout << "\n=== " << app << " ("
                  << trace.comm_pattern << ", "
                  << trace.totalRemoteStores() << " remote stores, avg "
                  << common::Table::num(
                         static_cast<double>(
                             trace.totalRemoteStoreBytes()) /
                             static_cast<double>(
                                 trace.totalRemoteStores()),
                         1)
                  << " B/store) ===\n";

        flushReasonBreakdown(trace);

        common::Table table(std::string(app) + ": paradigm comparison");
        table.setHeader({"paradigm", "time (us)", "wire MiB",
                         "stores/packet"});
        Tick single =
            driver.run(trace, sim::Paradigm::single_gpu).total_time;
        for (auto paradigm :
             {sim::Paradigm::p2p_stores, sim::Paradigm::bulk_dma,
              sim::Paradigm::finepack}) {
            sim::RunResult r = driver.run(trace, paradigm);
            table.addRow(
                {toString(paradigm),
                 common::Table::num(r.totalSeconds() * 1e6, 1),
                 common::Table::num(
                     static_cast<double>(r.wire_bytes) / (1024 * 1024),
                     2),
                 r.avg_stores_per_packet > 0
                     ? common::Table::num(r.avg_stores_per_packet, 1)
                     : "-"});
        }
        table.print(std::cout);
        std::cout << "1-GPU time: "
                  << common::Table::num(
                         static_cast<double>(single) / ticks_per_us, 1)
                  << " us\n";
    }
    return 0;
}
