/**
 * @file
 * Quickstart: simulate one workload on a 4-GPU PCIe 4.0 system under
 * every communication paradigm and print the strong-scaling speedups
 * and traffic breakdowns.
 *
 * Usage: quickstart [workload] [scale]
 *   workload: jacobi | pagerank | sssp | als | ct | eqwp | diffusion | hit
 *   scale:    problem-size multiplier (default 0.25 for a fast demo)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"

int
main(int argc, char **argv)
{
    using namespace fp;

    std::string workload = argc > 1 ? argv[1] : "pagerank";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = scale;

    std::cout << "Generating " << workload << " trace (scale=" << scale
              << ", " << params.num_gpus << " GPUs)...\n";
    const trace::WorkloadTrace &trace =
        sim::TraceCache::instance().get(workload, params);
    std::cout << "  " << trace.numIterations() << " iterations, "
              << trace.totalRemoteStores() << " remote stores, "
              << trace.totalRemoteStoreBytes() / 1024 << " KiB pushed\n";

    sim::SimulationDriver driver;
    sim::RunResult base = driver.run(trace, sim::Paradigm::single_gpu);

    common::Table table("4-GPU results for '" + workload +
                        "' on PCIe 4.0 (vs 1 GPU)");
    table.setHeader({"paradigm", "time (us)", "speedup", "wire MiB",
                     "useful %", "protocol %", "wasted %",
                     "stores/pkt"});

    for (auto paradigm :
         {sim::Paradigm::p2p_stores, sim::Paradigm::bulk_dma,
          sim::Paradigm::write_combine, sim::Paradigm::gps,
          sim::Paradigm::finepack, sim::Paradigm::infinite_bw}) {
        sim::RunResult r = driver.run(trace, paradigm);
        double us = r.totalSeconds() * 1e6;
        double speedup = static_cast<double>(base.total_time) /
                         static_cast<double>(r.total_time);
        double wire = static_cast<double>(r.wire_bytes);
        auto pct = [&](std::uint64_t v) {
            return wire > 0.0
                       ? common::Table::num(100.0 * v / wire, 1)
                       : std::string("-");
        };
        table.addRow({toString(paradigm), common::Table::num(us, 1),
                      common::Table::num(speedup, 2),
                      common::Table::num(wire / (1024.0 * 1024.0), 2),
                      pct(r.useful_bytes), pct(r.protocol_bytes),
                      pct(r.wasted_bytes),
                      r.avg_stores_per_packet > 0.0
                          ? common::Table::num(r.avg_stores_per_packet, 1)
                          : std::string("-")});
    }
    table.print(std::cout);

    std::cout << "\nSingle GPU time: "
              << common::Table::num(base.totalSeconds() * 1e6, 1)
              << " us\n";
    return 0;
}
