/**
 * @file
 * The simulation driver: runs a workload trace under one communication
 * paradigm on the simulated multi-GPU system and reports timing plus
 * the byte-classified traffic breakdown.
 *
 * Iteration model (mirroring the paper's bulk-synchronous workloads):
 * every iteration launches one kernel per GPU; store-based paradigms
 * stream remote stores across the kernel's compute window and flush at
 * the kernel-end system-scoped release; the memcpy paradigm issues DMA
 * copies after its kernel completes. A device-wide barrier ends the
 * iteration once all traffic has drained.
 */

#ifndef FP_SIM_DRIVER_HH
#define FP_SIM_DRIVER_HH

#include <cstdint>
#include <string>

#include "finepack/config.hh"
#include "gpu/gpu_config.hh"
#include "interconnect/protocol.hh"
#include "sim/paradigm.hh"
#include "trace/trace.hh"

namespace fp::common {
class EventQueueObserver;
} // namespace fp::common

namespace fp::obs {
class FlightRecorder;
class FlowCollector;
class LatencyCollector;
class MetricsCapture;
class PeriodicSampler;
class Profiler;
class TraceSink;
} // namespace fp::obs

namespace fp::sim {

/** Static configuration of one simulated system. */
struct SimConfig
{
    gpu::GpuConfig gpu;
    icn::PcieGen pcie_gen = icn::PcieGen::gen4;
    finepack::FinePackConfig finepack;
    /** Remote stores issued per issue event (timing quantum). */
    std::uint32_t store_chunk = 256;
    /** Sustained fraction of peak the roofline model assumes. */
    double compute_efficiency = 0.75;
    /**
     * FinePack inactivity-timeout flush in ticks; 0 (the paper's
     * configuration) disables it. See Section IV-B's discussion.
     */
    Tick finepack_flush_timeout = 0;
    /** GPS subscription granularity (bytes per tracked page). */
    std::uint64_t gps_page_bytes = 4096;
    /**
     * Run the shadow-memory protocol oracle alongside the simulation
     * (finepack paradigm only; other paradigms warn and ignore it):
     * every FinePack transaction is verified byte-for-byte against a
     * reference model of the buffered stores. See docs/ "Correctness
     * tooling"; the fptrace --check flag sets this.
     */
    bool check = false;

    // ---- Observability hooks (caller keeps ownership; all optional) ----
    /**
     * Event tracer: pipeline components emit Chrome trace events into
     * it during event-driven runs. Null disables tracing entirely (the
     * hooks reduce to one pointer test each).
     */
    obs::TraceSink *tracer = nullptr;
    /**
     * Periodic sampler: the driver registers its counter gauges (RWQ
     * occupancy, link queue depth, in-flight messages) and pumps the
     * event queue through it so time series accumulate.
     */
    obs::PeriodicSampler *sampler = nullptr;
    /**
     * Metrics snapshot target: captured from the live StatGroup
     * registry just before the simulated system is torn down.
     */
    obs::MetricsCapture *metrics = nullptr;
    /**
     * Latency attribution collector: when set, egress ports stamp
     * store issue ticks, the fabric/links stamp message milestones,
     * and every ingress port records per-stage latencies into it.
     * Event-driven paradigms only; see docs/latency.md.
     */
    obs::LatencyCollector *latency = nullptr;
    /**
     * Fabric flow collector: when set, the fabric registers its links
     * with it, every link reports serialization starts (with queue
     * wait charged to the occupying flow), and ingress ports close the
     * per-flow conservation ledger. Event-driven paradigms only; see
     * docs/fabric_observability.md.
     */
    obs::FlowCollector *flows = nullptr;
    /**
     * Host-side self-profiler: attaches to the event queue for the
     * duration of each run and attributes *wall-clock* handler time to
     * event labels (see docs/profiling.md). Measures the simulator,
     * not the simulated system; never changes simulated results.
     */
    obs::Profiler *profiler = nullptr;
    /**
     * Flight recorder: rides the event-queue observer hooks and logs
     * the last N executed events / RWQ flushes / fabric injects into a
     * lock-free ring for post-mortems and the stall watchdog. Never
     * changes simulated results (see docs/run_health.md).
     */
    obs::FlightRecorder *recorder = nullptr;
    /**
     * Testing aid for the stall watchdog: when nonzero, the driver
     * schedules one event at the very start of the run that spins
     * host wall-clock for this many milliseconds while simulated time
     * stands still -- a reproducible "wedged handler". The spin polls
     * the cooperative interrupt flag so a SIGINT still unwinds
     * promptly. Zero (the default) schedules nothing.
     */
    std::uint32_t wedge_host_ms = 0;

    // ---- Determinism analysis hooks (see docs/determinism.md) ----------
    /**
     * Event-queue observer (e.g. check::RaceDetector): sees every
     * executed event and the logical accesses components declare via
     * common::AccessRecorder. Event-driven paradigms only.
     */
    common::EventQueueObserver *queue_observer = nullptr;
    /**
     * Permute same-(tick, priority) execution order with this seed
     * (schedule-perturbation harness). 0 = insertion order, the
     * default deterministic tie-break.
     */
    std::uint64_t tie_break_shuffle_seed = 0;

    SimConfig();
};

/** The outcome of one (trace, paradigm) simulation. */
struct RunResult
{
    Paradigm paradigm = Paradigm::single_gpu;
    /** End-to-end simulated time. */
    Tick total_time = 0;

    // ---- Wire traffic (sum over all GPU uplinks) ----------------------
    std::uint64_t wire_bytes = 0;    ///< everything on the wire
    std::uint64_t payload_bytes = 0; ///< TLP payloads
    std::uint64_t header_bytes = 0;  ///< link/TLP protocol bytes
    std::uint64_t data_bytes = 0;    ///< store data inside payloads
    std::uint64_t messages = 0;

    // ---- Figure 10 classification --------------------------------------
    /** Unique updated-and-read bytes (paradigm-independent oracle). */
    std::uint64_t useful_bytes = 0;
    /** Header + sub-header + padding bytes. */
    std::uint64_t protocol_bytes = 0;
    /** Transferred data never read or overwritten before reading. */
    std::uint64_t wasted_bytes = 0;

    // ---- FinePack statistics (Figure 11) -------------------------------
    double avg_stores_per_packet = 0.0;
    std::uint64_t finepack_packets = 0;
    /**
     * Wire bytes the same coalesced runs would cost as standalone TLPs
     * ("write combining alone", Section VI-A); only set for the
     * finepack paradigm.
     */
    std::uint64_t wc_alone_wire_bytes = 0;
    /** The per-line-span interpretation of the same comparison. */
    std::uint64_t wc_line_wire_bytes = 0;
    /** Aggregation without address compression (Section VI-A 24%). */
    std::uint64_t uncompressed_wire_bytes = 0;

    // ---- Protocol oracle results (SimConfig::check only) ---------------
    /** FinePack transactions verified byte-for-byte. */
    std::uint64_t oracle_transactions = 0;
    /** Stores replayed into the oracle's reference model. */
    std::uint64_t oracle_stores = 0;
    /** Bytes whose coverage the oracle verified. */
    std::uint64_t oracle_bytes = 0;
    /** Subset of oracle_bytes value-compared (data-carrying traces). */
    std::uint64_t oracle_value_bytes = 0;
    /**
     * Order-sensitive fingerprint of all verified transactions, folded
     * over sources in GPU-id order. Bit-identical across runs of the
     * same trace iff packetization is schedule-independent; the
     * racecheck perturbation harness diffs it across shuffle seeds.
     */
    std::uint64_t oracle_digest = 0;

    // ---- Host-side bookkeeping (not part of the simulated result) ------
    /**
     * Events the DES core executed for this run (0 for analytic
     * paradigms). Deterministic, but deliberately excluded from the
     * racecheck result digest: it describes the engine, not the
     * simulated outcome, and ROADMAP item 1's engine overhaul is
     * allowed to change it.
     */
    std::uint64_t events_processed = 0;
    /**
     * True when the run was cut short by the cooperative interrupt
     * flag (SIGINT): timing and traffic fields describe the run up to
     * the interruption, oracle end-of-run drain checks were skipped,
     * and any stats document derived from this result must carry
     * `"partial": true`.
     */
    bool interrupted = false;

    double totalSeconds() const
    { return static_cast<double>(total_time) /
          static_cast<double>(ticks_per_sec); }
};

/** Runs traces under paradigms; reusable across runs. */
class SimulationDriver
{
  public:
    explicit SimulationDriver(SimConfig config = SimConfig());

    /** Simulate @p trace under @p paradigm. */
    RunResult run(const trace::WorkloadTrace &trace, Paradigm paradigm);

    /** Convenience: speedup of @p paradigm over the 1-GPU baseline. */
    double speedupOverSingleGpu(const trace::WorkloadTrace &trace,
                                Paradigm paradigm);

    const SimConfig &config() const { return _config; }

  private:
    RunResult runAnalytic(const trace::WorkloadTrace &trace,
                          Paradigm paradigm) const;
    RunResult runEventDriven(const trace::WorkloadTrace &trace,
                             Paradigm paradigm);

    SimConfig _config;
};

/**
 * Process-wide total of DES events executed by every
 * SimulationDriver::run() since process start (all drivers, all
 * threads). The bench harness samples it around a bench to derive
 * `host.events_per_sec` without threading a profiler through every
 * figure sweep.
 */
std::uint64_t totalHostEventsProcessed();

} // namespace fp::sim

#endif // FP_SIM_DRIVER_HH
