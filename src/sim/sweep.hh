/**
 * @file
 * In-process parallel sweep runner (ROADMAP item 5). The figure
 * benches are sweeps of independent simulations: (workload, paradigm,
 * configuration) tuples whose RunResults are pure functions of their
 * inputs. The SweepRunner fans those simulations across an
 * fp::ThreadPool while keeping the aggregate deterministic:
 *
 *   - every job is addressed by its index in the submitted vector and
 *     writes its RunResult into that slot, so the output order is the
 *     submission order regardless of which worker finishes first;
 *   - traces are resolved through the process-wide TraceCache, so each
 *     (workload, params) trace is generated exactly once no matter how
 *     many jobs share it or which worker gets there first;
 *   - with jobs() <= 1 the pool runs every simulation inline on the
 *     calling thread in index order -- the exact serial loop the
 *     benches used before, which is how the bench baselines certify
 *     that parallel output is byte-identical to serial output.
 *
 * Each worker constructs its own SimulationDriver, so no simulation
 * state is shared; the only cross-thread state is the TraceCache, the
 * MetricsRegistry membership list, and the InvariantRegistry counters,
 * all internally synchronized (common/sync.h).
 */

#ifndef FP_SIM_SWEEP_HH
#define FP_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "sim/driver.hh"
#include "sim/paradigm.hh"
#include "workloads/workload.hh"

namespace fp::obs {
class HealthMonitor;
} // namespace fp::obs

namespace fp::sim {

/**
 * One independent simulation in a sweep. The SimConfig is copied per
 * job; its observability pointers (tracer, sampler, profiler, ...) are
 * owned by the caller and must not be shared between jobs when the
 * sweep runs with more than one lane -- the sinks are not
 * synchronized. Host self-profiling under a parallel sweep therefore
 * means one obs::Profiler per job (tests/sim/profiler_thread_test.cc
 * exercises this under TSan); only the process-wide
 * common::AllocCounters are shared, and those are atomic and
 * documented as coarse when profiled shards overlap.
 */
struct SweepJob
{
    std::string workload;               ///< TraceCache workload name
    workloads::WorkloadParams params;   ///< trace-generation parameters
    Paradigm paradigm = Paradigm::single_gpu;
    SimConfig config;
};

/**
 * Runs batches of SweepJobs, possibly in parallel. Reusable: one
 * runner (and its thread pool) can serve many run() batches, but
 * run() itself is not reentrant.
 */
class SweepRunner
{
  public:
    /** @p jobs lanes; <= 1 means serial in-order execution. */
    explicit SweepRunner(unsigned jobs = defaultJobs());

    /**
     * Lane count from the FINEPACK_BENCH_JOBS environment variable
     * (the record_baselines.sh -j flag exports it); defaults to 1 so
     * plain bench invocations stay serial.
     */
    static unsigned defaultJobs();

    /** Lanes actually available (>= 1). */
    unsigned jobs() const { return _pool.size(); }

    /**
     * Simulate every job; result i corresponds to batch[i]. Traces
     * resolve through TraceCache::instance(). If any job throws, the
     * batch still drains and the first captured exception is rethrown.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &batch);

    /**
     * Cumulative sweep progress over this runner's lifetime, published
     * as relaxed atomics: run() adds the batch size to the submitted
     * count up front and bumps the completed count once per finished
     * job (on whichever worker ran it). The run-health heartbeat reads
     * these to report per-shard progress and an ETA, and the watchdog
     * uses submitted > completed to distinguish "queue drained but
     * shards outstanding" (a quiescent stall) from a finished run.
     */
    std::uint64_t jobsCompleted() const
    { return _jobs_done.load(std::memory_order_relaxed); }
    std::uint64_t jobsSubmitted() const
    { return _jobs_total.load(std::memory_order_relaxed); }

    /**
     * Point @p health (nullable) at this runner's progress cells via
     * HealthMonitor::setSweepProgress. The runner must outlive the
     * monitor's watchdog thread (or a later attachHealth(nullptr) --
     * on a different monitor -- must detach it first).
     */
    void attachHealth(obs::HealthMonitor *health);

  private:
    fp::ThreadPool _pool;
    std::atomic<std::uint64_t> _jobs_done{0};
    std::atomic<std::uint64_t> _jobs_total{0};
};

/**
 * Environment-gated sweep heartbeat (the bench harness's run-health
 * hook): when FINEPACK_BENCH_HEARTBEAT_NS is set to a positive
 * nanosecond interval, constructing the guard starts an
 * obs::HealthMonitor attached to @p runner's progress cells, emitting
 * `kind:"heartbeat"` JSON lines (jobs done/total, ETA, RSS) on stderr
 * until destruction. Without the variable the guard is inert -- bench
 * output and digests are untouched by default. See docs/run_health.md.
 */
class HealthHeartbeatGuard
{
  public:
    explicit HealthHeartbeatGuard(SweepRunner &runner);
    ~HealthHeartbeatGuard();

    HealthHeartbeatGuard(const HealthHeartbeatGuard &) = delete;
    HealthHeartbeatGuard &operator=(const HealthHeartbeatGuard &) =
        delete;

    bool active() const { return _monitor != nullptr; }

  private:
    std::unique_ptr<obs::HealthMonitor> _monitor;
};

} // namespace fp::sim

#endif // FP_SIM_SWEEP_HH
