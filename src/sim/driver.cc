#include "sim/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "baselines/gps_model.hh"
#include "check/digest.hh"
#include "check/invariant.hh"
#include "check/protocol_oracle.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "gpu/dma_engine.hh"
#include "gpu/egress_port.hh"
#include "gpu/ingress_port.hh"
#include "interconnect/topology.hh"
#include "obs/flight_recorder.hh"
#include "obs/flow.hh"
#include "obs/latency.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/trace_event.hh"

namespace fp::sim {

namespace {

/** Cumulative DES events across all runs (see totalHostEventsProcessed). */
std::atomic<std::uint64_t> total_host_events{0};

} // namespace

std::uint64_t
totalHostEventsProcessed()
{
    return total_host_events.load(std::memory_order_relaxed);
}

const char *
toString(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::single_gpu: return "single-gpu";
      case Paradigm::bulk_dma: return "bulk-dma";
      case Paradigm::p2p_stores: return "p2p-stores";
      case Paradigm::finepack: return "finepack";
      case Paradigm::write_combine: return "write-combine";
      case Paradigm::gps: return "gps";
      case Paradigm::infinite_bw: return "infinite-bw";
    }
    return "?";
}

const std::vector<Paradigm> &
figure9Paradigms()
{
    static const std::vector<Paradigm> list = {
        Paradigm::p2p_stores,
        Paradigm::bulk_dma,
        Paradigm::finepack,
        Paradigm::infinite_bw,
    };
    return list;
}

SimConfig::SimConfig() : gpu(gpu::gv100Config()),
                         finepack(finepack::defaultConfig())
{}

SimulationDriver::SimulationDriver(SimConfig config)
    : _config(std::move(config))
{
    _config.finepack.validate();
}

RunResult
SimulationDriver::run(const trace::WorkloadTrace &trace, Paradigm paradigm)
{
    fp_assert(trace.num_gpus >= 1, "trace has no GPUs");
    if (paradigm == Paradigm::single_gpu ||
        paradigm == Paradigm::infinite_bw) {
        return runAnalytic(trace, paradigm);
    }
    return runEventDriven(trace, paradigm);
}

double
SimulationDriver::speedupOverSingleGpu(const trace::WorkloadTrace &trace,
                                       Paradigm paradigm)
{
    RunResult baseline = run(trace, Paradigm::single_gpu);
    RunResult result = run(trace, paradigm);
    fp_assert(result.total_time > 0, "zero runtime");
    return static_cast<double>(baseline.total_time) /
           static_cast<double>(result.total_time);
}

RunResult
SimulationDriver::runAnalytic(const trace::WorkloadTrace &trace,
                              Paradigm paradigm) const
{
    RunResult result;
    result.paradigm = paradigm;

    // Analytic paradigms never touch the event queue; attribute their
    // (tiny) host cost to one scope so profile reports stay complete.
    obs::Profiler::Scope profile_scope(_config.profiler,
                                       "driver.analytic");

    const gpu::GpuConfig &cfg = _config.gpu;
    Tick total = 0;

    if (paradigm == Paradigm::single_gpu) {
        // The whole problem on one device: per iteration, one kernel
        // executing the combined work with no communication.
        for (const auto &[flops, bytes] : trace.single_gpu_work) {
            total += cfg.kernel_launch_overhead;
            total += cfg.computeTime(flops, bytes,
                                     _config.compute_efficiency);
        }
    } else {
        // Infinite bandwidth: all transfer time, API overhead, and
        // packing work elided - only compute, launch, and the
        // iteration barrier remain. This is the paper's "maximum
        // achievable" opportunity bound, so no paradigm can beat it.
        for (const auto &iter : trace.iterations) {
            Tick slowest = 0;
            for (const auto &work : iter.per_gpu) {
                Tick t = cfg.computeTime(work.flops, work.local_bytes,
                                         _config.compute_efficiency);
                slowest = std::max(slowest, t);
            }
            total += cfg.kernel_launch_overhead + slowest +
                     cfg.barrier_overhead;
        }
    }

    result.total_time = total;
    return result;
}

namespace {

/** Everything alive during one event-driven run. */
struct SimSystem
{
    common::EventQueue queue;
    std::unique_ptr<icn::SwitchedFabric> fabric;
    std::vector<std::unique_ptr<gpu::EgressPort>> egress;
    std::vector<std::unique_ptr<gpu::IngressPort>> ingress;
    std::vector<std::unique_ptr<gpu::DmaEngine>> dma;
    /** Protocol oracles, one per GPU (SimConfig::check, finepack). */
    std::vector<std::unique_ptr<check::ProtocolOracle>> oracles;
};

/**
 * SimConfig::wedge_host_ms spin: burn host wall-clock while simulated
 * time stands still, so watchdog tests get a reproducible wedged
 * handler. Polls the cooperative interrupt flag so SIGINT unwinds at
 * the next queue step instead of after the full spin.
 */
FP_COLD void
spinHostMs(std::uint32_t ms)
{
    // fp-lint: allow(wall-clock) deliberate host-time spin (watchdog test aid)
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms);
    // fp-lint: allow(wall-clock) deliberate host-time spin (watchdog test aid)
    while (std::chrono::steady_clock::now() < deadline) {
        if (common::interrupt::pending())
            return;
    }
}

gpu::EgressMode
egressModeFor(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::p2p_stores: return gpu::EgressMode::raw_p2p;
      case Paradigm::finepack: return gpu::EgressMode::finepack;
      case Paradigm::write_combine:
      case Paradigm::gps: return gpu::EgressMode::write_combine;
      default: break;
    }
    fp_panic("paradigm has no egress mode: ", toString(paradigm));
}

} // namespace

RunResult
SimulationDriver::runEventDriven(const trace::WorkloadTrace &trace,
                                 Paradigm paradigm)
{
    RunResult result;
    result.paradigm = paradigm;

    const std::uint32_t gpus = trace.num_gpus;
    const gpu::GpuConfig &cfg = _config.gpu;
    const bool is_dma = paradigm == Paradigm::bulk_dma;
    const bool is_gps = paradigm == Paradigm::gps;
    icn::PcieProtocol protocol(_config.pcie_gen);

    SimSystem sys;
    // Determinism-analysis hooks must attach before the first event is
    // scheduled: the shuffle stamps tie-keys at schedule() time and the
    // observer must see every executed event.
    if (_config.tie_break_shuffle_seed != 0)
        sys.queue.enableTieBreakShuffle(_config.tie_break_shuffle_seed);
    if (_config.queue_observer)
        sys.queue.addObserver(_config.queue_observer);
    // The self-profiler rides the same observer hooks (wall-clock only,
    // no access recording): attach before the first event so its
    // counters cover the whole run.
    if (_config.profiler)
        _config.profiler->beginRun(&sys.queue);
    // The flight recorder rides the same hooks; it additionally gets
    // the queue pointer so beginEvent can publish progress counters
    // for the watchdog and the signal handler.
    if (obs::FlightRecorder *recorder = _config.recorder) {
        sys.queue.addObserver(recorder);
        recorder->beginRun(&sys.queue);
    }
    // Stamp warn()/inform() messages with simulated time for the
    // duration of the run.
    common::ScopedTickContext tick_context(
        [queue = &sys.queue]() { return queue->now(); });
    obs::TraceSink *tracer = _config.tracer;
    sys.fabric = std::make_unique<icn::SwitchedFabric>(
        "fabric", sys.queue, gpus,
        icn::FabricParams::forPcie(_config.pcie_gen));

    for (GpuId g = 0; g < gpus; ++g) {
        sys.ingress.push_back(std::make_unique<gpu::IngressPort>(
            "gpu" + std::to_string(g) + ".ingress", sys.queue, g, cfg));
        gpu::IngressPort *port = sys.ingress.back().get();
        sys.fabric->setIngressHandler(
            g, [port](const icn::WireMessagePtr &msg) {
                port->receive(msg);
            });

        if (is_dma) {
            sys.dma.push_back(std::make_unique<gpu::DmaEngine>(
                "gpu" + std::to_string(g) + ".dma", sys.queue, g, cfg,
                protocol, *sys.fabric));
        } else {
            sys.egress.push_back(std::make_unique<gpu::EgressPort>(
                "gpu" + std::to_string(g) + ".egress", sys.queue, g,
                gpus, egressModeFor(paradigm), _config.finepack,
                protocol, *sys.fabric,
                _config.finepack_flush_timeout));
            if (_config.check && paradigm == Paradigm::finepack) {
                sys.oracles.push_back(
                    std::make_unique<check::ProtocolOracle>(
                        g, _config.finepack));
                sys.egress.back()->attachOracle(sys.oracles.back().get());
                sys.oracles.back()->setAccessRecorder(
                    common::AccessRecorder(sys.queue));
            }
        }
    }
    if (_config.check && paradigm != Paradigm::finepack) {
        fp_warn("the protocol oracle only checks the finepack paradigm; "
                "--check is a no-op under ", toString(paradigm));
    }

    if (tracer) {
        tracer->processName(obs::trace_pid_sim, "sim.driver");
        tracer->threadName(obs::trace_pid_sim, obs::lane_main,
                           toString(paradigm));
        sys.fabric->setTracer(tracer);
        for (GpuId g = 0; g < gpus; ++g) {
            tracer->processName(obs::tracePidGpu(g),
                                "gpu" + std::to_string(g));
            tracer->threadName(obs::tracePidGpu(g), obs::lane_main,
                               "kernel");
            tracer->threadName(obs::tracePidGpu(g), obs::lane_rwq,
                               "rwq");
            tracer->threadName(obs::tracePidGpu(g), obs::lane_packetizer,
                               "packetizer");
            tracer->threadName(obs::tracePidGpu(g), obs::lane_ingress,
                               "ingress");
            tracer->threadName(obs::tracePidGpu(g), obs::lane_uplink,
                               "uplink");
            tracer->threadName(obs::tracePidGpu(g), obs::lane_downlink,
                               "downlink");
            sys.ingress[g]->setTracer(tracer);
        }
        for (auto &port : sys.egress)
            port->setTracer(tracer);
    }

    if (obs::LatencyCollector *latency = _config.latency) {
        latency->beginRun(gpus);
        for (auto &port : sys.ingress)
            port->setLatencyCollector(latency);
        for (auto &port : sys.egress)
            port->setLatencyCollector(latency);
    }

    if (obs::FlowCollector *flows = _config.flows) {
        flows->beginRun(gpus);
        sys.fabric->setFlowCollector(flows);
        for (auto &port : sys.ingress)
            port->setFlowCollector(flows);
    }

    if (obs::FlightRecorder *recorder = _config.recorder) {
        sys.fabric->setFlightRecorder(recorder);
        for (auto &port : sys.egress)
            port->setFlightRecorder(recorder);
    }

    obs::PeriodicSampler *sampler = _config.sampler;
    if (sampler) {
        sampler->beginRun();
        sampler->attachTraceSink(tracer);
        for (GpuId g = 0; g < gpus; ++g) {
            std::string prefix = "gpu" + std::to_string(g);
            if (paradigm == Paradigm::finepack) {
                // RWQ occupancy per destination partition.
                const auto &rwq = sys.egress[g]->writeQueue();
                for (GpuId dst = 0; dst < gpus; ++dst) {
                    if (dst == g)
                        continue;
                    const finepack::RwqPartition *part =
                        &rwq.partition(dst);
                    sampler->addTrack(
                        prefix + ".rwq.entries[" +
                            std::to_string(dst) + "]",
                        [part]() {
                            return static_cast<double>(
                                part->entryCount());
                        });
                }
            }
            const icn::Link *uplink = &sys.fabric->uplink(g);
            sampler->addTrack(prefix + ".uplink.queued", [uplink]() {
                return static_cast<double>(uplink->waitingMessages());
            });
        }
        // Messages injected into the fabric but not yet received.
        const icn::SwitchedFabric *fabric = sys.fabric.get();
        std::vector<const gpu::IngressPort *> sinks;
        for (const auto &port : sys.ingress)
            sinks.push_back(port.get());
        sampler->addTrack("sim.inflight_messages", [fabric, sinks]() {
            std::uint64_t sent = 0;
            for (GpuId g = 0; g < fabric->numGpus(); ++g)
                sent += fabric->uplink(g).messageCount();
            std::uint64_t received = 0;
            for (const auto *port : sinks)
                received += port->messagesReceived();
            return static_cast<double>(sent) -
                   static_cast<double>(received);
        });
    }

    baselines::GpsModel gps_model(_config.gps_page_bytes);

    if (_config.wedge_host_ms != 0) {
        std::uint32_t wedge_ms = _config.wedge_host_ms;
        sys.queue.schedule([wedge_ms]() { spinHostMs(wedge_ms); }, 0,
                           common::Event::prio_inject,
                           "driver.wedge_host");
    }

    Tick t = 0;
    std::size_t iteration_index = 0;
    try {
    for (const auto &iter : trace.iterations) {
        // Scope the whole iteration: in the hotspot report its self
        // time is driver/queue overhead not attributed to any handler.
        obs::Profiler::Scope iter_scope(_config.profiler,
                                        "driver.iteration");
        if (is_gps)
            gps_model.beginIteration(iter);

        Tick latest_compute_end = 0;
        for (GpuId g = 0; g < gpus; ++g) {
            const auto &work = iter.per_gpu[g];
            Tick kernel_start = t + cfg.kernel_launch_overhead;
            std::uint64_t local = work.local_bytes;
            if (is_dma)
                local += work.dma_extra_local_bytes;
            Tick compute =
                cfg.computeTime(work.flops, local,
                                _config.compute_efficiency);
            Tick compute_end = kernel_start + compute;
            latest_compute_end =
                std::max(latest_compute_end, compute_end);

            if (tracer && tracer->detail() != obs::TraceDetail::off) {
                tracer->complete(
                    obs::tracePidGpu(g), obs::lane_main, "kernel",
                    "phase", kernel_start, compute,
                    {"iteration",
                     static_cast<double>(iteration_index)},
                    {"remote_stores",
                     static_cast<double>(work.remote_stores.size())});
            }

            if (is_dma) {
                // Bulk-synchronous copies after the kernel completes.
                gpu::DmaEngine *engine = sys.dma[g].get();
                const auto *copies = &work.dma_copies;
                sys.queue.schedule(
                    [engine, copies]() {
                        for (const auto &copy : *copies)
                            engine->copy(copy.dst, copy.range);
                    },
                    compute_end, common::Event::prio_inject,
                    "driver.dma_copies");
                continue;
            }

            // Store paradigms: stores stream out across the compute
            // window in fixed-size chunks, then the kernel-end release
            // flushes all buffered state.
            gpu::EgressPort *port = sys.egress[g].get();
            const auto *stores = &work.remote_stores;
            std::size_t count = stores->size();
            std::uint32_t chunk = _config.store_chunk;
            std::size_t chunks = (count + chunk - 1) / chunk;
            for (std::size_t c = 0; c < chunks; ++c) {
                std::size_t begin = c * chunk;
                std::size_t end =
                    std::min<std::size_t>(begin + chunk, count);
                // Chunk c completes at the matching fraction of the
                // compute window.
                Tick when =
                    kernel_start +
                    static_cast<Tick>(
                        static_cast<double>(compute) *
                        (static_cast<double>(end) /
                         static_cast<double>(count)));
                if (!is_gps) {
                    sys.queue.schedule(
                        [port, stores, begin, end]() {
                            port->issueStores(*stores, begin, end);
                        },
                        when, common::Event::prio_inject,
                        "driver.issue_stores");
                } else {
                    baselines::GpsModel *model = &gps_model;
                    sys.queue.schedule(
                        [port, stores, begin, end, model]() {
                            std::vector<icn::Store> kept;
                            kept.reserve(end - begin);
                            for (std::size_t i = begin; i < end; ++i) {
                                const icn::Store &s = (*stores)[i];
                                if (model->subscribed(s.dst, s.addr))
                                    kept.push_back(s);
                                else
                                    model->countFiltered();
                            }
                            port->issueStores(kept, 0, kept.size());
                        },
                        when, common::Event::prio_inject,
                        "driver.gps_issue_stores");
                }
            }
            sys.queue.schedule(
                [port]() { port->releaseFence(); }, compute_end,
                common::Event::prio_sync, "driver.release_fence");
        }

        // Run until every message has drained into its destination.
        // The iteration ends when all kernels and deliveries complete;
        // bookkeeping events (e.g. disarmed inactivity timeouts) may
        // execute later without extending the iteration. The sampler,
        // when present, pumps the queue so time series accumulate.
        if (sampler)
            sampler->pump(sys.queue);
        else
            sys.queue.run();
        Tick busy = latest_compute_end;
        for (const auto &port : sys.ingress)
            busy = std::max(busy, port->drainedAt());
        FP_INVARIANT(busy >= latest_compute_end, "driver-drain-ordering",
                     "traffic drained at ", busy,
                     " before compute ended at ", latest_compute_end);
        Tick iteration_start = t;
        t = busy + cfg.barrier_overhead;
        // Never schedule the next iteration before already-executed
        // bookkeeping events (the queue cannot go back in time).
        t = std::max(t, sys.queue.now());
        FP_INVARIANT(t >= iteration_start, "driver-time-monotonic",
                     "iteration moved time backwards: ", iteration_start,
                     " -> ", t);

        if (tracer && tracer->detail() != obs::TraceDetail::off) {
            tracer->complete(obs::trace_pid_sim, obs::lane_main, "drain",
                             "phase", latest_compute_end,
                             busy - latest_compute_end,
                             {"iteration",
                              static_cast<double>(iteration_index)});
            tracer->complete(obs::trace_pid_sim, obs::lane_main,
                             "iteration", "phase", iteration_start,
                             t - iteration_start,
                             {"iteration",
                              static_cast<double>(iteration_index)});
        }
        ++iteration_index;
    }
    } catch (const common::SimInterrupted &) {
        // Cooperative interrupt (SIGINT): stop cleanly between events.
        // Everything below still runs -- counters, stats capture, and
        // traffic accounting describe the run up to this point -- but
        // end-of-run drain checks are skipped (work is still in
        // flight by construction) and the result is marked partial.
        result.interrupted = true;
        t = std::max(t, sys.queue.now());
    }

    result.total_time = t;
    result.events_processed = sys.queue.eventsProcessed();
    // Close the flow collector's run: total_time is the utilization
    // denominator (it bounds every link's serialization end).
    if (_config.flows)
        _config.flows->endRun(result.total_time);
    total_host_events.fetch_add(result.events_processed,
                                std::memory_order_relaxed);

    // Detach the profiler while the queue is alive; it folds this
    // run's wall time and queue/alloc counters into its aggregates.
    if (_config.profiler)
        _config.profiler->endRun();
    // Publish final queue counters into the recorder and detach it
    // from this run's queue before teardown.
    if (_config.recorder)
        _config.recorder->endRun();

    // Capture observability output while the component tree (and with
    // it every registered StatGroup) is still alive.
    if (sampler)
        sampler->endRun();
    if (_config.metrics)
        _config.metrics->captureNow();

    // Every buffered byte must have flushed and every flush must have
    // packetized by the end of the run (oracle end-of-run check).
    // Per-source digests fold in GPU-id order (the oracles vector is
    // built in that order), so the combined digest is well-defined.
    check::Digest run_digest;
    for (const auto &oracle : sys.oracles) {
        if (!result.interrupted)
            oracle->verifyDrained();
        result.oracle_transactions += oracle->transactionsVerified();
        result.oracle_stores += oracle->storesRecorded();
        result.oracle_bytes += oracle->bytesVerified();
        result.oracle_value_bytes += oracle->valueBytesVerified();
        run_digest.updateU64(oracle->digest());
    }
    if (!sys.oracles.empty())
        result.oracle_digest = run_digest.value();

    // ---- Traffic accounting (uplinks see each message once) -----------
    std::uint64_t fp_padding = 0; // raw/finepack non-data payload bytes
    for (GpuId g = 0; g < gpus; ++g) {
        const icn::Link &link = sys.fabric->uplink(g);
        result.payload_bytes += link.payloadBytes();
        result.header_bytes += link.headerBytes();
        result.data_bytes += link.dataBytes();
        result.messages += link.messageCount();
        for (auto kind : {icn::MessageKind::raw_store,
                          icn::MessageKind::finepack_packet,
                          icn::MessageKind::atomic_op}) {
            const auto &ks = link.kindStats(kind);
            fp_padding += ks.payload_bytes - ks.data_bytes;
        }
    }
    result.wire_bytes = result.payload_bytes + result.header_bytes;

    result.useful_bytes = trace::totalUsefulBytes(trace);
    // Sub-headers, DW padding, and raw-store padding are protocol
    // overhead; unwritten write-combine line bytes and whole-range DMA
    // payloads count as transferred data.
    result.protocol_bytes = result.header_bytes + fp_padding;
    std::uint64_t transferred_data =
        result.payload_bytes - fp_padding;
    result.wasted_bytes =
        transferred_data > result.useful_bytes
            ? transferred_data - result.useful_bytes
            : 0;

    if (paradigm == Paradigm::finepack) {
        for (const auto &port : sys.egress) {
            const auto &packetizer = port->packetizer();
            result.finepack_packets += packetizer.packetsEmitted();
        }
        std::uint64_t packed = 0;
        for (const auto &port : sys.egress) {
            packed += port->packetizer().storesPacked();
            result.wc_alone_wire_bytes +=
                port->packetizer().wcAloneWireBytes();
            result.wc_line_wire_bytes +=
                port->packetizer().wcLineWireBytes();
            result.uncompressed_wire_bytes +=
                port->packetizer().uncompressedWireBytes();
        }
        result.avg_stores_per_packet =
            result.finepack_packets
                ? static_cast<double>(packed) /
                      static_cast<double>(result.finepack_packets)
                : 0.0;
    }

    return result;
}

} // namespace fp::sim
