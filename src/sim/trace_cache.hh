/**
 * @file
 * In-process cache of generated workload traces. Trace generation runs
 * the actual algorithms, so benches that sweep paradigms or FinePack
 * configurations reuse one trace per (workload, gpus, scale, seed).
 */

#ifndef FP_SIM_TRACE_CACHE_HH
#define FP_SIM_TRACE_CACHE_HH

#include <map>
#include <string>
#include <tuple>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fp::sim {

/** Lazily generates and memoizes workload traces. */
class TraceCache
{
  public:
    /** The process-wide instance used by the bench harnesses. */
    static TraceCache &instance();

    /** Get (generating if needed) the trace for a configuration. */
    const trace::WorkloadTrace &
    get(const std::string &workload, const workloads::WorkloadParams &params);

    /** Drop all cached traces (frees memory between bench phases). */
    void clear() { _traces.clear(); }

    std::size_t size() const { return _traces.size(); }

  private:
    using Key = std::tuple<std::string, std::uint32_t, double,
                           std::uint64_t>;
    std::map<Key, trace::WorkloadTrace> _traces;
};

} // namespace fp::sim

#endif // FP_SIM_TRACE_CACHE_HH
