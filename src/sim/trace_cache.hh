/**
 * @file
 * In-process cache of generated workload traces. Trace generation runs
 * the actual algorithms, so benches that sweep paradigms or FinePack
 * configurations reuse one trace per (workload, num_gpus, scale, seed)
 * configuration, keyed by an FNV-1a digest of those fields.
 *
 * Thread safety: the cache is shared by every sweep-runner worker.
 * Membership is guarded by an fp::Mutex; the first thread to request a
 * missing configuration claims it and generates outside the lock (so
 * distinct traces generate in parallel), while threads requesting the
 * same configuration block on a CondVar until the trace is ready.
 * Returned references stay valid until clear(): entries are
 * heap-allocated and immutable once published.
 */

#ifndef FP_SIM_TRACE_CACHE_HH
#define FP_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/sync.h"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace fp::sim {

/** Lazily generates and memoizes workload traces. */
class TraceCache
{
  public:
    /** The process-wide instance used by the bench harnesses. */
    static TraceCache &instance();

    /**
     * Digest identifying one generated trace: workload name plus every
     * WorkloadParams field that shapes generation.
     */
    static std::uint64_t digest(const std::string &workload,
                                const workloads::WorkloadParams &params);

    /** Get (generating if needed) the trace for a configuration. */
    const trace::WorkloadTrace &
    get(const std::string &workload,
        const workloads::WorkloadParams &params) FP_EXCLUDES(_mu);

    /**
     * Drop all cached traces (frees memory between bench phases).
     * Must not run concurrently with get(): callers of get() hold
     * references into the cache.
     */
    void
    clear() FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        _traces.clear();
    }

    std::size_t
    size() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _traces.size();
    }

  private:
    mutable fp::Mutex _mu;
    fp::CondVar _published;
    /** Digest -> trace; a null entry marks a generation in progress. */
    std::map<std::uint64_t, std::unique_ptr<trace::WorkloadTrace>>
        _traces FP_GUARDED_BY(_mu);
};

} // namespace fp::sim

#endif // FP_SIM_TRACE_CACHE_HH
