/**
 * @file
 * The multi-GPU communication paradigms compared in the paper's
 * evaluation (Figures 9, 10, 13).
 */

#ifndef FP_SIM_PARADIGM_HH
#define FP_SIM_PARADIGM_HH

#include <cstdint>
#include <vector>

namespace fp::sim {

enum class Paradigm : std::uint8_t {
    /** Whole problem on one GPU (the strong-scaling baseline). */
    single_gpu,
    /** Bulk-synchronous memcpy at kernel boundaries. */
    bulk_dma,
    /** Fine-grained peer-to-peer stores, no FinePack. */
    p2p_stores,
    /** Peer-to-peer stores through FinePack. */
    finepack,
    /** Cacheline write combining only (Section VI-A comparison). */
    write_combine,
    /** GPS: write combining + page subscription (Section VI-B). */
    gps,
    /** Infinite inter-GPU bandwidth (the opportunity bound). */
    infinite_bw,
};

const char *toString(Paradigm paradigm);

/** The paradigms shown in Figure 9, in plot order. */
const std::vector<Paradigm> &figure9Paradigms();

} // namespace fp::sim

#endif // FP_SIM_PARADIGM_HH
