#include "sim/trace_cache.hh"

namespace fp::sim {

TraceCache &
TraceCache::instance()
{
    static TraceCache cache;
    return cache;
}

const trace::WorkloadTrace &
TraceCache::get(const std::string &workload,
                const workloads::WorkloadParams &params)
{
    Key key{workload, params.num_gpus, params.scale, params.seed};
    auto it = _traces.find(key);
    if (it == _traces.end()) {
        auto instance = workloads::createWorkload(workload);
        it = _traces.emplace(key, instance->generateTrace(params)).first;
    }
    return it->second;
}

} // namespace fp::sim
