#include "sim/trace_cache.hh"

#include <bit>

#include "check/digest.hh"

namespace fp::sim {

TraceCache &
TraceCache::instance()
{
    // The trace map is FP_GUARDED_BY the cache's fp::Mutex.
    // fp-lint: allow(global-state) internally synchronized
    static TraceCache cache;
    return cache;
}

std::uint64_t
TraceCache::digest(const std::string &workload,
                   const workloads::WorkloadParams &params)
{
    check::Digest d;
    d.update(workload);
    d.updateByte(0); // terminate the name so "ab"+1 != "a"+"b1"
    d.updateU64(params.num_gpus);
    d.updateU64(std::bit_cast<std::uint64_t>(params.scale));
    d.updateU64(params.seed);
    return d.value();
}

const trace::WorkloadTrace &
TraceCache::get(const std::string &workload,
                const workloads::WorkloadParams &params)
{
    const std::uint64_t key = digest(workload, params);
    {
        fp::MutexLock lock(_mu);
        for (;;) {
            auto it = _traces.find(key);
            if (it == _traces.end()) {
                // Claim the slot: a null entry tells later requesters
                // that generation is already under way.
                _traces.emplace(key, nullptr);
                break;
            }
            if (it->second)
                return *it->second;
            // Another thread is generating this trace; wait for it to
            // publish (or abandon) the entry.
            _published.wait(_mu);
        }
    }

    // Generate outside the lock so distinct traces build in parallel.
    std::unique_ptr<trace::WorkloadTrace> generated;
    try {
        auto instance = workloads::createWorkload(workload);
        generated = std::make_unique<trace::WorkloadTrace>(
            instance->generateTrace(params));
    } catch (...) {
        // Abandon the claim so waiters retry (and typically rethrow
        // the same error from their own generation attempt).
        fp::MutexLock lock(_mu);
        _traces.erase(key);
        _published.notify_all();
        throw;
    }

    fp::MutexLock lock(_mu);
    auto &slot = _traces[key];
    slot = std::move(generated);
    _published.notify_all();
    return *slot;
}

} // namespace fp::sim
