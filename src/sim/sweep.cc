#include "sim/sweep.hh"

#include <cstdlib>

#include "sim/trace_cache.hh"

namespace fp::sim {

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("FINEPACK_BENCH_JOBS")) {
        int parsed = std::atoi(env);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    return 1;
}

SweepRunner::SweepRunner(unsigned jobs) : _pool(jobs) {}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &batch)
{
    std::vector<RunResult> results(batch.size());
    _pool.parallelFor(batch.size(), [&](std::size_t i) {
        const SweepJob &job = batch[i];
        const trace::WorkloadTrace &trace =
            TraceCache::instance().get(job.workload, job.params);
        SimulationDriver driver(job.config);
        results[i] = driver.run(trace, job.paradigm);
    });
    return results;
}

} // namespace fp::sim
