#include "sim/sweep.hh"

#include <cstdlib>

#include "obs/health.hh"
#include "sim/trace_cache.hh"

namespace fp::sim {

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("FINEPACK_BENCH_JOBS")) {
        int parsed = std::atoi(env);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    return 1;
}

SweepRunner::SweepRunner(unsigned jobs) : _pool(jobs) {}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &batch)
{
    std::vector<RunResult> results(batch.size());
    _jobs_total.fetch_add(batch.size(), std::memory_order_relaxed);
    _pool.parallelFor(batch.size(), [&](std::size_t i) {
        const SweepJob &job = batch[i];
        const trace::WorkloadTrace &trace =
            TraceCache::instance().get(job.workload, job.params);
        SimulationDriver driver(job.config);
        results[i] = driver.run(trace, job.paradigm);
        _jobs_done.fetch_add(1, std::memory_order_relaxed);
    });
    return results;
}

void
SweepRunner::attachHealth(obs::HealthMonitor *health)
{
    if (health)
        health->setSweepProgress(&_jobs_done, &_jobs_total);
}

HealthHeartbeatGuard::HealthHeartbeatGuard(SweepRunner &runner)
{
    const char *env = std::getenv("FINEPACK_BENCH_HEARTBEAT_NS");
    if (!env)
        return;
    long long interval = std::atoll(env);
    if (interval <= 0)
        return;
    obs::HealthMonitor::Options options;
    options.heartbeat_ns = static_cast<std::uint64_t>(interval);
    _monitor = std::make_unique<obs::HealthMonitor>(options);
    runner.attachHealth(_monitor.get());
    _monitor->start();
}

HealthHeartbeatGuard::~HealthHeartbeatGuard() = default;

} // namespace fp::sim
