/**
 * @file
 * HIT (paper Section V, Tartan suite): homogeneous isotropic turbulence
 * computed as a series of 3-D FFT operations.
 *
 * The spectral field is slab-partitioned along z; each time step runs
 * as two kernel phases separated by device-wide synchronization:
 *   phase A: (inverse transforms + nonlinear term +) forward FFT along
 *            x and y, then an all-to-all transpose into x-slabs,
 *   phase B: FFT along z, spectral viscous decay, inverse FFT along z,
 *            then the all-to-all transpose back.
 * Transposes write remote elements at strides of n^2 complex values, so
 * the peer-to-peer store version emits isolated 8 B stores; the memcpy
 * version packs the blocks into staging buffers first.
 *
 * Simplification: a single complex field stands in for the three
 * velocity components; the spectral pipeline, the transposes, and the
 * traffic they generate are real.
 */

#ifndef FP_WORKLOADS_HIT_HH
#define FP_WORKLOADS_HIT_HH

#include <complex>
#include <vector>

#include "workloads/workload.hh"

namespace fp::workloads {

class HitWorkload : public Workload
{
  public:
    const char *name() const override { return "hit"; }
    const char *commPattern() const override { return "all-to-all"; }

    void setup(const WorkloadParams &params) override;
    /** 3 time steps x 2 transpose phases. */
    std::uint32_t numIterations() const override { return 6; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /**
     * Physical-space field energy. Between phases the field sits in
     * xy-spectral space (forward FFTs are unnormalized), so Parseval's
     * factor n^2 is divided out when applicable; with viscosity on,
     * energy decays across full steps.
     */
    double energy() const;

    std::uint64_t n() const { return _n; }

    /** Device-local bases of the two layouts. */
    static constexpr Addr field_base = 0x40000000;     ///< z-slabs
    static constexpr Addr transposed_base = 0x50000000; ///< x-slabs
    /** Device-local base of the DMA transpose staging buffers. */
    static constexpr Addr staging_base = 0x70000000;

  private:
    using Complex = std::complex<float>;

    std::uint64_t index(std::uint64_t x, std::uint64_t y,
                        std::uint64_t z) const
    { return x + _n * (y + _n * z); }
    std::uint64_t indexT(std::uint64_t x, std::uint64_t y,
                         std::uint64_t z) const
    { return z + _n * (y + _n * x); }

    /** In-place radix-2 FFT over a strided pencil. */
    void fftPencil(std::vector<Complex> &data, std::uint64_t base,
                   std::uint64_t stride, bool inverse) const;

    void phaseA(trace::IterationWork &iter, bool first_step);
    void phaseB(trace::IterationWork &iter);

    std::uint64_t _n = 64;
    std::vector<Complex> _u;  ///< z-slab layout
    std::vector<Complex> _ut; ///< x-slab (transposed) layout
    /** True while _u carries unnormalized x/y forward transforms. */
    bool _xy_spectral = false;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_HIT_HH
