#include "workloads/sssp.hh"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

namespace {

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

float
SsspWorkload::weight(std::uint64_t u, std::uint64_t e) const
{
    // Deterministic weight in [1, 10).
    double unit = static_cast<double>(mix(u * 0x9e3779b1ull + e) >> 11) *
                  (1.0 / 9007199254740992.0);
    return static_cast<float>(1.0 + unit * 9.0);
}

void
SsspWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    _rng = common::Rng(params.seed);

    auto n = static_cast<std::uint64_t>(524288 * params.scale);
    n = std::max<std::uint64_t>(n, 8192);
    _graph = makeWebGraph(n, 2048, 6, 2, params.seed);

    _dist.assign(n, std::numeric_limits<float>::infinity());
    _recorded.clear();
    simulate();
}

void
SsspWorkload::simulate()
{
    const std::uint64_t n = _graph.num_nodes;
    const std::uint32_t gpus = _params.num_gpus;
    const std::uint32_t max_iters = 10;

    // A central source reaches every partition within a few hops.
    std::uint64_t source = n / 2;
    _dist[source] = 0.0f;
    std::vector<std::uint64_t> frontier{source};

    // prev_iter points into _recorded; reserve so push_back never
    // reallocates under it.
    _recorded.reserve(max_iters);

    // Updated addresses of the previous iteration, for the lookahead
    // consumption oracle: addr -> (iteration index, per-dst seen mask).
    std::unordered_set<std::uint64_t> prev_updated;
    trace::IterationWork *prev_iter = nullptr;

    for (std::uint32_t it = 0; it < max_iters && !frontier.empty(); ++it) {
        trace::IterationWork iter;
        iter.per_gpu.resize(gpus);
        iter.consumed.resize(gpus);

        std::unordered_set<std::uint64_t> updated;
        std::vector<std::uint64_t> next_frontier;
        // Per-dst dedup of consumed marks against prev_updated.
        std::vector<std::unordered_set<std::uint64_t>> consumed_marks(
            gpus);

        for (GpuId g = 0; g < gpus; ++g) {
            auto &work = iter.per_gpu[g];
            trace::StoreStreamBuilder stream(g, work.remote_stores,
                                             _coalescer);

            // The frontier nodes this GPU owns, in node order with
            // inter-SM completion jitter.
            std::vector<std::uint64_t> mine;
            for (std::uint64_t u : frontier)
                if (ownerOf(u, n, gpus) == g)
                    mine.push_back(u);
            std::sort(mine.begin(), mine.end());
            for (std::size_t i = 0; i + 1 < mine.size(); ++i) {
                std::uint64_t span = std::min<std::uint64_t>(
                    128, mine.size() - i);
                std::swap(mine[i], mine[i + _rng.below(span)]);
            }

            std::uint64_t relaxed_edges = 0;
            auto mark_read = [&](std::uint64_t node) {
                if (prev_iter && prev_updated.count(node) &&
                    consumed_marks[g].insert(node).second) {
                    prev_iter->consumed[g].push_back(
                        icn::AddrRange{dist_base + node * 4, 4});
                }
            };

            for (std::uint64_t u : mine) {
                mark_read(u); // reads dist[u]
                float du = _dist[u];
                for (std::uint64_t e = _graph.offsets[u];
                     e < _graph.offsets[u + 1]; ++e) {
                    std::uint32_t v = _graph.targets[e];
                    ++relaxed_edges;
                    mark_read(v); // reads dist[v] for the comparison
                    float cand = du + weight(u, e);
                    if (cand < _dist[v]) {
                        _dist[v] = cand;
                        if (updated.insert(v).second)
                            next_frontier.push_back(v);
                        // Push the improvement to every peer replica.
                        for (GpuId dst = 0; dst < gpus; ++dst) {
                            if (dst == g)
                                continue;
                            stream.scalarWrite(dst,
                                               dist_base + v * 4, 4);
                        }
                    }
                }
            }

            work.flops = static_cast<double>(relaxed_edges) * 4.0;
            // Relaxations are random accesses over a multi-MB distance
            // array and CSR: each touch costs a cache line, not 4 B.
            work.local_bytes = relaxed_edges * 64 + mine.size() * 32;

            // The memcpy twin cannot identify the sparse improvements:
            // it copies its whole owned distance block to every peer.
            auto [begin, end] = blockPartition(n, gpus, g);
            for (GpuId dst = 0; dst < gpus; ++dst) {
                if (dst == g)
                    continue;
                work.dma_copies.push_back(trace::DmaCopy{
                    dst, icn::AddrRange{dist_base + begin * 4,
                                        (end - begin) * 4}});
            }
        }

        _recorded.push_back(std::move(iter));
        prev_iter = &_recorded.back();
        prev_updated = std::move(updated);
        frontier = std::move(next_frontier);
        std::sort(frontier.begin(), frontier.end());
    }
}

trace::IterationWork
SsspWorkload::runIteration(std::uint32_t it)
{
    fp_assert(it < _recorded.size(), "iteration out of range");
    return _recorded[it];
}

} // namespace fp::workloads
