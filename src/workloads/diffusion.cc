#include "workloads/diffusion.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
DiffusionWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    auto side = static_cast<std::uint64_t>(
        1024.0 * std::sqrt(params.scale));
    side = std::max<std::uint64_t>(side, 128);
    // Pitch rows to whole cache lines (16 doubles), as cudaMallocPitch
    // would; halo rows then coalesce into full 128 B accesses.
    side = (side + 15) / 16 * 16;
    _nx = side;
    _ny = side;

    _heat.assign(_nx * _ny, 0.0);
    _heat_next.assign(_nx * _ny, 0.0);
    _burgers.assign(_nx * _ny, 0.0);
    _burgers_next.assign(_nx * _ny, 0.0);

    // A hot square in the middle and a sinusoidal velocity field.
    for (std::uint64_t y = _ny / 4; y < 3 * _ny / 4; ++y)
        for (std::uint64_t x = _nx / 4; x < 3 * _nx / 4; ++x)
            heat(x, y) = 100.0;
    for (std::uint64_t y = 0; y < _ny; ++y)
        for (std::uint64_t x = 0; x < _nx; ++x)
            burgers(x, y) =
                std::sin(2.0 * M_PI * static_cast<double>(x) /
                         static_cast<double>(_nx));
}

trace::IterationWork
DiffusionWorkload::runIteration(std::uint32_t)
{
    const std::uint32_t gpus = _params.num_gpus;
    const double alpha = 0.2; // heat diffusivity (stable explicit step)
    const double dt = 0.2;    // Burgers advection step

    trace::IterationWork iter;
    iter.per_gpu.resize(gpus);
    iter.consumed.resize(gpus);

    auto idx = [&](std::uint64_t x, std::uint64_t y) {
        return y * _nx + x;
    };

    // --- One explicit time step per field, partitioned by rows ---------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [row_begin, row_end] = blockPartition(_ny, gpus, g);
        auto &work = iter.per_gpu[g];

        for (std::uint64_t y = row_begin; y < row_end; ++y) {
            for (std::uint64_t x = 0; x < _nx; ++x) {
                double c = _heat[idx(x, y)];
                double l = x > 0 ? _heat[idx(x - 1, y)] : c;
                double r = x + 1 < _nx ? _heat[idx(x + 1, y)] : c;
                double d = y > 0 ? _heat[idx(x, y - 1)] : c;
                double u = y + 1 < _ny ? _heat[idx(x, y + 1)] : c;
                _heat_next[idx(x, y)] =
                    c + alpha * (l + r + d + u - 4.0 * c);

                // Inviscid Burgers, first-order upwind.
                double bc = _burgers[idx(x, y)];
                double bl = x > 0 ? _burgers[idx(x - 1, y)] : bc;
                double br = x + 1 < _nx ? _burgers[idx(x + 1, y)] : bc;
                double grad = bc >= 0.0 ? bc - bl : br - bc;
                _burgers_next[idx(x, y)] = bc - dt * bc * grad;
            }
        }

        double cells =
            static_cast<double>((row_end - row_begin) * _nx);
        work.flops = cells * 2.0 * 12.0; // two fields, ~12 flops each
        work.local_bytes =
            static_cast<std::uint64_t>(cells * 2.0 * 6.0 * 8.0);
    }
    std::swap(_heat, _heat_next);
    std::swap(_burgers, _burgers_next);

    // --- Halo rows to neighbours ---------------------------------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [row_begin, row_end] = blockPartition(_ny, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        auto push_row = [&](GpuId dst, Addr base, std::uint64_t y) {
            Addr row_addr = base + y * _nx * 8;
            for (std::uint64_t x = 0; x < _nx; ++x)
                stream.laneWrite(dst, row_addr + x * 8, 8);
            stream.flushWarp();

            icn::AddrRange range{row_addr, _nx * 8};
            work.dma_copies.push_back(trace::DmaCopy{dst, range});
            iter.consumed[dst].push_back(range);
        };

        if (g > 0) {
            push_row(g - 1, heat_base, row_begin);
            push_row(g - 1, burgers_base, row_begin);
        }
        if (g + 1 < gpus) {
            push_row(g + 1, heat_base, row_end - 1);
            push_row(g + 1, burgers_base, row_end - 1);
        }
    }

    return iter;
}

double
DiffusionWorkload::heatSum() const
{
    double sum = 0.0;
    for (double v : _heat)
        sum += v;
    return sum;
}

} // namespace fp::workloads
