/**
 * @file
 * SSSP (paper Section V): Bellman-Ford over a web-like graph
 * (indochina-like: dense host communities plus heavy-tailed long-range
 * links). The distance array is replicated on every GPU; each GPU
 * relaxes the out-edges of the frontier nodes it owns and pushes every
 * improvement to all peers as a 4 B store (many-to-many pattern).
 * Repeated improvements of the same node within an iteration create the
 * temporal redundancy FinePack's same-address coalescing removes.
 *
 * The whole algorithm runs in setup() so that each iteration's
 * consumption oracle can look one iteration ahead (a value is useful if
 * some GPU reads it while relaxing in the next iteration).
 */

#ifndef FP_WORKLOADS_SSSP_HH
#define FP_WORKLOADS_SSSP_HH

#include <vector>

#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace fp::workloads {

class SsspWorkload : public Workload
{
  public:
    const char *name() const override { return "sssp"; }
    const char *commPattern() const override { return "many-to-many"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override
    { return static_cast<std::uint32_t>(_recorded.size()); }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Final distance estimates after the recorded iterations. */
    const std::vector<float> &distances() const { return _dist; }

    /** Edge weight of edge index @p e out of node @p u (procedural). */
    float weight(std::uint64_t u, std::uint64_t e) const;

    /** Device-local base of the replicated distance array. */
    static constexpr Addr dist_base = 0x40000000;

  private:
    void simulate();

    Graph _graph;
    std::vector<float> _dist;
    std::vector<trace::IterationWork> _recorded;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_SSSP_HH
