#include "workloads/jacobi.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
JacobiWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    auto n = static_cast<std::uint64_t>(262144 * params.scale);
    n = std::max<std::uint64_t>(n, 4096);
    // Keep partition boundaries cache-line aligned (16 doubles), as a
    // real allocator/partitioner would; halo pushes then coalesce into
    // full 128 B lines.
    n = n / (16 * params.num_gpus) * (16 * params.num_gpus);
    std::uint64_t half_band = 128;

    _system = makeBandedSystem(n, half_band, params.seed);
    _x.assign(n, 0.0);
    _x_next.assign(n, 0.0);
}

trace::IterationWork
JacobiWorkload::runIteration(std::uint32_t)
{
    const std::uint64_t n = _system.n;
    const std::uint64_t hb = _system.half_band;
    const std::uint32_t gpus = _params.num_gpus;

    trace::IterationWork iter;
    iter.per_gpu.resize(gpus);
    iter.consumed.resize(gpus);

    // --- Execute the real Jacobi sweep, partitioned by GPU ------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [begin, end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];

        for (std::uint64_t i = begin; i < end; ++i) {
            double sum = 0.0;
            std::int64_t lo = -static_cast<std::int64_t>(
                std::min<std::uint64_t>(i, hb));
            std::int64_t hi = static_cast<std::int64_t>(
                std::min<std::uint64_t>(n - 1 - i, hb));
            for (std::int64_t k = lo; k <= hi; ++k) {
                if (k == 0)
                    continue;
                sum += _system.coeff(i, k) *
                       _x[i + static_cast<std::uint64_t>(k)];
            }
            _x_next[i] = (_system.rhs(i) - sum) / _system.coeff(i, 0);
        }

        // Roofline inputs: one band row read + x reads + one write.
        double rows = static_cast<double>(end - begin);
        work.flops = rows * 2.0 * static_cast<double>(2 * hb + 1);
        work.local_bytes = static_cast<std::uint64_t>(
            rows * ((2.0 * hb + 1) * 8.0 * 2.0 + 16.0));
    }
    std::swap(_x, _x_next);

    // --- Emit the halo exchange ---------------------------------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [begin, end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        auto push_range = [&](GpuId dst, std::uint64_t lo,
                              std::uint64_t hi) {
            // Thread-per-element halo store: consecutive lanes write
            // consecutive doubles, coalescing to 128 B accesses.
            for (std::uint64_t i = lo; i < hi; ++i)
                stream.laneWrite(dst, x_base + i * 8, 8);
            stream.flushWarp();

            icn::AddrRange range{x_base + lo * 8, (hi - lo) * 8};
            work.dma_copies.push_back(trace::DmaCopy{dst, range});
            iter.consumed[dst].push_back(range);
        };

        if (g > 0) {
            // Left neighbour reads our first half_band values.
            push_range(g - 1, begin,
                       std::min(end, begin + hb));
        }
        if (g + 1 < gpus) {
            // Right neighbour reads our last half_band values.
            push_range(g + 1, end > hb ? std::max(begin, end - hb) : begin,
                       end);
        }
    }

    return iter;
}

double
JacobiWorkload::residual() const
{
    const std::uint64_t n = _system.n;
    const std::uint64_t hb = _system.half_band;
    double worst = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        double sum = 0.0;
        std::int64_t lo =
            -static_cast<std::int64_t>(std::min<std::uint64_t>(i, hb));
        std::int64_t hi = static_cast<std::int64_t>(
            std::min<std::uint64_t>(n - 1 - i, hb));
        for (std::int64_t k = lo; k <= hi; ++k)
            sum += _system.coeff(i, k) *
                   _x[i + static_cast<std::uint64_t>(k)];
        worst = std::max(worst, std::abs(sum - _system.rhs(i)));
    }
    return worst;
}

} // namespace fp::workloads
