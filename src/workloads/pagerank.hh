/**
 * @file
 * PageRank (paper Section V): synchronous power iteration over a banded
 * cage-like matrix. The rank vector is replicated; each GPU owns a
 * contiguous block of nodes, computes their new ranks from its local
 * replica, and pushes each boundary rank that a neighbouring partition
 * needs as an individual 8 B store (warp-per-row SpMV emits a scalar
 * result store per row, so no intra-warp coalescing occurs).
 * Communication pattern for the banded dataset: peer-to-peer.
 */

#ifndef FP_WORKLOADS_PAGERANK_HH
#define FP_WORKLOADS_PAGERANK_HH

#include <vector>

#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace fp::workloads {

class PagerankWorkload : public Workload
{
  public:
    const char *name() const override { return "pagerank"; }
    const char *commPattern() const override { return "peer-to-peer"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override { return 8; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Rank mass (sums to ~1 with the damping formulation). */
    double rankSum() const;
    const std::vector<double> &ranks() const { return _rank; }

    /** Device-local base of the replicated rank vector. */
    static constexpr Addr rank_base = 0x40000000;

  private:
    Graph _graph;       ///< out-edges u -> v
    Graph _in_graph;    ///< transposed (in-edges), used by the update
    std::vector<double> _rank, _rank_next;
    /** For each node, the set of peer partitions its rank must reach. */
    std::vector<std::uint8_t> _push_mask; // bit per GPU
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_PAGERANK_HH
