#include "workloads/pagerank.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
PagerankWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    _rng = common::Rng(params.seed);

    auto n = static_cast<std::uint64_t>(1048576 * params.scale);
    n = std::max<std::uint64_t>(n, 8192);
    std::uint64_t bandwidth = std::max<std::uint64_t>(n / 8, 1024);

    _graph = makeBandedGraph(n, 8, bandwidth, params.seed);

    // Transpose for the pull-style update.
    std::vector<std::vector<std::uint32_t>> in_adj(n);
    for (std::uint64_t u = 0; u < n; ++u)
        for (std::uint64_t e = _graph.offsets[u];
             e < _graph.offsets[u + 1]; ++e)
            in_adj[_graph.targets[e]].push_back(
                static_cast<std::uint32_t>(u));
    _in_graph.num_nodes = n;
    _in_graph.offsets.assign(1, 0);
    std::uint64_t total = 0;
    for (auto &targets : in_adj) {
        total += targets.size();
        _in_graph.offsets.push_back(total);
    }
    _in_graph.targets.reserve(total);
    for (const auto &targets : in_adj)
        _in_graph.targets.insert(_in_graph.targets.end(), targets.begin(),
                                 targets.end());

    // Which peer partitions does each node's rank need to reach? The
    // owners of its out-edge targets.
    _push_mask.assign(n, 0);
    for (std::uint64_t u = 0; u < n; ++u) {
        GpuId owner = ownerOf(u, n, params.num_gpus);
        for (std::uint64_t e = _graph.offsets[u];
             e < _graph.offsets[u + 1]; ++e) {
            GpuId target_owner =
                ownerOf(_graph.targets[e], n, params.num_gpus);
            if (target_owner != owner)
                _push_mask[u] |= static_cast<std::uint8_t>(
                    1u << target_owner);
        }
    }

    _rank.assign(n, 1.0 / static_cast<double>(n));
    _rank_next.assign(n, 0.0);
}

trace::IterationWork
PagerankWorkload::runIteration(std::uint32_t)
{
    const std::uint64_t n = _graph.num_nodes;
    const std::uint32_t gpus = _params.num_gpus;
    const double damping = 0.85;

    trace::IterationWork iter;
    iter.per_gpu.resize(gpus);
    iter.consumed.resize(gpus);

    // --- Pull-style rank update over owned nodes ------------------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [begin, end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];

        std::uint64_t edges = 0;
        for (std::uint64_t u = begin; u < end; ++u) {
            double sum = 0.0;
            for (std::uint64_t e = _in_graph.offsets[u];
                 e < _in_graph.offsets[u + 1]; ++e) {
                std::uint32_t v = _in_graph.targets[e];
                std::uint64_t out_deg = _graph.outDegree(v);
                if (out_deg > 0)
                    sum += _rank[v] / static_cast<double>(out_deg);
            }
            edges += _in_graph.offsets[u + 1] - _in_graph.offsets[u];
            _rank_next[u] =
                (1.0 - damping) / static_cast<double>(n) + damping * sum;
        }

        work.flops = static_cast<double>(edges) * 3.0 +
                     static_cast<double>(end - begin) * 3.0;
        work.local_bytes = edges * 12 + (end - begin) * 24;
    }
    std::swap(_rank, _rank_next);

    // --- Push boundary ranks to the partitions that read them ----------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [begin, end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        // Warp-per-row SpMV: each row's result is stored by lane 0 as a
        // scalar 8 B store as that row's warp completes. Rows complete
        // roughly in order with inter-SM jitter.
        std::uint64_t window = 256;
        std::vector<std::uint64_t> order;
        order.reserve(end - begin);
        for (std::uint64_t u = begin; u < end; ++u)
            if (_push_mask[u])
                order.push_back(u);
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            std::uint64_t span =
                std::min<std::uint64_t>(window, order.size() - i);
            std::size_t j = i + _rng.below(span);
            std::swap(order[i], order[j]);
        }

        for (std::uint64_t u : order) {
            // The kernel only stores ranks that actually changed beyond
            // the convergence tolerance (after the swap, _rank_next
            // still holds the previous iteration's values).
            if (std::abs(_rank[u] - _rank_next[u]) <=
                1e-3 * std::abs(_rank_next[u]))
                continue;
            for (GpuId dst = 0; dst < gpus; ++dst) {
                if (dst == g || !(_push_mask[u] & (1u << dst)))
                    continue;
                stream.scalarWrite(dst, rank_base + u * 8, 8);
            }
        }

        // The memcpy twin cannot tell which boundary ranks have cross
        // edges, so it copies the whole bandwidth-wide boundary block
        // toward each neighbour (over-transfer).
        std::uint64_t bw = std::min<std::uint64_t>(n / 8, end - begin);
        if (g > 0) {
            work.dma_copies.push_back(trace::DmaCopy{
                static_cast<GpuId>(g - 1),
                icn::AddrRange{rank_base + begin * 8, bw * 8}});
        }
        if (g + 1 < gpus) {
            work.dma_copies.push_back(trace::DmaCopy{
                static_cast<GpuId>(g + 1),
                icn::AddrRange{rank_base + (end - bw) * 8, bw * 8}});
        }
    }

    // --- Consumption: a rank value is read by partitions that own one
    //     of its out-edge targets.
    for (std::uint64_t u = 0; u < n; ++u) {
        if (!_push_mask[u])
            continue;
        for (GpuId dst = 0; dst < gpus; ++dst)
            if (_push_mask[u] & (1u << dst))
                iter.consumed[dst].push_back(
                    icn::AddrRange{rank_base + u * 8, 8});
    }

    return iter;
}

double
PagerankWorkload::rankSum() const
{
    double sum = 0.0;
    for (double r : _rank)
        sum += r;
    return sum;
}

} // namespace fp::workloads
