#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/als.hh"
#include "workloads/ct.hh"
#include "workloads/diffusion.hh"
#include "workloads/eqwp.hh"
#include "workloads/hit.hh"
#include "workloads/jacobi.hh"
#include "workloads/pagerank.hh"
#include "workloads/sssp.hh"

namespace fp::workloads {

trace::WorkloadTrace
Workload::generateTrace(const WorkloadParams &params)
{
    setup(params);

    trace::WorkloadTrace trace;
    trace.workload = name();
    trace.comm_pattern = commPattern();
    trace.num_gpus = params.num_gpus;

    std::uint32_t iters = numIterations();
    trace.iterations.reserve(iters);
    trace.single_gpu_work.reserve(iters);
    for (std::uint32_t it = 0; it < iters; ++it) {
        trace::IterationWork iter = runIteration(it);
        fp_assert(iter.per_gpu.size() == params.num_gpus,
                  name(), ": iteration has wrong GPU count");

        // Single-GPU reference: the same total work without
        // communication (perfect locality, one device).
        double flops = 0.0;
        std::uint64_t bytes = 0;
        for (const auto &gpu : iter.per_gpu) {
            flops += gpu.flops;
            bytes += gpu.local_bytes;
        }
        trace.single_gpu_work.emplace_back(flops, bytes);
        trace.iterations.push_back(std::move(iter));
    }
    return trace;
}

std::pair<std::uint64_t, std::uint64_t>
Workload::blockPartition(std::uint64_t n, std::uint32_t parts,
                         std::uint32_t index)
{
    fp_assert(parts > 0 && index < parts, "bad partition request");
    std::uint64_t base = n / parts;
    std::uint64_t extra = n % parts;
    std::uint64_t begin =
        index * base + std::min<std::uint64_t>(index, extra);
    std::uint64_t size = base + (index < extra ? 1 : 0);
    return {begin, begin + size};
}

GpuId
Workload::ownerOf(std::uint64_t i, std::uint64_t n, std::uint32_t parts)
{
    fp_assert(i < n, "element out of range");
    // Invert blockPartition.
    std::uint64_t base = n / parts;
    std::uint64_t extra = n % parts;
    std::uint64_t big = (base + 1) * extra; // elements in oversized parts
    if (i < big)
        return static_cast<GpuId>(i / (base + 1));
    return static_cast<GpuId>(extra + (i - big) / base);
}

std::unique_ptr<Workload>
createWorkload(const std::string &name)
{
    if (name == "jacobi")
        return std::make_unique<JacobiWorkload>();
    if (name == "pagerank")
        return std::make_unique<PagerankWorkload>();
    if (name == "sssp")
        return std::make_unique<SsspWorkload>();
    if (name == "als")
        return std::make_unique<AlsWorkload>();
    if (name == "ct")
        return std::make_unique<CtWorkload>();
    if (name == "eqwp")
        return std::make_unique<EqwpWorkload>();
    if (name == "diffusion")
        return std::make_unique<DiffusionWorkload>();
    if (name == "hit")
        return std::make_unique<HitWorkload>();
    fp_fatal("unknown workload: ", name);
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "jacobi", "pagerank", "sssp", "als",
        "ct",     "eqwp",     "diffusion", "hit",
    };
    return names;
}

} // namespace fp::workloads
