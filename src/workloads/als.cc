#include "workloads/als.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/store_stream.hh"
#include "trace/trace.hh"

namespace fp::workloads {

namespace {

std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

float
AlsWorkload::rating(std::uint64_t e) const
{
    double unit = static_cast<double>(mix(e ^ _params.seed) >> 11) *
                  (1.0 / 9007199254740992.0);
    return static_cast<float>(1.0 + unit * 4.0); // ratings in [1, 5)
}

void
AlsWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    _rng = common::Rng(params.seed);

    auto half = static_cast<std::uint64_t>(32768 * params.scale);
    half = std::max<std::uint64_t>(half, 2048);
    _num_users = half;
    _num_items = half;

    // Rating structure from a geometric graph over the combined id
    // space: spatially nearby users rate spatially nearby items.
    Graph geo = makeGeometricGraph(2 * half, 16, params.seed);
    _edge_user.clear();
    _edge_item.clear();
    for (std::uint64_t a = 0; a < geo.num_nodes; ++a) {
        for (std::uint64_t e = geo.offsets[a]; e < geo.offsets[a + 1];
             ++e) {
            std::uint64_t b = geo.targets[e];
            std::uint64_t user = std::min(a, b) % half;
            std::uint64_t item = std::max(a, b) % half;
            // Real rating matrices mix local taste clusters with
            // popular items rated from everywhere: scramble a third of
            // the items uniformly.
            if (mix(a * 131 + b) % 3 == 0)
                item = mix(item ^ params.seed) % half;
            _edge_user.push_back(static_cast<std::uint32_t>(user));
            _edge_item.push_back(static_cast<std::uint32_t>(item));
        }
    }

    auto build_csr = [&](const std::vector<std::uint32_t> &keys,
                         std::uint64_t n,
                         std::vector<std::uint64_t> &offsets,
                         std::vector<std::uint32_t> &edge_ids) {
        offsets.assign(n + 1, 0);
        for (std::uint32_t k : keys)
            ++offsets[k + 1];
        for (std::uint64_t i = 0; i < n; ++i)
            offsets[i + 1] += offsets[i];
        edge_ids.resize(keys.size());
        std::vector<std::uint64_t> cursor(offsets.begin(),
                                          offsets.end() - 1);
        for (std::uint32_t e = 0;
             e < static_cast<std::uint32_t>(keys.size()); ++e)
            edge_ids[cursor[keys[e]]++] = e;
    };
    build_csr(_edge_user, _num_users, _user_offsets, _user_edges);
    build_csr(_edge_item, _num_items, _item_offsets, _item_edges);

    // Deterministic small initial factors.
    _x.assign(_num_users * rank, 0.0f);
    _y.assign(_num_items * rank, 0.0f);
    for (std::size_t i = 0; i < _x.size(); ++i)
        _x[i] = static_cast<float>(
            0.1 + 0.05 * static_cast<double>(mix(i) % 997) / 997.0);
    for (std::size_t i = 0; i < _y.size(); ++i)
        _y[i] = static_cast<float>(
            0.1 + 0.05 * static_cast<double>(mix(i ^ 0xabcdu) % 997) /
                      997.0);

    // Static consumption sets: GPU dst (updating its items) reads the
    // user rows adjacent to those items, and vice versa.
    const std::uint32_t gpus = params.num_gpus;
    _user_row_readers.assign(gpus, {});
    _item_row_readers.assign(gpus, {});
    for (GpuId dst = 0; dst < gpus; ++dst) {
        trace::IntervalSet user_rows, item_rows;
        auto [ib, ie] = blockPartition(_num_items, gpus, dst);
        for (std::uint64_t i = ib; i < ie; ++i)
            for (std::uint64_t k = _item_offsets[i];
                 k < _item_offsets[i + 1]; ++k)
                user_rows.add(user_base +
                                  static_cast<Addr>(
                                      _edge_user[_item_edges[k]]) *
                                      rank * 4,
                              rank * 4);
        auto [ub, ue] = blockPartition(_num_users, gpus, dst);
        for (std::uint64_t u = ub; u < ue; ++u)
            for (std::uint64_t k = _user_offsets[u];
                 k < _user_offsets[u + 1]; ++k)
                item_rows.add(item_base +
                                  static_cast<Addr>(
                                      _edge_item[_user_edges[k]]) *
                                      rank * 4,
                              rank * 4);
        for (const auto &[lo, hi] : user_rows.intervals())
            _user_row_readers[dst].push_back(
                icn::AddrRange{lo, hi - lo});
        for (const auto &[lo, hi] : item_rows.intervals())
            _item_row_readers[dst].push_back(
                icn::AddrRange{lo, hi - lo});
    }
}

void
AlsWorkload::updateSide(bool users, trace::IterationWork &iter)
{
    const std::uint32_t gpus = _params.num_gpus;
    const float eta = 0.1f;
    const float lambda = 0.05f;

    std::uint64_t n = users ? _num_users : _num_items;
    Addr base = users ? user_base : item_base;
    auto &offsets = users ? _user_offsets : _item_offsets;
    auto &edge_ids = users ? _user_edges : _item_edges;
    auto &other_of_edge = users ? _edge_item : _edge_user;
    auto &mine = users ? _x : _y;
    auto &other = users ? _y : _x;
    auto &readers = users ? _user_row_readers : _item_row_readers;

    for (GpuId g = 0; g < gpus; ++g) {
        auto [begin, end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        std::uint64_t edges = 0;
        // Rows complete roughly in order with inter-SM jitter.
        std::vector<std::uint64_t> order(end - begin);
        for (std::uint64_t r = begin; r < end; ++r)
            order[r - begin] = r;
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            std::uint64_t span =
                std::min<std::uint64_t>(128, order.size() - i);
            std::swap(order[i], order[i + _rng.below(span)]);
        }

        // Changed rows push their factor data in warp-sized batches:
        // each lane stores one row's float4 feature chunk, so remote
        // accesses are isolated 16 B stores at 64 B strides (SoA-style
        // vectorized kernel).
        std::vector<std::uint64_t> push_batch;
        auto flush_push_batch = [&]() {
            if (push_batch.empty())
                return;
            for (GpuId dst = 0; dst < gpus; ++dst) {
                if (dst == g)
                    continue;
                for (std::uint32_t c = 0; c < rank / 4; ++c) {
                    for (std::uint64_t row : push_batch) {
                        Addr row_addr =
                            base + static_cast<Addr>(row) * rank * 4;
                        stream.laneWrite(dst, row_addr + c * 16, 16);
                    }
                    stream.flushWarp();
                }
            }
            push_batch.clear();
        };

        for (std::uint64_t row : order) {
            float *xr = &mine[row * rank];
            float grad[rank] = {};
            for (std::uint64_t k = offsets[row]; k < offsets[row + 1];
                 ++k) {
                std::uint32_t e = edge_ids[k];
                const float *yr = &other[other_of_edge[e] * rank];
                float pred = 0.0f;
                for (std::uint32_t f = 0; f < rank; ++f)
                    pred += xr[f] * yr[f];
                float err = rating(e) - pred;
                for (std::uint32_t f = 0; f < rank; ++f)
                    grad[f] += err * yr[f];
                ++edges;
            }
            // Normalize the gradient by the rating count so the step
            // size is stable regardless of node degree.
            auto deg = static_cast<float>(
                std::max<std::uint64_t>(offsets[row + 1] - offsets[row],
                                        1));
            float delta_sq = 0.0f, norm_sq = 1e-12f;
            for (std::uint32_t f = 0; f < rank; ++f) {
                float step = eta * (grad[f] / deg - lambda * xr[f]);
                delta_sq += step * step;
                norm_sq += xr[f] * xr[f];
                xr[f] += step;
            }

            // Converged rows are not re-pushed; the kernel stores a row
            // only when it moved beyond the tolerance.
            if (delta_sq <= 1e-6f * norm_sq)
                continue;

            push_batch.push_back(row);
            if (push_batch.size() >= 32)
                flush_push_batch();
        }
        flush_push_batch();

        work.flops = static_cast<double>(edges) * rank * 4.0 +
                     static_cast<double>(end - begin) * rank * 3.0;
        // Each rating touches the partner's factor row plus a random
        // rating/index access (cache-line granularity).
        work.local_bytes =
            edges * (rank * 4 + 64) + (end - begin) * rank * 8;

        // The memcpy twin copies the whole owned factor block to every
        // peer at the sub-iteration boundary.
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            work.dma_copies.push_back(trace::DmaCopy{
                dst, icn::AddrRange{base + begin * rank * 4,
                                    (end - begin) * rank * 4}});
        }
    }

    // Updated rows are consumed by the peers whose next sub-iteration
    // reads them (static adjacency-derived sets).
    for (GpuId dst = 0; dst < gpus; ++dst)
        iter.consumed[dst] = readers[dst];
}

trace::IterationWork
AlsWorkload::runIteration(std::uint32_t it)
{
    trace::IterationWork iter;
    iter.per_gpu.resize(_params.num_gpus);
    iter.consumed.resize(_params.num_gpus);
    updateSide(it % 2 == 0, iter);
    return iter;
}

double
AlsWorkload::rmse() const
{
    double sum = 0.0;
    std::uint64_t count = _edge_user.size();
    for (std::uint64_t e = 0; e < count; ++e) {
        const float *xr = &_x[_edge_user[e] * rank];
        const float *yr = &_y[_edge_item[e] * rank];
        float pred = 0.0f;
        for (std::uint32_t f = 0; f < rank; ++f)
            pred += xr[f] * yr[f];
        double err = static_cast<double>(rating(e)) - pred;
        sum += err * err;
    }
    return count ? std::sqrt(sum / static_cast<double>(count)) : 0.0;
}

} // namespace fp::workloads
