/**
 * @file
 * Diffusion (paper Section V, from the Tartan suite): 2-D heat equation
 * plus the inviscid Burgers equation on a regular grid, partitioned by
 * rows. Each iteration performs one explicit time step per field and
 * exchanges one boundary row per neighbour (peer-to-peer pattern); rows
 * are contiguous in memory, so halo stores coalesce to 128 B.
 */

#ifndef FP_WORKLOADS_DIFFUSION_HH
#define FP_WORKLOADS_DIFFUSION_HH

#include <vector>

#include "workloads/workload.hh"

namespace fp::workloads {

class DiffusionWorkload : public Workload
{
  public:
    const char *name() const override { return "diffusion"; }
    const char *commPattern() const override { return "peer-to-peer"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override { return 8; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Sum of the heat field (conserved up to boundary flux). */
    double heatSum() const;

    /** Device-local base of the replicated heat field. */
    static constexpr Addr heat_base = 0x40000000;
    /** Device-local base of the replicated Burgers field. */
    static constexpr Addr burgers_base = 0x48000000;

    std::uint64_t nx() const { return _nx; }
    std::uint64_t ny() const { return _ny; }

  private:
    double &heat(std::uint64_t x, std::uint64_t y)
    { return _heat[y * _nx + x]; }
    double &burgers(std::uint64_t x, std::uint64_t y)
    { return _burgers[y * _nx + x]; }

    std::uint64_t _nx = 0;
    std::uint64_t _ny = 0;
    std::vector<double> _heat, _heat_next;
    std::vector<double> _burgers, _burgers_next;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_DIFFUSION_HH
