#include "workloads/datasets.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace fp::workloads {

namespace {

/** Build CSR from an adjacency list of per-node target vectors. */
Graph
buildCsr(std::vector<std::vector<std::uint32_t>> &adjacency)
{
    Graph graph;
    graph.num_nodes = adjacency.size();
    graph.offsets.reserve(graph.num_nodes + 1);
    graph.offsets.push_back(0);
    std::uint64_t total = 0;
    for (auto &targets : adjacency) {
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
        total += targets.size();
        graph.offsets.push_back(total);
    }
    graph.targets.reserve(total);
    for (const auto &targets : adjacency)
        graph.targets.insert(graph.targets.end(), targets.begin(),
                             targets.end());
    return graph;
}

} // namespace

Graph
makeBandedGraph(std::uint64_t num_nodes, std::uint32_t degree,
                std::uint64_t bandwidth, std::uint64_t seed)
{
    fp_assert(num_nodes > 1, "graph needs nodes");
    fp_assert(bandwidth > 0, "bandwidth must be non-zero");

    common::Rng rng(seed);
    std::vector<std::vector<std::uint32_t>> adjacency(num_nodes);
    for (std::uint64_t u = 0; u < num_nodes; ++u) {
        std::uint64_t lo = u > bandwidth ? u - bandwidth : 0;
        std::uint64_t hi = std::min(num_nodes - 1, u + bandwidth);
        adjacency[u].reserve(degree);
        for (std::uint32_t d = 0; d < degree; ++d) {
            std::uint64_t v = rng.range(lo, hi);
            if (v != u)
                adjacency[u].push_back(static_cast<std::uint32_t>(v));
        }
    }
    return buildCsr(adjacency);
}

Graph
makeWebGraph(std::uint64_t num_nodes, std::uint64_t community_size,
             std::uint32_t intra_degree, std::uint32_t inter_degree,
             std::uint64_t seed)
{
    fp_assert(num_nodes > community_size, "graph smaller than community");
    common::Rng rng(seed);
    std::vector<std::vector<std::uint32_t>> adjacency(num_nodes);

    // Heavy-tailed hub set: a small fraction of nodes attract a large
    // share of the long-range links (web-graph in-degree skew).
    std::uint64_t num_hubs = std::max<std::uint64_t>(num_nodes / 256, 1);

    for (std::uint64_t u = 0; u < num_nodes; ++u) {
        std::uint64_t community = u / community_size;
        std::uint64_t c_lo = community * community_size;
        std::uint64_t c_hi =
            std::min(num_nodes - 1, c_lo + community_size - 1);

        adjacency[u].reserve(intra_degree + inter_degree);
        for (std::uint32_t d = 0; d < intra_degree; ++d) {
            std::uint64_t v = rng.range(c_lo, c_hi);
            if (v != u)
                adjacency[u].push_back(static_cast<std::uint32_t>(v));
        }
        for (std::uint32_t d = 0; d < inter_degree; ++d) {
            // Half the long links target hubs, half are uniform.
            std::uint64_t v = rng.chance(0.5)
                                  ? rng.below(num_hubs) *
                                        (num_nodes / num_hubs)
                                  : rng.below(num_nodes);
            if (v != u && v < num_nodes)
                adjacency[u].push_back(static_cast<std::uint32_t>(v));
        }
    }
    return buildCsr(adjacency);
}

Graph
makeGeometricGraph(std::uint64_t num_nodes, std::uint32_t degree,
                   std::uint64_t seed)
{
    fp_assert(num_nodes > 1, "graph needs nodes");
    common::Rng rng(seed);

    // Nodes ordered along a 1-D space-filling sweep: spatial neighbours
    // have nearby ids (rgg node orderings behave similarly). Connect to
    // ~degree nearby nodes with geometrically decaying distance.
    std::vector<std::vector<std::uint32_t>> adjacency(num_nodes);
    for (std::uint64_t u = 0; u < num_nodes; ++u) {
        adjacency[u].reserve(degree);
        for (std::uint32_t d = 0; d < degree; ++d) {
            // Distance distribution ~ exp: mostly close, some far.
            double r = rng.uniform();
            auto dist = static_cast<std::uint64_t>(
                std::pow(num_nodes / 16.0, r));
            std::uint64_t v;
            if (rng.chance(0.5))
                v = u + dist < num_nodes ? u + dist : u - dist;
            else
                v = u >= dist ? u - dist : u + dist;
            if (v != u && v < num_nodes)
                adjacency[u].push_back(static_cast<std::uint32_t>(v));
        }
    }
    return buildCsr(adjacency);
}

namespace {

/** SplitMix64-style mix for procedural coefficients. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
unitValue(std::uint64_t x)
{
    return static_cast<double>(mix(x) >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace

double
BandedSystem::coeff(std::uint64_t row, std::int64_t band_offset) const
{
    fp_assert(band_offset >= -static_cast<std::int64_t>(half_band) &&
                  band_offset <= static_cast<std::int64_t>(half_band),
              "band offset out of range");
    std::int64_t col = static_cast<std::int64_t>(row) + band_offset;
    if (col < 0 || col >= static_cast<std::int64_t>(n))
        return 0.0;
    if (band_offset == 0) {
        // Diagonal strictly dominates the worst-case off-diagonal sum.
        return static_cast<double>(2 * half_band + 1);
    }
    std::uint64_t key =
        seed ^ (row * 0x100000001b3ull) ^
        static_cast<std::uint64_t>(band_offset + 4096);
    return unitValue(key) * 2.0 - 1.0;
}

double
BandedSystem::rhs(std::uint64_t row) const
{
    return unitValue(seed ^ mix(row)) * 10.0 - 5.0;
}

BandedSystem
makeBandedSystem(std::uint64_t n, std::uint64_t half_band,
                 std::uint64_t seed)
{
    fp_assert(n > 2 * half_band, "system too small for its band");
    return BandedSystem{n, half_band, seed};
}

} // namespace fp::workloads
