/**
 * @file
 * Workload base class and factory.
 *
 * Each workload implements one of the paper's eight evaluation
 * applications (Section V) as an actual algorithm execution on a
 * synthetic dataset: running an iteration advances real algorithm state
 * and emits the remote-store stream a peer-to-peer-store implementation
 * of that program would issue, along with the DMA ranges its memcpy
 * twin would copy and the consumption oracle for byte classification.
 */

#ifndef FP_WORKLOADS_WORKLOAD_HH
#define FP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "gpu/warp_coalescer.hh"
#include "trace/trace.hh"

namespace fp::workloads {

/** Parameters shared by all workloads. */
struct WorkloadParams
{
    std::uint32_t num_gpus = 4;
    /** Problem-size multiplier (1.0 = the default evaluation size). */
    double scale = 1.0;
    std::uint64_t seed = 42;
};

/** Base class for the eight evaluation applications. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;
    /** The paper's Section V communication-pattern label. */
    virtual const char *commPattern() const = 0;

    /** (Re-)initialize datasets and algorithm state. Deterministic. */
    virtual void setup(const WorkloadParams &params) = 0;

    virtual std::uint32_t numIterations() const = 0;

    /**
     * Execute iteration @p it of the algorithm (must be called in
     * order), returning every GPU's compute/communication work.
     */
    virtual trace::IterationWork runIteration(std::uint32_t it) = 0;

    /** Run setup + all iterations into a reusable trace. */
    trace::WorkloadTrace generateTrace(const WorkloadParams &params);

    /** The coalescer accumulating the Figure 4 size histogram. */
    gpu::WarpCoalescer &coalescer() { return _coalescer; }
    const gpu::WarpCoalescer &coalescer() const { return _coalescer; }

    const WorkloadParams &params() const { return _params; }

    /** Contiguous block partition of [0, n) into @p parts pieces. */
    static std::pair<std::uint64_t, std::uint64_t>
    blockPartition(std::uint64_t n, std::uint32_t parts,
                   std::uint32_t index);

    /** The GPU owning element @p i under blockPartition. */
    static GpuId ownerOf(std::uint64_t i, std::uint64_t n,
                         std::uint32_t parts);

  protected:
    WorkloadParams _params;
    gpu::WarpCoalescer _coalescer;
    common::Rng _rng;
};

/** Instantiate a workload by name; fp_fatal on unknown names. */
std::unique_ptr<Workload> createWorkload(const std::string &name);

/** The eight evaluation workloads, in the paper's order. */
const std::vector<std::string> &allWorkloadNames();

} // namespace fp::workloads

#endif // FP_WORKLOADS_WORKLOAD_HH
