/**
 * @file
 * Synthetic dataset generators standing in for the paper's inputs.
 *
 * The evaluation datasets (UF sparse collection cage / indochina / rgg)
 * are substituted by generators of the same structural class, because
 * the properties FinePack responds to - degree skew, bandedness,
 * community locality, geometric locality - are what determine the remote
 * store address streams.
 */

#ifndef FP_WORKLOADS_DATASETS_HH
#define FP_WORKLOADS_DATASETS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace fp::workloads {

/** A directed graph in CSR form. */
struct Graph
{
    std::uint64_t num_nodes = 0;
    /** CSR row offsets, size num_nodes + 1. */
    std::vector<std::uint64_t> offsets;
    /** CSR column indices (edge targets). */
    std::vector<std::uint32_t> targets;

    std::uint64_t numEdges() const { return targets.size(); }

    std::uint64_t outDegree(std::uint64_t node) const
    { return offsets[node + 1] - offsets[node]; }
};

/**
 * A banded graph (cage-matrix-like): node i connects to ~degree random
 * neighbours within |i - j| <= bandwidth. DNA electrophoresis matrices
 * such as cage have exactly this banded sparsity.
 */
Graph makeBandedGraph(std::uint64_t num_nodes, std::uint32_t degree,
                      std::uint64_t bandwidth, std::uint64_t seed);

/**
 * A web-like graph (indochina-like): dense host-local communities plus
 * sparse long-range hyperlinks, with a heavy-tailed in-degree skew.
 */
Graph makeWebGraph(std::uint64_t num_nodes, std::uint64_t community_size,
                   std::uint32_t intra_degree, std::uint32_t inter_degree,
                   std::uint64_t seed);

/**
 * A random geometric graph (rgg-like): nodes on a unit square connect
 * to spatial neighbours; node ids follow a space-filling order so id
 * distance correlates with spatial distance.
 */
Graph makeGeometricGraph(std::uint64_t num_nodes, std::uint32_t degree,
                         std::uint64_t seed);

/**
 * A banded, strictly diagonally dominant linear system A x = b for the
 * Jacobi solver. Row i has non-zeros in [i - half_band, i + half_band].
 *
 * Coefficients are procedural (hash-derived) rather than materialized,
 * so wide bands cost no memory: off-diagonals lie in [-1, 1] and the
 * diagonal is 2*half_band + 1, guaranteeing strict dominance and
 * therefore Jacobi convergence.
 */
struct BandedSystem
{
    std::uint64_t n = 0;
    std::uint64_t half_band = 0;
    std::uint64_t seed = 0;

    /** A(row, row + band_offset); zero outside the matrix. */
    double coeff(std::uint64_t row, std::int64_t band_offset) const;

    /** Right-hand-side entry b[row]. */
    double rhs(std::uint64_t row) const;
};

BandedSystem makeBandedSystem(std::uint64_t n, std::uint64_t half_band,
                              std::uint64_t seed);

} // namespace fp::workloads

#endif // FP_WORKLOADS_DATASETS_HH
