/**
 * @file
 * CT (paper Section V): model-based iterative reconstruction (MBIR).
 * Each GPU back-projects corrections along its share of the projection
 * rays; voxel updates scatter across a large (4 GB address space)
 * replicated volume and are pushed to every peer (all-to-all pattern).
 *
 * Ray-voxel traversal uses Siddon stepping on the full-resolution
 * 1024^3 grid, so the remote store address stream is the real
 * back-projection scatter pattern; many rays progress concurrently
 * (one warp each), so consecutive egress stores belong to different
 * rays in distant volume regions - the minimal spatial locality the
 * paper reports for CT, which makes FinePack's coalescing window
 * thrash and keeps its packets small (Figure 11).
 *
 * Substitution note: correction values are procedural (synthetic
 * sinogram model) rather than accumulated into a materialized 4 GB
 * volume; the traversal geometry, and therefore the traffic, is real.
 */

#ifndef FP_WORKLOADS_CT_HH
#define FP_WORKLOADS_CT_HH

#include <vector>

#include "workloads/workload.hh"

namespace fp::workloads {

class CtWorkload : public Workload
{
  public:
    const char *name() const override { return "ct"; }
    const char *commPattern() const override { return "all-to-all"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override { return 3; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Voxel grid side length (addresses span side^3 * 4 bytes). */
    std::uint64_t side() const { return _side; }

    /** Device-local base of the replicated volume. */
    static constexpr Addr volume_base = 0x100000000ull;
    /** Device-local base of the DMA update-list staging buffers. */
    static constexpr Addr staging_base = 0x40000000;

  private:
    struct Ray
    {
        double origin[3];
        double dir[3];
    };

    /** Siddon-stepped voxel visit list for one ray (voxel indices). */
    std::vector<std::uint64_t> traverse(const Ray &ray,
                                        std::uint32_t max_steps) const;

    Ray makeRay(std::uint32_t iteration, GpuId gpu,
                std::uint32_t ray_idx) const;

    std::uint64_t _side = 1024;
    std::uint32_t _rays_per_gpu = 96;
    std::uint32_t _max_steps = 384;
    std::uint32_t _concurrent_rays = 64;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_CT_HH
