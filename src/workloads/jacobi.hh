/**
 * @file
 * Jacobi iterative solver on a banded, strictly diagonally dominant
 * linear system (paper Section V): the regular workload whose halo
 * stores coalesce into full 128 B cache lines.
 *
 * Rows are block-partitioned; each GPU owns a contiguous slice of x.
 * After computing its slice each iteration, a GPU pushes the half_band
 * boundary values adjacent to each neighbour (peer-to-peer pattern).
 */

#ifndef FP_WORKLOADS_JACOBI_HH
#define FP_WORKLOADS_JACOBI_HH

#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace fp::workloads {

class JacobiWorkload : public Workload
{
  public:
    const char *name() const override { return "jacobi"; }
    const char *commPattern() const override { return "peer-to-peer"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override { return 8; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Residual ||Ax - b||_inf of the current solution estimate. */
    double residual() const;

    /** Device-local base address of the replicated x vector. */
    static constexpr Addr x_base = 0x40000000;

  private:
    BandedSystem _system;
    std::vector<double> _x;
    std::vector<double> _x_next;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_JACOBI_HH
