#include "workloads/eqwp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
EqwpWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    auto base = static_cast<std::uint64_t>(
        128.0 * std::cbrt(params.scale));
    _nx = std::max<std::uint64_t>(base, 32);
    _ny = std::max<std::uint64_t>(base * 5 / 4, 32);
    _nz = std::max<std::uint64_t>(base * 5 / 4, 32);

    _u.assign(_nx * _ny * _nz, 0.0);
    _u_prev.assign(_nx * _ny * _nz, 0.0);
    _u_next.assign(_nx * _ny * _nz, 0.0);

    // A Gaussian source pulse in the domain centre.
    double cx = static_cast<double>(_nx) / 2.0;
    double cy = static_cast<double>(_ny) / 2.0;
    double cz = static_cast<double>(_nz) / 2.0;
    for (std::uint64_t z = 0; z < _nz; ++z) {
        for (std::uint64_t y = 0; y < _ny; ++y) {
            for (std::uint64_t x = 0; x < _nx; ++x) {
                double dx = static_cast<double>(x) - cx;
                double dy = static_cast<double>(y) - cy;
                double dz = static_cast<double>(z) - cz;
                double r2 = dx * dx + dy * dy + dz * dz;
                double v = std::exp(-r2 / 64.0);
                _u[index(x, y, z)] = v;
                _u_prev[index(x, y, z)] = v;
            }
        }
    }
}

double
EqwpWorkload::laplacian4(const std::vector<double> &u, std::uint64_t x,
                         std::uint64_t y, std::uint64_t z) const
{
    // 4th-order central difference weights: -1/12, 4/3, -5/2, 4/3, -1/12
    constexpr double w2 = -1.0 / 12.0, w1 = 4.0 / 3.0, w0 = -5.0 / 2.0;
    auto at = [&](std::int64_t ix, std::int64_t iy, std::int64_t iz) {
        if (ix < 0 || iy < 0 || iz < 0 ||
            ix >= static_cast<std::int64_t>(_nx) ||
            iy >= static_cast<std::int64_t>(_ny) ||
            iz >= static_cast<std::int64_t>(_nz))
            return 0.0;
        return u[index(static_cast<std::uint64_t>(ix),
                       static_cast<std::uint64_t>(iy),
                       static_cast<std::uint64_t>(iz))];
    };
    auto X = static_cast<std::int64_t>(x);
    auto Y = static_cast<std::int64_t>(y);
    auto Z = static_cast<std::int64_t>(z);

    double lap = 3.0 * w0 * at(X, Y, Z);
    lap += w1 * (at(X - 1, Y, Z) + at(X + 1, Y, Z) + at(X, Y - 1, Z) +
                 at(X, Y + 1, Z) + at(X, Y, Z - 1) + at(X, Y, Z + 1));
    lap += w2 * (at(X - 2, Y, Z) + at(X + 2, Y, Z) + at(X, Y - 2, Z) +
                 at(X, Y + 2, Z) + at(X, Y, Z - 2) + at(X, Y, Z + 2));
    return lap;
}

trace::IterationWork
EqwpWorkload::runIteration(std::uint32_t)
{
    const std::uint32_t gpus = _params.num_gpus;
    const double c2dt2 = 0.1; // (c * dt / dx)^2, stable for 4th order

    trace::IterationWork iter;
    iter.per_gpu.resize(gpus);
    iter.consumed.resize(gpus);

    // --- One wave-equation time step, partitioned along x --------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [x_begin, x_end] = blockPartition(_nx, gpus, g);
        auto &work = iter.per_gpu[g];

        for (std::uint64_t z = 0; z < _nz; ++z) {
            for (std::uint64_t y = 0; y < _ny; ++y) {
                for (std::uint64_t x = x_begin; x < x_end; ++x) {
                    std::uint64_t i = index(x, y, z);
                    _u_next[i] = 2.0 * _u[i] - _u_prev[i] +
                                 c2dt2 * laplacian4(_u, x, y, z);
                }
            }
        }

        double cells =
            static_cast<double>((x_end - x_begin) * _ny * _nz);
        work.flops = cells * 2.0 * 16.0; // 13-point stencil + update
        // Stencil kernels block well in cache: ~3 effective touches per
        // cell (two time levels read, one written).
        work.local_bytes = static_cast<std::uint64_t>(cells * 3.0 * 8.0);
    }
    std::swap(_u_prev, _u);
    std::swap(_u, _u_next);

    // --- Two-deep strided halo planes to each neighbour -----------------
    for (GpuId g = 0; g < gpus; ++g) {
        auto [x_begin, x_end] = blockPartition(_nx, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        std::uint64_t plane_elems = _ny * _nz;
        std::uint32_t staging_slot = 0;

        auto push_plane = [&](GpuId dst, std::uint64_t x) {
            // One thread per (y, z) element: addresses stride nx * 8, so
            // no intra-warp coalescing happens (isolated 8 B stores).
            for (std::uint64_t z = 0; z < _nz; ++z) {
                for (std::uint64_t y = 0; y < _ny; ++y) {
                    Addr addr = field_base + index(x, y, z) * 8;
                    stream.laneWrite(dst, addr, 8);
                    // The neighbour reads each halo element.
                    iter.consumed[dst].push_back(
                        icn::AddrRange{addr, 8});
                }
            }
            stream.flushWarp();

            // The memcpy twin packs this plane into a staging buffer at
            // the destination and unpacks it there (extra local traffic
            // on both sides).
            Addr staging = staging_base +
                           (static_cast<Addr>(g) * 8 + staging_slot) *
                               plane_elems * 8;
            ++staging_slot;
            work.dma_copies.push_back(trace::DmaCopy{
                dst, icn::AddrRange{staging, plane_elems * 8}});
            work.dma_extra_local_bytes += plane_elems * 8 * 4;
        };

        if (g > 0) {
            push_plane(g - 1, x_begin);
            push_plane(g - 1, std::min(x_begin + 1, x_end - 1));
        }
        if (g + 1 < gpus) {
            push_plane(g + 1, x_end - 1);
            push_plane(g + 1, x_end >= 2 ? std::max(x_begin, x_end - 2)
                                         : x_begin);
        }
    }

    return iter;
}

double
EqwpWorkload::energy() const
{
    double sum = 0.0;
    for (double v : _u)
        sum += v * v;
    return sum;
}

} // namespace fp::workloads
