/**
 * @file
 * EQWP (paper Section V, from the Tartan suite): 3-D earthquake wave
 * propagation with a 4th-order finite-difference stencil.
 *
 * The domain is partitioned along the unit-stride (x) dimension, so the
 * two-deep halo planes exchanged with neighbours are strided in memory:
 * the peer-to-peer store version emits isolated 8 B stores (no intra-
 * warp coalescing is possible), while the memcpy version must pack the
 * planes into staging buffers before the bulk copy (extra local
 * traffic). Communication pattern: peer-to-peer.
 */

#ifndef FP_WORKLOADS_EQWP_HH
#define FP_WORKLOADS_EQWP_HH

#include <vector>

#include "workloads/workload.hh"

namespace fp::workloads {

class EqwpWorkload : public Workload
{
  public:
    const char *name() const override { return "eqwp"; }
    const char *commPattern() const override { return "peer-to-peer"; }

    void setup(const WorkloadParams &params) override;
    std::uint32_t numIterations() const override { return 6; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Total wavefield energy (for regression checks). */
    double energy() const;

    /** Device-local base of the replicated wavefield. */
    static constexpr Addr field_base = 0x40000000;
    /** Device-local base of the DMA halo staging buffers. */
    static constexpr Addr staging_base = 0x70000000;

    std::uint64_t nx() const { return _nx; }
    std::uint64_t ny() const { return _ny; }
    std::uint64_t nz() const { return _nz; }

  private:
    std::uint64_t index(std::uint64_t x, std::uint64_t y,
                        std::uint64_t z) const
    { return x + _nx * (y + _ny * z); }

    double laplacian4(const std::vector<double> &u, std::uint64_t x,
                      std::uint64_t y, std::uint64_t z) const;

    std::uint64_t _nx = 0, _ny = 0, _nz = 0;
    /** Wavefield at t, t-1. */
    std::vector<double> _u, _u_prev, _u_next;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_EQWP_HH
