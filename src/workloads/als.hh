/**
 * @file
 * ALS (paper Section V): alternating least-squares matrix factorization
 * on a random-geometric-graph rating structure (rgg-like locality).
 *
 * Users and items each hold a rank-16 factor row (64 B). Factor
 * matrices are replicated across GPUs; sub-iterations alternate between
 * updating user rows (items fixed) and item rows (users fixed) with a
 * damped least-squares gradient step. Every updated row is pushed to
 * every peer (all-to-all pattern) as a 64 B coalesced store.
 */

#ifndef FP_WORKLOADS_ALS_HH
#define FP_WORKLOADS_ALS_HH

#include <vector>

#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace fp::workloads {

class AlsWorkload : public Workload
{
  public:
    /** Factor rank: 16 floats = 64 B per row. */
    static constexpr std::uint32_t rank = 16;

    const char *name() const override { return "als"; }
    const char *commPattern() const override { return "all-to-all"; }

    void setup(const WorkloadParams &params) override;
    /** 8 sub-iterations = 4 alternating user/item rounds. */
    std::uint32_t numIterations() const override { return 8; }
    trace::IterationWork runIteration(std::uint32_t it) override;

    /** Root-mean-square rating reconstruction error. */
    double rmse() const;

    /** Rating r(u, i) for rating edge index @p e (procedural). */
    float rating(std::uint64_t e) const;

    /** Device-local bases of the replicated factor matrices. */
    static constexpr Addr user_base = 0x40000000;
    static constexpr Addr item_base = 0x50000000;

    std::uint64_t numUsers() const { return _num_users; }
    std::uint64_t numItems() const { return _num_items; }

  private:
    void updateSide(bool users, trace::IterationWork &iter);

    std::uint64_t _num_users = 0;
    std::uint64_t _num_items = 0;
    /** Rating edges as parallel arrays (user, item). */
    std::vector<std::uint32_t> _edge_user, _edge_item;
    /** CSR over users -> edge ids, and items -> edge ids. */
    std::vector<std::uint64_t> _user_offsets, _item_offsets;
    std::vector<std::uint32_t> _user_edges, _item_edges;
    /** Factor matrices, row-major rank floats per row. */
    std::vector<float> _x, _y;
    /**
     * Static consumption sets: readers_of_user[dst] = merged ranges of
     * user rows GPU dst reads when updating its items (and vice versa).
     */
    std::vector<std::vector<icn::AddrRange>> _user_row_readers;
    std::vector<std::vector<icn::AddrRange>> _item_row_readers;
};

} // namespace fp::workloads

#endif // FP_WORKLOADS_ALS_HH
