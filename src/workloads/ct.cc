#include "workloads/ct.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
CtWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    _rng = common::Rng(params.seed);
    _side = 1024;
    _rays_per_gpu = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(96 * params.scale), 16);
    _max_steps = 384;
    _concurrent_rays = 64;
}

CtWorkload::Ray
CtWorkload::makeRay(std::uint32_t iteration, GpuId gpu,
                    std::uint32_t ray_idx) const
{
    // Projection geometry: a rotating source angle per iteration, with
    // each GPU owning an angular wedge; detector offset per ray.
    double n = static_cast<double>(_side);
    double angle =
        2.0 * M_PI *
        (static_cast<double>(iteration) * 0.37 +
         static_cast<double>(gpu) / 4.0 +
         static_cast<double>(ray_idx) * 0.0021);
    double detector =
        (static_cast<double>(ray_idx % 97) / 97.0 - 0.5) * 0.9;
    double height =
        (static_cast<double>((ray_idx * 31) % 89) / 89.0) * 0.9 + 0.05;

    Ray ray;
    ray.origin[0] = n / 2.0 + std::cos(angle) * n * 0.49 +
                    std::sin(angle) * detector * n;
    ray.origin[1] = n / 2.0 + std::sin(angle) * n * 0.49 -
                    std::cos(angle) * detector * n;
    ray.origin[2] = height * n;
    ray.dir[0] = -std::cos(angle);
    ray.dir[1] = -std::sin(angle);
    ray.dir[2] = (static_cast<double>((ray_idx * 13) % 41) / 41.0 - 0.5) *
                 0.2;
    double len = std::sqrt(ray.dir[0] * ray.dir[0] +
                           ray.dir[1] * ray.dir[1] +
                           ray.dir[2] * ray.dir[2]);
    for (double &d : ray.dir)
        d /= len;
    return ray;
}

std::vector<std::uint64_t>
CtWorkload::traverse(const Ray &ray, std::uint32_t max_steps) const
{
    // Siddon-style incremental traversal: track the parametric distance
    // to the next x/y/z voxel boundary and always cross the nearest.
    std::vector<std::uint64_t> voxels;
    voxels.reserve(max_steps);

    auto n = static_cast<std::int64_t>(_side);
    std::int64_t pos[3];
    double t_next[3], dt[3];
    std::int64_t step[3];

    for (int a = 0; a < 3; ++a) {
        pos[a] = static_cast<std::int64_t>(std::floor(ray.origin[a]));
        if (std::abs(ray.dir[a]) < 1e-12) {
            step[a] = 0;
            dt[a] = 1e30;
            t_next[a] = 1e30;
            continue;
        }
        step[a] = ray.dir[a] > 0 ? 1 : -1;
        dt[a] = std::abs(1.0 / ray.dir[a]);
        double boundary = ray.dir[a] > 0
                              ? std::floor(ray.origin[a]) + 1.0
                              : std::floor(ray.origin[a]);
        t_next[a] = (boundary - ray.origin[a]) / ray.dir[a];
    }

    for (std::uint32_t s = 0; s < max_steps; ++s) {
        if (pos[0] >= 0 && pos[0] < n && pos[1] >= 0 && pos[1] < n &&
            pos[2] >= 0 && pos[2] < n) {
            voxels.push_back(static_cast<std::uint64_t>(
                pos[0] + n * (pos[1] + n * pos[2])));
        }
        int axis = 0;
        if (t_next[1] < t_next[axis])
            axis = 1;
        if (t_next[2] < t_next[axis])
            axis = 2;
        pos[axis] += step[axis];
        t_next[axis] += dt[axis];
        // Stop once the ray has left the volume for good.
        if ((pos[axis] < -1 || pos[axis] > n) && !voxels.empty())
            break;
    }
    return voxels;
}

trace::IterationWork
CtWorkload::runIteration(std::uint32_t it)
{
    const std::uint32_t gpus = _params.num_gpus;

    trace::IterationWork iter;
    iter.per_gpu.resize(gpus);
    iter.consumed.resize(gpus);

    for (GpuId g = 0; g < gpus; ++g) {
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        // Traverse this GPU's rays, then interleave the voxel streams of
        // _concurrent_rays rays round-robin: each ray is processed by
        // its own warp, so egress order mixes distant volume regions.
        std::vector<std::vector<std::uint64_t>> ray_voxels;
        ray_voxels.reserve(_rays_per_gpu);
        std::uint64_t total_steps = 0;
        for (std::uint32_t r = 0; r < _rays_per_gpu; ++r) {
            ray_voxels.push_back(traverse(makeRay(it, g, r), _max_steps));
            total_steps += ray_voxels.back().size();
        }

        // Each ray belongs to one warp; warps advance in bursts of
        // segment_steps voxels before the SM scheduler switches to
        // another ray, so the egress stream interleaves short coherent
        // runs from rays in distant volume regions.
        constexpr std::uint32_t segment_steps = 8;
        std::unordered_set<std::uint64_t> unique_voxels;
        for (std::size_t group = 0; group < ray_voxels.size();
             group += _concurrent_rays) {
            std::size_t group_end = std::min(
                group + _concurrent_rays, ray_voxels.size());
            bool any = true;
            for (std::size_t seg = 0; any; ++seg) {
                any = false;
                std::size_t lo = seg * segment_steps;
                for (std::size_t r = group; r < group_end; ++r) {
                    std::size_t hi = std::min<std::size_t>(
                        lo + segment_steps, ray_voxels[r].size());
                    if (lo >= hi)
                        continue;
                    any = true;
                    for (std::size_t depth = lo; depth < hi; ++depth) {
                        std::uint64_t voxel = ray_voxels[r][depth];
                        unique_voxels.insert(voxel);
                        Addr addr = volume_base + voxel * 4;
                        for (GpuId dst = 0; dst < gpus; ++dst) {
                            if (dst == g)
                                continue;
                            stream.scalarWrite(dst, addr, 4);
                        }
                    }
                }
            }
        }

        // MBIR is compute-heavy: forward model, comparison against the
        // sinogram, and regularized update per visited voxel.
        work.flops = static_cast<double>(total_steps) * 8000.0;
        work.local_bytes = total_steps * 4000;

        // The reconstruction reads every updated voxel in the next
        // forward projection: all unique updates are consumed by all
        // peers.
        std::vector<std::uint64_t> voxels(unique_voxels.begin(),
                                          unique_voxels.end());
        std::sort(voxels.begin(), voxels.end());
        std::vector<icn::AddrRange> ranges;
        ranges.reserve(voxels.size());
        for (std::uint64_t voxel : voxels)
            ranges.push_back(icn::AddrRange{volume_base + voxel * 4, 4});
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            iter.consumed[dst].insert(iter.consumed[dst].end(),
                                      ranges.begin(), ranges.end());
        }

        // The memcpy twin exchanges packed (index, value) update lists:
        // efficient on the wire but requiring pack/unpack kernels.
        std::uint64_t list_bytes = unique_voxels.size() * 8;
        if (list_bytes > 0) {
            for (GpuId dst = 0; dst < gpus; ++dst) {
                if (dst == g)
                    continue;
                Addr staging =
                    staging_base + static_cast<Addr>(g) * 0x1000000;
                work.dma_copies.push_back(trace::DmaCopy{
                    dst, icn::AddrRange{staging, list_bytes}});
            }
            work.dma_extra_local_bytes += list_bytes * 4;
        }
    }

    return iter;
}

} // namespace fp::workloads
