#include "workloads/hit.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "trace/store_stream.hh"

namespace fp::workloads {

void
HitWorkload::setup(const WorkloadParams &params)
{
    _params = params;
    _rng = common::Rng(params.seed);

    _n = 64;
    if (params.scale >= 4.0)
        _n = 128;
    else if (params.scale <= 0.25)
        _n = 32;
    fp_assert(common::isPowerOfTwo(_n), "HIT grid must be a power of two");

    _u.assign(_n * _n * _n, Complex(0.0f, 0.0f));
    _ut.assign(_n * _n * _n, Complex(0.0f, 0.0f));
    _xy_spectral = false;

    // Band-limited random initial velocity field.
    for (std::uint64_t z = 0; z < _n; ++z)
        for (std::uint64_t y = 0; y < _n; ++y)
            for (std::uint64_t x = 0; x < _n; ++x) {
                double phase = 2.0 * M_PI * _rng.uniform();
                double k = 2.0 * M_PI / static_cast<double>(_n);
                double amp =
                    std::sin(3.0 * k * static_cast<double>(x)) *
                    std::cos(2.0 * k * static_cast<double>(y)) *
                    std::sin(k * static_cast<double>(z));
                _u[index(x, y, z)] =
                    Complex(static_cast<float>(amp * std::cos(phase)),
                            static_cast<float>(amp * std::sin(phase)));
            }
}

void
HitWorkload::fftPencil(std::vector<Complex> &data, std::uint64_t base,
                       std::uint64_t stride, bool inverse) const
{
    const std::uint64_t n = _n;
    // Bit-reversal permutation.
    for (std::uint64_t i = 1, j = 0; i < n; ++i) {
        std::uint64_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[base + i * stride], data[base + j * stride]);
    }
    for (std::uint64_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * M_PI / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
        Complex wlen(static_cast<float>(std::cos(angle)),
                     static_cast<float>(std::sin(angle)));
        for (std::uint64_t i = 0; i < n; i += len) {
            Complex w(1.0f, 0.0f);
            for (std::uint64_t k = 0; k < len / 2; ++k) {
                Complex a = data[base + (i + k) * stride];
                Complex b = data[base + (i + k + len / 2) * stride] * w;
                data[base + (i + k) * stride] = a + b;
                data[base + (i + k + len / 2) * stride] = a - b;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        float inv = 1.0f / static_cast<float>(n);
        for (std::uint64_t i = 0; i < n; ++i)
            data[base + i * stride] *= inv;
    }
}

void
HitWorkload::phaseA(trace::IterationWork &iter, bool first_step)
{
    const std::uint32_t gpus = _params.num_gpus;
    const std::uint64_t n = _n;

    for (GpuId g = 0; g < gpus; ++g) {
        auto [z_begin, z_end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        double passes = 0.0;
        if (!first_step) {
            // Return from spectral space: inverse FFT y then x, and a
            // mild upwind nonlinear term on the real part.
            for (std::uint64_t z = z_begin; z < z_end; ++z) {
                for (std::uint64_t x = 0; x < n; ++x)
                    fftPencil(_u, index(x, 0, z), n, true);
                for (std::uint64_t y = 0; y < n; ++y)
                    fftPencil(_u, index(0, y, z), 1, true);
            }
            const float dt = 0.05f;
            for (std::uint64_t z = z_begin; z < z_end; ++z)
                for (std::uint64_t y = 0; y < n; ++y)
                    for (std::uint64_t x = n; x-- > 1;) {
                        Complex &c = _u[index(x, y, z)];
                        Complex l = _u[index(x - 1, y, z)];
                        c -= dt * c.real() * (c - l);
                    }
            passes += 3.0;
        }

        // Forward FFT along x then y for every owned z-plane.
        for (std::uint64_t z = z_begin; z < z_end; ++z) {
            for (std::uint64_t y = 0; y < n; ++y)
                fftPencil(_u, index(0, y, z), 1, false);
            for (std::uint64_t x = 0; x < n; ++x)
                fftPencil(_u, index(x, 0, z), n, false);
        }
        passes += 2.0;
        _xy_spectral = true;

        // All-to-all transpose into x-slabs: remote elements leave as
        // the source sweep reaches them (x innermost), so destination
        // addresses jump by n^2 complex values -> isolated 8 B stores.
        for (std::uint64_t z = z_begin; z < z_end; ++z) {
            for (std::uint64_t y = 0; y < n; ++y) {
                for (std::uint64_t x = 0; x < n; ++x) {
                    GpuId dst = ownerOf(x, n, gpus);
                    Complex v = _u[index(x, y, z)];
                    if (dst == g) {
                        _ut[indexT(x, y, z)] = v;
                    } else {
                        // Peer's transposed replica receives it.
                        stream.laneWrite(
                            dst,
                            transposed_base + indexT(x, y, z) * 8, 8);
                    }
                }
            }
        }
        stream.flushWarp();
        // Functionally complete the transpose for remote elements too
        // (the host model owns the global arrays).
        for (std::uint64_t z = z_begin; z < z_end; ++z)
            for (std::uint64_t y = 0; y < n; ++y)
                for (std::uint64_t x = 0; x < n; ++x)
                    if (ownerOf(x, n, gpus) != g)
                        _ut[indexT(x, y, z)] = _u[index(x, y, z)];

        double slab = static_cast<double>((z_end - z_begin) * n * n);
        // Real turbulence solvers run the pipeline on three velocity
        // components with several spectral products; fold that into the
        // per-pass traffic multiplier.
        work.flops = slab * (passes * 3.0 * 5.0 *
                             std::log2(static_cast<double>(n)) * 6.0);
        work.local_bytes =
            static_cast<std::uint64_t>(slab * passes * 2.5 * 16.0);

        // memcpy twin: pack per-destination contiguous blocks, copy,
        // unpack at the receiver.
        std::uint64_t remote_elems =
            (z_end - z_begin) * n * n * (gpus - 1) / gpus;
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            auto [xb, xe] = blockPartition(n, gpus, dst);
            std::uint64_t block =
                (z_end - z_begin) * n * (xe - xb) * 8;
            Addr staging =
                staging_base + (static_cast<Addr>(g) * gpus + dst) *
                                   0x400000;
            work.dma_copies.push_back(
                trace::DmaCopy{dst, icn::AddrRange{staging, block}});
        }
        work.dma_extra_local_bytes += remote_elems * 8 * 4;

        // Every transposed element is consumed by the z-FFT in phase B.
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            auto [xb, xe] = blockPartition(n, gpus, dst);
            iter.consumed[dst].push_back(icn::AddrRange{
                transposed_base + indexT(xb, 0, 0) * 8,
                (xe - xb) * n * n * 8});
        }
    }
}

void
HitWorkload::phaseB(trace::IterationWork &iter)
{
    const std::uint32_t gpus = _params.num_gpus;
    const std::uint64_t n = _n;
    const float nu_dt = 0.002f; // viscosity * time step

    for (GpuId g = 0; g < gpus; ++g) {
        auto [x_begin, x_end] = blockPartition(n, gpus, g);
        auto &work = iter.per_gpu[g];
        trace::StoreStreamBuilder stream(g, work.remote_stores,
                                         _coalescer);

        // FFT along z (contiguous in the transposed layout), viscous
        // spectral decay, inverse FFT along z.
        for (std::uint64_t x = x_begin; x < x_end; ++x) {
            for (std::uint64_t y = 0; y < n; ++y) {
                std::uint64_t base = indexT(x, y, 0);
                fftPencil(_ut, base, 1, false);
                for (std::uint64_t kz = 0; kz < n; ++kz) {
                    double k = kz <= n / 2
                                   ? static_cast<double>(kz)
                                   : static_cast<double>(n - kz);
                    auto decay = static_cast<float>(
                        std::exp(-nu_dt * k * k));
                    _ut[base + kz] *= decay;
                }
                fftPencil(_ut, base, 1, true);
            }
        }

        // Transpose back to z-slabs.
        for (std::uint64_t x = x_begin; x < x_end; ++x) {
            for (std::uint64_t y = 0; y < n; ++y) {
                for (std::uint64_t z = 0; z < n; ++z) {
                    GpuId dst = ownerOf(z, n, gpus);
                    if (dst == g) {
                        _u[index(x, y, z)] = _ut[indexT(x, y, z)];
                    } else {
                        stream.laneWrite(dst,
                                         field_base + index(x, y, z) * 8,
                                         8);
                    }
                }
            }
        }
        stream.flushWarp();
        for (std::uint64_t x = x_begin; x < x_end; ++x)
            for (std::uint64_t y = 0; y < n; ++y)
                for (std::uint64_t z = 0; z < n; ++z)
                    if (ownerOf(z, n, gpus) != g)
                        _u[index(x, y, z)] = _ut[indexT(x, y, z)];

        double slab = static_cast<double>((x_end - x_begin) * n * n);
        work.flops = slab * (3.0 * 2.0 * 5.0 *
                             std::log2(static_cast<double>(n)) * 6.0);
        work.local_bytes =
            static_cast<std::uint64_t>(slab * 3.0 * 2.5 * 16.0);

        std::uint64_t remote_elems =
            (x_end - x_begin) * n * n * (gpus - 1) / gpus;
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            auto [zb, ze] = blockPartition(n, gpus, dst);
            std::uint64_t block =
                (x_end - x_begin) * n * (ze - zb) * 8;
            Addr staging =
                staging_base + 0x8000000 +
                (static_cast<Addr>(g) * gpus + dst) * 0x400000;
            work.dma_copies.push_back(
                trace::DmaCopy{dst, icn::AddrRange{staging, block}});
        }
        work.dma_extra_local_bytes += remote_elems * 8 * 4;

        // The returned field is consumed by the next step's phase A.
        for (GpuId dst = 0; dst < gpus; ++dst) {
            if (dst == g)
                continue;
            auto [zb, ze] = blockPartition(n, gpus, dst);
            iter.consumed[dst].push_back(icn::AddrRange{
                field_base + index(0, 0, zb) * 8, (ze - zb) * n * n * 8});
        }
    }
}

trace::IterationWork
HitWorkload::runIteration(std::uint32_t it)
{
    trace::IterationWork iter;
    iter.per_gpu.resize(_params.num_gpus);
    iter.consumed.resize(_params.num_gpus);
    if (it % 2 == 0)
        phaseA(iter, it == 0);
    else
        phaseB(iter);
    return iter;
}

double
HitWorkload::energy() const
{
    double sum = 0.0;
    for (const Complex &c : _u)
        sum += static_cast<double>(std::norm(c));
    if (_xy_spectral)
        sum /= static_cast<double>(_n) * static_cast<double>(_n);
    return sum;
}

} // namespace fp::workloads
