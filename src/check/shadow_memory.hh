/**
 * @file
 * Byte-granular shadow memory for protocol verification.
 *
 * A sparse reference image of "which bytes are live and what value was
 * last written to each" under last-writer-wins semantics - the legal
 * outcome of FinePack's overwrite-in-place coalescing under the GPU
 * weak memory model. The protocol oracle keeps one shadow per
 * destination to model the bytes currently buffered in the remote write
 * queue, and one per outstanding flush to model the byte image a
 * packetized transaction must reproduce exactly.
 *
 * Values are optional: timing-only simulations issue stores without
 * payload bytes, in which case the shadow tracks presence (coverage)
 * but not content. Storage is line-block sparse (one block per aligned
 * line actually touched) so large traces stay cheap.
 */

#ifndef FP_CHECK_SHADOW_MEMORY_HH
#define FP_CHECK_SHADOW_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace fp::check {

/** The shadow state of one byte. */
struct ShadowByte
{
    bool present = false;   ///< the byte is live in this shadow
    bool has_value = false; ///< a data-carrying store wrote it
    std::uint8_t value = 0; ///< last written value (when has_value)
};

/** A sparse, byte-granular last-writer-wins memory image. */
class ShadowMemory
{
  public:
    explicit ShadowMemory(std::uint32_t line_bytes = 128);

    /**
     * Record a write of @p size bytes at @p addr. @p data may be null
     * (timing-only store): the bytes become present but valueless, and
     * any previously recorded value is invalidated (the unknown write
     * is the new last writer).
     */
    void write(Addr addr, std::uint32_t size, const std::uint8_t *data);

    /** Is @p addr live in this shadow? */
    bool contains(Addr addr) const;

    /** Full shadow state of one byte (present=false when absent). */
    ShadowByte get(Addr addr) const;

    /** Remove one byte; returns false when it was not present. */
    bool erase(Addr addr);

    /** Number of live bytes. */
    std::uint64_t population() const { return _population; }
    bool empty() const { return _population == 0; }

    /** Drop everything. */
    void clear();

    /**
     * Up to @p max live byte addresses, in ascending order - failure
     * diagnostics use this to show what a buggy path left behind.
     */
    std::vector<Addr> sampleResident(std::size_t max) const;

    std::uint32_t lineBytes() const { return _line_bytes; }

  private:
    struct Line
    {
        std::vector<ShadowByte> bytes;
        std::uint32_t live = 0;
    };

    Addr lineOf(Addr addr) const { return addr & ~Addr{_line_bytes - 1}; }

    std::uint32_t _line_bytes;
    std::unordered_map<Addr, Line> _lines;
    std::uint64_t _population = 0;
};

} // namespace fp::check

#endif // FP_CHECK_SHADOW_MEMORY_HH
