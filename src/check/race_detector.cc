#include "check/race_detector.hh"

#include <map>

#include "common/json.hh"

namespace fp::check {

const char *
RaceConflict::kind() const
{
    return first_write && second_write ? "W/W" : "R/W";
}

void
RaceDetector::waive(std::string glob)
{
    _waivers.push_back(std::move(glob));
}

void
RaceDetector::beginEvent(const common::Event &event)
{
    ++_events_observed;
    Tick when = event.when();
    int priority = event.priority();
    if (_in_batch &&
        (when != _batch_tick || priority != _batch_priority)) {
        analyzeBatch();
        _batch.clear();
    }
    _in_batch = true;
    _batch_tick = when;
    _batch_priority = priority;

    EventRecord record;
    record.sequence = event.sequence();
    record.description = event.description();
    _batch.push_back(std::move(record));
    _event_open = true;
}

void
RaceDetector::endEvent(const common::Event &event)
{
    (void)event;
    _event_open = false;
}

void
RaceDetector::recordAccess(const void *resource, const char *label,
                           bool is_write)
{
    // Accesses outside any event (driver setup, teardown) cannot race
    // on scheduling order; ignore them.
    if (!_event_open || _batch.empty())
        return;
    ++_accesses_recorded;

    // Dedupe within the event: repeated accesses to the same resource
    // by one process() add nothing (a write subsumes a read).
    auto &accesses = _batch.back().accesses;
    for (auto &access : accesses) {
        if (access.resource == resource) {
            access.write |= is_write;
            return;
        }
    }
    accesses.push_back(Access{resource, label, is_write});
}

void
RaceDetector::finish()
{
    if (_in_batch) {
        analyzeBatch();
        _batch.clear();
        _in_batch = false;
    }
}

void
RaceDetector::reset()
{
    _batch.clear();
    _in_batch = false;
    _event_open = false;
    _conflicts.clear();
    _events_observed = 0;
    _accesses_recorded = 0;
    _contended_batches = 0;
    _waived_conflicts = 0;
    _dropped_conflicts = 0;
}

void
RaceDetector::analyzeBatch()
{
    if (_batch.size() < 2)
        return;
    ++_contended_batches;

    // Per-resource: the first writing and first reading event seen, in
    // execution order. One conflict is reported per resource per batch
    // (the first pair) - enough to locate the race without flooding.
    constexpr std::size_t npos = ~std::size_t{0};
    struct ResourceState
    {
        std::size_t writer = npos;
        std::size_t reader = npos;
        const char *label = nullptr;
        bool done = false;
    };
    std::map<const void *, ResourceState> state;

    auto emit = [this](std::size_t first_idx, bool first_write,
                       std::size_t second_idx, bool second_write,
                       const char *label, const void *resource) {
        if (waived(label)) {
            ++_waived_conflicts;
            return;
        }
        if (_conflicts.size() >= max_reported_conflicts) {
            ++_dropped_conflicts;
            return;
        }
        RaceConflict conflict;
        conflict.tick = _batch_tick;
        conflict.priority = _batch_priority;
        conflict.label = label != nullptr ? label : "?";
        conflict.resource = resource;
        conflict.first_event = _batch[first_idx].description;
        conflict.second_event = _batch[second_idx].description;
        conflict.first_sequence = _batch[first_idx].sequence;
        conflict.second_sequence = _batch[second_idx].sequence;
        conflict.first_write = first_write;
        conflict.second_write = second_write;
        _conflicts.push_back(std::move(conflict));
    };

    for (std::size_t e = 0; e < _batch.size(); ++e) {
        for (const Access &access : _batch[e].accesses) {
            ResourceState &rs = state[access.resource];
            if (rs.label == nullptr)
                rs.label = access.label;
            if (rs.done)
                continue;
            if (access.write) {
                if (rs.writer != npos && rs.writer != e) {
                    emit(rs.writer, true, e, true, rs.label,
                         access.resource);
                    rs.done = true;
                } else if (rs.reader != npos &&
                           rs.reader != e) {
                    emit(rs.reader, false, e, true, rs.label,
                         access.resource);
                    rs.done = true;
                } else if (rs.writer == npos) {
                    rs.writer = e;
                }
            } else {
                if (rs.writer != npos && rs.writer != e) {
                    emit(rs.writer, true, e, false, rs.label,
                         access.resource);
                    rs.done = true;
                } else if (rs.reader == npos) {
                    rs.reader = e;
                }
            }
        }
    }
}

bool
RaceDetector::waived(const char *label) const
{
    if (label == nullptr)
        return false;
    for (const std::string &glob : _waivers)
        if (globMatch(glob, label))
            return true;
    return false;
}

bool
RaceDetector::globMatch(const std::string &glob, const std::string &text)
{
    // Iterative '*' matcher with backtracking to the last star.
    std::size_t g = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (g < glob.size() &&
            (glob[g] == text[t] || glob[g] == '?')) {
            ++g;
            ++t;
        } else if (g < glob.size() && glob[g] == '*') {
            star = g++;
            mark = t;
        } else if (star != std::string::npos) {
            g = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (g < glob.size() && glob[g] == '*')
        ++g;
    return g == glob.size();
}

void
RaceDetector::writeReport(std::ostream &os) const
{
    common::JsonWriter json(os);
    json.beginObject();
    json.kv("events_observed", _events_observed);
    json.kv("accesses_recorded", _accesses_recorded);
    json.kv("contended_batches", _contended_batches);
    json.kv("waived_conflicts", _waived_conflicts);
    json.kv("dropped_conflicts", _dropped_conflicts);
    json.key("waivers");
    json.beginArray();
    for (const std::string &glob : _waivers)
        json.value(glob);
    json.endArray();
    json.key("conflicts");
    json.beginArray();
    for (const RaceConflict &conflict : _conflicts) {
        json.beginObject();
        json.kv("tick", conflict.tick);
        json.kv("priority", conflict.priority);
        json.kv("kind", conflict.kind());
        json.kv("resource", conflict.label);
        json.kv("first_event", conflict.first_event);
        json.kv("first_sequence", conflict.first_sequence);
        json.kv("first_write", conflict.first_write);
        json.kv("second_event", conflict.second_event);
        json.kv("second_sequence", conflict.second_sequence);
        json.kv("second_write", conflict.second_write);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace fp::check
