#include "check/protocol_oracle.hh"

#include <algorithm>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::check {

namespace {

/** Render a handful of resident addresses for a failure message. */
std::string
residentSummary(const ShadowMemory &shadow)
{
    std::string out;
    for (Addr addr : shadow.sampleResident(8)) {
        if (!out.empty())
            out += ", ";
        out += std::to_string(addr);
    }
    if (shadow.population() > 8)
        out += ", ...";
    return out;
}

} // namespace

ProtocolOracle::ProtocolOracle(GpuId src,
                               const finepack::FinePackConfig &config)
    : _src(src), _config(config)
{
    _config.validate();
}

ShadowMemory &
ProtocolOracle::pendingFor(GpuId dst)
{
    auto it = _pending.find(dst);
    if (it == _pending.end()) {
        it = _pending.emplace(dst, ShadowMemory(_config.entry_bytes))
                 .first;
    }
    return it->second;
}

void
ProtocolOracle::storeBuffered(GpuId dst, const icn::Store &store)
{
    fp_assert(store.size > 0, "oracle observed a zero-size store");
    fp_assert(store.data.empty() || store.data.size() == store.size,
              "oracle observed a store with inconsistent data size");
    _recorder.write(&pendingFor(dst), "oracle.shadow");
    pendingFor(dst).write(store.addr, store.size,
                          store.data.empty() ? nullptr
                                             : store.data.data());
    ++_stores_recorded;
}

void
ProtocolOracle::windowFlushed(const finepack::FlushedPartition &flushed,
                              finepack::FlushReason reason)
{
    ShadowMemory &pending = pendingFor(flushed.dst);
    _recorder.write(&pending, "oracle.shadow");
    _recorder.write(&_outstanding, "oracle.outstanding");

    ExpectedImage expected;
    expected.window_base = flushed.window_base;
    expected.image = ShadowMemory(_config.entry_bytes);
    expected.packed_store_count = flushed.packed_store_count;

    for (const finepack::QueueEntry &entry : flushed.entries) {
        for (std::uint32_t i = 0; i < entry.mask.size(); ++i) {
            if (!entry.mask.test(i))
                continue;
            Addr addr = entry.line_addr + i;
            ShadowByte ref = pending.get(addr);
            if (!ref.present) {
                fp_panic("oracle: flush (", toString(reason), ") to GPU ",
                         flushed.dst, " carries byte ", addr,
                         " that was never buffered");
            }
            // Last-writer-wins: the entry's merged value must equal the
            // value of the last store that wrote this byte. Data-less
            // (timing-only) stores invalidate the reference value, so
            // only compare when both sides know it.
            if (ref.has_value && entry.has_data &&
                entry.data[i] != ref.value) {
                fp_panic("oracle: flush to GPU ", flushed.dst, " byte ",
                         addr, " has value ",
                         static_cast<unsigned>(entry.data[i]),
                         " but the last writer stored ",
                         static_cast<unsigned>(ref.value));
            }
            if (ref.has_value && entry.has_data)
                ++_value_bytes_verified;
            ++_bytes_verified;
            pending.erase(addr);
            expected.image.write(addr, 1,
                                 entry.has_data && ref.has_value
                                     ? &entry.data[i]
                                     : nullptr);
        }
    }

    _outstanding[flushed.dst].push_back(std::move(expected));
}

void
ProtocolOracle::verifyMessage(const icn::WireMessage &msg)
{
    fp_assert(msg.kind == icn::MessageKind::finepack_packet,
              "oracle can only verify finepack_packet messages");
    fp_assert(msg.src == _src, "oracle attached to the wrong GPU");
    _recorder.write(&_outstanding, "oracle.outstanding");

    auto it = _outstanding.find(msg.dst);
    if (it == _outstanding.end() || it->second.empty()) {
        fp_panic("oracle: GPU ", _src, " emitted a FinePack packet to ",
                 msg.dst, " with no recorded window flush");
    }
    ExpectedImage expected = std::move(it->second.front());
    it->second.pop_front();

    const Addr window_lo = expected.window_base;
    const Addr window_hi = window_lo + _config.addressableRange();
    std::uint64_t data_bytes = 0;

    // Fold the transaction into the run digest in emission order:
    // destination, window geometry, then each sub-packet's placement
    // and data. Schedule-independent runs fold identical sequences.
    _digest.updateU64(msg.dst);
    _digest.updateU64(expected.window_base);
    _digest.updateU64(msg.stores.size());

    for (const icn::Store &store : msg.stores) {
        _digest.updateU64(store.addr);
        _digest.updateU64(store.size);
        if (!store.data.empty())
            _digest.update(store.data.data(), store.data.size());
        // Structural sub-packet checks: the offset must be encodable in
        // the sub-header's offset field and the length in its 10-bit
        // length field.
        if (store.size == 0 ||
            store.size >= (1u << _config.length_bits)) {
            fp_panic("oracle: sub-packet length ", store.size,
                     " does not fit the ", _config.length_bits,
                     "-bit length field");
        }
        if (store.begin() < window_lo || store.end() > window_hi) {
            fp_panic("oracle: sub-packet [", store.begin(), ", ",
                     store.end(), ") escapes the offset window [",
                     window_lo, ", ", window_hi, ")");
        }
        data_bytes += store.size;

        for (std::uint32_t i = 0; i < store.size; ++i) {
            Addr addr = store.addr + i;
            ShadowByte ref = expected.image.get(addr);
            if (!ref.present) {
                fp_panic("oracle: de-packetized byte ", addr,
                         " was not in the flushed image (duplicate "
                         "coverage or offset-encoding bug)");
            }
            if (ref.has_value && !store.data.empty() &&
                store.data[i] != ref.value) {
                fp_panic("oracle: de-packetized byte ", addr,
                         " has value ",
                         static_cast<unsigned>(store.data[i]),
                         " but the source stored ",
                         static_cast<unsigned>(ref.value));
            }
            if (ref.has_value && !store.data.empty())
                ++_value_bytes_verified;
            ++_bytes_verified;
            expected.image.erase(addr);
        }
    }

    if (!expected.image.empty()) {
        fp_panic("oracle: packetization lost ",
                 expected.image.population(),
                 " flushed byte(s) (e.g. ",
                 residentSummary(expected.image), ")");
    }

    // Payload accounting: one sub-header per sub-packet plus the data,
    // DW-padded on the wire, and within the outer payload budget.
    std::uint64_t raw_payload =
        data_bytes + msg.stores.size() * _config.subheader_bytes;
    if (msg.payload_bytes != common::alignUp(raw_payload, 4)) {
        fp_panic("oracle: wire payload ", msg.payload_bytes,
                 " bytes does not match the sub-header geometry (",
                 common::alignUp(raw_payload, 4), " expected)");
    }
    if (raw_payload > _config.max_payload) {
        fp_panic("oracle: transaction payload ", raw_payload,
                 " exceeds the ", _config.max_payload,
                 "-byte outer budget");
    }
    if (msg.data_bytes != data_bytes) {
        fp_panic("oracle: message reports ", msg.data_bytes,
                 " data bytes but carries ", data_bytes);
    }
    if (msg.packed_store_count != expected.packed_store_count) {
        fp_panic("oracle: message folds ", msg.packed_store_count,
                 " stores but the flush buffered ",
                 expected.packed_store_count);
    }

    ++_transactions_verified;
}

void
ProtocolOracle::verifyDrained() const
{
    // Visit destinations in sorted order so a failure always names the
    // lowest offending GPU, independent of hash-map layout.
    std::vector<GpuId> dsts;
    // fp-lint: allow(unordered-iteration) keys are sorted before use
    for (const auto &[dst, pending] : _pending)
        dsts.push_back(dst);
    std::sort(dsts.begin(), dsts.end());
    for (GpuId dst : dsts) {
        const ShadowMemory &pending = _pending.at(dst);
        if (!pending.empty()) {
            fp_panic("oracle: GPU ", _src, " left ", pending.population(),
                     " byte(s) for GPU ", dst,
                     " buffered past the final release (e.g. ",
                     residentSummary(pending), ")");
        }
    }
    dsts.clear();
    // fp-lint: allow(unordered-iteration) keys are sorted before use
    for (const auto &[dst, flushes] : _outstanding)
        dsts.push_back(dst);
    std::sort(dsts.begin(), dsts.end());
    for (GpuId dst : dsts) {
        const auto &flushes = _outstanding.at(dst);
        if (!flushes.empty()) {
            fp_panic("oracle: GPU ", _src, " flushed ", flushes.size(),
                     " window(s) for GPU ", dst,
                     " that never packetized");
        }
    }
}

} // namespace fp::check
