/**
 * @file
 * The shadow-memory protocol oracle (correctness tooling).
 *
 * FinePack's correctness claim (paper Section IV-B) is that the
 * de-packetizer reconstructs *exactly* the bytes the source GPU stored,
 * under weak-memory overwrite-in-place coalescing and sub-header
 * splitting. The oracle verifies this end-to-end against a byte-granular
 * reference model:
 *
 *  1. As an RwqObserver it replays, in causal order, every store the
 *     remote write queue buffers into a per-destination ShadowMemory
 *     (the last-writer-wins image of the bytes currently queued).
 *  2. When a window flushes, the captured entries are checked against
 *     that pending image byte-for-byte - a lost byte, a stale value
 *     (wrong-writer-wins), or a phantom byte fails immediately - and
 *     the flushed image is stashed as the expected outcome of the
 *     transaction about to be packetized.
 *  3. When the packetized wire message is emitted, its disaggregated
 *     stores must reproduce the stashed image exactly: full coverage,
 *     no byte twice, correct values, every sub-packet inside the
 *     window's offset range, and the payload accounting consistent
 *     with the sub-header geometry. This catches sub-packet splitting,
 *     offset-encoding, and byte-enable bugs that component tests miss.
 *  4. At end of run, verifyDrained() asserts nothing was left behind.
 *
 * Violations panic (SimError under tests). The oracle is runtime-
 * attached - it works in any build type and costs nothing when absent.
 */

#ifndef FP_CHECK_PROTOCOL_ORACLE_HH
#define FP_CHECK_PROTOCOL_ORACLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "check/digest.hh"
#include "check/shadow_memory.hh"
#include "common/event_queue.hh"
#include "finepack/config.hh"
#include "finepack/remote_write_queue.hh"
#include "interconnect/message.hh"

namespace fp::check {

/** Byte-exact reference model for one source GPU's FinePack egress. */
class ProtocolOracle : public finepack::RwqObserver
{
  public:
    ProtocolOracle(GpuId src, const finepack::FinePackConfig &config);

    // ---- RwqObserver hooks (causal order, driven by the queue) -------
    void storeBuffered(GpuId dst, const icn::Store &store) override;
    void windowFlushed(const finepack::FlushedPartition &flushed,
                       finepack::FlushReason reason) override;

    /**
     * Verify one emitted finepack_packet wire message against the
     * oldest outstanding flush for its destination (flushes packetize
     * in FIFO order). Panics on any byte-level or structural mismatch.
     */
    FP_COLD void verifyMessage(const icn::WireMessage &msg);

    /**
     * End-of-run check: every buffered byte must have flushed and every
     * flush must have packetized.
     */
    void verifyDrained() const;

    GpuId src() const { return _src; }

    /**
     * Declare the oracle's shadow-memory mutations to the determinism
     * tooling (see docs/determinism.md). The default-constructed
     * recorder is inert; the driver installs a live one when a race
     * detector observes the run.
     */
    void setAccessRecorder(common::AccessRecorder recorder)
    { _recorder = recorder; }

    // ---- Statistics ---------------------------------------------------
    /** Stores replayed into the reference model. */
    std::uint64_t storesRecorded() const { return _stores_recorded; }
    /** Wire messages verified end-to-end. */
    std::uint64_t transactionsVerified() const
    { return _transactions_verified; }
    /** Bytes whose coverage was verified (flush + packetize sides). */
    std::uint64_t bytesVerified() const { return _bytes_verified; }
    /** Subset of bytesVerified() with data present on both sides. */
    std::uint64_t valueBytesVerified() const
    { return _value_bytes_verified; }

    /**
     * Order-sensitive fingerprint of every verified transaction
     * (destination, window base, sub-packet geometry, and data bytes),
     * folded in emission order. Two runs of the same trace that
     * packetize the same transactions in the same order - the
     * schedule-independence `fptrace racecheck` proves - produce
     * identical digests.
     */
    std::uint64_t digest() const { return _digest.value(); }

  private:
    /** The byte image one flushed window must packetize into. */
    struct ExpectedImage
    {
        Addr window_base = 0;
        ShadowMemory image;
        std::uint64_t packed_store_count = 0;
    };

    ShadowMemory &pendingFor(GpuId dst);

    GpuId _src;
    finepack::FinePackConfig _config;

    /** Bytes currently buffered in the RWQ, per destination. */
    std::unordered_map<GpuId, ShadowMemory> _pending;
    /** Flushed-but-not-yet-packetized images, per destination. */
    std::unordered_map<GpuId, std::deque<ExpectedImage>> _outstanding;

    std::uint64_t _stores_recorded = 0;
    std::uint64_t _transactions_verified = 0;
    std::uint64_t _bytes_verified = 0;
    std::uint64_t _value_bytes_verified = 0;
    Digest _digest;
    common::AccessRecorder _recorder;
};

} // namespace fp::check

#endif // FP_CHECK_PROTOCOL_ORACLE_HH
