/**
 * @file
 * A tiny running digest for determinism comparisons.
 *
 * The schedule-perturbation harness (`fptrace racecheck`) re-runs a
 * trace under permuted same-tick event orders and must decide whether
 * two runs behaved identically. It compares digests: the protocol
 * oracle folds every verified transaction into one, and the CLI folds
 * the exported stats JSON and the RunResult fields into others. FNV-1a
 * (64-bit) is used because it is order-sensitive, platform-independent,
 * and trivially incremental - this is a fingerprint for equality
 * checking, not a cryptographic hash.
 */

#ifndef FP_CHECK_DIGEST_HH
#define FP_CHECK_DIGEST_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fp::check {

/** Incremental FNV-1a 64-bit digest. */
class Digest
{
  public:
    std::uint64_t value() const { return _hash; }

    void
    updateByte(std::uint8_t byte)
    {
        _hash ^= byte;
        _hash *= 0x100000001b3ull;
    }

    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < size; ++i)
            updateByte(bytes[i]);
    }

    /** Fold a 64-bit value in little-endian byte order (portable). */
    void
    updateU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            updateByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void update(std::string_view s) { update(s.data(), s.size()); }

  private:
    std::uint64_t _hash = 0xcbf29ce484222325ull;
};

} // namespace fp::check

#endif // FP_CHECK_DIGEST_HH
