/**
 * @file
 * The same-tick race detector (determinism tooling).
 *
 * The event queue's only ordering guarantee for two events at the same
 * (tick, priority) is insertion order - a tie-break, not a contract.
 * Any two such events whose handlers touch the same logical state with
 * at least one writer produce a result that depends on *scheduling
 * order alone*: the exact class of silent nondeterminism that makes
 * fine-grained traffic measurements untrustworthy and refactors of the
 * hot paths hazardous.
 *
 * The detector implements common::EventQueueObserver. Components
 * declare their logical accesses through common::AccessRecorder; the
 * detector batches declarations per (tick, priority) group and flags
 * every conflicting pair (W/W or R/W) between *different* events in
 * the same group. Accesses by the same event never conflict (a single
 * process() is atomic in simulated time), and groups at different
 * ticks or priorities are ordered by construction.
 *
 * Known-commutative resources (e.g. FIFO arbitration whose aggregate
 * outcome is order-insensitive) can be waived by label glob; waived
 * conflicts are counted but not reported as failures. The dynamic
 * complement - proving the waiver sound - is the schedule-perturbation
 * harness (`fptrace racecheck`), which re-runs the trace under shuffled
 * tie-breaks and diffs oracle and stats digests.
 */

#ifndef FP_CHECK_RACE_DETECTOR_HH
#define FP_CHECK_RACE_DETECTOR_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"

namespace fp::check {

/** One detected same-(tick, priority) access conflict. */
struct RaceConflict
{
    Tick tick = 0;
    int priority = 0;
    /** Label of the conflicted resource (as declared by the accessor). */
    std::string label;
    /** Identity of the conflicted resource (stable address). */
    const void *resource = nullptr;
    /** Descriptions of the two racing events, in execution order. */
    std::string first_event;
    std::string second_event;
    /** Scheduling sequence numbers of the two events. */
    std::uint64_t first_sequence = 0;
    std::uint64_t second_sequence = 0;
    /** Access modes: true = write. W/W or R/W by construction. */
    bool first_write = false;
    bool second_write = false;

    /** "W/W" or "R/W" (reads never conflict with reads). */
    const char *kind() const;
};

/** Flags insertion-order-dependent outcomes; see file comment. */
class RaceDetector : public common::EventQueueObserver
{
  public:
    RaceDetector() = default;

    /**
     * Waive conflicts on resources whose label matches @p glob
     * ('*' matches any run of characters). Waived conflicts are
     * counted in waivedConflicts() but kept out of conflicts().
     */
    void waive(std::string glob);

    /** Globs registered via waive(), in registration order. */
    const std::vector<std::string> &waivers() const { return _waivers; }

    // ---- EventQueueObserver --------------------------------------------
    void beginEvent(const common::Event &event) override;
    void endEvent(const common::Event &event) override;
    void recordAccess(const void *resource, const char *label,
                      bool is_write) override;
    /** The detector consumes logical accesses (see AccessRecorder). */
    bool wantsAccesses() const override { return true; }

    /**
     * Analyze the trailing batch. Call after the run completes (the
     * observer only closes a batch when the next one opens).
     */
    void finish();

    /** Unwaived conflicts, in detection order (capped; see dropped). */
    const std::vector<RaceConflict> &conflicts() const
    { return _conflicts; }

    std::uint64_t eventsObserved() const { return _events_observed; }
    std::uint64_t accessesRecorded() const { return _accesses_recorded; }
    /** Same-(tick, priority) groups with more than one event. */
    std::uint64_t contendedBatches() const { return _contended_batches; }
    std::uint64_t waivedConflicts() const { return _waived_conflicts; }
    /** Unwaived conflicts beyond the report cap (counted, not kept). */
    std::uint64_t droppedConflicts() const { return _dropped_conflicts; }

    /** Reset all batches, conflicts, and counters (waivers persist). */
    void reset();

    /**
     * Serialize the detection summary and conflict list as one JSON
     * object (schema documented in docs/determinism.md).
     */
    void writeReport(std::ostream &os) const;

    /** '*'-glob match, exposed for tests and the CLI's waiver check. */
    static bool globMatch(const std::string &glob,
                          const std::string &text);

  private:
    struct Access
    {
        const void *resource;
        const char *label;
        bool write;
    };

    struct EventRecord
    {
        std::uint64_t sequence = 0;
        std::string description;
        std::vector<Access> accesses;
    };

    /** At most this many conflicts are retained for the report. */
    static constexpr std::size_t max_reported_conflicts = 256;

    void analyzeBatch();
    bool waived(const char *label) const;

    Tick _batch_tick = 0;
    int _batch_priority = 0;
    bool _in_batch = false;
    std::vector<EventRecord> _batch;
    bool _event_open = false;

    std::vector<RaceConflict> _conflicts;
    std::vector<std::string> _waivers;

    std::uint64_t _events_observed = 0;
    std::uint64_t _accesses_recorded = 0;
    std::uint64_t _contended_batches = 0;
    std::uint64_t _waived_conflicts = 0;
    std::uint64_t _dropped_conflicts = 0;
};

} // namespace fp::check

#endif // FP_CHECK_RACE_DETECTOR_HH
