/**
 * @file
 * The invariant registry and the FP_INVARIANT macro.
 *
 * FP_INVARIANT states a structural property of the simulator that must
 * hold on every execution ("the payload accounting matches the entries",
 * "no event is scheduled in the past"). Unlike fp_assert - which guards
 * narrow local preconditions and is always compiled in - invariants may
 * be arbitrarily expensive to evaluate (walking a whole window's
 * entries), so they compile to nothing unless FP_CHECK_ENABLED is
 * defined (the FP_CHECK CMake option, default ON in Debug builds).
 *
 * Every evaluation is counted in the InvariantRegistry under the
 * invariant's name, so tests can assert that a code path actually
 * exercised the checks it claims to be covered by. A violation panics
 * through the normal logging machinery (SimError in tests, abort in
 * standalone binaries).
 *
 * This header is deliberately header-only: fp_common (the event queue)
 * uses FP_INVARIANT, and the check library links against fp_common, so
 * an out-of-line registry would create a library cycle.
 */

#ifndef FP_CHECK_INVARIANT_HH
#define FP_CHECK_INVARIANT_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/sync.h"

namespace fp::check {

/**
 * Thrown (when exceptions are enabled) on FP_INVARIANT violation: a
 * SimError carrying the violated invariant's registry name, so the CLI
 * can map it to the dedicated exit code (common::exit_code::invariant)
 * and tests can assert *which* invariant tripped. With exceptions
 * disabled the process instead _Exit()s with that code directly --
 * either way an invariant trip is distinguishable from a generic panic
 * by exit status alone (docs/run_health.md).
 */
class InvariantViolation : public common::SimError
{
  public:
    InvariantViolation(const char *name, const std::string &message)
        : SimError(Kind::Panic, message), _name(name)
    {}

    /** The registry name of the violated invariant (string literal). */
    const char *invariantName() const { return _name; }

  private:
    const char *_name;
};

/** True when FP_INVARIANT checks are compiled into this build. */
#ifdef FP_CHECK_ENABLED
inline constexpr bool invariants_enabled = true;
#else
inline constexpr bool invariants_enabled = false;
#endif

/**
 * Counts invariant evaluations per name; a process-wide singleton so the
 * macro can record from any translation unit without plumbing. All
 * counters are guarded by an internal fp::Mutex: concurrent simulations
 * (the parallel sweep runner) record checks from every worker thread.
 */
class InvariantRegistry
{
  public:
    /**
     * Observation hook fired after every recordCheck() (outside the
     * registry lock): the flight recorder logs invariant names as they
     * are evaluated so a post-mortem shows which checks the simulator
     * was running when it died. One slot, process-wide.
     */
    using CheckHook = void (*)(void *arg, const char *name);
    /**
     * Context hook consulted on failure (outside the lock): returns a
     * fragment like " while executing 'link.deliver' at tick 1234"
     * appended to the failure message -- the registry knows *what*
     * failed, the flight recorder knows what the simulator was doing.
     */
    using ContextHook = std::string (*)(void *arg);

    static InvariantRegistry &
    instance()
    {
        // All counters are FP_GUARDED_BY the registry's fp::Mutex.
        // fp-lint: allow(global-state) internally synchronized
        static InvariantRegistry registry;
        return registry;
    }

    void
    recordCheck(const char *name) FP_EXCLUDES(_mu)
    {
        CheckHook hook;
        void *arg;
        {
            fp::MutexLock lock(_mu);
            ++_counts[name];
            ++_total;
            hook = _check_hook;
            arg = _check_arg;
        }
        if (hook)
            hook(arg, name);
    }

    [[noreturn]] void
    fail(const char *name, const char *file, int line,
         const std::string &message) FP_EXCLUDES(_mu)
    {
        ContextHook context;
        void *context_arg;
        {
            fp::MutexLock lock(_mu);
            ++_failures;
            context = _context_hook;
            context_arg = _context_arg;
        }
        std::string full =
            std::string("panic: [") + name + "] " + message;
        if (context)
            full += context(context_arg);
        full += std::string(" @ ") + file + ":" + std::to_string(line);
        // Same post-mortem path as fp_panic (the run-health layer's
        // failure hook), then the invariant-specific exit discipline.
        common::detail::invokeFailureHook(full.c_str());
        if (common::exceptionsEnabled())
            throw InvariantViolation(name, full);
        std::fputs(full.c_str(), stderr);
        std::fputc('\n', stderr);
        std::_Exit(common::exit_code::invariant);
    }

    /** Install/clear the per-evaluation hook (nullptr clears). */
    void
    setCheckHook(CheckHook hook, void *arg) FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        _check_hook = hook;
        _check_arg = arg;
    }

    /** Install/clear the failure-context hook (nullptr clears). */
    void
    setContextHook(ContextHook hook, void *arg) FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        _context_hook = hook;
        _context_arg = arg;
    }

    /** Evaluations of one named invariant since the last reset. */
    std::uint64_t
    checks(const std::string &name) const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        auto it = _counts.find(name);
        return it == _counts.end() ? 0 : it->second;
    }

    std::uint64_t
    totalChecks() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _total;
    }

    std::uint64_t
    failures() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _failures;
    }

    /** Snapshot of the names seen so far with their evaluation counts. */
    std::map<std::string, std::uint64_t>
    counts() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _counts;
    }

    /** Clear all counters (tests isolate themselves with this). */
    void
    reset() FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        _counts.clear();
        _total = 0;
        _failures = 0;
    }

  private:
    InvariantRegistry() = default;

    mutable fp::Mutex _mu;
    std::map<std::string, std::uint64_t> _counts FP_GUARDED_BY(_mu);
    std::uint64_t _total FP_GUARDED_BY(_mu) = 0;
    std::uint64_t _failures FP_GUARDED_BY(_mu) = 0;
    CheckHook _check_hook FP_GUARDED_BY(_mu) = nullptr;
    void *_check_arg FP_GUARDED_BY(_mu) = nullptr;
    ContextHook _context_hook FP_GUARDED_BY(_mu) = nullptr;
    void *_context_arg FP_GUARDED_BY(_mu) = nullptr;
};

} // namespace fp::check

/**
 * Assert a named simulator-wide invariant. @p name must be a string
 * literal (it doubles as the registry key); the remaining arguments
 * stream into the failure message. Compiled out (while still
 * type-checked, so both configurations keep building) unless
 * FP_CHECK_ENABLED is defined.
 */
#ifdef FP_CHECK_ENABLED
#define FP_INVARIANT(cond, name, ...)                                        \
    do {                                                                     \
        ::fp::check::InvariantRegistry::instance().recordCheck(name);        \
        if (!(cond)) {                                                       \
            ::fp::check::InvariantRegistry::instance().fail(                 \
                name, __FILE__, __LINE__,                                    \
                ::fp::common::detail::formatMessage(                         \
                    "invariant '" #cond "' violated"                         \
                    __VA_OPT__(": ", ) __VA_ARGS__));                        \
        }                                                                    \
    } while (0)
#else
#define FP_INVARIANT(cond, name, ...)                                        \
    do {                                                                     \
        if (false && !(cond)) {                                              \
            (void)::fp::common::detail::formatMessage(                       \
                name __VA_OPT__(, ) __VA_ARGS__);                            \
        }                                                                    \
    } while (0)
#endif

#endif // FP_CHECK_INVARIANT_HH
