/**
 * @file
 * The invariant registry and the FP_INVARIANT macro.
 *
 * FP_INVARIANT states a structural property of the simulator that must
 * hold on every execution ("the payload accounting matches the entries",
 * "no event is scheduled in the past"). Unlike fp_assert - which guards
 * narrow local preconditions and is always compiled in - invariants may
 * be arbitrarily expensive to evaluate (walking a whole window's
 * entries), so they compile to nothing unless FP_CHECK_ENABLED is
 * defined (the FP_CHECK CMake option, default ON in Debug builds).
 *
 * Every evaluation is counted in the InvariantRegistry under the
 * invariant's name, so tests can assert that a code path actually
 * exercised the checks it claims to be covered by. A violation panics
 * through the normal logging machinery (SimError in tests, abort in
 * standalone binaries).
 *
 * This header is deliberately header-only: fp_common (the event queue)
 * uses FP_INVARIANT, and the check library links against fp_common, so
 * an out-of-line registry would create a library cycle.
 */

#ifndef FP_CHECK_INVARIANT_HH
#define FP_CHECK_INVARIANT_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/sync.h"

namespace fp::check {

/** True when FP_INVARIANT checks are compiled into this build. */
#ifdef FP_CHECK_ENABLED
inline constexpr bool invariants_enabled = true;
#else
inline constexpr bool invariants_enabled = false;
#endif

/**
 * Counts invariant evaluations per name; a process-wide singleton so the
 * macro can record from any translation unit without plumbing. All
 * counters are guarded by an internal fp::Mutex: concurrent simulations
 * (the parallel sweep runner) record checks from every worker thread.
 */
class InvariantRegistry
{
  public:
    static InvariantRegistry &
    instance()
    {
        // All counters are FP_GUARDED_BY the registry's fp::Mutex.
        // fp-lint: allow(global-state) internally synchronized
        static InvariantRegistry registry;
        return registry;
    }

    void
    recordCheck(const char *name) FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        ++_counts[name];
        ++_total;
    }

    [[noreturn]] void
    fail(const char *name, const char *file, int line,
         const std::string &message) FP_EXCLUDES(_mu)
    {
        {
            fp::MutexLock lock(_mu);
            ++_failures;
        }
        common::detail::panicImpl(file, line,
                                  std::string("[") + name + "] " + message);
    }

    /** Evaluations of one named invariant since the last reset. */
    std::uint64_t
    checks(const std::string &name) const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        auto it = _counts.find(name);
        return it == _counts.end() ? 0 : it->second;
    }

    std::uint64_t
    totalChecks() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _total;
    }

    std::uint64_t
    failures() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _failures;
    }

    /** Snapshot of the names seen so far with their evaluation counts. */
    std::map<std::string, std::uint64_t>
    counts() const FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        return _counts;
    }

    /** Clear all counters (tests isolate themselves with this). */
    void
    reset() FP_EXCLUDES(_mu)
    {
        fp::MutexLock lock(_mu);
        _counts.clear();
        _total = 0;
        _failures = 0;
    }

  private:
    InvariantRegistry() = default;

    mutable fp::Mutex _mu;
    std::map<std::string, std::uint64_t> _counts FP_GUARDED_BY(_mu);
    std::uint64_t _total FP_GUARDED_BY(_mu) = 0;
    std::uint64_t _failures FP_GUARDED_BY(_mu) = 0;
};

} // namespace fp::check

/**
 * Assert a named simulator-wide invariant. @p name must be a string
 * literal (it doubles as the registry key); the remaining arguments
 * stream into the failure message. Compiled out (while still
 * type-checked, so both configurations keep building) unless
 * FP_CHECK_ENABLED is defined.
 */
#ifdef FP_CHECK_ENABLED
#define FP_INVARIANT(cond, name, ...)                                        \
    do {                                                                     \
        ::fp::check::InvariantRegistry::instance().recordCheck(name);        \
        if (!(cond)) {                                                       \
            ::fp::check::InvariantRegistry::instance().fail(                 \
                name, __FILE__, __LINE__,                                    \
                ::fp::common::detail::formatMessage(                         \
                    "invariant '" #cond "' violated"                         \
                    __VA_OPT__(": ", ) __VA_ARGS__));                        \
        }                                                                    \
    } while (0)
#else
#define FP_INVARIANT(cond, name, ...)                                        \
    do {                                                                     \
        if (false && !(cond)) {                                              \
            (void)::fp::common::detail::formatMessage(                       \
                name __VA_OPT__(, ) __VA_ARGS__);                            \
        }                                                                    \
    } while (0)
#endif

#endif // FP_CHECK_INVARIANT_HH
