#include "check/shadow_memory.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::check {

ShadowMemory::ShadowMemory(std::uint32_t line_bytes)
    : _line_bytes(line_bytes)
{
    fp_assert(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
              "shadow line size must be a power of two: ", line_bytes);
}

void
ShadowMemory::write(Addr addr, std::uint32_t size, const std::uint8_t *data)
{
    for (std::uint32_t i = 0; i < size; ++i) {
        Addr byte_addr = addr + i;
        Line &line = _lines[lineOf(byte_addr)];
        if (line.bytes.empty())
            line.bytes.resize(_line_bytes);

        ShadowByte &byte =
            line.bytes[static_cast<std::size_t>(byte_addr -
                                                lineOf(byte_addr))];
        if (!byte.present) {
            byte.present = true;
            ++line.live;
            ++_population;
        }
        byte.has_value = data != nullptr;
        byte.value = data ? data[i] : 0;
    }
}

bool
ShadowMemory::contains(Addr addr) const
{
    return get(addr).present;
}

ShadowByte
ShadowMemory::get(Addr addr) const
{
    auto it = _lines.find(lineOf(addr));
    if (it == _lines.end())
        return {};
    return it->second.bytes[static_cast<std::size_t>(addr - it->first)];
}

bool
ShadowMemory::erase(Addr addr)
{
    auto it = _lines.find(lineOf(addr));
    if (it == _lines.end())
        return false;
    ShadowByte &byte =
        it->second.bytes[static_cast<std::size_t>(addr - it->first)];
    if (!byte.present)
        return false;
    byte = ShadowByte{};
    --_population;
    if (--it->second.live == 0)
        _lines.erase(it);
    return true;
}

void
ShadowMemory::clear()
{
    _lines.clear();
    _population = 0;
}

std::vector<Addr>
ShadowMemory::sampleResident(std::size_t max) const
{
    std::vector<Addr> line_addrs;
    line_addrs.reserve(_lines.size());
    // fp-lint: allow(unordered-iteration) keys are sorted before use
    for (const auto &[line_addr, line] : _lines)
        line_addrs.push_back(line_addr);
    std::sort(line_addrs.begin(), line_addrs.end());

    std::vector<Addr> result;
    for (Addr line_addr : line_addrs) {
        const Line &line = _lines.at(line_addr);
        for (std::uint32_t i = 0; i < _line_bytes; ++i) {
            if (!line.bytes[i].present)
                continue;
            result.push_back(line_addr + i);
            if (result.size() >= max)
                return result;
        }
    }
    return result;
}

} // namespace fp::check
