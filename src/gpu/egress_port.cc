#include "gpu/egress_port.hh"

#include <algorithm>

#include "check/invariant.hh"
#include "check/protocol_oracle.hh"
#include "common/bitutil.hh"
#include "obs/flight_recorder.hh"

namespace fp::gpu {

namespace {

/**
 * Adapts the remote write queue's causal observer stream onto trace
 * instants on the owning GPU's rwq lane. Flush events always record
 * (with the trigger reason as the event name); per-store enqueue and
 * overwrite-in-place instants only fire at full detail.
 */
class RwqTraceAdapter : public finepack::RwqObserver
{
  public:
    RwqTraceAdapter(obs::TraceSink &sink, const common::EventQueue &queue,
                    std::uint32_t pid)
        : _sink(sink), _queue(queue), _pid(pid)
    {}

    void
    storeBuffered(GpuId dst, const icn::Store &store) override
    {
        if (!_sink.full())
            return;
        _sink.instant(_pid, obs::lane_rwq, "enqueue", "rwq",
                      _queue.now(),
                      {"dst", static_cast<double>(dst)},
                      {"bytes", static_cast<double>(store.size)});
    }

    void
    storeCoalesced(GpuId dst, const icn::Store &store,
                   std::uint32_t overwritten_bytes) override
    {
        if (!_sink.full())
            return;
        _sink.instant(_pid, obs::lane_rwq, "overwrite_in_place", "rwq",
                      _queue.now(),
                      {"dst", static_cast<double>(dst)},
                      {"bytes", static_cast<double>(store.size)},
                      {"overwritten",
                       static_cast<double>(overwritten_bytes)});
    }

    void
    windowFlushed(const finepack::FlushedPartition &flushed,
                  finepack::FlushReason reason) override
    {
        if (_sink.detail() == obs::TraceDetail::off)
            return;
        _sink.instant(_pid, obs::lane_rwq, toString(reason), "rwq_flush",
                      _queue.now(),
                      {"dst", static_cast<double>(flushed.dst)},
                      {"entries",
                       static_cast<double>(flushed.entries.size())},
                      {"stores",
                       static_cast<double>(flushed.packed_store_count)});
    }

  private:
    obs::TraceSink &_sink;
    const common::EventQueue &_queue;
    std::uint32_t _pid;
};

/** Adapts packetizer output onto packet-emit trace instants. */
class PacketizerTraceAdapter : public finepack::PacketizerObserver
{
  public:
    PacketizerTraceAdapter(obs::TraceSink &sink,
                           const common::EventQueue &queue,
                           std::uint32_t pid)
        : _sink(sink), _queue(queue), _pid(pid)
    {}

    void
    packetEmitted(const finepack::FinePackTransaction &txn,
                  const icn::WireMessage &msg) override
    {
        if (_sink.detail() == obs::TraceDetail::off)
            return;
        double payload = static_cast<double>(msg.payload_bytes);
        double efficiency =
            payload > 0.0 ? static_cast<double>(msg.data_bytes) / payload
                          : 0.0;
        _sink.instant(_pid, obs::lane_packetizer, "packet", "packetizer",
                      _queue.now(),
                      {"sub_packets", static_cast<double>(txn.size())},
                      {"stores",
                       static_cast<double>(msg.packed_store_count)},
                      {"payload_efficiency", efficiency});
    }

  private:
    obs::TraceSink &_sink;
    const common::EventQueue &_queue;
    std::uint32_t _pid;
};

} // namespace

const char *
toString(EgressMode mode)
{
    switch (mode) {
      case EgressMode::raw_p2p: return "raw-p2p";
      case EgressMode::finepack: return "finepack";
      case EgressMode::write_combine: return "write-combine";
    }
    return "?";
}

EgressPort::EgressPort(const std::string &name, common::EventQueue &queue,
                       GpuId self, std::uint32_t num_gpus, EgressMode mode,
                       const finepack::FinePackConfig &config,
                       const icn::PcieProtocol &protocol,
                       icn::SwitchedFabric &fabric, Tick flush_timeout)
    : SimObject(name, queue),
      _self(self),
      _num_gpus(num_gpus),
      _mode(mode),
      _config(config),
      _protocol(protocol),
      _fabric(fabric),
      _flush_timeout(flush_timeout),
      _last_push(num_gpus, 0),
      _timeout_armed(num_gpus, false)
{
    if (_mode == EgressMode::finepack) {
        _rwq = std::make_unique<finepack::RemoteWriteQueue>(self, num_gpus,
                                                            config);
        _packetizer = std::make_unique<finepack::Packetizer>(self, config);
        for (GpuId g = 0; g < num_gpus; ++g)
            _rwq_labels.push_back(name + ".rwq[" + std::to_string(g) +
                                  "]");
        _packetizer_label = name + ".packetizer";
    } else if (_mode == EgressMode::write_combine) {
        _wc.resize(num_gpus);
        for (GpuId g = 0; g < num_gpus; ++g) {
            if (g == self)
                continue;
            _wc[g] = std::make_unique<finepack::WriteCombineBuffer>(
                self, g, config.queue_entries, config.entry_bytes);
        }
    }

    stats().registerScalar("stores_issued", &_stores_issued,
                           "remote stores issued by the SMs");
    stats().registerScalar("messages_sent", &_messages_sent,
                           "wire messages injected");
    stats().registerScalar("atomics_sent", &_atomics_sent,
                           "remote atomics injected (uncoalesced)");
    stats().registerScalar("stores_folded", &_stores_folded,
                           "program stores folded into sent messages");
    _store_sizes.init({1, 2, 4, 8, 16, 32, 64, 128});
    stats().registerHistogram("store_size_bytes", &_store_sizes,
                              "issued remote store sizes in bytes");
    _flush_entries.init(0.0, 64.0, 16);
    stats().registerDistribution("flush_entries", &_flush_entries,
                                 "buffered lines per flushed partition");
    stats().registerAverage("stores_per_message", &_stores_per_msg,
                            "program stores per injected wire message");
}

void
EgressPort::issueStore(const icn::Store &store)
{
    fp_assert(store.dst < _num_gpus && store.dst != _self,
              "bad store destination ", store.dst);
    fp_assert(store.size > 0, "zero-size store");
    common::AccessRecorder(eventQueue()).write(this, name().c_str());

    // Split accesses that cross cache-line boundaries; the L1 coalescer
    // normally guarantees this, but the public API tolerates any store.
    Addr begin = store.begin();
    Addr end = store.end();
    const std::uint32_t line = _config.entry_bytes;
    while (begin < end) {
        Addr piece_end =
            std::min<Addr>(end, common::alignDown(begin, line) + line);
        icn::Store piece = store;
        piece.addr = begin;
        piece.size = static_cast<std::uint32_t>(piece_end - begin);
        if (_latency)
            piece.issue_tick = curTick();
        if (!store.data.empty()) {
            auto off = static_cast<std::size_t>(begin - store.begin());
            piece.data.assign(store.data.begin() + off,
                              store.data.begin() + off + piece.size);
        }
        if (piece.is_atomic)
            issueAtomic(piece);
        else
            issueAligned(piece);
        begin = piece_end;
    }
}

void
EgressPort::issueStores(const std::vector<icn::Store> &stores,
                        std::size_t begin, std::size_t end)
{
    fp_assert(begin <= end && end <= stores.size(), "bad batch bounds");
    common::AccessRecorder(eventQueue()).write(this, name().c_str());

    if (_mode != EgressMode::raw_p2p) {
        for (std::size_t i = begin; i < end; ++i)
            issueStore(stores[i]);
        return;
    }

    // Raw mode: group the batch by destination; each group's TLPs leave
    // back-to-back, so one aggregate message per destination carries
    // the exact sum of their wire bytes.
    for (GpuId dst = 0; dst < _num_gpus; ++dst) {
        if (dst == _self)
            continue;
        auto msg = icn::makeWireMessage();
        msg->kind = icn::MessageKind::raw_store;
        msg->src = _self;
        msg->dst = dst;
        for (std::size_t i = begin; i < end; ++i) {
            const icn::Store &store = stores[i];
            if (store.dst != dst)
                continue;
            if (store.is_atomic) {
                // Atomics keep their dedicated path.
                continue;
            }
            ++_stores_issued;
            _store_sizes.sample(store.size);
            msg->payload_bytes +=
                _protocol.payloadOnWire(store.addr, store.size);
            msg->header_bytes += _protocol.tlpOverhead();
            msg->data_bytes += store.size;
            ++msg->packed_store_count;
            msg->stores.push_back(store);
            if (_latency)
                msg->store_stamps.push_back({curTick(), store.size});
        }
        if (msg->stores.empty())
            continue;
        ++_messages_sent;
        _stores_folded += static_cast<double>(msg->packed_store_count);
        _stores_per_msg.sample(
            static_cast<double>(msg->packed_store_count));
        _fabric.inject(msg);
    }

    // Atomics issue individually, preserving their order semantics.
    for (std::size_t i = begin; i < end; ++i)
        if (stores[i].is_atomic)
            issueStore(stores[i]);
}

void
EgressPort::issueAligned(const icn::Store &store)
{
    ++_stores_issued;
    _store_sizes.sample(store.size);

    switch (_mode) {
      case EgressMode::raw_p2p:
        sendRaw(store, icn::MessageKind::raw_store);
        break;
      case EgressMode::finepack: {
        common::AccessRecorder(eventQueue())
            .write(&_rwq->partition(store.dst),
                   _rwq_labels[store.dst].c_str());
        _flush_scratch.clear();
        _rwq->push(store, _flush_scratch);
        for (const auto &flushed : _flush_scratch)
            if (!flushed.empty())
                sendFlushed(flushed);
        if (_flush_timeout > 0) {
            _last_push[store.dst] = curTick();
            armTimeout(store.dst);
        }
        break;
      }
      case EgressMode::write_combine: {
        auto evicted = _wc[store.dst]->push(store);
        if (evicted)
            sendWcLine(store.dst, *evicted);
        break;
      }
    }
}

void
EgressPort::issueAtomic(const icn::Store &store)
{
    ++_stores_issued;
    ++_atomics_sent;
    _store_sizes.sample(store.size);

    // Remote atomics are not coalesced: any previously-buffered store to
    // an overlapping address must flush first so same-address ordering
    // holds, then the atomic travels as its own transaction.
    if (_mode == EgressMode::finepack) {
        common::AccessRecorder(eventQueue())
            .write(&_rwq->partition(store.dst),
                   _rwq_labels[store.dst].c_str());
        _flush_scratch.clear();
        _rwq->flushIfConflict(store.dst, store.addr, store.size,
                              finepack::FlushReason::atomic_conflict,
                              _flush_scratch);
        for (const auto &flushed : _flush_scratch)
            if (!flushed.empty())
                sendFlushed(flushed);
    } else if (_mode == EgressMode::write_combine) {
        // The WC baseline conservatively flushes everything for this
        // destination.
        for (auto &line : _wc[store.dst]->flushAll())
            sendWcLine(store.dst, line);
    }
    sendRaw(store, icn::MessageKind::atomic_op);
}

void
EgressPort::releaseFence()
{
    common::AccessRecorder(eventQueue()).write(this, name().c_str());
    switch (_mode) {
      case EgressMode::raw_p2p:
        break; // nothing buffered
      case EgressMode::finepack:
        for (auto &flushed :
             _rwq->flushAll(finepack::FlushReason::release)) {
            sendFlushed(flushed);
        }
        break;
      case EgressMode::write_combine:
        for (GpuId g = 0; g < _num_gpus; ++g) {
            if (g == _self)
                continue;
            for (auto &line : _wc[g]->flushAll())
                sendWcLine(g, line);
        }
        break;
    }
}

void
EgressPort::notifyRemoteLoad(GpuId dst, Addr addr, std::uint32_t size)
{
    fp_assert(dst < _num_gpus && dst != _self, "bad load destination");
    common::AccessRecorder(eventQueue()).write(this, name().c_str());
    if (_mode == EgressMode::finepack) {
        common::AccessRecorder(eventQueue())
            .write(&_rwq->partition(dst), _rwq_labels[dst].c_str());
        _flush_scratch.clear();
        _rwq->flushIfConflict(dst, addr, size,
                              finepack::FlushReason::load_conflict,
                              _flush_scratch);
        for (const auto &flushed : _flush_scratch)
            if (!flushed.empty())
                sendFlushed(flushed);
    } else if (_mode == EgressMode::write_combine) {
        for (auto &line : _wc[dst]->flushAll())
            sendWcLine(dst, line);
    }
}

void
EgressPort::sendRaw(const icn::Store &store, icn::MessageKind kind)
{
    auto msg = icn::makeWireMessage();
    msg->kind = kind;
    msg->src = _self;
    msg->dst = store.dst;
    msg->payload_bytes = _protocol.payloadOnWire(store.addr, store.size);
    msg->header_bytes = _protocol.tlpOverhead();
    msg->data_bytes = store.size;
    msg->packed_store_count = 1;
    msg->stores.push_back(store);
    if (_latency)
        msg->store_stamps.push_back({curTick(), store.size});

    ++_messages_sent;
    _stores_folded += 1.0;
    _stores_per_msg.sample(1.0);
    _fabric.inject(msg);
}

void
EgressPort::attachOracle(check::ProtocolOracle *oracle)
{
    fp_assert(_mode == EgressMode::finepack,
              "the protocol oracle requires finepack mode, not ",
              toString(_mode));
    _oracle = oracle;
    _rwq->setObserver(oracle);
}

void
EgressPort::setTracer(obs::TraceSink *tracer)
{
    _tracer = tracer;
    if (_mode != EgressMode::finepack)
        return;
    if (!tracer) {
        _rwq->setTraceObserver(nullptr);
        _packetizer->setObserver(nullptr);
        _rwq_trace.reset();
        _packet_trace.reset();
        return;
    }
    std::uint32_t pid = obs::tracePidGpu(_self);
    _rwq_trace = std::make_unique<RwqTraceAdapter>(*tracer, eventQueue(),
                                                   pid);
    _packet_trace = std::make_unique<PacketizerTraceAdapter>(
        *tracer, eventQueue(), pid);
    _rwq->setTraceObserver(_rwq_trace.get());
    _packetizer->setObserver(_packet_trace.get());
}

void
EgressPort::sendFlushed(const finepack::FlushedPartition &flushed)
{
    common::AccessRecorder(eventQueue())
        .write(_packetizer.get(), _packetizer_label.c_str());
    icn::WireMessagePtr msg = _packetizer->toMessage(flushed, _protocol);
    if (_oracle)
        _oracle->verifyMessage(*msg);
    ++_messages_sent;
    _stores_folded += static_cast<double>(flushed.packed_store_count);
    _stores_per_msg.sample(
        static_cast<double>(flushed.packed_store_count));
    _flush_entries.sample(static_cast<double>(flushed.entries.size()));
    if (_recorder)
        _recorder->record(obs::FlightKind::rwq_flush, curTick(),
                          finepack::toString(flushed.reason),
                          flushed.entries.size(), flushed.dst);
    _fabric.inject(msg);
}

void
EgressPort::sendWcLine(GpuId dst, const finepack::WcLine &line)
{
    icn::WireMessagePtr msg = _wc[dst]->lineToMessage(line, _protocol);
    ++_messages_sent;
    _stores_folded += static_cast<double>(line.folded);
    _stores_per_msg.sample(static_cast<double>(line.folded));
    _fabric.inject(msg);
}

void
EgressPort::armTimeout(GpuId dst)
{
    FP_INVARIANT(_flush_timeout > 0, "egress-timeout-exclusive",
                 "inactivity timeout armed while disabled");
    if (_timeout_armed[dst])
        return;
    _timeout_armed[dst] = true;
    scheduleIn([this, dst]() { timeoutFired(dst); }, _flush_timeout,
               common::Event::prio_sync, "egress.flush_timeout");
}

void
EgressPort::timeoutFired(GpuId dst)
{
    common::AccessRecorder(eventQueue()).write(this, name().c_str());
    common::AccessRecorder(eventQueue())
        .write(&_rwq->partition(dst), _rwq_labels[dst].c_str());
    _timeout_armed[dst] = false;
    if (_rwq->partition(dst).empty())
        return;

    Tick idle = curTick() - _last_push[dst];
    if (idle >= _flush_timeout) {
        _flush_scratch.clear();
        _rwq->partition(dst).flush(finepack::FlushReason::release,
                                   _flush_scratch);
        for (const auto &flushed : _flush_scratch) {
            if (!flushed.empty()) {
                ++_timeout_flushes;
                sendFlushed(flushed);
            }
        }
        return;
    }
    // Pushed again since arming: re-arm for the remaining idle window.
    _timeout_armed[dst] = true;
    scheduleIn([this, dst]() { timeoutFired(dst); },
               _flush_timeout - idle, common::Event::prio_sync,
               "egress.flush_timeout");
}

const finepack::RemoteWriteQueue &
EgressPort::writeQueue() const
{
    fp_assert(_rwq != nullptr, "no write queue in mode ", toString(_mode));
    return *_rwq;
}

const finepack::Packetizer &
EgressPort::packetizer() const
{
    fp_assert(_packetizer != nullptr, "no packetizer in mode ",
              toString(_mode));
    return *_packetizer;
}

double
EgressPort::avgStoresPerMessage() const
{
    double messages = _messages_sent.value();
    return messages > 0.0 ? _stores_folded.value() / messages : 0.0;
}

} // namespace fp::gpu
