#include "gpu/gpu_config.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace fp::gpu {

Tick
GpuConfig::computeTime(double flops, std::uint64_t mem_bytes,
                       double efficiency) const
{
    fp_assert(efficiency > 0.0 && efficiency <= 1.0,
              "efficiency must be in (0, 1]");
    double compute_ticks = flops / (flopsPerTick() * efficiency);
    double memory_ticks =
        static_cast<double>(mem_bytes) / (hbmBytesPerTick() * efficiency);
    double ticks = std::max(compute_ticks, memory_ticks);
    return static_cast<Tick>(std::ceil(std::max(ticks, 1.0)));
}

GpuConfig
gv100Config()
{
    return GpuConfig{};
}

} // namespace fp::gpu
