#include "gpu/warp_coalescer.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::gpu {

WarpCoalescer::WarpCoalescer(std::uint32_t line_bytes)
    : _line_bytes(line_bytes), _stats("warp_coalescer")
{
    fp_assert(common::isPowerOfTwo(line_bytes),
              "line size must be a power of two");
    // Buckets for Figure 4: 1-4, 8, 16, 32, 64, 128 byte egress accesses.
    _sizes.init({0.0, 5.0, 9.0, 17.0, 33.0, 65.0});
    _stats.registerHistogram("egress_access_bytes", &_sizes,
                             "L1-egress access sizes after intra-warp "
                             "coalescing (Figure 4)");
}

std::size_t
WarpCoalescer::coalesce(std::vector<LaneAccess> lanes,
                        std::vector<LaneAccess> &out)
{
    if (lanes.empty())
        return 0;

    _lanes_in += lanes.size();

    std::sort(lanes.begin(), lanes.end(),
              [](const LaneAccess &a, const LaneAccess &b) {
                  return a.addr < b.addr;
              });

    std::size_t produced = 0;
    Addr cur_begin = lanes.front().addr;
    Addr cur_end = cur_begin + lanes.front().size;

    auto emit = [&](Addr begin, Addr end) {
        // Split at cache-line boundaries: one egress access never
        // crosses a line.
        while (begin < end) {
            Addr line_end =
                common::alignDown(begin, _line_bytes) + _line_bytes;
            Addr piece_end = std::min(end, line_end);
            auto size = static_cast<std::uint32_t>(piece_end - begin);
            out.push_back(LaneAccess{begin, size});
            _sizes.sample(static_cast<double>(size));
            ++_accesses_out;
            ++produced;
            begin = piece_end;
        }
    };

    for (std::size_t i = 1; i < lanes.size(); ++i) {
        const LaneAccess &lane = lanes[i];
        fp_assert(lane.size > 0, "zero-size lane access");
        if (lane.addr <= cur_end) {
            cur_end = std::max(cur_end, lane.addr + lane.size);
        } else {
            emit(cur_begin, cur_end);
            cur_begin = lane.addr;
            cur_end = lane.addr + lane.size;
        }
    }
    emit(cur_begin, cur_end);
    return produced;
}

std::size_t
WarpCoalescer::coalesceToStores(std::vector<LaneAccess> lanes, GpuId src,
                                GpuId dst, std::vector<icn::Store> &out)
{
    _scratch.clear();
    std::size_t produced = coalesce(std::move(lanes), _scratch);
    // No reserve here: exact-size reserve on every warp defeats the
    // vector's amortized growth and turns the append quadratic.
    for (const LaneAccess &access : _scratch)
        out.emplace_back(access.addr, access.size, src, dst);
    return produced;
}

} // namespace fp::gpu
