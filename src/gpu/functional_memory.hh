/**
 * @file
 * A sparse, page-backed functional byte store. Used by correctness tests
 * to check that coalesced / packetized delivery produces the same final
 * memory image as naive store-by-store delivery.
 */

#ifndef FP_GPU_FUNCTIONAL_MEMORY_HH
#define FP_GPU_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "interconnect/store.hh"

namespace fp::gpu {

/** Sparse byte-addressable memory with 4 KiB backing pages. */
class FunctionalMemory
{
  public:
    static constexpr std::uint64_t page_bytes = 4096;

    /** Apply one store's data (must carry payload bytes). */
    FP_COLD void apply(const icn::Store &store);

    /** Write raw bytes. */
    void write(Addr addr, const std::uint8_t *data, std::uint64_t size);

    /** Read bytes; untouched locations read as zero. */
    std::vector<std::uint8_t> read(Addr addr, std::uint64_t size) const;

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Number of backing pages allocated. */
    std::size_t pageCount() const { return _pages.size(); }

    /** Bitwise comparison over a range. */
    bool rangeEquals(const FunctionalMemory &other, Addr addr,
                     std::uint64_t size) const;

    /**
     * Whole-memory comparison by page map: pages absent on one side
     * compare equal when the other side's page is all zeroes. O(pages),
     * independent of the address-space span.
     */
    bool sameContents(const FunctionalMemory &other) const;

  private:
    using Page = std::array<std::uint8_t, page_bytes>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
};

} // namespace fp::gpu

#endif // FP_GPU_FUNCTIONAL_MEMORY_HH
