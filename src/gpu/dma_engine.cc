#include "gpu/dma_engine.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace fp::gpu {

DmaEngine::DmaEngine(const std::string &name, common::EventQueue &queue,
                     GpuId self, const GpuConfig &config,
                     const icn::PcieProtocol &protocol,
                     icn::SwitchedFabric &fabric,
                     std::uint64_t chunk_bytes)
    : SimObject(name, queue),
      _self(self),
      _config(config),
      _protocol(protocol),
      _fabric(fabric),
      _chunk_bytes(chunk_bytes)
{
    fp_assert(_chunk_bytes >= _protocol.maxPayload(),
              "DMA chunk must cover at least one max-payload TLP");
    stats().registerScalar("copies", &_copies, "DMA copies issued");
    stats().registerScalar("bytes", &_bytes, "bytes copied");
}

void
DmaEngine::copy(GpuId dst, const icn::AddrRange &range)
{
    fp_assert(dst != _self, "DMA copy to self");
    fp_assert(range.size > 0, "empty DMA copy");
    common::AccessRecorder(eventQueue()).write(this, name().c_str());

    ++_copies;
    _bytes += static_cast<double>(range.size);

    // The memcpy API call costs runtime/driver time on the software
    // path; consecutive calls from the same GPU serialize there.
    Tick start = std::max(curTick(), _api_busy_until) +
                 _config.dma_call_overhead;
    _api_busy_until = start;

    eventQueue().schedule(
        [this, dst, range]() {
            Addr addr = range.base;
            std::uint64_t remaining = range.size;
            while (remaining > 0) {
                std::uint64_t chunk =
                    std::min<std::uint64_t>(remaining, _chunk_bytes);

                auto msg = icn::makeWireMessage();
                msg->kind = icn::MessageKind::dma_chunk;
                msg->src = _self;
                msg->dst = dst;
                msg->dma_range = icn::AddrRange{addr, chunk};
                msg->data_bytes = chunk;
                std::uint64_t tlps =
                    common::divCeil(chunk, _protocol.maxPayload());
                msg->payload_bytes = common::alignUp(chunk, 4);
                msg->header_bytes = tlps * _protocol.tlpOverhead();
                msg->packed_store_count = 0;
                _fabric.inject(msg);

                addr += chunk;
                remaining -= chunk;
            }
        },
        start, common::Event::prio_inject, "dma.copy");
}

} // namespace fp::gpu
