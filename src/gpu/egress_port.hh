/**
 * @file
 * The GPU's network egress port.
 *
 * Depending on the configured mode, remote stores leave the GPU as
 * individual TLPs (the P2P-store baseline), through the FinePack remote
 * write queue + packetizer (Figure 7), or through a cacheline
 * write-combining buffer (the GPS-style baseline). The port also
 * implements the memory-model hooks: system-scoped releases flush
 * everything, remote atomics and conflicting remote loads flush the
 * affected partition before proceeding.
 */

#ifndef FP_GPU_EGRESS_PORT_HH
#define FP_GPU_EGRESS_PORT_HH

#include <memory>
#include <vector>

#include "common/sim_object.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "finepack/write_combine.hh"
#include "interconnect/topology.hh"
#include "obs/latency.hh"
#include "obs/trace_event.hh"

namespace fp::check { class ProtocolOracle; }

namespace fp::gpu {

/** How remote stores are transferred out of this GPU. */
enum class EgressMode : std::uint8_t {
    raw_p2p,        ///< one TLP per L1-egress store
    finepack,       ///< remote write queue + packetizer
    write_combine,  ///< cacheline-granularity write combining
};

const char *toString(EgressMode mode);

/** The egress-side network interface of one GPU. */
class EgressPort : public common::SimObject
{
  public:
    /**
     * @param flush_timeout  Optional inactivity timeout (in ticks)
     *        after which a non-empty FinePack partition flushes even
     *        without a synchronization or capacity trigger. The paper
     *        discusses but does not enable this (Section IV-B); 0
     *        disables it, matching the paper's configuration.
     */
    EgressPort(const std::string &name, common::EventQueue &queue,
               GpuId self, std::uint32_t num_gpus, EgressMode mode,
               const finepack::FinePackConfig &config,
               const icn::PcieProtocol &protocol,
               icn::SwitchedFabric &fabric, Tick flush_timeout = 0);

    /**
     * Issue one remote store at the current tick. Splits accesses that
     * cross cache-line boundaries; atomics flush the conflicting queue
     * state and travel as dedicated (uncoalesced) messages.
     */
    FP_HOT void issueStore(const icn::Store &store);

    /**
     * Issue a batch of stores that become visible at the same tick
     * (one issue event's worth). In raw-P2P mode the batch is grouped
     * by destination and each group travels as back-to-back TLPs
     * accounted in a single wire message - byte-exact, and a large
     * event-count saving for store-heavy workloads. The other modes
     * push each store through their buffers individually.
     */
    FP_HOT void issueStores(const std::vector<icn::Store> &stores,
                     std::size_t begin, std::size_t end);

    /**
     * System-scoped release (memory fence or kernel completion): all
     * buffered state flushes to the interconnect.
     */
    FP_HOT void releaseFence();

    /**
     * A remote load is about to be issued to (dst, addr, size): enforce
     * same-address load-store ordering by flushing a matching partition.
     */
    FP_HOT void notifyRemoteLoad(GpuId dst, Addr addr,
                                 std::uint32_t size);

    /**
     * Attach the shadow-memory protocol oracle (finepack mode only;
     * nullptr detaches). The oracle observes the remote write queue in
     * causal order and re-verifies every emitted packet byte-for-byte;
     * the caller keeps ownership.
     */
    void attachOracle(check::ProtocolOracle *oracle);

    /**
     * Attach an event tracer (nullptr detaches). In finepack mode this
     * wires adapters onto the remote write queue and packetizer so
     * enqueue / overwrite-in-place / flush / packet-emit events land on
     * this GPU's trace process; per-store instants only fire at full
     * trace detail.
     */
    void setTracer(obs::TraceSink *tracer);

    /**
     * Enable latency attribution (nullptr disables): stores get their
     * issue tick stamped so the ingress side can attribute coalescing
     * residency and end-to-end latency. The egress port never samples
     * into the collector itself; off costs one branch per store.
     */
    void setLatencyCollector(obs::LatencyCollector *latency)
    { _latency = latency; }

    /**
     * Attach a flight recorder (nullptr disables): every RWQ window
     * flush appends one `rwq_flush` ring record labeled with its
     * FlushReason (entries, dst). Off costs one branch per flush; see
     * docs/run_health.md.
     */
    void setFlightRecorder(obs::FlightRecorder *recorder)
    { _recorder = recorder; }

    EgressMode mode() const { return _mode; }
    GpuId self() const { return _self; }

    /** Accessors for statistics inspection. */
    const finepack::RemoteWriteQueue &writeQueue() const;
    const finepack::Packetizer &packetizer() const;

    std::uint64_t storesIssued() const
    { return static_cast<std::uint64_t>(_stores_issued.value()); }
    std::uint64_t messagesSent() const
    { return static_cast<std::uint64_t>(_messages_sent.value()); }
    std::uint64_t atomicsSent() const
    { return static_cast<std::uint64_t>(_atomics_sent.value()); }
    std::uint64_t timeoutFlushes() const
    { return static_cast<std::uint64_t>(_timeout_flushes.value()); }

    /** Average stores folded per message (Figure 11 for FinePack). */
    double avgStoresPerMessage() const;

  private:
    FP_HOT void issueAligned(const icn::Store &store);
    FP_HOT void issueAtomic(const icn::Store &store);
    FP_HOT void sendRaw(const icn::Store &store, icn::MessageKind kind);
    FP_HOT void sendFlushed(const finepack::FlushedPartition &flushed);
    FP_HOT void sendWcLine(GpuId dst, const finepack::WcLine &line);
    FP_COLD void armTimeout(GpuId dst);
    FP_COLD void timeoutFired(GpuId dst);

    GpuId _self;
    std::uint32_t _num_gpus;
    EgressMode _mode;
    finepack::FinePackConfig _config;
    icn::PcieProtocol _protocol;
    icn::SwitchedFabric &_fabric;

    std::unique_ptr<finepack::RemoteWriteQueue> _rwq;
    std::unique_ptr<finepack::Packetizer> _packetizer;
    check::ProtocolOracle *_oracle = nullptr;
    obs::TraceSink *_tracer = nullptr;
    obs::LatencyCollector *_latency = nullptr;
    obs::FlightRecorder *_recorder = nullptr;
    /** Trace adapters (finepack mode, tracer attached). */
    std::unique_ptr<finepack::RwqObserver> _rwq_trace;
    std::unique_ptr<finepack::PacketizerObserver> _packet_trace;
    /** One write-combine buffer per destination (index = dst). */
    std::vector<std::unique_ptr<finepack::WriteCombineBuffer>> _wc;

    common::Scalar _stores_issued;
    common::Scalar _messages_sent;
    common::Scalar _atomics_sent;
    common::Scalar _stores_folded;
    common::Scalar _timeout_flushes;
    common::Histogram _store_sizes;
    common::Distribution _flush_entries;
    common::Average _stores_per_msg;
    /** Reused flush buffer for the hot store path. */
    std::vector<finepack::FlushedPartition> _flush_scratch;

    /** Inactivity-timeout state (finepack mode only). */
    Tick _flush_timeout;
    std::vector<Tick> _last_push;     ///< per destination
    std::vector<bool> _timeout_armed; ///< per destination

    /**
     * Stable labels for determinism-analysis access declarations
     * (finepack mode): one per RWQ partition plus the packetizer.
     * AccessRecorder keeps only the const char*, so these must outlive
     * every recorded access.
     */
    std::vector<std::string> _rwq_labels;
    std::string _packetizer_label;
};

} // namespace fp::gpu

#endif // FP_GPU_EGRESS_PORT_HH
