/**
 * @file
 * GPU hardware parameters (paper Table III, NVIDIA GV100-based) plus the
 * first-order performance-model constants the timing simulation uses.
 */

#ifndef FP_GPU_GPU_CONFIG_HH
#define FP_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace fp::gpu {

/** Static configuration of one simulated GPU. */
struct GpuConfig
{
    // ---- Table III: GPU parameters -------------------------------------
    /** Cache block size in bytes. */
    std::uint32_t cache_line = 128;
    /** Global (HBM) memory capacity. */
    std::uint64_t global_memory = 16 * GiB;
    /** Streaming multiprocessors. */
    std::uint32_t num_sms = 80;
    /** CUDA cores per SM. */
    std::uint32_t cores_per_sm = 64;
    /** L2 cache capacity. */
    std::uint64_t l2_size = 6 * MiB;
    /** Threads per warp. */
    std::uint32_t warp_size = 32;
    /** Maximum resident threads per SM. */
    std::uint32_t max_threads_per_sm = 2048;
    /** Maximum threads per CTA. */
    std::uint32_t max_threads_per_cta = 1024;

    // ---- Performance-model constants -----------------------------------
    /** Core clock in GHz (GV100 boost). */
    double clock_ghz = 1.4;
    /** Sustained local memory bandwidth, bytes/sec (GV100 HBM2). */
    std::uint64_t hbm_bytes_per_sec = 900ull * 1000 * 1000 * 1000;
    /** Kernel launch overhead. */
    Tick kernel_launch_overhead = 5 * ticks_per_us;
    /** System-wide barrier / synchronization cost per iteration. */
    Tick barrier_overhead = 5 * ticks_per_us;
    /** Software overhead per DMA (async memcpy API) call. */
    Tick dma_call_overhead = 4 * ticks_per_us;

    /** Peak FP32 throughput in flops/sec (2 flops/core/cycle FMA). */
    double
    peakFlopsPerSec() const
    {
        return static_cast<double>(num_sms) * cores_per_sm * 2.0 *
               clock_ghz * 1e9;
    }

    /** Peak flops per tick. */
    double
    flopsPerTick() const
    {
        return peakFlopsPerSec() / static_cast<double>(ticks_per_sec);
    }

    /** HBM bandwidth in bytes per tick. */
    FP_HOT double
    hbmBytesPerTick() const
    {
        return static_cast<double>(hbm_bytes_per_sec) /
               static_cast<double>(ticks_per_sec);
    }

    /**
     * Roofline kernel-duration model: a kernel that executes @p flops
     * arithmetic operations and moves @p mem_bytes through local memory
     * runs for the larger of its compute and memory times, at the given
     * sustained efficiency.
     */
    Tick computeTime(double flops, std::uint64_t mem_bytes,
                     double efficiency = 0.75) const;
};

/** The paper's GV100 configuration. */
GpuConfig gv100Config();

} // namespace fp::gpu

#endif // FP_GPU_GPU_CONFIG_HH
