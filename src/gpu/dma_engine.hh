/**
 * @file
 * The bulk-DMA copy engine used by the memcpy paradigm: a peer-to-peer
 * copy is issued through a software API (runtime + driver overhead) and
 * then streams max-payload TLPs over the interconnect. Copies are split
 * into multi-TLP chunks so they pipeline through the switch rather than
 * serializing store-and-forward as one giant unit.
 */

#ifndef FP_GPU_DMA_ENGINE_HH
#define FP_GPU_DMA_ENGINE_HH

#include "common/sim_object.hh"
#include "gpu/gpu_config.hh"
#include "interconnect/topology.hh"

namespace fp::gpu {

/** One GPU's peer-to-peer DMA engine. */
class DmaEngine : public common::SimObject
{
  public:
    DmaEngine(const std::string &name, common::EventQueue &queue,
              GpuId self, const GpuConfig &config,
              const icn::PcieProtocol &protocol,
              icn::SwitchedFabric &fabric,
              std::uint64_t chunk_bytes = 64 * KiB);

    /**
     * Start a peer-to-peer copy of @p range (destination-local
     * addresses) to GPU @p dst. The copy begins after the software API
     * overhead; chunks inject back-to-back.
     */
    void copy(GpuId dst, const icn::AddrRange &range);

    std::uint64_t copiesIssued() const
    { return static_cast<std::uint64_t>(_copies.value()); }
    std::uint64_t bytesCopied() const
    { return static_cast<std::uint64_t>(_bytes.value()); }

  private:
    GpuId _self;
    GpuConfig _config;
    icn::PcieProtocol _protocol;
    icn::SwitchedFabric &_fabric;
    std::uint64_t _chunk_bytes;
    /** Software issue path serializes on the host/runtime side. */
    Tick _api_busy_until = 0;

    common::Scalar _copies;
    common::Scalar _bytes;
};

} // namespace fp::gpu

#endif // FP_GPU_DMA_ENGINE_HH
