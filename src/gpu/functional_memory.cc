#include "gpu/functional_memory.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::gpu {

FunctionalMemory::Page &
FunctionalMemory::pageFor(Addr addr)
{
    Addr page_addr = common::alignDown(addr, page_bytes);
    auto &slot = _pages[page_addr];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    Addr page_addr = common::alignDown(addr, page_bytes);
    auto it = _pages.find(page_addr);
    return it == _pages.end() ? nullptr : it->second.get();
}

void
FunctionalMemory::apply(const icn::Store &store)
{
    fp_assert(store.data.size() == store.size,
              "functional apply needs payload data (addr=", store.addr,
              ")");
    write(store.addr, store.data.data(), store.size);
}

void
FunctionalMemory::write(Addr addr, const std::uint8_t *data,
                        std::uint64_t size)
{
    while (size > 0) {
        Page &page = pageFor(addr);
        std::uint64_t offset = addr % page_bytes;
        std::uint64_t chunk = std::min(size, page_bytes - offset);
        std::memcpy(page.data() + offset, data, chunk);
        addr += chunk;
        data += chunk;
        size -= chunk;
    }
}

std::vector<std::uint8_t>
FunctionalMemory::read(Addr addr, std::uint64_t size) const
{
    std::vector<std::uint8_t> result(size, 0);
    std::uint64_t done = 0;
    while (done < size) {
        std::uint64_t offset = (addr + done) % page_bytes;
        std::uint64_t chunk = std::min(size - done, page_bytes - offset);
        if (const Page *page = pageForConst(addr + done))
            std::memcpy(result.data() + done, page->data() + offset, chunk);
        done += chunk;
    }
    return result;
}

std::uint8_t
FunctionalMemory::readByte(Addr addr) const
{
    const Page *page = pageForConst(addr);
    return page ? (*page)[addr % page_bytes] : 0;
}

bool
FunctionalMemory::rangeEquals(const FunctionalMemory &other, Addr addr,
                              std::uint64_t size) const
{
    std::vector<std::uint8_t> mine = read(addr, size);
    std::vector<std::uint8_t> theirs = other.read(addr, size);
    return mine == theirs;
}

bool
FunctionalMemory::sameContents(const FunctionalMemory &other) const
{
    auto page_matches = [](const Page *a, const Page *b) {
        if (a && b)
            return *a == *b;
        const Page *present = a ? a : b;
        if (!present)
            return true;
        for (std::uint8_t byte : *present)
            if (byte != 0)
                return false;
        return true;
    };

    // fp-lint: allow(unordered-iteration) set equality is order-insensitive
    for (const auto &[addr, page] : _pages)
        if (!page_matches(page.get(), other.pageForConst(addr)))
            return false;
    // fp-lint: allow(unordered-iteration) set equality is order-insensitive
    for (const auto &[addr, page] : other._pages)
        if (!pageForConst(addr) && !page_matches(nullptr, page.get()))
            return false;
    return true;
}

} // namespace fp::gpu
