/**
 * @file
 * Intra-warp store coalescing, modeling the GPU SM/L1 behaviour the
 * paper describes in Section III: per-thread 1-8 B stores issued by one
 * warp instruction combine into memory accesses of up to one cache line
 * (128 B) when they exhibit spatial locality; scattered stores egress as
 * individual small accesses. Remote stores receive no further coalescing
 * beyond this point in a baseline GPU, which is precisely the gap
 * FinePack fills.
 */

#ifndef FP_GPU_WARP_COALESCER_HH
#define FP_GPU_WARP_COALESCER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "interconnect/store.hh"

namespace fp::gpu {

/** One lane's write within a warp store instruction. */
struct LaneAccess
{
    Addr addr = 0;
    std::uint32_t size = 0;
};

/**
 * Coalesces the lane accesses of one warp store instruction into L1
 * egress accesses. Accesses merge when they are contiguous or
 * overlapping and stay within one 128 B cache line.
 */
class WarpCoalescer
{
  public:
    explicit WarpCoalescer(std::uint32_t line_bytes = 128);

    /**
     * Coalesce one warp instruction's lane accesses (any order) into
     * egress accesses, appending to @p out.
     * @return the number of egress accesses produced.
     */
    std::size_t coalesce(std::vector<LaneAccess> lanes,
                         std::vector<LaneAccess> &out);

    /** Convenience: coalesce and tag with src/dst as stores. */
    std::size_t coalesceToStores(std::vector<LaneAccess> lanes, GpuId src,
                                 GpuId dst,
                                 std::vector<icn::Store> &out);

    std::uint32_t lineBytes() const { return _line_bytes; }

    /** Distribution of egress access sizes (paper Figure 4 input). */
    const common::Histogram &sizeHistogram() const { return _sizes; }

    std::uint64_t lanesIn() const { return _lanes_in; }
    std::uint64_t accessesOut() const { return _accesses_out; }

    const common::StatGroup &stats() const { return _stats; }

  private:
    std::uint32_t _line_bytes;
    common::StatGroup _stats;
    common::Histogram _sizes;
    std::uint64_t _lanes_in = 0;
    std::uint64_t _accesses_out = 0;
    std::vector<LaneAccess> _scratch;
};

} // namespace fp::gpu

#endif // FP_GPU_WARP_COALESCER_HH
