#include "gpu/ingress_port.hh"

#include <cmath>

#include "check/invariant.hh"
#include "common/logging.hh"
#include "obs/flow.hh"

namespace fp::gpu {

IngressPort::IngressPort(const std::string &name,
                         common::EventQueue &queue, GpuId self,
                         const GpuConfig &config)
    : SimObject(name, queue), _self(self), _config(config)
{
    stats().registerScalar("messages", &_messages, "messages received");
    stats().registerScalar("stores", &_stores, "stores delivered to L2");
    stats().registerScalar("bytes", &_bytes, "data bytes delivered");
}

void
IngressPort::receive(const icn::WireMessagePtr &msg)
{
    fp_assert(msg->dst == _self, "message delivered to wrong GPU");
    common::AccessRecorder(eventQueue()).write(this, name().c_str());

    ++_messages;
    _stores += static_cast<double>(msg->stores.size());
    _bytes += static_cast<double>(msg->data_bytes);

    if (_flows)
        _flows->recordCommit(msg->src, _self, msg->wireBytes(),
                             msg->data_bytes);

    if (_memory) {
        for (const icn::Store &store : msg->stores) {
            if (!store.data.empty())
                _memory->apply(store);
        }
    }

    // Model the drain of disaggregated stores into the local memory
    // system at HBM write bandwidth.
    double drain_bytes = msg->data_bytes > 0
                             ? static_cast<double>(msg->data_bytes)
                             : static_cast<double>(msg->payload_bytes);
    auto drain_ticks = static_cast<Tick>(
        std::ceil(drain_bytes / _config.hbmBytesPerTick()));
    drain_ticks = std::max<Tick>(drain_ticks, 1);

    Tick start = std::max(curTick(), _busy_until);
    _busy_until = start + drain_ticks;

    if (_latency) {
        FP_INVARIANT(msg->timing.created != obs::no_stamp &&
                         msg->timing.created <= curTick(),
                     "latency-milestone-order",
                     "message arrived without a monotonic creation "
                     "stamp (created=", msg->timing.created,
                     " now=", curTick(), ")");
        _latency->record(_self, msg->timing, curTick(), _busy_until,
                         msg->store_stamps.data(),
                         msg->store_stamps.size());
    }

    if (_tracer && _tracer->full()) {
        _tracer->complete(obs::tracePidGpu(_self), obs::lane_ingress,
                          "drain", "ingress", start, drain_ticks,
                          {"data_bytes",
                           static_cast<double>(msg->data_bytes)},
                          {"stores",
                           static_cast<double>(msg->stores.size())},
                          {"src", static_cast<double>(msg->src)});
        if (msg->timing.flow_id != 0) {
            _tracer->flowEnd(obs::tracePidGpu(_self), obs::lane_ingress,
                             "msg", "flow", start, msg->timing.flow_id);
        }
    }

    // Always schedule the drain-completion event so that running the
    // event queue dry implies all ingress buffers have emptied.
    eventQueue().schedule(
        [this, msg]() {
            if (_delivered_cb)
                // fp-lint: allow(hot-escape) indirect callable (drain hook); ROADMAP item 1
                _delivered_cb(msg);
        },
        _busy_until, common::Event::prio_default, "ingress.drain");
}

} // namespace fp::gpu
