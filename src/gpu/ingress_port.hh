/**
 * @file
 * The GPU's network ingress port: receives wire messages from the
 * fabric, models the de-packetizer buffer drain into the local memory
 * system, and (optionally) applies store data to a functional memory for
 * correctness checking.
 */

#ifndef FP_GPU_INGRESS_PORT_HH
#define FP_GPU_INGRESS_PORT_HH

#include <functional>
#include <memory>

#include "common/sim_object.hh"
#include "gpu/functional_memory.hh"
#include "gpu/gpu_config.hh"
#include "interconnect/message.hh"
#include "obs/latency.hh"
#include "obs/trace_event.hh"

namespace fp::obs {
class FlowCollector;
} // namespace fp::obs

namespace fp::gpu {

/** The ingress-side network interface of one GPU. */
class IngressPort : public common::SimObject
{
  public:
    using DeliveredFn = std::function<void(const icn::WireMessagePtr &)>;

    IngressPort(const std::string &name, common::EventQueue &queue,
                GpuId self, const GpuConfig &config);

    /**
     * Handle one arriving message: disaggregated stores drain into the
     * local memory system at HBM write bandwidth (never slower than the
     * interconnect can deliver, per Section IV-C, but modeled anyway).
     */
    FP_HOT void receive(const icn::WireMessagePtr &msg);

    /** Attach a functional memory that delivered store data writes to. */
    void attachMemory(FunctionalMemory *memory) { _memory = memory; }

    /** Callback invoked when a message has fully drained. */
    void setDeliveredCallback(DeliveredFn fn) { _delivered_cb = std::move(fn); }

    /**
     * Attach an event tracer (nullptr detaches): per-message drain
     * spans on this GPU's ingress lane at full detail.
     */
    void setTracer(obs::TraceSink *tracer) { _tracer = tracer; }

    /**
     * Attach a latency collector (nullptr detaches): every drained
     * message records its stage latencies (commit = end of the HBM
     * drain). Off costs one branch per message.
     */
    void setLatencyCollector(obs::LatencyCollector *latency)
    { _latency = latency; }

    /**
     * Attach a flow collector (nullptr detaches): every received
     * message is committed against its src -> dst flow, closing the
     * inject/commit conservation ledger. Off costs one branch per
     * message.
     */
    void setFlowCollector(obs::FlowCollector *flows) { _flows = flows; }

    /** Tick when the ingress path finishes draining everything queued. */
    Tick drainedAt() const { return _busy_until; }

    std::uint64_t messagesReceived() const
    { return static_cast<std::uint64_t>(_messages.value()); }
    std::uint64_t storesDelivered() const
    { return static_cast<std::uint64_t>(_stores.value()); }
    std::uint64_t bytesDelivered() const
    { return static_cast<std::uint64_t>(_bytes.value()); }

  private:
    GpuId _self;
    GpuConfig _config;
    FunctionalMemory *_memory = nullptr;
    DeliveredFn _delivered_cb;
    obs::TraceSink *_tracer = nullptr;
    obs::LatencyCollector *_latency = nullptr;
    obs::FlowCollector *_flows = nullptr;
    Tick _busy_until = 0;

    common::Scalar _messages;
    common::Scalar _stores;
    common::Scalar _bytes;
};

} // namespace fp::gpu

#endif // FP_GPU_INGRESS_PORT_HH
