/**
 * @file
 * Fabric flow observability: per-link utilization timelines, per-flow
 * (src GPU -> dst GPU) accounting, and contention attribution.
 *
 * The FlowCollector is a passive observer in the LatencyCollector
 * mold: the producer layers stay sink-free and the driver wires the
 * hooks only when SimConfig::flows is set, so the off path is one
 * pointer test per message. Three hook points feed it:
 *
 *   - SwitchedFabric::inject     per-flow injected bytes/messages
 *   - Link::transmit             per-link serialization spans, queue
 *                                wait, and who-delayed-whom
 *   - IngressPort::receive       per-flow committed bytes/messages
 *
 * Contention attribution: when a message starts serializing later than
 * it was enqueued (the link was busy or credit-stalled), the wait is
 * charged to the flow *occupying* the link - the most recently
 * transmitted message's (src, dst). That yields a per-link interference
 * ledger keyed by (delayer flow, delayed flow) and a fabric-wide
 * N x N GPU matrix (delayer source x delayed source) whose total
 * reconciles exactly with the sum of link wait ticks.
 *
 * Utilization timelines: every link accumulates busy/wait overlap into
 * fixed-width sample windows shared across the fabric. When a run
 * outgrows the window budget the width doubles and bins merge
 * pairwise, so memory is bounded and totals are conserved.
 *
 * Collection never perturbs the simulation (no StatGroups are
 * registered, so the default stats document is bit-identical with and
 * without a collector); tests/sim/fabric_digest_test.cc enforces this.
 * Schema: docs/observability.md; walkthrough:
 * docs/fabric_observability.md.
 */

#ifndef FP_OBS_FLOW_HH
#define FP_OBS_FLOW_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/types.hh"

namespace fp::common {
class JsonWriter;
} // namespace fp::common

namespace fp::obs {

class TraceSink;

/**
 * Aggregates per-link telemetry and per-flow accounting for one
 * fabric. Thread safety follows LatencyCollector: beginRun() and the
 * record hooks serialize on an internal fp::Mutex (future parallel DES
 * shards), while the read accessors and dumpJson() are quiescent-read
 * only - call them once no record is in flight.
 */
class FlowCollector
{
  public:
    enum class LinkKind : std::uint8_t { uplink, downlink };

    /** One fixed-width sample window of a link's timeline. */
    struct Window
    {
        /** Ticks of serialization overlapping this window. */
        Tick busy_ticks = 0;
        /**
         * Message-ticks of queue wait overlapping this window; divided
         * by the window length it is the mean queue depth.
         */
        Tick wait_msg_ticks = 0;
        /** Transmissions that started in this window. */
        std::uint64_t msgs = 0;
        /** Wire bytes of those transmissions. */
        std::uint64_t wire_bytes = 0;
    };

    /** Lifetime accounting for one registered link. */
    struct LinkStats
    {
        std::string name;
        LinkKind kind = LinkKind::uplink;
        GpuId gpu = 0;
        std::uint64_t msgs = 0;
        std::uint64_t wire_bytes = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t data_bytes = 0;
        Tick busy_ticks = 0;
        Tick wait_ticks = 0;
        std::vector<Window> windows;
        /**
         * Contention ledger: (delayer flow index, delayed flow index)
         * -> ticks, where flow index = src * num_gpus + dst. Values
         * sum to wait_ticks (ordered map: deterministic iteration).
         */
        std::map<std::pair<std::uint32_t, std::uint32_t>, Tick>
            interference;
    };

    /** Conservation ledger for one src -> dst flow. */
    struct FlowStats
    {
        std::uint64_t injected_msgs = 0;
        std::uint64_t injected_wire_bytes = 0;
        std::uint64_t injected_payload_bytes = 0;
        std::uint64_t injected_data_bytes = 0;
        std::uint64_t packed_stores = 0;
        std::uint64_t committed_msgs = 0;
        std::uint64_t committed_wire_bytes = 0;
        std::uint64_t committed_data_bytes = 0;
        Tick uplink_wait_ticks = 0;
        Tick downlink_wait_ticks = 0;
        /** Wait this flow inflicted on others (it occupied the link). */
        Tick delay_caused_ticks = 0;
        /** Wait this flow's messages spent behind an occupant. */
        Tick delay_suffered_ticks = 0;

        bool active() const { return injected_msgs || committed_msgs; }
    };

    /** One Link::transmit, reported by the link that serialized it. */
    struct LinkTransmit
    {
        std::uint32_t link = 0;     ///< registerLink() id
        GpuId src = 0;
        GpuId dst = 0;
        Tick enqueued = 0;          ///< send() tick (incl. credit stall)
        Tick start = 0;             ///< serialization start
        Tick tx_ticks = 0;          ///< serialization duration
        std::uint64_t wire_bytes = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t data_bytes = 0;
        /** Valid occupant flow to charge any wait to? */
        bool have_occupant = false;
        GpuId occupant_src = 0;
        GpuId occupant_dst = 0;
    };

    /** @p window_ticks initial timeline sample width (doubles as needed). */
    explicit FlowCollector(Tick window_ticks = ticks_per_us);

    FlowCollector(const FlowCollector &) = delete;
    FlowCollector &operator=(const FlowCollector &) = delete;

    /** Reset all state and size the flow/matrix tables for a run. */
    void beginRun(std::uint32_t num_gpus) FP_EXCLUDES(_mu);

    /** Close the run; @p end_tick is the utilization denominator. */
    void endRun(Tick end_tick) FP_EXCLUDES(_mu);

    /** Add a link to the collector; returns its LinkTransmit::link id. */
    std::uint32_t registerLink(std::string name, LinkKind kind,
                               GpuId gpu) FP_EXCLUDES(_mu);

    /** One message injected into the fabric at its source uplink. */
    FP_COLD void recordInject(GpuId src, GpuId dst, std::uint64_t wire_bytes,
                      std::uint64_t payload_bytes,
                      std::uint64_t data_bytes,
                      std::uint64_t packed_stores) FP_EXCLUDES(_mu);

    /** One serialization start on a registered link. */
    FP_COLD void recordTransmit(const LinkTransmit &tx) FP_EXCLUDES(_mu);

    /** One message committed at its destination ingress port. */
    FP_COLD void recordCommit(GpuId src, GpuId dst, std::uint64_t wire_bytes,
                      std::uint64_t data_bytes) FP_EXCLUDES(_mu);

    // ---- Quiescent-read accessors (see class comment) -----------------
    std::uint32_t numGpus() const { return _num_gpus; }
    Tick windowTicks() const { return _window_ticks; }
    Tick endTick() const { return _end_tick; }

    const std::vector<LinkStats> &links() const { return _links; }
    const FlowStats &flow(GpuId src, GpuId dst) const;

    /** Fabric-wide matrix cell: ticks @p by's traffic delayed @p on's. */
    Tick interferenceTicks(GpuId by, GpuId on) const;

    Tick totalBusyTicks() const;
    Tick totalWaitTicks() const;
    std::uint64_t activeFlows() const;

    /** Lifetime busy fraction of @p link in [0, 1]. */
    double linkUtilization(const LinkStats &link) const;
    /** Injected data bytes / injected wire bytes over all flows. */
    double packingEfficiency() const;
    /** Ticks of the sample window starting at index @p w. */
    Tick windowLength(std::size_t w) const;

    /**
     * Indices into links() sorted hottest-first (utilization, then
     * name for determinism); at most @p k entries.
     */
    std::vector<std::uint32_t> hottestLinks(std::size_t k) const;

    /** "g<src>->g<dst>", the flow key used in reports and JSON. */
    static std::string flowName(GpuId src, GpuId dst);

    /**
     * The `fabric` stats-document section. All dynamically-keyed
     * objects (links, flows, interference) emit in lexicographically
     * sorted key order - deterministic by construction (ordered maps).
     */
    void dumpJson(common::JsonWriter &json) const;

    /** Utilization / queue-depth counter tracks, one pair per link. */
    void emitTrace(TraceSink &sink) const;

  private:
    std::uint32_t flowIndex(GpuId src, GpuId dst) const
    { return src * _num_gpus + dst; }

    /** Double the window width until @p last_tick fits the budget. */
    void reserveWindows(Tick last_tick) FP_REQUIRES(_mu);
    /** Accumulate [begin, end) overlap into a link's windows. */
    void chargeWindows(LinkStats &link, Tick begin, Tick end,
                       bool busy) FP_REQUIRES(_mu);

    mutable fp::Mutex _mu;
    const Tick _initial_window_ticks;
    // Mutated only under _mu (record/beginRun); read quiescently, so
    // unannotated by design, like LatencyCollector's histograms.
    std::uint32_t _num_gpus = 0;
    Tick _window_ticks;
    Tick _end_tick = 0;
    Tick _max_event_tick = 0;
    std::vector<LinkStats> _links;
    std::vector<FlowStats> _flows;  ///< num_gpus^2, index src*N+dst
    std::vector<Tick> _matrix;      ///< num_gpus^2, [by_src*N + on_src]
};

} // namespace fp::obs

#endif // FP_OBS_FLOW_HH
