#include "obs/trace_event.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace fp::obs {

const char *
toString(TraceDetail detail)
{
    switch (detail) {
      case TraceDetail::off: return "off";
      case TraceDetail::flush: return "flush";
      case TraceDetail::full: return "full";
    }
    return "?";
}

void
TraceSink::complete(std::uint32_t pid, std::uint32_t tid, const char *name,
                    const char *cat, Tick ts, Tick dur, Arg a0, Arg a1,
                    Arg a2)
{
    Event e;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.name = name;
    e.cat = cat;
    e.args = {a0, a1, a2};
    push(std::move(e));
}

void
TraceSink::instant(std::uint32_t pid, std::uint32_t tid, const char *name,
                   const char *cat, Tick ts, Arg a0, Arg a1, Arg a2)
{
    Event e;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.args = {a0, a1, a2};
    push(std::move(e));
}

void
TraceSink::flowStart(std::uint32_t pid, std::uint32_t tid, const char *name,
                     const char *cat, Tick ts, std::uint64_t id)
{
    Event e;
    e.ph = 's';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.id = id;
    push(std::move(e));
}

void
TraceSink::flowStep(std::uint32_t pid, std::uint32_t tid, const char *name,
                    const char *cat, Tick ts, std::uint64_t id)
{
    Event e;
    e.ph = 't';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.id = id;
    push(std::move(e));
}

void
TraceSink::flowEnd(std::uint32_t pid, std::uint32_t tid, const char *name,
                   const char *cat, Tick ts, std::uint64_t id)
{
    Event e;
    e.ph = 'f';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.id = id;
    push(std::move(e));
}

void
TraceSink::counter(std::uint32_t pid, const std::string &track, Tick ts,
                   double value)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.ts = ts;
    e.dyn_name = track;
    e.args[0] = {"value", value};
    push(std::move(e));
}

void
TraceSink::processName(std::uint32_t pid, const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.name = "process_name";
    e.dyn_name = name;
    push(std::move(e));
}

void
TraceSink::threadName(std::uint32_t pid, std::uint32_t tid,
                      const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.dyn_name = name;
    push(std::move(e));
}

void
TraceSink::write(std::ostream &os) const
{
    // Trace-event timestamps are microseconds; ticks are picoseconds.
    auto us = [](Tick t) { return static_cast<double>(t) / 1e6; };

    common::JsonWriter json(os);
    json.beginObject();
    json.kv("displayTimeUnit", "ns");
    json.key("traceEvents");
    json.beginArray();
    for (const Event &e : _events) {
        json.beginObject();
        json.kv("ph", std::string(1, e.ph));
        json.kv("pid", e.pid);
        json.kv("tid", e.tid);
        if (e.ph == 'M') {
            json.kv("name", e.name);
            json.key("args");
            json.beginObject();
            json.kv("name", e.dyn_name);
            json.endObject();
            json.endObject();
            continue;
        }
        json.kv("ts", us(e.ts));
        if (e.ph == 'X')
            json.kv("dur", us(e.dur));
        if (e.ph == 'i')
            json.kv("s", "t");
        if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
            json.kv("id", e.id);
            // Bind the flow end to the enclosing slice, Perfetto-style.
            if (e.ph == 'f')
                json.kv("bp", "e");
        }
        json.kv("name", e.dyn_name.empty() ? std::string(e.name)
                                           : e.dyn_name);
        if (e.cat)
            json.kv("cat", e.cat);
        bool has_args = false;
        for (const Arg &arg : e.args)
            has_args = has_args || arg.key != nullptr;
        if (has_args) {
            json.key("args");
            json.beginObject();
            for (const Arg &arg : e.args)
                if (arg.key)
                    json.kv(arg.key, arg.value);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << '\n';
    fp_assert(json.complete(), "trace JSON left unbalanced");
}

} // namespace fp::obs
