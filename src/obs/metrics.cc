#include "obs/metrics.hh"

#include <sstream>

#include "common/build_info.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "obs/flow.hh"
#include "obs/profiler.hh"

namespace fp::obs {

void
MetricsCapture::captureNow()
{
    std::ostringstream os;
    common::JsonWriter json(os);
    common::MetricsRegistry::instance().dumpJson(json);
    _groups_json = os.str();
}

const std::string &
MetricsCapture::groupsJson() const
{
    static const std::string empty = "[]";
    return _groups_json.empty() ? empty : _groups_json;
}

void
MetricsCapture::writeDocument(std::ostream &os,
                              const PeriodicSampler *sampler,
                              const Profiler *profiler,
                              const FlowCollector *flows,
                              bool partial) const
{
    // The groups snapshot is already-serialized JSON, so the document
    // frame is spliced by hand around it.
    os << "{\"schema_version\":1,";
    if (partial)
        os << "\"partial\":true,";
    os << "\"provenance\":";
    {
        common::JsonWriter json(os);
        common::dumpBuildInfoJson(json);
    }
    os << ",\"groups\":" << groupsJson() << ",\"timeseries\":";
    {
        common::JsonWriter json(os);
        if (sampler) {
            sampler->dumpJson(json);
        } else {
            json.beginObject();
            json.endObject();
        }
    }
    if (profiler) {
        os << ",\"host\":";
        common::JsonWriter json(os);
        profiler->dumpJson(json);
    }
    if (flows) {
        os << ",\"fabric\":";
        common::JsonWriter json(os);
        flows->dumpJson(json);
    }
    os << "}\n";
}

} // namespace fp::obs
