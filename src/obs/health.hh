/**
 * @file
 * Run-health layer: heartbeat emitter and stall watchdog.
 *
 * Long replays and parameter sweeps fail in two characteristic ways
 * that plain stats cannot distinguish from "still working": a wedged
 * run (host wall-clock advances while the sim tick and events-executed
 * counters freeze with work still queued) and quiescence with
 * incomplete work (the queue drains but a sweep still has shards
 * outstanding). HealthMonitor owns a single watchdog thread (fp::Thread
 * on the annotated sync primitives in common/sync.h) that wakes every
 * heartbeat interval, reads ONLY the relaxed progress atomics published
 * by a FlightRecorder / SweepRunner / common::AllocCounters, and:
 *
 *  - emits one line-delimited JSON `kind:"heartbeat"` document (tick,
 *    events, events/sec, queue depth/peak, RWQ flush totals, invariant
 *    evaluations, allocation counters, RSS high-water from
 *    /proc/self/status, sweep done/total with an ETA) to stderr or the
 *    configured path,
 *  - publishes that line into the fatal handler's buffer
 *    (obs::fatal::setLastHeartbeat) so post-mortems carry the last
 *    known-good progress sample, and
 *  - diagnoses stalls: if the progress signature freezes for at least
 *    the stall threshold it emits one `kind:"stall"` document per
 *    episode ("wedged" when events are queued, "quiescent" when a
 *    sweep is attached and unfinished), re-arming when progress
 *    resumes.
 *
 * Digest neutrality: the monitor never touches simulated state -- it
 * reads atomics and writes host-side JSON. Attaching it changes no
 * oracle / stats / RunResult digest (tests/sim/health_digest_test.cc).
 * All wall-clock use lives in health.cc behind fp-lint waivers: like
 * the profiler, measuring host time is this component's job.
 */

#ifndef FP_OBS_HEALTH_HH
#define FP_OBS_HEALTH_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/sync.h"

namespace fp::obs {

class FlightRecorder;

class HealthMonitor
{
  public:
    struct Options
    {
        /** Heartbeat interval (default 1 s). */
        std::uint64_t heartbeat_ns = 1'000'000'000ULL;
        /**
         * Frozen-progress threshold before a stall document is
         * emitted; 0 = 10x the heartbeat interval.
         */
        std::uint64_t stall_ns = 0;
        /** Heartbeat sink; empty writes to stderr. */
        std::string heartbeat_path;
    };

    HealthMonitor();
    explicit HealthMonitor(Options options);

    /** Stops the watchdog (joins the thread) if still running. */
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /**
     * Progress source (nullable). The recorder must outlive the
     * monitor or be detached with attachRecorder(nullptr) + stop()
     * first. Without a recorder, heartbeats still carry host-side
     * fields (alloc, RSS, sweep) but stall detection is off.
     */
    void attachRecorder(const FlightRecorder *recorder);

    /**
     * Sweep progress cells (both nullable together; owned by the
     * SweepRunner, which calls this from attachHealth()). Enables the
     * sweep section of heartbeats and quiescent-stall detection.
     */
    void setSweepProgress(const std::atomic<std::uint64_t> *done,
                          const std::atomic<std::uint64_t> *total);

    /** Start the watchdog thread. No-op if already running. */
    void start();

    /** Stop and join the watchdog thread. Safe to call twice. */
    void stop();

    /** Heartbeat documents emitted so far. */
    std::uint64_t heartbeats() const;

    /** Stall episodes diagnosed so far. */
    std::uint64_t stallsDetected() const;

    /**
     * One watchdog evaluation against externally supplied clock and
     * progress readings -- the pure core of the thread loop, exposed
     * so tests can drive a wedged scenario without real waiting.
     * Returns true when this call diagnosed a new stall episode.
     */
    bool evaluate(std::uint64_t now_ns);

    /** VmHWM from /proc/self/status in KiB (0 if unavailable). */
    static std::uint64_t rssHighWaterKb();

  private:
    void threadMain();
    void emitHeartbeat(std::uint64_t now_ns);
    void emitStall(std::uint64_t now_ns, const char *mode,
                   std::uint64_t stalled_ns);
    void writeLine(const std::string &line);
    std::uint64_t progressSignature() const;

    Options _options;

    std::atomic<const FlightRecorder *> _recorder{nullptr};
    std::atomic<const std::atomic<std::uint64_t> *> _sweep_done{nullptr};
    std::atomic<const std::atomic<std::uint64_t> *> _sweep_total{
        nullptr};

    fp::Mutex _mu;
    fp::CondVar _cv;
    bool _stop FP_GUARDED_BY(_mu) = false;
    fp::Thread _thread;
    bool _running = false;

    std::ofstream _out; ///< watchdog thread only (after start())

    // Watchdog bookkeeping; watchdog thread only (or the test driving
    // evaluate() single-threaded).
    std::uint64_t _start_ns = 0;
    std::uint64_t _last_progress_ns = 0;
    std::uint64_t _last_signature = 0;
    std::uint64_t _last_beat_ns = 0;
    std::uint64_t _last_beat_events = 0;
    bool _in_stall = false;

    std::atomic<std::uint64_t> _heartbeats{0};
    std::atomic<std::uint64_t> _stalls{0};
};

} // namespace fp::obs

#endif // FP_OBS_HEALTH_HH
