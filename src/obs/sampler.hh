/**
 * @file
 * Periodic time-series sampling of counter statistics.
 *
 * The sampler pumps the discrete-event queue itself: events execute
 * normally, but every time simulated time is about to cross a sample
 * boundary the registered gauge callbacks are read and stamped at that
 * boundary. Driving the queue from outside (instead of scheduling
 * sampler events into it) keeps the queue's "run until drained"
 * semantics intact - a self-rescheduling sampler event would never let
 * the queue empty - and guarantees sampling never perturbs event
 * order, so two identical runs produce identical series.
 *
 * Each track's points land both in an in-memory series (exported as
 * the "timeseries" section of the stats JSON) and, when a TraceSink is
 * attached, as Chrome trace counter events.
 */

#ifndef FP_OBS_SAMPLER_HH
#define FP_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "obs/trace_event.hh"

namespace fp::common {
class JsonWriter;
}

namespace fp::obs {

class PeriodicSampler
{
  public:
    /** Sample every @p interval ticks of simulated time. */
    explicit PeriodicSampler(Tick interval);

    Tick interval() const { return _interval; }

    /** Mirror samples into @p sink as counter tracks (nullptr stops). */
    void attachTraceSink(TraceSink *sink) { _trace = sink; }

    /**
     * Reset for a new run: drops all tracks and recorded series. The
     * simulation driver calls this before registering its gauges so a
     * reused sampler never mixes two runs.
     */
    void beginRun();

    /**
     * Drop the gauge callbacks but keep the recorded series. Called
     * when the sampled components are about to be destroyed; the
     * series stay readable afterwards.
     */
    void endRun();

    /**
     * Register one gauge. @p fn is read at every sample point and must
     * stay valid until endRun()/beginRun().
     */
    void addTrack(std::string name, std::function<double()> fn);

    /**
     * Run @p queue to completion (like EventQueue::run), sampling all
     * tracks whenever simulated time crosses a sample boundary. The
     * first call also records a baseline sample at the current tick.
     * May be called repeatedly (once per driver iteration).
     */
    void pump(common::EventQueue &queue);

    /** Read every track now, stamped at @p now. */
    void sampleAt(Tick now);

    struct Series
    {
        std::string name;
        std::vector<Tick> ticks;
        std::vector<double> values;
    };

    const std::vector<Series> &series() const { return _series; }

    /** Serialize all series as one JSON object keyed by track name. */
    void dumpJson(common::JsonWriter &json) const;

  private:
    Tick _interval;
    Tick _next_sample = 0;
    bool _primed = false;
    TraceSink *_trace = nullptr;

    std::vector<std::function<double()>> _gauges;
    std::vector<Series> _series;
};

} // namespace fp::obs

#endif // FP_OBS_SAMPLER_HH
