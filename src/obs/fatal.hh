/**
 * @file
 * Async-signal-safe fatal handlers and the post-mortem writer.
 *
 * install() registers handlers for SIGINT / SIGTERM / SIGSEGV /
 * SIGABRT that flush a `kind:"postmortem"` JSON document -- flight
 * recorder ring, last heartbeat, queue depth/peak, build provenance --
 * using only write(2) and manual integer formatting, then apply the
 * per-signal exit discipline (docs/run_health.md):
 *
 *   SIGINT   first: dump post-mortem, raise the cooperative interrupt
 *            flag (common/interrupt.hh) and return, so the simulation
 *            unwinds and the CLI flushes partial stats before exiting
 *            with exit_code::interrupted. Second SIGINT: _exit(130).
 *   SIGTERM  dump post-mortem, _exit(143).
 *   SIGSEGV/ dump post-mortem, restore the default handler, re-raise
 *   SIGABRT  (the core dump / abort still happens).
 *
 * writePostmortem() is the same formatter callable from normal code:
 * the logging failure hook points here so an FP_INVARIANT violation or
 * a ProtocolOracle mismatch (fp_panic) produces the same document as a
 * crash.
 *
 * The implementation translation unit (fatal.cc) is marked
 * `fp-lint: async-signal-safe`, which puts it under fp_lint.py's
 * signal-safety rule: no allocation, no iostream/printf, no
 * std::string, no logging macros, no throw -- enforced lexically, with
 * self-tests, so the one file that runs inside signal handlers cannot
 * quietly grow a malloc. This header is *consumed* by normal code and
 * carries no such restriction, but its API is const char* / POD only
 * so the implementation never needs unsafe types.
 */

#ifndef FP_OBS_FATAL_HH
#define FP_OBS_FATAL_HH

#include <cstddef>

namespace fp::obs {

class FlightRecorder;

namespace fatal {

/**
 * What the handlers may touch. Everything is copied into static
 * storage (or stored as a raw pointer the caller keeps alive for the
 * process lifetime) at install() time -- the handler itself reads only
 * statics and atomics.
 */
struct Config
{
    /** Ring to dump (nullable: post-mortems still carry provenance). */
    const FlightRecorder *recorder = nullptr;
    /** Post-mortem file path; nullptr/empty writes to stderr. */
    const char *postmortem_path = nullptr;
    /**
     * Preformatted JSON object of build provenance (the caller renders
     * common::dumpBuildInfoJson once, up front -- the handler must not
     * format it). nullptr emits an empty object.
     */
    const char *provenance_json = nullptr;
};

/**
 * Install the signal handlers and arm writePostmortem(). Call once,
 * early, from the CLI entry point; re-installing just updates the
 * armed configuration.
 */
void install(const Config &config);

/**
 * Publish the most recent heartbeat line (a complete JSON object) for
 * inclusion in post-mortems. Bounded copy into a double buffer the
 * signal handler reads lock-free; called by the HealthMonitor after
 * each heartbeat.
 */
void setLastHeartbeat(const char *json, std::size_t length);

/**
 * Write the post-mortem document now (async-signal-safe; also the
 * normal-path entry the logging failure hook uses). @p reason lands in
 * the document's "reason" field, JSON-escaped.
 */
void writePostmortem(const char *reason);

/** Post-mortems written since install() (for tests). */
unsigned postmortemsWritten();

} // namespace fatal

} // namespace fp::obs

#endif // FP_OBS_FATAL_HH
