/**
 * @file
 * Host-side self-profiler: the observability layer turned inward.
 *
 * Everything else under obs/ measures the *simulated* system; this
 * measures the simulator. A Profiler rides the EventQueue observer
 * hooks and attributes wall-clock handler execution time to event
 * labels (Event::description()), aggregated into per-label buckets
 * (count, total ns, self ns, max ns) with a top-N hotspot report. It
 * also snapshots the queue's operation counters (pushes, pops, stale
 * drops, peak heap depth) and the coarse allocation counters on the
 * event / wire-message hot paths (common::AllocCounters), and derives
 * events-per-second throughput - the number ROADMAP item 1's engine
 * overhaul will be judged by.
 *
 * Cost model: off (not attached - every normal run) is exactly the
 * queue's no-observer fast path: zero per-event virtual dispatch. On,
 * each event costs two clock reads and one hash-cache lookup. The
 * profiler never touches simulated state, so enabling it changes no
 * oracle/stats/result digest (tests/sim/profiler_digest_test.cc holds
 * this); it reports wantsAccesses() == false, keeping every
 * AccessRecorder on its null fast path.
 *
 * Threading: one Profiler serves one simulation thread at a time.
 * Parallel sweeps (sim::SweepRunner) use one Profiler per shard; only
 * the process-wide AllocCounters are shared (atomic, and documented as
 * coarse under concurrency). See docs/profiling.md.
 */

#ifndef FP_OBS_PROFILER_HH
#define FP_OBS_PROFILER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"

namespace fp::common {
class JsonWriter;
} // namespace fp::common

namespace fp::obs {

class TraceSink;

/** One aggregated hotspot row (per event-label host time). */
struct HostHotspot
{
    std::string label;
    std::uint64_t count = 0;
    /** Wall ns inside this label, including nested frames. */
    std::uint64_t total_ns = 0;
    /** Wall ns excluding nested frames (what sorting uses). */
    std::uint64_t self_ns = 0;
    /** Longest single frame. */
    std::uint64_t max_ns = 0;
};

class Profiler : public common::EventQueueObserver
{
  public:
    Profiler() = default;

    /**
     * RAII frame for host code that is not an event handler (the
     * driver's per-iteration loop, analytic runs, trace generation).
     * Inert when @p profiler is null, so call sites need no branch.
     * Events executing inside the scope nest under it: the scope's
     * *self* time is exactly the driver/queue overhead no handler
     * accounts for. @p label must be a string literal.
     */
    class Scope
    {
      public:
        Scope(Profiler *profiler, const char *label) : _profiler(profiler)
        {
            if (_profiler)
                _profiler->pushFrame(label, /*is_scope=*/true);
        }

        ~Scope()
        {
            if (_profiler)
                _profiler->popFrame();
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler *_profiler;
    };

    /**
     * Attach to @p queue (observer hooks + wall-clock start) and
     * activate the process-wide allocation counters. One run at a
     * time; aggregates accumulate across runs so N reps of a workload
     * fold into one report.
     */
    void beginRun(common::EventQueue *queue);

    /**
     * Detach from the run's queue, folding its wall time, operation
     * counters, and allocation deltas into the aggregates. Must be
     * called while the queue is still alive.
     */
    void endRun();

    // ---- EventQueueObserver --------------------------------------------
    void beginEvent(const common::Event &event) override;
    void endEvent(const common::Event &event) override;

    // ---- Aggregated results --------------------------------------------
    /** Events observed across all runs. */
    std::uint64_t events() const { return _events; }
    /** Wall-clock ns spent inside beginRun()..endRun() windows. */
    std::uint64_t wallNs() const { return _wall_ns; }
    /** Events per wall-clock second (0 when no time elapsed). */
    double eventsPerSec() const;

    std::uint64_t queuePushes() const { return _queue_pushes; }
    std::uint64_t queuePops() const { return _queue_pops; }
    std::uint64_t queueStaleDrops() const { return _queue_stale_drops; }
    std::size_t queuePeakDepth() const { return _queue_peak_depth; }

    std::uint64_t lambdaEventAllocs() const { return _lambda_allocs; }
    std::uint64_t wireMessageAllocs() const { return _wire_allocs; }

    /**
     * Hotspots sorted by self time (descending; label breaks ties for
     * determinism across equal times). Buckets sharing label *text*
     * merge, so the same literal in two translation units is one row.
     * @p top_n == 0 returns all.
     */
    std::vector<HostHotspot> hotspots(std::size_t top_n = 0) const;

    /**
     * The stats-JSON `host` object (schema in docs/profiling.md):
     * wall_ns, events, events_per_sec, queue counters, alloc counters,
     * and the hotspot table.
     */
    void dumpJson(common::JsonWriter &json, std::size_t top_n = 0) const;

    /**
     * Render the host timeline into a Chrome trace: one slice per
     * manual Scope frame (capped; see droppedSlices()) plus an
     * events-per-second counter, under a dedicated host pid
     * (trace_pid_host). Host timestamps are wall ns since the first
     * beginRun(), scaled so they render as microseconds alongside the
     * simulated timeline - a second clock domain in the same view.
     */
    void emitTrace(TraceSink &sink) const;

    /** Manual-scope slices retained for emitTrace(). */
    std::size_t sliceCount() const { return _slices.size(); }
    /** Slices beyond the retention cap (counted, not kept). */
    std::uint64_t droppedSlices() const { return _dropped_slices; }

    /** Forget all aggregates (detaches nothing; not run-reentrant). */
    void reset();

  private:
    /** Per-label aggregation bucket, keyed by label pointer. */
    struct Bucket
    {
        const char *label = nullptr;
        std::uint64_t count = 0;
        std::uint64_t total_ns = 0;
        std::uint64_t self_ns = 0;
        std::uint64_t max_ns = 0;
    };

    /** One open frame on the host call stack. */
    struct Frame
    {
        Bucket *bucket = nullptr;
        std::uint64_t start_ns = 0;
        /** Wall ns spent in already-closed nested frames. */
        std::uint64_t child_ns = 0;
        bool is_scope = false;
    };

    /** A retained manual-scope slice for the trace timeline. */
    struct Slice
    {
        const char *label = nullptr;
        std::uint64_t start_ns = 0;
        std::uint64_t dur_ns = 0;
    };

    friend class Scope;

    void pushFrame(const char *label, bool is_scope);
    void popFrame();
    Bucket *bucketFor(const char *label);

    std::unordered_map<const void *, Bucket> _buckets;
    /** One-entry lookup cache: repeated labels skip the hash. */
    const void *_last_key = nullptr;
    Bucket *_last_bucket = nullptr;

    std::vector<Frame> _stack;
    std::vector<Slice> _slices;
    std::uint64_t _dropped_slices = 0;

    common::EventQueue *_queue = nullptr;
    std::uint64_t _events = 0;
    std::uint64_t _wall_ns = 0;
    std::uint64_t _queue_pushes = 0;
    std::uint64_t _queue_pops = 0;
    std::uint64_t _queue_stale_drops = 0;
    std::size_t _queue_peak_depth = 0;
    std::uint64_t _lambda_allocs = 0;
    std::uint64_t _wire_allocs = 0;

    /** Wall-ns origin of the host timeline (first beginRun()). */
    std::uint64_t _origin_ns = 0;
    bool _origin_set = false;
    std::uint64_t _run_start_ns = 0;
    std::uint64_t _alloc_lambda_base = 0;
    std::uint64_t _alloc_wire_base = 0;
};

} // namespace fp::obs

#endif // FP_OBS_PROFILER_HH
