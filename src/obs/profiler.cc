#include "obs/profiler.hh"

#include <algorithm>
// fp-lint: allow(wall-clock) the self-profiler's whole purpose is
// measuring host wall time; it never feeds simulated state.
#include <chrono>
#include <map>

#include "common/alloc_counters.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/trace_event.hh"

namespace fp::obs {

namespace {

/** Manual-scope slices retained for the trace timeline. */
constexpr std::size_t max_slices = 8192;

std::uint64_t
nowNs()
{
    // fp-lint: allow(wall-clock) host-time measurement is this file's job
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // fp-lint: allow(wall-clock) see above
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
Profiler::beginRun(common::EventQueue *queue)
{
    fp_assert(queue != nullptr, "profiler needs a queue to observe");
    fp_assert(_queue == nullptr, "profiler already attached to a run");
    fp_assert(_stack.empty(), "profiler run started inside an open frame");
    _queue = queue;
    _queue->addObserver(this);
    common::AllocCounters::active.fetch_add(1, std::memory_order_relaxed);
    _alloc_lambda_base = common::AllocCounters::lambda_events.load(
        std::memory_order_relaxed);
    _alloc_wire_base = common::AllocCounters::wire_messages.load(
        std::memory_order_relaxed);
    _run_start_ns = nowNs();
    if (!_origin_set) {
        _origin_ns = _run_start_ns;
        _origin_set = true;
    }
}

void
Profiler::endRun()
{
    fp_assert(_queue != nullptr, "profiler not attached to a run");
    fp_assert(_stack.empty(), "profiler run ended inside an open frame");
    _wall_ns += nowNs() - _run_start_ns;
    _queue_pushes += _queue->eventsScheduled();
    _queue_pops += _queue->eventsProcessed();
    _queue_stale_drops += _queue->staleDrops();
    _queue_peak_depth = std::max(_queue_peak_depth, _queue->peakDepth());
    // Process-wide deltas: coarse by design under parallel sweeps
    // (concurrent shards fold into whichever profilers are active).
    _lambda_allocs += common::AllocCounters::lambda_events.load(
                          std::memory_order_relaxed) -
                      _alloc_lambda_base;
    _wire_allocs += common::AllocCounters::wire_messages.load(
                        std::memory_order_relaxed) -
                    _alloc_wire_base;
    common::AllocCounters::active.fetch_sub(1, std::memory_order_relaxed);
    _queue->removeObserver(this);
    _queue = nullptr;
}

void
Profiler::beginEvent(const common::Event &event)
{
    pushFrame(event.description(), /*is_scope=*/false);
}

void
Profiler::endEvent(const common::Event &event)
{
    (void)event;
    ++_events;
    popFrame();
}

Profiler::Bucket *
Profiler::bucketFor(const char *label)
{
    // Hot-path cache: consecutive events usually share a label (store
    // bursts, link deliveries), so the hash lookup mostly short-circuits.
    if (label == _last_key)
        return _last_bucket;
    Bucket &bucket = _buckets[label];
    bucket.label = label;
    _last_key = label;
    _last_bucket = &bucket;
    return &bucket;
}

void
Profiler::pushFrame(const char *label, bool is_scope)
{
    _stack.push_back(
        Frame{bucketFor(label), nowNs(), /*child_ns=*/0, is_scope});
}

void
Profiler::popFrame()
{
    fp_assert(!_stack.empty(), "profiler frame stack underflow");
    Frame frame = _stack.back();
    _stack.pop_back();
    std::uint64_t end = nowNs();
    std::uint64_t dur = end - frame.start_ns;
    std::uint64_t self = dur > frame.child_ns ? dur - frame.child_ns : 0;

    Bucket *bucket = frame.bucket;
    ++bucket->count;
    bucket->total_ns += dur;
    bucket->self_ns += self;
    bucket->max_ns = std::max(bucket->max_ns, dur);

    if (!_stack.empty())
        _stack.back().child_ns += dur;

    if (frame.is_scope) {
        if (_slices.size() < max_slices) {
            _slices.push_back(Slice{bucket->label,
                                    frame.start_ns - _origin_ns, dur});
        } else {
            ++_dropped_slices;
        }
    }
}

double
Profiler::eventsPerSec() const
{
    if (_wall_ns == 0)
        return 0.0;
    return static_cast<double>(_events) /
           (static_cast<double>(_wall_ns) / 1e9);
}

std::vector<HostHotspot>
Profiler::hotspots(std::size_t top_n) const
{
    // Merge buckets by label text (an ordered map, so identical times
    // still report deterministically whatever the hash layout).
    std::map<std::string, HostHotspot> merged;
    // fp-lint: allow(unordered-iteration) order-insensitive aggregation
    for (const auto &[key, bucket] : _buckets) {
        HostHotspot &spot = merged[bucket.label];
        spot.label = bucket.label;
        spot.count += bucket.count;
        spot.total_ns += bucket.total_ns;
        spot.self_ns += bucket.self_ns;
        spot.max_ns = std::max(spot.max_ns, bucket.max_ns);
    }
    std::vector<HostHotspot> rows;
    rows.reserve(merged.size());
    for (const auto &[label, spot] : merged)
        rows.push_back(spot);
    std::sort(rows.begin(), rows.end(),
              [](const HostHotspot &a, const HostHotspot &b) {
                  if (a.self_ns != b.self_ns)
                      return a.self_ns > b.self_ns;
                  return a.label < b.label;
              });
    if (top_n != 0 && rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

void
Profiler::dumpJson(common::JsonWriter &json, std::size_t top_n) const
{
    json.beginObject();
    json.kv("wall_ns", _wall_ns);
    json.kv("events", _events);
    json.kv("events_per_sec", eventsPerSec());
    json.key("queue");
    json.beginObject();
    json.kv("pushes", _queue_pushes);
    json.kv("pops", _queue_pops);
    json.kv("stale_drops", _queue_stale_drops);
    json.kv("peak_depth",
            static_cast<std::uint64_t>(_queue_peak_depth));
    json.endObject();
    json.key("alloc");
    json.beginObject();
    json.kv("lambda_events", _lambda_allocs);
    json.kv("wire_messages", _wire_allocs);
    json.endObject();
    json.key("hotspots");
    json.beginArray();
    for (const HostHotspot &spot : hotspots(top_n)) {
        json.beginObject();
        json.kv("label", spot.label);
        json.kv("count", spot.count);
        json.kv("total_ns", spot.total_ns);
        json.kv("self_ns", spot.self_ns);
        json.kv("max_ns", spot.max_ns);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
Profiler::emitTrace(TraceSink &sink) const
{
    sink.processName(trace_pid_host, "host: self-profiler (wall clock)");
    sink.threadName(trace_pid_host, 0, "driver scopes");
    // Host ns -> trace ticks: ticks are ps and the sink renders
    // ts / 1e6 µs, so multiplying by 1000 makes 1 host ns = 1 trace ns.
    // The host timeline thus shares the view's µs axis while measuring
    // a different clock (wall time since the first beginRun()).
    Tick last = 0;
    for (const Slice &slice : _slices) {
        sink.complete(trace_pid_host, 0, slice.label, "host",
                      static_cast<Tick>(slice.start_ns * 1000),
                      static_cast<Tick>(slice.dur_ns * 1000));
        last = std::max(last, static_cast<Tick>(
                                  (slice.start_ns + slice.dur_ns) * 1000));
    }
    sink.counter(trace_pid_host, "host.events_per_sec", last,
                 eventsPerSec());
}

void
Profiler::reset()
{
    fp_assert(_queue == nullptr, "cannot reset while attached to a run");
    fp_assert(_stack.empty(), "cannot reset inside an open frame");
    _buckets.clear();
    _last_key = nullptr;
    _last_bucket = nullptr;
    _slices.clear();
    _dropped_slices = 0;
    _events = 0;
    _wall_ns = 0;
    _queue_pushes = 0;
    _queue_pops = 0;
    _queue_stale_drops = 0;
    _queue_peak_depth = 0;
    _lambda_allocs = 0;
    _wire_allocs = 0;
    _origin_ns = 0;
    _origin_set = false;
}

} // namespace fp::obs
