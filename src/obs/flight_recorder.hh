/**
 * @file
 * Flight recorder: a bounded lock-free ring of recent DES activity.
 *
 * Every other sink under obs/ produces its value at the *end* of a
 * clean run; the flight recorder exists for runs that do not end
 * cleanly. It rides the multi-observer EventQueue hooks and records
 * the last N things the simulator did -- executed events (label, tick,
 * priority), RWQ window flushes with their FlushReason, fabric
 * injects, and invariant names as they are evaluated -- into a
 * preallocated ring of atomic slots. When the process dies (signal,
 * panic, FP_INVARIANT trip, ProtocolOracle mismatch) the fatal handler
 * in src/obs/fatal.cc walks the ring with plain atomic loads and
 * writes it into the `kind:"postmortem"` document, giving every crash
 * a "what was the simulator doing" tail without any of the cost or
 * fragility of full tracing.
 *
 * Concurrency and signal safety: the ring is sized at construction and
 * never reallocates; record() is one relaxed fetch_add (slot claim)
 * plus a handful of relaxed stores into that slot's atomic fields. No
 * locks, no allocation -- safe to call on the per-event hot path
 * (FP_HOT, zero allocations after setup; fp_hotpath_runtime_check.py
 * proves the zero) and safe to *read* from an async signal handler or
 * the watchdog thread. Slots are claimed before they are filled, so a
 * reader racing a writer can see one slot mid-update (a torn record:
 * fields from two generations). Post-mortem output is diagnostic, not
 * digested, so a rare torn tail record is an accepted trade for a
 * wait-free hot path; the sequence field lets readers drop slots being
 * overwritten.
 *
 * Labels must be string literals (or otherwise immortal): the ring
 * stores the pointer, exactly like Event::description() and the
 * profiler's buckets, so the signal handler can still dereference it.
 *
 * Digest neutrality: the recorder never touches simulated state and
 * reports wantsAccesses() == false; attaching it changes no oracle /
 * stats / RunResult digest (tests/sim/health_digest_test.cc holds
 * this, the same gate PRs 7-8 used for the profiler and sampler).
 */

#ifndef FP_OBS_FLIGHT_RECORDER_HH
#define FP_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"

namespace fp::obs {

/** What one flight-recorder slot describes. */
enum class FlightKind : std::uint8_t {
    none = 0,      ///< empty slot (never written)
    event,         ///< executed DES event: a = priority, b = sequence
    rwq_flush,     ///< RWQ window flush: a = entries, b = dst GPU
    fabric_inject, ///< fabric inject: a = wire bytes, b = dst GPU
    invariant,     ///< FP_INVARIANT evaluated (name as label)
    note,          ///< free-form marker (run boundaries, CLI phases)
};

inline constexpr std::size_t flight_kind_count = 6;

const char *toString(FlightKind kind);

class FlightRecorder : public common::EventQueueObserver
{
  public:
    /**
     * One ring slot. All fields are relaxed atomics so the sim thread
     * writes and the watchdog / signal handler read without locks or
     * fences; `seq` is the claim ticket (0 = never written) readers
     * use to order slots and detect in-flight overwrites.
     */
    struct Slot
    {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<Tick> tick{0};
        std::atomic<const char *> label{nullptr};
        std::atomic<std::uint64_t> a{0};
        std::atomic<std::uint64_t> b{0};
        std::atomic<std::uint8_t> kind{0};
    };

    /** A decoded slot (snapshot() output; not the live ring). */
    struct Record
    {
        std::uint64_t seq = 0;
        Tick tick = 0;
        const char *label = nullptr;
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        FlightKind kind = FlightKind::none;
    };

    static constexpr std::size_t default_capacity = 256;

    /** @p capacity slots, rounded up to a power of two (min 2). */
    explicit FlightRecorder(std::size_t capacity = default_capacity);

    ~FlightRecorder() override;

    /**
     * Append one record (wait-free, zero-alloc; see file comment).
     * @p label must be immortal (string literal).
     */
    FP_HOT void record(FlightKind kind, Tick tick, const char *label,
                       std::uint64_t a = 0, std::uint64_t b = 0);

    // ---- EventQueueObserver --------------------------------------------
    /** Records the event and publishes run-progress counters. */
    void beginEvent(const common::Event &event) override;
    void endEvent(const common::Event &event) override;

    /**
     * Attach to @p queue for a run: the driver calls this (paired with
     * endRun()) so beginEvent can publish the queue's depth/peak/
     * scheduled/processed counters into atomics the watchdog and the
     * signal handler read. The recorder does NOT add itself as an
     * observer -- the driver owns observer wiring.
     */
    void beginRun(const common::EventQueue *queue);

    /** Publish final queue counters and detach from the run's queue. */
    void endRun();

    // ---- Progress cells (all relaxed; readable from any thread) --------
    /** Records ever written (monotonic; > capacity() means wrapped). */
    std::uint64_t recordsWritten() const;
    /** Tick of the most recent record. */
    Tick lastTick() const;
    /** Executed events observed via beginEvent. */
    std::uint64_t eventsSeen() const;
    /** Label of the most recently executed event (nullptr before any). */
    const char *lastEventLabel() const;
    /** Records written per kind. */
    std::uint64_t kindCount(FlightKind kind) const;
    /** RWQ entries carried by all rwq_flush records. */
    std::uint64_t rwqEntriesFlushed() const;

    // ---- Published queue counters (beginRun/beginEvent/endRun) ---------
    std::uint64_t queueDepth() const;
    std::uint64_t queuePeakDepth() const;
    std::uint64_t queueScheduled() const;
    std::uint64_t queueProcessed() const;

    // ---- Ring access ---------------------------------------------------
    std::size_t capacity() const { return _capacity; }
    /** The live ring, for lock-free readers (fatal.cc). */
    const Slot *slots() const { return _slots.get(); }
    /** Next claim ticket (== recordsWritten(); for ring iteration). */
    std::uint64_t nextSeq() const;

    /**
     * Decode the ring oldest-first (allocates; tests and non-signal
     * reporting). Slots observed mid-overwrite are skipped.
     */
    std::vector<Record> snapshot() const;

    // ---- Invariant-registry bridge -------------------------------------
    /**
     * Route InvariantRegistry through this recorder: every evaluation
     * becomes an `invariant` record and failure messages gain
     * " while executing '<label>' at tick N (event #M)" context. The
     * hooks are process-global single slots -- one bridged recorder at
     * a time (the CLI's; parallel sweep shards do not bridge).
     */
    void installInvariantHooks();
    /** Clear the registry hooks if this recorder installed them. */
    void removeInvariantHooks();

  private:
    static std::string describeContext(const FlightRecorder &recorder);

    std::size_t _capacity;
    std::size_t _mask;
    std::unique_ptr<Slot[]> _slots;

    std::atomic<std::uint64_t> _next{0};
    std::atomic<Tick> _last_tick{0};
    std::atomic<const char *> _last_event_label{nullptr};
    std::atomic<std::uint64_t> _events{0};
    std::atomic<std::uint64_t> _kind_counts[flight_kind_count];
    std::atomic<std::uint64_t> _rwq_entries{0};

    std::atomic<std::uint64_t> _queue_depth{0};
    std::atomic<std::uint64_t> _queue_peak{0};
    std::atomic<std::uint64_t> _queue_scheduled{0};
    std::atomic<std::uint64_t> _queue_processed{0};

    /** The attached run's queue; sim thread only (confinement). */
    const common::EventQueue *_queue = nullptr;
    bool _hooks_installed = false;
};

} // namespace fp::obs

#endif // FP_OBS_FLIGHT_RECORDER_HH
