#include "obs/latency.hh"

#include "common/logging.hh"

namespace fp::obs {

const char *
flushReasonName(std::uint8_t reason)
{
    switch (reason) {
      case 0: return "window-violation";
      case 1: return "payload-full";
      case 2: return "entries-full";
      case 3: return "release";
      case 4: return "load-conflict";
      case 5: return "atomic-conflict";
      default: return "none";
    }
}

std::size_t
latencySizeClass(std::uint32_t size)
{
    if (size <= 4)
        return 0;
    if (size <= 8)
        return 1;
    if (size <= 16)
        return 2;
    if (size <= 32)
        return 3;
    if (size <= 64)
        return 4;
    return 5;
}

const char *
latencySizeClassName(std::size_t i)
{
    static const char *names[latency_size_class_count] = {
        "le4", "le8", "le16", "le32", "le64", "le128",
    };
    fp_assert(i < latency_size_class_count, "bad latency size class");
    return names[i];
}

LatencyCollector::LatencyCollector()
{
    // Power-of-two edges from 4 ns to 2^36 ps (~69 ms), plus a zero
    // bucket for same-tick stages. Percentile interpolation clamps to
    // the observed min/max, so coarse upper buckets stay accurate.
    _edges.push_back(0.0);
    for (int k = 12; k <= 36; ++k)
        _edges.push_back(static_cast<double>(Tick{1} << k));
    beginRun(0);
}

void
LatencyCollector::initHistogram(common::Histogram &hist)
{
    hist.init(_edges);
}

std::uint64_t
LatencyCollector::messages() const
{
    fp::MutexLock lock(_mu);
    return static_cast<std::uint64_t>(_messages.value());
}

std::uint64_t
LatencyCollector::stores() const
{
    fp::MutexLock lock(_mu);
    return static_cast<std::uint64_t>(_stores.value());
}

std::uint64_t
LatencyCollector::violations() const
{
    fp::MutexLock lock(_mu);
    return static_cast<std::uint64_t>(_violations.value());
}

void
LatencyCollector::beginRun(std::uint32_t num_gpus)
{
    fp::MutexLock lock(_mu);
    rebuildLocked(num_gpus);
}

void
LatencyCollector::rebuildLocked(std::uint32_t num_gpus)
{
    _dst.clear();
    _group.reset();
    _messages.reset();
    _stores.reset();
    _violations.reset();

    initHistogram(_residency);
    initHistogram(_serialization);
    initHistogram(_propagation);
    initHistogram(_ingress_wait);
    initHistogram(_total);
    _residency_by_reason.assign(flush_reason_count, common::Histogram{});
    for (auto &hist : _residency_by_reason)
        initHistogram(hist);
    _total_by_size.assign(latency_size_class_count, common::Histogram{});
    for (auto &hist : _total_by_size)
        initHistogram(hist);

    _group = std::make_unique<common::StatGroup>("latency");
    _group->registerScalar("messages", &_messages,
                           "wire messages with a full milestone trail");
    _group->registerScalar("stores", &_stores,
                           "remote stores with per-store issue stamps");
    _group->registerScalar("milestone_violations", &_violations,
                           "messages dropped: missing or non-monotonic "
                           "milestones");
    _group->registerHistogram("residency_ticks", &_residency,
                              "RWQ coalescing residency per store "
                              "(fabric inject - issue)");
    _group->registerHistogram("serialization_ticks", &_serialization,
                              "source queueing + first-link TX "
                              "(tx end - inject)");
    _group->registerHistogram("propagation_ticks", &_propagation,
                              "switch + downlink flight "
                              "(ingress arrival - tx end)");
    _group->registerHistogram("ingress_wait_ticks", &_ingress_wait,
                              "ingress HBM drain queueing "
                              "(commit - arrival)");
    _group->registerHistogram("total_ticks", &_total,
                              "store end-to-end latency "
                              "(commit - issue)");
    for (std::size_t r = 0; r < flush_reason_count; ++r) {
        _group->registerHistogram(
            std::string("residency_ticks.")
                + flushReasonName(static_cast<std::uint8_t>(r)),
            &_residency_by_reason[r],
            "coalescing residency for this flush trigger");
    }
    for (std::size_t s = 0; s < latency_size_class_count; ++s) {
        _group->registerHistogram(
            std::string("total_ticks.") + latencySizeClassName(s),
            &_total_by_size[s],
            "store end-to-end latency for this size class");
    }

    _dst.resize(num_gpus);
    for (std::uint32_t g = 0; g < num_gpus; ++g) {
        auto &dst = _dst[g];
        initHistogram(dst.residency);
        initHistogram(dst.serialization);
        initHistogram(dst.propagation);
        initHistogram(dst.ingress_wait);
        initHistogram(dst.total);
        dst.group = std::make_unique<common::StatGroup>(
            "latency.dst" + std::to_string(g));
        dst.group->registerHistogram("residency_ticks", &dst.residency,
                                     "coalescing residency per store");
        dst.group->registerHistogram("serialization_ticks",
                                     &dst.serialization,
                                     "source queueing + first-link TX");
        dst.group->registerHistogram("propagation_ticks", &dst.propagation,
                                     "switch + downlink flight");
        dst.group->registerHistogram("ingress_wait_ticks", &dst.ingress_wait,
                                     "ingress HBM drain queueing");
        dst.group->registerHistogram("total_ticks", &dst.total,
                                     "store end-to-end latency");
    }
}

void
LatencyCollector::record(GpuId dst, const MsgTimestamps &t, Tick arrival,
                         Tick commit, const StoreStamp *stamps,
                         std::size_t count)
{
    fp::MutexLock lock(_mu);
    bool stamped = t.created != no_stamp && t.tx_start != no_stamp
        && t.tx_end != no_stamp;
    bool monotonic = stamped && t.created <= t.tx_start
        && t.tx_start <= t.tx_end && t.tx_end <= arrival
        && arrival <= commit;
    if (!monotonic) {
        ++_violations;
        return;
    }

    DstStats *per_dst = dst < _dst.size() ? &_dst[dst] : nullptr;

    auto serialization = static_cast<double>(t.tx_end - t.created);
    auto propagation = static_cast<double>(arrival - t.tx_end);
    auto ingress_wait = static_cast<double>(commit - arrival);
    _serialization.sample(serialization);
    _propagation.sample(propagation);
    _ingress_wait.sample(ingress_wait);
    if (per_dst) {
        per_dst->serialization.sample(serialization);
        per_dst->propagation.sample(propagation);
        per_dst->ingress_wait.sample(ingress_wait);
    }
    ++_messages;

    for (std::size_t i = 0; i < count; ++i) {
        const StoreStamp &stamp = stamps[i];
        if (stamp.issue == no_stamp || stamp.issue > t.created) {
            ++_violations;
            continue;
        }
        auto residency = static_cast<double>(t.created - stamp.issue);
        auto total = static_cast<double>(commit - stamp.issue);
        _residency.sample(residency);
        _total.sample(total);
        if (t.flush_reason < flush_reason_count)
            _residency_by_reason[t.flush_reason].sample(residency);
        _total_by_size[latencySizeClass(stamp.size)].sample(total);
        if (per_dst) {
            per_dst->residency.sample(residency);
            per_dst->total.sample(total);
        }
        ++_stores;
    }
}

} // namespace fp::obs
