#include "obs/flight_recorder.hh"

#include <algorithm>

#include "check/invariant.hh"
#include "common/logging.hh"

namespace fp::obs {

const char *
toString(FlightKind kind)
{
    switch (kind) {
      case FlightKind::none: return "none";
      case FlightKind::event: return "event";
      case FlightKind::rwq_flush: return "rwq_flush";
      case FlightKind::fabric_inject: return "fabric_inject";
      case FlightKind::invariant: return "invariant";
      case FlightKind::note: return "note";
    }
    return "?";
}

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : _capacity(roundUpPow2(std::max<std::size_t>(capacity, 2))),
      _mask(_capacity - 1),
      _slots(new Slot[_capacity])
{
    for (auto &count : _kind_counts)
        count.store(0, std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder()
{
    removeInvariantHooks();
}

void
FlightRecorder::record(FlightKind kind, Tick tick, const char *label,
                       std::uint64_t a, std::uint64_t b)
{
    // Wait-free: claim a ticket, fill the slot with relaxed stores.
    // Readers (watchdog thread, signal handler) validate seq and may
    // observe one torn in-flight slot -- accepted, see header.
    std::uint64_t seq =
        _next.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &slot = _slots[(seq - 1) & _mask];
    slot.kind.store(static_cast<std::uint8_t>(kind),
                    std::memory_order_relaxed);
    slot.tick.store(tick, std::memory_order_relaxed);
    slot.label.store(label, std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_relaxed);

    _last_tick.store(tick, std::memory_order_relaxed);
    _kind_counts[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    if (kind == FlightKind::rwq_flush)
        _rwq_entries.fetch_add(a, std::memory_order_relaxed);
}

void
FlightRecorder::beginEvent(const common::Event &event)
{
    record(FlightKind::event, event.when(), event.description(),
           static_cast<std::uint64_t>(event.priority()),
           event.sequence());
    _last_event_label.store(event.description(),
                            std::memory_order_relaxed);
    _events.fetch_add(1, std::memory_order_relaxed);
    // Publish the queue's progress counters so the watchdog can tell a
    // wedged handler (depth > 0, counters frozen) from idleness. Plain
    // member reads on the sim thread, relaxed stores for the readers.
    if (_queue) {
        _queue_depth.store(_queue->depth(), std::memory_order_relaxed);
        _queue_peak.store(_queue->peakDepth(),
                          std::memory_order_relaxed);
        _queue_scheduled.store(_queue->eventsScheduled(),
                               std::memory_order_relaxed);
        _queue_processed.store(_queue->eventsProcessed(),
                               std::memory_order_relaxed);
    }
}

void
FlightRecorder::endEvent(const common::Event &event)
{
    (void)event;
}

void
FlightRecorder::beginRun(const common::EventQueue *queue)
{
    fp_assert(queue != nullptr, "flight recorder needs a queue");
    _queue = queue;
    record(FlightKind::note, queue->now(), "recorder.begin_run");
}

void
FlightRecorder::endRun()
{
    if (!_queue)
        return;
    _queue_depth.store(_queue->depth(), std::memory_order_relaxed);
    _queue_peak.store(_queue->peakDepth(), std::memory_order_relaxed);
    _queue_scheduled.store(_queue->eventsScheduled(),
                           std::memory_order_relaxed);
    _queue_processed.store(_queue->eventsProcessed(),
                           std::memory_order_relaxed);
    record(FlightKind::note, _queue->now(), "recorder.end_run");
    _queue = nullptr;
}

std::uint64_t
FlightRecorder::recordsWritten() const
{
    return _next.load(std::memory_order_relaxed);
}

Tick
FlightRecorder::lastTick() const
{
    return _last_tick.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::eventsSeen() const
{
    return _events.load(std::memory_order_relaxed);
}

const char *
FlightRecorder::lastEventLabel() const
{
    return _last_event_label.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::kindCount(FlightKind kind) const
{
    return _kind_counts[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::rwqEntriesFlushed() const
{
    return _rwq_entries.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::queueDepth() const
{
    return _queue_depth.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::queuePeakDepth() const
{
    return _queue_peak.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::queueScheduled() const
{
    return _queue_scheduled.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::queueProcessed() const
{
    return _queue_processed.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::nextSeq() const
{
    return _next.load(std::memory_order_relaxed);
}

std::vector<FlightRecorder::Record>
FlightRecorder::snapshot() const
{
    std::vector<Record> out;
    std::uint64_t next = nextSeq();
    std::uint64_t first =
        next > _capacity ? next - _capacity + 1 : 1;
    out.reserve(next >= first ? next - first + 1 : 0);
    for (std::uint64_t seq = first; seq <= next; ++seq) {
        const Slot &slot = _slots[(seq - 1) & _mask];
        Record rec;
        rec.seq = slot.seq.load(std::memory_order_relaxed);
        if (rec.seq != seq)
            continue; // overwritten (or still in flight) -- drop it
        rec.tick = slot.tick.load(std::memory_order_relaxed);
        rec.label = slot.label.load(std::memory_order_relaxed);
        rec.a = slot.a.load(std::memory_order_relaxed);
        rec.b = slot.b.load(std::memory_order_relaxed);
        rec.kind = static_cast<FlightKind>(
            slot.kind.load(std::memory_order_relaxed));
        out.push_back(rec);
    }
    return out;
}

std::string
FlightRecorder::describeContext(const FlightRecorder &recorder)
{
    const char *label = recorder.lastEventLabel();
    if (!label)
        return {};
    return std::string(" while executing '") + label + "' at tick " +
           std::to_string(recorder.lastTick()) + " (event #" +
           std::to_string(recorder.eventsSeen()) + ")";
}

void
FlightRecorder::installInvariantHooks()
{
    check::InvariantRegistry::instance().setCheckHook(
        [](void *self, const char *name) {
            auto *recorder = static_cast<FlightRecorder *>(self);
            recorder->record(FlightKind::invariant,
                             recorder->lastTick(), name);
        },
        this);
    check::InvariantRegistry::instance().setContextHook(
        [](void *self) {
            return describeContext(
                *static_cast<const FlightRecorder *>(self));
        },
        this);
    _hooks_installed = true;
}

void
FlightRecorder::removeInvariantHooks()
{
    if (!_hooks_installed)
        return;
    check::InvariantRegistry::instance().setCheckHook(nullptr, nullptr);
    check::InvariantRegistry::instance().setContextHook(nullptr,
                                                       nullptr);
    _hooks_installed = false;
}

} // namespace fp::obs
