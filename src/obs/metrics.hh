/**
 * @file
 * Metrics export: snapshotting every registered StatGroup to JSON.
 *
 * Simulated components own their StatGroups, and a run's component
 * tree is torn down when the driver returns - so the exporter must
 * capture while the system is alive. The driver calls
 * MetricsCapture::captureNow() just before teardown; the CLI then
 * composes the captured groups with the sampler's time series into the
 * final stats document (schema in docs/observability.md).
 */

#ifndef FP_OBS_METRICS_HH
#define FP_OBS_METRICS_HH

#include <ostream>
#include <string>

#include "obs/sampler.hh"

namespace fp::obs {

class FlowCollector;
class Profiler;

class MetricsCapture
{
  public:
    /**
     * Serialize every StatGroup currently in the process-wide
     * MetricsRegistry into the stored snapshot (a JSON array of group
     * objects), replacing any previous snapshot.
     */
    void captureNow();

    bool captured() const { return !_groups_json.empty(); }

    /** The captured groups array; "[]" when nothing was captured. */
    const std::string &groupsJson() const;

    /**
     * Write the complete stats document: schema version, build
     * provenance, the captured groups, (when @p sampler is non-null)
     * its time series, (when @p profiler is non-null) the host-side
     * self-profiling section, and (when @p flows is non-null) the
     * fabric flow-observability section. Provenance is constant per
     * binary and the `host` / `fabric` keys only appear when
     * explicitly requested, so digesting the default-argument document
     * stays stable across instrumented and plain runs.
     *
     * @p partial marks a document captured from an interrupted run
     * (SIGINT): the frame gains `"partial":true` right after the
     * schema version so downstream tooling never mistakes a truncated
     * run for a complete one. Complete documents omit the key, keeping
     * historical digests stable.
     */
    void writeDocument(std::ostream &os,
                       const PeriodicSampler *sampler = nullptr,
                       const Profiler *profiler = nullptr,
                       const FlowCollector *flows = nullptr,
                       bool partial = false) const;

  private:
    std::string _groups_json;
};

} // namespace fp::obs

#endif // FP_OBS_METRICS_HH
