#include "obs/health.hh"

#include <chrono>
#include <iostream>
#include <sstream>

#include "check/invariant.hh"
#include "common/alloc_counters.hh"
#include "obs/fatal.hh"
#include "obs/flight_recorder.hh"

namespace fp::obs {

namespace {

/**
 * Host wall-clock in nanoseconds. Like obs/profiler.cc, measuring host
 * time is this component's whole job: heartbeats, stall thresholds and
 * ETAs are about the machine, never about simulated ticks, and nothing
 * here feeds back into the DES.
 */
std::uint64_t
nowNs()
{
    // fp-lint: allow(wall-clock) host-time measurement is this file's job
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        // fp-lint: allow(wall-clock) host-time measurement is this file's job
        std::chrono::duration_cast<std::chrono::nanoseconds>(now)
            .count());
}

} // namespace

HealthMonitor::HealthMonitor() : HealthMonitor(Options()) {}

HealthMonitor::HealthMonitor(Options options)
    : _options(std::move(options))
{
    if (_options.heartbeat_ns == 0)
        _options.heartbeat_ns = 1'000'000'000ULL;
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::attachRecorder(const FlightRecorder *recorder)
{
    _recorder.store(recorder, std::memory_order_release);
}

void
HealthMonitor::setSweepProgress(const std::atomic<std::uint64_t> *done,
                                const std::atomic<std::uint64_t> *total)
{
    _sweep_done.store(done, std::memory_order_release);
    _sweep_total.store(total, std::memory_order_release);
}

void
HealthMonitor::start()
{
    if (_running)
        return;
    if (!_options.heartbeat_path.empty()) {
        _out.open(_options.heartbeat_path,
                  std::ios::out | std::ios::trunc);
        if (!_out)
            std::cerr << "health: cannot open heartbeat sink '"
                      << _options.heartbeat_path << "'\n";
    }
    _start_ns = 0; // evaluate() re-arms on its first sample
    _last_progress_ns = 0;
    _last_signature = 0;
    _last_beat_ns = 0;
    _last_beat_events = 0;
    _in_stall = false;
    {
        fp::MutexLock lock(_mu);
        _stop = false;
    }
    _thread = fp::Thread([this] { threadMain(); });
    _running = true;
}

void
HealthMonitor::stop()
{
    if (!_running)
        return;
    {
        fp::MutexLock lock(_mu);
        _stop = true;
        _cv.notify_all();
    }
    _thread.join();
    _running = false;
    if (_out.is_open())
        _out.close();
}

std::uint64_t
HealthMonitor::heartbeats() const
{
    return _heartbeats.load(std::memory_order_relaxed);
}

std::uint64_t
HealthMonitor::stallsDetected() const
{
    return _stalls.load(std::memory_order_relaxed);
}

void
HealthMonitor::threadMain()
{
    for (;;) {
        {
            fp::MutexLock lock(_mu);
            if (_stop)
                return;
            _cv.waitFor(_mu, _options.heartbeat_ns);
            if (_stop)
                return;
        }
        evaluate(nowNs());
    }
}

/**
 * Everything the recorder and sweep publish that counts as forward
 * progress, folded into one monotonic number: if it changes, the run
 * moved; if it freezes while wall-clock advances, something is wrong.
 */
std::uint64_t
HealthMonitor::progressSignature() const
{
    std::uint64_t sig = 0;
    if (const FlightRecorder *recorder =
            _recorder.load(std::memory_order_acquire)) {
        sig += recorder->recordsWritten();
        sig += recorder->queueProcessed();
    }
    if (const auto *done = _sweep_done.load(std::memory_order_acquire))
        sig += done->load(std::memory_order_relaxed);
    return sig;
}

bool
HealthMonitor::evaluate(std::uint64_t now_ns)
{
    if (_start_ns == 0) {
        _start_ns = now_ns;
        _last_progress_ns = now_ns;
        _last_signature = progressSignature();
    }

    std::uint64_t signature = progressSignature();
    if (signature != _last_signature) {
        _last_signature = signature;
        _last_progress_ns = now_ns;
        _in_stall = false; // progress resumed; re-arm the episode
    }

    if (_last_beat_ns == 0 ||
        now_ns - _last_beat_ns >= _options.heartbeat_ns)
        emitHeartbeat(now_ns);

    std::uint64_t threshold = _options.stall_ns != 0
                                  ? _options.stall_ns
                                  : 10 * _options.heartbeat_ns;
    std::uint64_t stalled_ns = now_ns - _last_progress_ns;
    if (_in_stall || stalled_ns < threshold)
        return false;

    const FlightRecorder *recorder =
        _recorder.load(std::memory_order_acquire);
    if (!recorder)
        return false; // no progress source -- cannot diagnose

    const char *mode = nullptr;
    if (recorder->queueDepth() > 0) {
        // Wall-clock advanced, tick and events-executed froze, and the
        // queue still holds work: a handler (or the host around it) is
        // wedged.
        mode = "wedged";
    } else {
        const auto *done = _sweep_done.load(std::memory_order_acquire);
        const auto *total =
            _sweep_total.load(std::memory_order_acquire);
        if (done && total &&
            done->load(std::memory_order_relaxed) <
                total->load(std::memory_order_relaxed))
            mode = "quiescent"; // queue drained, shards outstanding
    }
    if (!mode)
        return false; // idle with nothing pending: legitimately done

    _in_stall = true;
    _stalls.fetch_add(1, std::memory_order_relaxed);
    emitStall(now_ns, mode, stalled_ns);
    return true;
}

void
HealthMonitor::emitHeartbeat(std::uint64_t now_ns)
{
    const FlightRecorder *recorder =
        _recorder.load(std::memory_order_acquire);

    std::uint64_t events =
        recorder ? recorder->eventsSeen() : 0;
    std::uint64_t events_per_sec = 0;
    if (_last_beat_ns != 0 && now_ns > _last_beat_ns &&
        events >= _last_beat_events) {
        std::uint64_t delta_ns = now_ns - _last_beat_ns;
        events_per_sec =
            (events - _last_beat_events) * 1'000'000'000ULL / delta_ns;
    }

    std::ostringstream line;
    line << "{\"kind\":\"heartbeat\",\"schema_version\":1"
         << ",\"uptime_ns\":" << (now_ns - _start_ns)
         << ",\"events\":" << events
         << ",\"events_per_sec\":" << events_per_sec;
    if (recorder) {
        line << ",\"tick\":" << recorder->lastTick()
             << ",\"queue\":{\"depth\":" << recorder->queueDepth()
             << ",\"peak\":" << recorder->queuePeakDepth()
             << ",\"scheduled\":" << recorder->queueScheduled()
             << ",\"processed\":" << recorder->queueProcessed() << "}"
             << ",\"rwq\":{\"flushes\":"
             << recorder->kindCount(FlightKind::rwq_flush)
             << ",\"entries\":" << recorder->rwqEntriesFlushed() << "}";
    }
    line << ",\"invariant_checks\":"
         << check::InvariantRegistry::instance().totalChecks()
         << ",\"alloc\":{\"lambda_events\":"
         << common::AllocCounters::lambda_events.load(
                std::memory_order_relaxed)
         << ",\"wire_messages\":"
         << common::AllocCounters::wire_messages.load(
                std::memory_order_relaxed)
         << "},\"rss_hwm_kb\":" << rssHighWaterKb();
    const auto *done = _sweep_done.load(std::memory_order_acquire);
    const auto *total = _sweep_total.load(std::memory_order_acquire);
    if (done && total) {
        std::uint64_t d = done->load(std::memory_order_relaxed);
        std::uint64_t t = total->load(std::memory_order_relaxed);
        std::uint64_t eta_ns = 0;
        if (d > 0 && t > d)
            eta_ns = (now_ns - _start_ns) / d * (t - d);
        line << ",\"sweep\":{\"done\":" << d << ",\"total\":" << t
             << ",\"eta_ns\":" << eta_ns << "}";
    }
    line << "}";

    std::string text = line.str();
    writeLine(text);
    fatal::setLastHeartbeat(text.c_str(), text.size());
    _heartbeats.fetch_add(1, std::memory_order_relaxed);
    _last_beat_ns = now_ns;
    _last_beat_events = events;
}

void
HealthMonitor::emitStall(std::uint64_t now_ns, const char *mode,
                         std::uint64_t stalled_ns)
{
    const FlightRecorder *recorder =
        _recorder.load(std::memory_order_acquire);

    std::ostringstream line;
    line << "{\"kind\":\"stall\",\"schema_version\":1,\"mode\":\""
         << mode << "\",\"stalled_ns\":" << stalled_ns
         << ",\"uptime_ns\":" << (now_ns - _start_ns);
    if (recorder) {
        line << ",\"tick\":" << recorder->lastTick()
             << ",\"events\":" << recorder->eventsSeen()
             << ",\"queue\":{\"depth\":" << recorder->queueDepth()
             << ",\"peak\":" << recorder->queuePeakDepth()
             << ",\"scheduled\":" << recorder->queueScheduled()
             << ",\"processed\":" << recorder->queueProcessed() << "}";
        if (const char *label = recorder->lastEventLabel())
            line << ",\"last_event\":\"" << label << "\"";
    }
    const auto *done = _sweep_done.load(std::memory_order_acquire);
    const auto *total = _sweep_total.load(std::memory_order_acquire);
    if (done && total)
        line << ",\"sweep\":{\"done\":"
             << done->load(std::memory_order_relaxed)
             << ",\"total\":" << total->load(std::memory_order_relaxed)
             << "}";
    line << "}";
    writeLine(line.str());
}

void
HealthMonitor::writeLine(const std::string &line)
{
    if (_out.is_open()) {
        _out << line << '\n';
        _out.flush();
    } else {
        std::cerr << line << '\n';
    }
}

std::uint64_t
HealthMonitor::rssHighWaterKb()
{
    std::ifstream status("/proc/self/status");
    std::string key;
    while (status >> key) {
        if (key == "VmHWM:") {
            std::uint64_t kb = 0;
            status >> kb;
            return kb;
        }
        status.ignore(4096, '\n');
    }
    return 0;
}

} // namespace fp::obs
