/**
 * @file
 * Message-lifecycle latency attribution.
 *
 * Every remote store carries a simulated-time milestone trail as it
 * moves through the pipeline: issue at the warp coalescer / egress
 * port, fabric injection (which for FinePack traffic is the partition
 * flush, tagged with the FlushReason), first-link serialization, and
 * finally ingress arrival + commit to functional memory. The stamps
 * ride the wire message as plain data (obs::MsgTimestamps +
 * obs::StoreStamp) so the producer layers (interconnect, finepack,
 * gpu) stay free of any sink dependency; the consumer is the
 * LatencyCollector, wired into gpu::IngressPort by the driver when
 * SimConfig::latency is set.
 *
 * Stage definitions (docs/latency.md):
 *   residency      created  - issue    per store; RWQ coalescing wait
 *   serialization  tx_end   - created  source queueing + wire TX
 *   propagation    arrival  - tx_end   switch hop + downlink + flight
 *   ingress_wait   commit   - arrival  ingress HBM drain queueing
 *   total          commit   - issue    per store, end to end
 */

#ifndef FP_OBS_LATENCY_HH
#define FP_OBS_LATENCY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/sync.h"
#include "common/types.hh"

namespace fp::obs {

/** Sentinel for "milestone not stamped yet". */
inline constexpr Tick no_stamp = max_tick;

/** Sentinel flush reason: message did not come from an RWQ flush. */
inline constexpr std::uint8_t no_flush_reason = 0xff;

/** Number of finepack::FlushReason values (cross-checked by tests). */
inline constexpr std::size_t flush_reason_count = 6;

/**
 * Human-readable flush-reason label matching finepack::toString()
 * (duplicated here because obs cannot depend on finepack; a unit test
 * asserts the two tables agree).
 */
const char *flushReasonName(std::uint8_t reason);

/** Per-store issue stamp, carried through coalescing into the packet. */
struct StoreStamp
{
    Tick issue = no_stamp;      ///< store issued at the egress port
    std::uint32_t size = 0;     ///< store payload bytes
};

/**
 * Message-level milestones, stamped in simulated time as the wire
 * message moves source -> fabric -> destination. Plain data: cheap to
 * default-construct and dead weight when no collector is attached.
 */
struct MsgTimestamps
{
    Tick created = no_stamp;    ///< injected into the fabric
    Tick tx_start = no_stamp;   ///< first link starts serializing
    Tick tx_end = no_stamp;     ///< first link finished serializing
    std::uint64_t flow_id = 0;  ///< nonzero: trace flow event chain id
    std::uint8_t flush_reason = no_flush_reason;
};

/**
 * Aggregates per-message / per-store latency stages into StatGroup
 * histograms: a system-wide "latency" group (stage histograms plus
 * residency-by-flush-reason and total-by-size-class breakdowns) and
 * one "latency.dst<g>" group per destination GPU. All values are in
 * ticks (picoseconds); buckets are powers of two from 4 ns to ~68 ms.
 *
 * Thread safety: beginRun() and record() serialize on an internal
 * fp::Mutex, so a collector may be fed from concurrent ingress ports
 * (future parallel DES shards). The histogram accessors return
 * references without locking: read them only once the run has
 * quiesced (no record() in flight), which is when the driver and the
 * tests consult them.
 */
class LatencyCollector
{
  public:
    LatencyCollector();

    LatencyCollector(const LatencyCollector &) = delete;
    LatencyCollector &operator=(const LatencyCollector &) = delete;

    /** Reset and (re)build the per-destination groups for a run. */
    void beginRun(std::uint32_t num_gpus) FP_EXCLUDES(_mu);

    /**
     * Record one delivered message. @p stamps may be empty (DMA /
     * write-combine paths have no per-store issue stamps and only
     * contribute the message-level stages).
     */
    FP_COLD void record(GpuId dst, const MsgTimestamps &t, Tick arrival,
                Tick commit, const StoreStamp *stamps,
                std::size_t count) FP_EXCLUDES(_mu);

    std::uint64_t messages() const FP_EXCLUDES(_mu);
    std::uint64_t stores() const FP_EXCLUDES(_mu);
    /** Messages dropped for missing / non-monotonic milestones. */
    std::uint64_t violations() const FP_EXCLUDES(_mu);

    // Stage histograms: quiescent-read only (see class comment).
    const common::Histogram &residency() const { return _residency; }
    const common::Histogram &serialization() const { return _serialization; }
    const common::Histogram &propagation() const { return _propagation; }
    const common::Histogram &ingressWait() const { return _ingress_wait; }
    const common::Histogram &total() const { return _total; }

  private:
    /** Stage histograms for one destination GPU. */
    struct DstStats
    {
        std::unique_ptr<common::StatGroup> group;
        common::Histogram residency;
        common::Histogram serialization;
        common::Histogram propagation;
        common::Histogram ingress_wait;
        common::Histogram total;
    };

    void initHistogram(common::Histogram &hist);
    void rebuildLocked(std::uint32_t num_gpus) FP_REQUIRES(_mu);

    mutable fp::Mutex _mu;
    std::unique_ptr<common::StatGroup> _group;
    common::Scalar _messages FP_GUARDED_BY(_mu);
    common::Scalar _stores FP_GUARDED_BY(_mu);
    common::Scalar _violations FP_GUARDED_BY(_mu);
    // Histograms and per-destination groups are mutated only under
    // _mu (record/beginRun); the unlocked accessors above require the
    // run to have quiesced, so they stay unannotated by design.
    common::Histogram _residency;
    common::Histogram _serialization;
    common::Histogram _propagation;
    common::Histogram _ingress_wait;
    common::Histogram _total;
    /** Residency by FlushReason, indexed by the enum's value. */
    std::vector<common::Histogram> _residency_by_reason;
    /** Store end-to-end latency by size class (<=4 B .. <=128 B). */
    std::vector<common::Histogram> _total_by_size;
    std::vector<DstStats> _dst FP_GUARDED_BY(_mu);
    std::vector<double> _edges;
};

/** Size-class index for a store of @p size bytes: 0 => <=4 B ... */
std::size_t latencySizeClass(std::uint32_t size);

/** Number of store size classes. */
inline constexpr std::size_t latency_size_class_count = 6;

/** Label for size class @p i, e.g. "le8". */
const char *latencySizeClassName(std::size_t i);

} // namespace fp::obs

#endif // FP_OBS_LATENCY_HH
