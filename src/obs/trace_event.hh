/**
 * @file
 * Low-overhead event tracer emitting Chrome trace-event JSON.
 *
 * Components across the FinePack pipeline (remote write queue,
 * packetizer, egress/ingress ports, interconnect links, sim driver)
 * hold an optional TraceSink pointer; a null pointer means tracing is
 * off and every hook reduces to one branch. Recording an event copies
 * a small POD - names and categories must be string literals (or
 * otherwise outlive the sink) so the hot path never formats strings or
 * allocates; only counter tracks, whose names are built once at
 * registration, carry a dynamic name.
 *
 * The output loads directly in chrome://tracing and Perfetto:
 * duration events (ph "X", complete spans with ts+dur), instant events
 * (ph "i"), counter tracks (ph "C"), and process/thread metadata
 * (ph "M"). Timestamps convert from simulation ticks (1 tick = 1 ps)
 * to the trace format's microseconds at write time.
 */

#ifndef FP_OBS_TRACE_EVENT_HH
#define FP_OBS_TRACE_EVENT_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace fp::obs {

/** How much of the pipeline gets traced. */
enum class TraceDetail : std::uint8_t {
    off,    ///< no tracing (equivalent to a null TraceSink)
    flush,  ///< flushes, packets, phases, counters
    full,   ///< everything, including per-store instants and link spans
};

const char *toString(TraceDetail detail);

/** Conventional process ids inside a trace: pid 0 is the driver. */
inline constexpr std::uint32_t trace_pid_sim = 0;

/**
 * pid of the host self-profiler timeline (obs::Profiler::emitTrace).
 * Far above any GPU pid so the wall-clock timeline sorts last and is
 * unmistakably not part of the simulated system.
 */
inline constexpr std::uint32_t trace_pid_host = 0xffffu;

/** pid of GPU @p g (pid 0 is reserved for the sim driver). */
FP_HOT inline std::uint32_t
tracePidGpu(GpuId g)
{
    return g + 1;
}

/** Conventional thread lanes within one GPU process. */
enum TraceLane : std::uint32_t {
    lane_main = 0,     ///< kernel / iteration phases
    lane_rwq = 1,      ///< remote write queue events
    lane_packetizer = 2,
    lane_ingress = 3,
    lane_uplink = 4,
    lane_downlink = 5,
};

/** A numeric argument attached to an event (key must be static). */
struct TraceArg
{
    const char *key = nullptr;
    double value = 0.0;
};

/** Collects trace events in memory; write() renders the JSON. */
class TraceSink
{
  public:
    explicit TraceSink(TraceDetail detail = TraceDetail::flush)
        : _detail(detail)
    {}

    FP_HOT TraceDetail detail() const { return _detail; }
    /** True when per-store / per-message hooks should fire. */
    FP_HOT bool full() const { return _detail == TraceDetail::full; }

    using Arg = TraceArg;

    /** Complete duration span (ph "X"). */
    FP_COLD void complete(std::uint32_t pid, std::uint32_t tid, const char *name,
                  const char *cat, Tick ts, Tick dur, Arg a0 = {},
                  Arg a1 = {}, Arg a2 = {});

    /** Instant event (ph "i", thread scope). */
    FP_COLD void instant(std::uint32_t pid, std::uint32_t tid, const char *name,
                 const char *cat, Tick ts, Arg a0 = {}, Arg a1 = {},
                 Arg a2 = {});

    /** Counter sample (ph "C"); @p track may be a dynamic string. */
    FP_COLD void counter(std::uint32_t pid, const std::string &track, Tick ts,
                 double value);

    /**
     * Flow events (ph "s" / "t" / "f") chaining slices across
     * processes; all events sharing @p id render as one arrowed flow
     * in Perfetto. Each binds to the enclosing ph-"X" slice on the
     * same pid/tid at @p ts.
     */
    FP_COLD void flowStart(std::uint32_t pid, std::uint32_t tid, const char *name,
                   const char *cat, Tick ts, std::uint64_t id);
    FP_COLD void flowStep(std::uint32_t pid, std::uint32_t tid, const char *name,
                  const char *cat, Tick ts, std::uint64_t id);
    FP_COLD void flowEnd(std::uint32_t pid, std::uint32_t tid, const char *name,
                 const char *cat, Tick ts, std::uint64_t id);

    /** Process / thread naming metadata (ph "M"). */
    void processName(std::uint32_t pid, const std::string &name);
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    std::size_t eventCount() const { return _events.size(); }

    /** Render the trace as a Chrome trace-event JSON object. */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        char ph = 'X';
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        Tick ts = 0;
        Tick dur = 0;
        /** Static name; empty dyn_name means name is authoritative. */
        const char *name = nullptr;
        const char *cat = nullptr;
        /** Dynamic name (counter tracks, metadata string values). */
        std::string dyn_name;
        /** Flow chain id (ph "s"/"t"/"f" only). */
        std::uint64_t id = 0;
        std::array<Arg, 3> args{};
    };

    void push(Event event) { _events.push_back(std::move(event)); }

    TraceDetail _detail;
    std::vector<Event> _events;
};

} // namespace fp::obs

#endif // FP_OBS_TRACE_EVENT_HH
