// fp-lint: async-signal-safe
//
// This translation unit runs inside signal handlers: the marker above
// places the whole file under fp_lint.py's signal-safety rule, which
// bans allocation (malloc / operator new / make_*), stdio/iostream
// formatting, std::string, exceptions, and the logging macros. The
// only I/O primitive here is write(2); integers are formatted by hand;
// every piece of handler-visible state is a static atomic or a buffer
// filled at install() time. See src/obs/fatal.hh for the semantics.

#include "obs/fatal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>

#include "common/interrupt.hh"
#include "common/logging.hh"
#include "obs/flight_recorder.hh"

namespace fp::obs::fatal {

namespace {

constexpr std::size_t max_path = 512;
constexpr std::size_t max_provenance = 2048;
constexpr std::size_t max_heartbeat = 4096;

// Handler-visible state: buffers are written at install() /
// setLastHeartbeat() time; the handler only loads atomics and reads
// the buffers they publish.
// fp-lint: allow(global-state) install-time-written buffers published via atomics; signal handlers read lock-free by design
struct
{
    std::atomic<const FlightRecorder *> recorder{nullptr};
    char path[max_path] = {0};
    std::atomic<bool> have_path{false};
    char provenance[max_provenance] = {0};
    std::atomic<bool> have_provenance{false};
    // Heartbeat double buffer: the monitor fills the non-published
    // side, then flips hb_ready (-1 = none yet). A reader overlapping
    // two subsequent flips can see a torn line; post-mortems are
    // diagnostic, so that bounded race is accepted over locking.
    char heartbeat[2][max_heartbeat];
    std::atomic<int> hb_ready{-1};
    std::atomic<bool> installed{false};
    std::atomic<unsigned> sigint_seen{0};
    std::atomic<unsigned> postmortems{0};
} state;

void
copyBounded(char *dst, std::size_t cap, const char *src)
{
    std::size_t i = 0;
    for (; src && src[i] && i + 1 < cap; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

/**
 * Buffered write(2) with manual formatting -- the only output path in
 * this file. Best effort: a failed write is ignored (there is nothing
 * a dying process can do about it).
 */
struct SigWriter
{
    int fd = 2;
    char buf[1024];
    std::size_t len = 0;

    void
    flushBuf()
    {
        if (len == 0)
            return;
        ssize_t rc = ::write(fd, buf, len);
        (void)rc;
        len = 0;
    }

    void
    put(char c)
    {
        if (len == sizeof(buf))
            flushBuf();
        buf[len++] = c;
    }

    void
    raw(const char *s)
    {
        for (; *s; ++s)
            put(*s);
    }

    void
    u64(std::uint64_t v)
    {
        char digits[20];
        std::size_t n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n != 0)
            put(digits[--n]);
    }

    /** JSON string-body escaping: quotes, backslashes, control chars. */
    void
    escaped(const char *s)
    {
        for (; s && *s; ++s) {
            char c = *s;
            if (c == '"' || c == '\\') {
                put('\\');
                put(c);
            } else if (c == '\n') {
                put('\\');
                put('n');
            } else if (static_cast<unsigned char>(c) < 0x20) {
                put(' ');
            } else {
                put(c);
            }
        }
    }

    void
    kvU64(const char *key, std::uint64_t value)
    {
        put(',');
        put('"');
        raw(key);
        raw("\":");
        u64(value);
    }
};

void
writeRing(SigWriter &w, const FlightRecorder &recorder)
{
    const FlightRecorder::Slot *slots = recorder.slots();
    std::uint64_t cap = recorder.capacity();
    std::uint64_t next = recorder.nextSeq();
    std::uint64_t first = next > cap ? next - cap + 1 : 1;
    bool any = false;
    w.raw(",\"ring\":[");
    for (std::uint64_t seq = first; seq <= next; ++seq) {
        const FlightRecorder::Slot &slot = slots[(seq - 1) & (cap - 1)];
        if (slot.seq.load(std::memory_order_relaxed) != seq)
            continue; // being overwritten right now -- skip
        if (any)
            w.put(',');
        any = true;
        w.raw("{\"seq\":");
        w.u64(seq);
        w.raw(",\"kind\":\"");
        w.raw(toString(static_cast<FlightKind>(
            slot.kind.load(std::memory_order_relaxed))));
        w.raw("\",\"tick\":");
        w.u64(slot.tick.load(std::memory_order_relaxed));
        w.raw(",\"label\":\"");
        w.escaped(slot.label.load(std::memory_order_relaxed));
        w.put('"');
        w.kvU64("a", slot.a.load(std::memory_order_relaxed));
        w.kvU64("b", slot.b.load(std::memory_order_relaxed));
        w.put('}');
    }
    w.put(']');
}

void
writeDocument(int fd, const char *reason)
{
    SigWriter w;
    w.fd = fd;
    w.raw("{\"kind\":\"postmortem\",\"schema_version\":1,\"reason\":\"");
    w.escaped(reason);
    w.raw("\",\"provenance\":");
    w.raw(state.have_provenance.load(std::memory_order_acquire)
              ? state.provenance
              : "{}");
    const FlightRecorder *recorder =
        state.recorder.load(std::memory_order_acquire);
    if (recorder) {
        w.kvU64("records_written", recorder->recordsWritten());
        w.kvU64("events_seen", recorder->eventsSeen());
        w.kvU64("last_tick", recorder->lastTick());
        w.raw(",\"queue\":{\"depth\":");
        w.u64(recorder->queueDepth());
        w.kvU64("peak", recorder->queuePeakDepth());
        w.kvU64("scheduled", recorder->queueScheduled());
        w.kvU64("processed", recorder->queueProcessed());
        w.raw("},\"counts\":{\"events\":");
        w.u64(recorder->kindCount(FlightKind::event));
        w.kvU64("rwq_flushes",
                recorder->kindCount(FlightKind::rwq_flush));
        w.kvU64("fabric_injects",
                recorder->kindCount(FlightKind::fabric_inject));
        w.kvU64("invariants",
                recorder->kindCount(FlightKind::invariant));
        w.put('}');
        writeRing(w, *recorder);
    }
    w.raw(",\"last_heartbeat\":");
    int hb = state.hb_ready.load(std::memory_order_acquire);
    if (hb >= 0)
        w.raw(state.heartbeat[hb]);
    else
        w.raw("null");
    w.raw("}\n");
    w.flushBuf();
}

void
dumpPostmortem(const char *reason)
{
    state.postmortems.fetch_add(1, std::memory_order_relaxed);
    if (state.have_path.load(std::memory_order_acquire)) {
        int fd = ::open(state.path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            writeDocument(fd, reason);
            ::close(fd);
            return;
        }
    }
    writeDocument(2, reason);
}

void
handleSignal(int sig)
{
    if (sig == SIGINT) {
        // First ^C: dump, raise the cooperative flag, and return so
        // the simulation unwinds and partial stats get flushed.
        // Second ^C: the operator means it.
        if (state.sigint_seen.fetch_add(1, std::memory_order_relaxed) >
            0)
            ::_exit(common::exit_code::interrupted);
        dumpPostmortem("signal:SIGINT");
        common::interrupt::request();
        return;
    }
    if (sig == SIGTERM) {
        dumpPostmortem("signal:SIGTERM");
        ::_exit(common::exit_code::terminated);
    }
    dumpPostmortem(sig == SIGSEGV ? "signal:SIGSEGV"
                                  : "signal:SIGABRT");
    // Restore the default action and re-raise: the core dump / abort
    // still happens, with our document already written.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

void
install(const Config &config)
{
    state.recorder.store(config.recorder, std::memory_order_release);
    if (config.postmortem_path && config.postmortem_path[0] != '\0') {
        copyBounded(state.path, max_path, config.postmortem_path);
        state.have_path.store(true, std::memory_order_release);
    } else {
        state.have_path.store(false, std::memory_order_release);
    }
    if (config.provenance_json && config.provenance_json[0] != '\0') {
        copyBounded(state.provenance, max_provenance,
                    config.provenance_json);
        state.have_provenance.store(true, std::memory_order_release);
    } else {
        state.have_provenance.store(false, std::memory_order_release);
    }
    if (state.installed.exchange(true))
        return; // reconfigured; handlers already registered
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = handleSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    for (int sig : {SIGINT, SIGTERM, SIGSEGV, SIGABRT})
        sigaction(sig, &action, nullptr);
}

void
setLastHeartbeat(const char *json, std::size_t length)
{
    if (length + 1 > max_heartbeat)
        length = max_heartbeat - 1;
    int current = state.hb_ready.load(std::memory_order_relaxed);
    int target = current == 0 ? 1 : 0;
    std::memcpy(state.heartbeat[target], json, length);
    state.heartbeat[target][length] = '\0';
    state.hb_ready.store(target, std::memory_order_release);
}

void
writePostmortem(const char *reason)
{
    dumpPostmortem(reason);
}

unsigned
postmortemsWritten()
{
    return state.postmortems.load(std::memory_order_relaxed);
}

} // namespace fp::obs::fatal
