#include "obs/sampler.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace fp::obs {

PeriodicSampler::PeriodicSampler(Tick interval) : _interval(interval)
{
    fp_assert(interval > 0, "sample interval must be positive");
}

void
PeriodicSampler::beginRun()
{
    _gauges.clear();
    _series.clear();
    _primed = false;
    _next_sample = 0;
}

void
PeriodicSampler::endRun()
{
    _gauges.clear();
}

void
PeriodicSampler::addTrack(std::string name, std::function<double()> fn)
{
    fp_assert(fn != nullptr, "null sampler gauge");
    _gauges.push_back(std::move(fn));
    _series.push_back(Series{std::move(name), {}, {}});
}

void
PeriodicSampler::sampleAt(Tick now)
{
    for (std::size_t i = 0; i < _gauges.size(); ++i) {
        double v = _gauges[i]();
        _series[i].ticks.push_back(now);
        _series[i].values.push_back(v);
        if (_trace)
            _trace->counter(trace_pid_sim, _series[i].name, now, v);
    }
}

void
PeriodicSampler::pump(common::EventQueue &queue)
{
    if (_gauges.empty()) {
        queue.run();
        return;
    }
    if (!_primed) {
        // Baseline point before the first event of the run.
        sampleAt(queue.now());
        _next_sample = queue.now() + _interval;
        _primed = true;
    }
    while (!queue.empty()) {
        Tick next_event = queue.nextEventTick();
        // Boundaries at or before the next event sample the state left
        // by all strictly-earlier events ("state at start of tick").
        while (_next_sample <= next_event) {
            sampleAt(_next_sample);
            _next_sample += _interval;
        }
        queue.step();
    }
}

void
PeriodicSampler::dumpJson(common::JsonWriter &json) const
{
    json.beginObject();
    json.kv("interval_ticks", _interval);
    json.key("tracks");
    json.beginObject();
    for (const Series &s : _series) {
        json.key(s.name);
        json.beginObject();
        json.key("ticks");
        json.beginArray();
        for (Tick t : s.ticks)
            json.value(t);
        json.endArray();
        json.key("values");
        json.beginArray();
        for (double v : s.values)
            json.value(v);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

} // namespace fp::obs
