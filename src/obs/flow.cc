#include "obs/flow.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/trace_event.hh"

namespace fp::obs {

namespace {

/**
 * Window budget per link: beyond this many bins the window width
 * doubles and bins merge pairwise, bounding timeline memory on long
 * runs while conserving totals.
 */
constexpr std::size_t max_windows = 1024;

const char *
toString(FlowCollector::LinkKind kind)
{
    return kind == FlowCollector::LinkKind::uplink ? "uplink"
                                                   : "downlink";
}

} // namespace

FlowCollector::FlowCollector(Tick window_ticks)
    : _initial_window_ticks(std::max<Tick>(window_ticks, 1)),
      _window_ticks(_initial_window_ticks)
{}

void
FlowCollector::beginRun(std::uint32_t num_gpus)
{
    fp::MutexLock lock(_mu);
    _num_gpus = num_gpus;
    _window_ticks = _initial_window_ticks;
    _end_tick = 0;
    _max_event_tick = 0;
    _links.clear();
    _flows.assign(static_cast<std::size_t>(num_gpus) * num_gpus,
                  FlowStats{});
    _matrix.assign(static_cast<std::size_t>(num_gpus) * num_gpus, 0);
}

void
FlowCollector::endRun(Tick end_tick)
{
    fp::MutexLock lock(_mu);
    _end_tick = std::max(end_tick, _max_event_tick);
}

std::uint32_t
FlowCollector::registerLink(std::string name, LinkKind kind, GpuId gpu)
{
    fp::MutexLock lock(_mu);
    LinkStats link;
    link.name = std::move(name);
    link.kind = kind;
    link.gpu = gpu;
    _links.push_back(std::move(link));
    return static_cast<std::uint32_t>(_links.size() - 1);
}

void
FlowCollector::recordInject(GpuId src, GpuId dst,
                            std::uint64_t wire_bytes,
                            std::uint64_t payload_bytes,
                            std::uint64_t data_bytes,
                            std::uint64_t packed_stores)
{
    fp::MutexLock lock(_mu);
    fp_assert(src < _num_gpus && dst < _num_gpus,
              "flow inject outside the fabric: ", src, " -> ", dst);
    FlowStats &flow = _flows[flowIndex(src, dst)];
    ++flow.injected_msgs;
    flow.injected_wire_bytes += wire_bytes;
    flow.injected_payload_bytes += payload_bytes;
    flow.injected_data_bytes += data_bytes;
    flow.packed_stores += packed_stores;
}

void
FlowCollector::recordCommit(GpuId src, GpuId dst,
                            std::uint64_t wire_bytes,
                            std::uint64_t data_bytes)
{
    fp::MutexLock lock(_mu);
    fp_assert(src < _num_gpus && dst < _num_gpus,
              "flow commit outside the fabric: ", src, " -> ", dst);
    FlowStats &flow = _flows[flowIndex(src, dst)];
    ++flow.committed_msgs;
    flow.committed_wire_bytes += wire_bytes;
    flow.committed_data_bytes += data_bytes;
}

void
FlowCollector::reserveWindows(Tick last_tick)
{
    while (last_tick / _window_ticks >= max_windows) {
        _window_ticks *= 2;
        for (LinkStats &link : _links) {
            std::vector<Window> merged((link.windows.size() + 1) / 2);
            for (std::size_t w = 0; w < link.windows.size(); ++w) {
                Window &into = merged[w / 2];
                const Window &from = link.windows[w];
                into.busy_ticks += from.busy_ticks;
                into.wait_msg_ticks += from.wait_msg_ticks;
                into.msgs += from.msgs;
                into.wire_bytes += from.wire_bytes;
            }
            link.windows = std::move(merged);
        }
    }
}

void
FlowCollector::chargeWindows(LinkStats &link, Tick begin, Tick end,
                             bool busy)
{
    if (end <= begin)
        return;
    std::size_t first = begin / _window_ticks;
    std::size_t last = (end - 1) / _window_ticks;
    if (link.windows.size() <= last)
        link.windows.resize(last + 1);
    for (std::size_t w = first; w <= last; ++w) {
        Tick lo = static_cast<Tick>(w) * _window_ticks;
        Tick hi = lo + _window_ticks;
        Tick overlap = std::min(end, hi) - std::max(begin, lo);
        if (busy)
            link.windows[w].busy_ticks += overlap;
        else
            link.windows[w].wait_msg_ticks += overlap;
    }
}

void
FlowCollector::recordTransmit(const LinkTransmit &tx)
{
    fp::MutexLock lock(_mu);
    fp_assert(tx.link < _links.size(), "unregistered link id ", tx.link);
    fp_assert(tx.src < _num_gpus && tx.dst < _num_gpus,
              "flow transmit outside the fabric: ", tx.src, " -> ",
              tx.dst);
    fp_assert(tx.enqueued <= tx.start,
              "transmit before enqueue on link ", tx.link);

    Tick end = tx.start + tx.tx_ticks;
    _max_event_tick = std::max(_max_event_tick, end);
    reserveWindows(end > 0 ? end - 1 : 0);

    LinkStats &link = _links[tx.link];
    ++link.msgs;
    link.wire_bytes += tx.wire_bytes;
    link.payload_bytes += tx.payload_bytes;
    link.data_bytes += tx.data_bytes;
    link.busy_ticks += tx.tx_ticks;

    chargeWindows(link, tx.start, end, /*busy=*/true);
    std::size_t start_window = tx.start / _window_ticks;
    link.windows[start_window].msgs += 1;
    link.windows[start_window].wire_bytes += tx.wire_bytes;

    Tick wait = tx.start - tx.enqueued;
    if (wait == 0)
        return;
    link.wait_ticks += wait;
    chargeWindows(link, tx.enqueued, tx.start, /*busy=*/false);

    FlowStats &delayed = _flows[flowIndex(tx.src, tx.dst)];
    if (link.kind == LinkKind::uplink)
        delayed.uplink_wait_ticks += wait;
    else
        delayed.downlink_wait_ticks += wait;
    delayed.delay_suffered_ticks += wait;

    // Charge the wait to the flow occupying the link. A wait implies a
    // prior transmission, so the occupant is normally known; if a
    // collector attached mid-run it is not, and the flow self-charges
    // to keep the matrix reconciling with wait_ticks.
    GpuId by_src = tx.have_occupant ? tx.occupant_src : tx.src;
    GpuId by_dst = tx.have_occupant ? tx.occupant_dst : tx.dst;
    fp_assert(by_src < _num_gpus && by_dst < _num_gpus,
              "occupant outside the fabric: ", by_src, " -> ", by_dst);
    _flows[flowIndex(by_src, by_dst)].delay_caused_ticks += wait;
    link.interference[{flowIndex(by_src, by_dst),
                       flowIndex(tx.src, tx.dst)}] += wait;
    _matrix[static_cast<std::size_t>(by_src) * _num_gpus + tx.src] +=
        wait;
}

const FlowCollector::FlowStats &
FlowCollector::flow(GpuId src, GpuId dst) const
{
    fp_assert(src < _num_gpus && dst < _num_gpus,
              "flow outside the fabric: ", src, " -> ", dst);
    return _flows[flowIndex(src, dst)];
}

Tick
FlowCollector::interferenceTicks(GpuId by, GpuId on) const
{
    fp_assert(by < _num_gpus && on < _num_gpus,
              "matrix cell outside the fabric: ", by, " x ", on);
    return _matrix[static_cast<std::size_t>(by) * _num_gpus + on];
}

Tick
FlowCollector::totalBusyTicks() const
{
    Tick total = 0;
    for (const LinkStats &link : _links)
        total += link.busy_ticks;
    return total;
}

Tick
FlowCollector::totalWaitTicks() const
{
    Tick total = 0;
    for (const LinkStats &link : _links)
        total += link.wait_ticks;
    return total;
}

std::uint64_t
FlowCollector::activeFlows() const
{
    std::uint64_t active = 0;
    for (const FlowStats &flow : _flows)
        active += flow.active() ? 1 : 0;
    return active;
}

double
FlowCollector::linkUtilization(const LinkStats &link) const
{
    if (_end_tick == 0)
        return 0.0;
    return static_cast<double>(link.busy_ticks) /
           static_cast<double>(_end_tick);
}

double
FlowCollector::packingEfficiency() const
{
    std::uint64_t wire = 0;
    std::uint64_t data = 0;
    for (const FlowStats &flow : _flows) {
        wire += flow.injected_wire_bytes;
        data += flow.injected_data_bytes;
    }
    return wire ? static_cast<double>(data) / static_cast<double>(wire)
                : 0.0;
}

Tick
FlowCollector::windowLength(std::size_t w) const
{
    Tick lo = static_cast<Tick>(w) * _window_ticks;
    if (_end_tick <= lo)
        return _window_ticks;
    return std::min(_end_tick - lo, _window_ticks);
}

std::vector<std::uint32_t>
FlowCollector::hottestLinks(std::size_t k) const
{
    std::vector<std::uint32_t> order(_links.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  if (_links[a].busy_ticks != _links[b].busy_ticks)
                      return _links[a].busy_ticks > _links[b].busy_ticks;
                  return _links[a].name < _links[b].name;
              });
    if (order.size() > k)
        order.resize(k);
    return order;
}

std::string
FlowCollector::flowName(GpuId src, GpuId dst)
{
    return "g" + std::to_string(src) + "->g" + std::to_string(dst);
}

void
FlowCollector::dumpJson(common::JsonWriter &json) const
{
    json.beginObject();
    json.kv("gpus", _num_gpus);
    json.kv("window_ticks", _window_ticks);
    json.kv("end_tick", _end_tick);

    std::uint64_t injected_msgs = 0;
    std::uint64_t injected_wire = 0;
    std::uint64_t injected_data = 0;
    std::uint64_t committed_msgs = 0;
    std::uint64_t committed_wire = 0;
    for (const FlowStats &flow : _flows) {
        injected_msgs += flow.injected_msgs;
        injected_wire += flow.injected_wire_bytes;
        injected_data += flow.injected_data_bytes;
        committed_msgs += flow.committed_msgs;
        committed_wire += flow.committed_wire_bytes;
    }
    std::uint64_t transits = 0;
    std::uint64_t transit_wire = 0;
    for (const LinkStats &link : _links) {
        transits += link.msgs;
        transit_wire += link.wire_bytes;
    }

    json.key("totals");
    json.beginObject();
    json.kv("active_flows", activeFlows());
    json.kv("busy_ticks", totalBusyTicks());
    json.kv("committed_msgs", committed_msgs);
    json.kv("committed_wire_bytes", committed_wire);
    json.kv("injected_data_bytes", injected_data);
    json.kv("injected_msgs", injected_msgs);
    json.kv("injected_wire_bytes", injected_wire);
    json.kv("link_transits", transits);
    json.kv("link_wire_bytes", transit_wire);
    json.kv("packing_efficiency", packingEfficiency());
    json.kv("wait_ticks", totalWaitTicks());
    json.endObject();

    // Links keyed by name in sorted order (names are unique per
    // fabric; the map re-sorts whatever order registration used).
    std::map<std::string, const LinkStats *> by_name;
    for (const LinkStats &link : _links)
        by_name.emplace(link.name, &link);
    json.key("links");
    json.beginObject();
    for (const auto &[name, link] : by_name) {
        json.key(name);
        json.beginObject();
        json.kv("busy_ticks", link->busy_ticks);
        json.kv("data_bytes", link->data_bytes);
        json.kv("gpu", link->gpu);
        json.key("interference");
        json.beginObject();
        for (const auto &[flows, ticks] : link->interference) {
            json.kv(flowName(flows.first / _num_gpus,
                             flows.first % _num_gpus) +
                        "|" +
                        flowName(flows.second / _num_gpus,
                                 flows.second % _num_gpus),
                    ticks);
        }
        json.endObject();
        json.kv("kind", toString(link->kind));
        json.kv("msgs", link->msgs);
        json.kv("payload_bytes", link->payload_bytes);
        json.kv("utilization", linkUtilization(*link));
        json.kv("wait_ticks", link->wait_ticks);
        json.key("windows");
        json.beginObject();
        json.key("msgs");
        json.beginArray();
        for (const Window &w : link->windows)
            json.value(w.msgs);
        json.endArray();
        json.key("queue_depth");
        json.beginArray();
        for (std::size_t w = 0; w < link->windows.size(); ++w) {
            Tick len = windowLength(w);
            json.value(len ? static_cast<double>(
                                 link->windows[w].wait_msg_ticks) /
                                 static_cast<double>(len)
                           : 0.0);
        }
        json.endArray();
        json.key("utilization");
        json.beginArray();
        for (std::size_t w = 0; w < link->windows.size(); ++w) {
            Tick len = windowLength(w);
            json.value(len ? static_cast<double>(
                                 link->windows[w].busy_ticks) /
                                 static_cast<double>(len)
                           : 0.0);
        }
        json.endArray();
        json.key("wire_bytes");
        json.beginArray();
        for (const Window &w : link->windows)
            json.value(w.wire_bytes);
        json.endArray();
        json.endObject();
        json.kv("wire_bytes", link->wire_bytes);
        json.endObject();
    }
    json.endObject();

    // Active flows keyed "g<src>->g<dst>" in sorted order.
    std::map<std::string, const FlowStats *> flows_by_name;
    for (GpuId src = 0; src < _num_gpus; ++src) {
        for (GpuId dst = 0; dst < _num_gpus; ++dst) {
            const FlowStats &flow = _flows[flowIndex(src, dst)];
            if (flow.active())
                flows_by_name.emplace(flowName(src, dst), &flow);
        }
    }
    json.key("flows");
    json.beginObject();
    for (const auto &[name, flow] : flows_by_name) {
        json.key(name);
        json.beginObject();
        json.kv("committed_data_bytes", flow->committed_data_bytes);
        json.kv("committed_msgs", flow->committed_msgs);
        json.kv("committed_wire_bytes", flow->committed_wire_bytes);
        json.kv("delay_caused_ticks", flow->delay_caused_ticks);
        json.kv("delay_suffered_ticks", flow->delay_suffered_ticks);
        json.kv("downlink_wait_ticks", flow->downlink_wait_ticks);
        json.kv("injected_data_bytes", flow->injected_data_bytes);
        json.kv("injected_msgs", flow->injected_msgs);
        json.kv("injected_payload_bytes", flow->injected_payload_bytes);
        json.kv("injected_wire_bytes", flow->injected_wire_bytes);
        json.kv("packed_stores", flow->packed_stores);
        json.kv("packing_efficiency",
                flow->injected_wire_bytes
                    ? static_cast<double>(flow->injected_data_bytes) /
                          static_cast<double>(flow->injected_wire_bytes)
                    : 0.0);
        json.kv("uplink_wait_ticks", flow->uplink_wait_ticks);
        json.endObject();
    }
    json.endObject();

    // Fabric-wide interference matrix: row = delayer source GPU,
    // column = delayed source GPU. Array order is index order, so the
    // emission is deterministic without any key sorting.
    json.key("matrix");
    json.beginObject();
    json.key("delay_ticks");
    json.beginArray();
    for (GpuId by = 0; by < _num_gpus; ++by) {
        json.beginArray();
        for (GpuId on = 0; on < _num_gpus; ++on)
            json.value(interferenceTicks(by, on));
        json.endArray();
    }
    json.endArray();
    json.kv("order", "delayer_src_gpu x delayed_src_gpu");
    json.endObject();

    json.endObject();
}

void
FlowCollector::emitTrace(TraceSink &sink) const
{
    for (const LinkStats &link : _links) {
        if (link.windows.empty())
            continue;
        for (std::size_t w = 0; w < link.windows.size(); ++w) {
            Tick ts = static_cast<Tick>(w) * _window_ticks;
            Tick len = windowLength(w);
            double util =
                len ? static_cast<double>(link.windows[w].busy_ticks) /
                          static_cast<double>(len)
                    : 0.0;
            double depth =
                len ? static_cast<double>(
                          link.windows[w].wait_msg_ticks) /
                          static_cast<double>(len)
                    : 0.0;
            sink.counter(trace_pid_sim, link.name + ".util", ts, util);
            sink.counter(trace_pid_sim, link.name + ".queued", ts,
                         depth);
        }
        // Close out the tracks so the last window doesn't extend
        // forever in the viewer.
        sink.counter(trace_pid_sim, link.name + ".util", _end_tick,
                     0.0);
        sink.counter(trace_pid_sim, link.name + ".queued", _end_tick,
                     0.0);
    }
}

} // namespace fp::obs
