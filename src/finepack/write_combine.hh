/**
 * @file
 * A cacheline-granularity write-combining buffer: the "write combining
 * alone" baseline of Section VI-A and the coalescing mechanism used by
 * GPS (Section VI-B). It merges same-line stores like the FinePack
 * remote write queue, but every flushed line is emitted as its own
 * ordinary memory-write TLP covering the full 128 B line, so unwritten
 * line bytes travel as wasted payload and every line pays full protocol
 * overhead.
 */

#ifndef FP_FINEPACK_WRITE_COMBINE_HH
#define FP_FINEPACK_WRITE_COMBINE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "finepack/remote_write_queue.hh"
#include "interconnect/message.hh"
#include "interconnect/protocol.hh"

namespace fp::finepack {

/** A line leaving the write-combining buffer. */
struct WcLine
{
    QueueEntry entry;
    /** Program stores folded into this line while buffered. */
    std::uint64_t folded = 0;
};

/**
 * One destination's write-combining buffer with LRU replacement.
 * Flushing a line produces a full-cacheline write message.
 */
class WriteCombineBuffer
{
  public:
    /**
     * @param src        Issuing GPU.
     * @param dst        Destination GPU.
     * @param num_lines  Buffer capacity in cache lines.
     * @param line_bytes Cache line size.
     */
    WriteCombineBuffer(GpuId src, GpuId dst, std::uint32_t num_lines = 64,
                       std::uint32_t line_bytes = 128);

    /**
     * Buffer one store; returns the evicted line when the insertion
     * displaced the LRU line.
     */
    FP_HOT std::optional<WcLine> push(const icn::Store &store);

    /** Flush all buffered lines (synchronization), in address order. */
    FP_HOT std::vector<WcLine> flushAll();

    /** Wrap a flushed line into a full-line write message. */
    FP_HOT icn::WireMessagePtr lineToMessage(const WcLine &line,
                                      const icn::PcieProtocol &protocol)
        const;

    std::size_t lineCount() const { return _lru.size(); }
    std::uint32_t lineBytes() const { return _line_bytes; }
    std::uint64_t storesPushed() const { return _stores_pushed; }
    std::uint64_t bytesElided() const { return _bytes_elided; }

  private:
    struct Slot
    {
        WcLine line;
        std::list<Addr>::iterator lru_it;
    };

    GpuId _src;
    GpuId _dst;
    std::uint32_t _num_lines;
    std::uint32_t _line_bytes;

    /** LRU order: front = most recently written. */
    std::list<Addr> _lru;
    std::unordered_map<Addr, Slot> _lines;

    std::uint64_t _stores_pushed = 0;
    std::uint64_t _bytes_elided = 0;
};

} // namespace fp::finepack

#endif // FP_FINEPACK_WRITE_COMBINE_HH
