#include "finepack/config_packet.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

ConfigPacketModel::ConfigPacketModel(const FinePackConfig &config,
                                     const icn::PcieProtocol &protocol)
    : ConfigPacketModel(config, protocol, Params{})
{}

ConfigPacketModel::ConfigPacketModel(const FinePackConfig &config,
                                     const icn::PcieProtocol &protocol,
                                     Params params)
    : _config(config), _protocol(protocol), _params(params)
{
    _config.validate();
}

std::uint64_t
ConfigPacketModel::wireBytes(std::uint64_t num_stores,
                             std::uint64_t store_bytes) const
{
    fp_assert(num_stores > 0, "empty burst");
    // One configuration packet establishes the shared header state, then
    // every store is an independent (shortened) TLP: per-store link-level
    // framing/sequence/CRC plus the residual compressed transaction bytes
    // and its DW-padded payload.
    std::uint64_t per_store =
        _params.per_store_link_bytes + _params.per_store_txn_bytes +
        common::alignUp(store_bytes, 4);
    return _params.config_packet_bytes + num_stores * per_store;
}

std::uint64_t
ConfigPacketModel::finePackWireBytes(std::uint64_t num_stores,
                                     std::uint64_t store_bytes) const
{
    fp_assert(num_stores > 0, "empty burst");
    // One outer TLP: full protocol overhead once, then a sub-header plus
    // raw (1 B aligned) data per store; payload DW-padded at the end.
    std::uint64_t payload =
        num_stores * (_config.subheader_bytes + store_bytes);
    fp_assert(payload <= _config.max_payload,
              "burst does not fit one FinePack transaction");
    return _protocol.tlpOverhead() + common::alignUp(payload, 4);
}

double
ConfigPacketModel::relativeInefficiency(std::uint64_t num_stores,
                                        std::uint64_t store_bytes) const
{
    double config_bytes =
        static_cast<double>(wireBytes(num_stores, store_bytes));
    double finepack_bytes =
        static_cast<double>(finePackWireBytes(num_stores, store_bytes));
    return config_bytes / finepack_bytes - 1.0;
}

} // namespace fp::finepack
