#include "finepack/packetizer.hh"

#include "check/invariant.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

FinePackTransaction
Packetizer::packetize(const FlushedPartition &flushed) const
{
    fp_assert(!flushed.empty(), "packetizing an empty flush");

    FinePackTransaction txn(_src, flushed.dst, flushed.window_base,
                            _config);
    txn.reserve(flushed.entries.size());
    for (const QueueEntry &entry : flushed.entries) {
        for (const auto &[start, len] : entry.runs()) {
            std::vector<std::uint8_t> data;
            if (entry.has_data) {
                data.assign(entry.data.begin() + start,
                            entry.data.begin() + start + len);
            }
            txn.append(entry.line_addr + start, len, std::move(data));
        }
    }

    // Byte conservation across packetization: every enabled byte of
    // every entry appears in exactly one sub-packet, each entry yields
    // at least one sub-packet, and the whole result respects the outer
    // payload budget the queue accounted for.
    auto entry_bytes = [&flushed]() {
        std::uint64_t total = 0;
        for (const QueueEntry &entry : flushed.entries)
            total += entry.validBytes();
        return total;
    };
    FP_INVARIANT(txn.dataBytes() == entry_bytes(),
                 "packetizer-byte-conservation",
                 "transaction carries ", txn.dataBytes(),
                 " data bytes but the flush held ", entry_bytes());
    FP_INVARIANT(txn.size() >= flushed.entries.size(),
                 "packetizer-run-splitting",
                 "fewer sub-packets (", txn.size(), ") than entries (",
                 flushed.entries.size(), ")");
    FP_INVARIANT(txn.rawPayloadBytes() <= _config.max_payload,
                 "packetizer-payload-budget",
                 "payload ", txn.rawPayloadBytes(),
                 " exceeds the outer budget ", _config.max_payload);

    ++_packets;
    _sub_packets += txn.size();
    _stores_packed += flushed.packed_store_count;
    return txn;
}

icn::WireMessagePtr
Packetizer::toMessage(const FlushedPartition &flushed,
                      const icn::PcieProtocol &protocol) const
{
    FinePackTransaction txn = packetize(flushed);

    // What the same runs would cost as standalone TLPs (the "write
    // combining alone" comparison of Section VI-A), plus the coarser
    // per-line interpretation (one TLP per line, carrying its written
    // span).
    for (const SubPacket &sub : txn.subPackets())
        _wc_alone_bytes += protocol.storeWireBytes(
            txn.baseAddr() + sub.offset, sub.length);
    for (const QueueEntry &entry : flushed.entries) {
        auto [first, last] = entry.writtenSpan();
        _wc_line_bytes += protocol.storeWireBytes(
            entry.line_addr + first, last - first);
    }
    // Aggregation without address compression: same outer TLP, but
    // each run carries a full 64-bit address + 16-bit length (10 B)
    // instead of the compressed sub-header.
    constexpr std::uint64_t full_subheader = 10;
    _uncompressed_bytes +=
        protocol.tlpOverhead() +
        common::alignUp(txn.dataBytes() + txn.size() * full_subheader,
                        4);

    auto msg = icn::makeWireMessage();
    msg->kind = icn::MessageKind::finepack_packet;
    msg->src = _src;
    msg->dst = flushed.dst;
    msg->payload_bytes = txn.wirePayloadBytes();
    msg->header_bytes = protocol.tlpOverhead();
    msg->data_bytes = txn.dataBytes();
    msg->stores = txn.unpack();
    msg->packed_store_count = flushed.packed_store_count;
    msg->timing.flush_reason = static_cast<std::uint8_t>(flushed.reason);
    msg->store_stamps = flushed.store_stamps;

    fp_assert(msg->payload_bytes <= protocol.maxPayload(),
              "FinePack payload exceeds the PCIe max payload");
    if (_observer)
        _observer->packetEmitted(txn, *msg);
    return msg;
}

std::vector<icn::Store>
DePacketizer::unpack(const FinePackTransaction &txn) const
{
    std::vector<icn::Store> stores = txn.unpack();
    _stores_unpacked += stores.size();
    return stores;
}

} // namespace fp::finepack
