#include "finepack/nvlink_packing.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

NvlinkFinePackModel::NvlinkFinePackModel(icn::NvlinkProtocol protocol)
    : _protocol(std::move(protocol))
{}

std::uint64_t
NvlinkFinePackModel::wireBytes(const FinePackTransaction &txn) const
{
    fp_assert(!txn.empty(), "empty transaction on the wire");
    const auto &params = _protocol.params();

    // The FinePack payload (sub-headers + data, 1 B aligned) pads to
    // whole flits. No byte-enable flit: sub-headers already carry
    // exact extents. NVLink's max payload bounds each packet, so large
    // transactions split, each piece paying its own header flit(s).
    std::uint64_t payload = txn.rawPayloadBytes();
    std::uint64_t packets =
        common::divCeil(payload, params.max_payload);
    std::uint64_t header_bytes =
        packets * params.header_flits * params.flit_bytes;
    std::uint64_t data_flit_bytes = 0;
    std::uint64_t remaining = payload;
    while (remaining > 0) {
        std::uint64_t piece =
            std::min<std::uint64_t>(remaining, params.max_payload);
        data_flit_bytes +=
            common::divCeil(piece, params.flit_bytes) *
            params.flit_bytes;
        remaining -= piece;
    }
    return header_bytes + data_flit_bytes;
}

std::uint64_t
NvlinkFinePackModel::rawWireBytes(const FinePackTransaction &txn) const
{
    std::uint64_t total = 0;
    for (const SubPacket &sub : txn.subPackets())
        total += _protocol.storeWireBytes(txn.baseAddr() + sub.offset,
                                          sub.length);
    return total;
}

double
NvlinkFinePackModel::packingGain(const FinePackTransaction &txn) const
{
    return static_cast<double>(rawWireBytes(txn)) /
           static_cast<double>(wireBytes(txn));
}

} // namespace fp::finepack
