#include "finepack/remote_write_queue.hh"

#include <algorithm>

#include "check/invariant.hh"
#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

const char *
toString(FlushReason reason)
{
    switch (reason) {
      case FlushReason::window_violation: return "window-violation";
      case FlushReason::payload_full: return "payload-full";
      case FlushReason::entries_full: return "entries-full";
      case FlushReason::release: return "release";
      case FlushReason::load_conflict: return "load-conflict";
      case FlushReason::atomic_conflict: return "atomic-conflict";
    }
    return "?";
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
QueueEntry::runs() const
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> result;
    std::uint32_t i = 0;
    const auto line = static_cast<std::uint32_t>(mask.size());
    while (i < line) {
        if (!mask.test(i)) {
            ++i;
            continue;
        }
        std::uint32_t start = i;
        while (i < line && mask.test(i))
            ++i;
        result.emplace_back(start, i - start);
    }
    return result;
}

std::uint64_t
QueueEntry::packedCost(const FinePackConfig &config) const
{
    // Direct bitset walk rather than runs(): this accounting runs per
    // buffered store (twice on a queue hit), so it must not build a
    // run vector the way the flush-time paths do.
    std::uint64_t cost = 0;
    std::uint32_t i = 0;
    const auto line = static_cast<std::uint32_t>(mask.size());
    while (i < line) {
        if (!mask.test(i)) {
            ++i;
            continue;
        }
        std::uint32_t start = i;
        while (i < line && mask.test(i))
            ++i;
        cost += config.subheader_bytes + (i - start);
    }
    return cost;
}

std::pair<std::uint32_t, std::uint32_t>
QueueEntry::writtenSpan() const
{
    const auto line = static_cast<std::uint32_t>(mask.size());
    std::uint32_t first = 0;
    while (first < line && !mask.test(first))
        ++first;
    std::uint32_t last = line;
    while (last > first && !mask.test(last - 1))
        --last;
    return {first, last};
}

// ---------------------------------------------------------------------
// RwqWindow
// ---------------------------------------------------------------------

RwqWindow::RwqWindow(const FinePackConfig &config,
                     std::uint32_t entry_budget)
    : _config(config),
      _entry_budget(entry_budget),
      _available_payload(config.max_payload)
{
    fp_assert(entry_budget > 0, "window needs at least one entry");
}

Addr
RwqWindow::windowLo() const
{
    fp_assert(_base_register != invalid_addr, "window is empty");
    return _base_register << _config.offsetBits();
}

Addr
RwqWindow::windowHi() const
{
    return windowLo() + _config.addressableRange();
}

bool
RwqWindow::covers(const icn::Store &store) const
{
    if (_base_register == invalid_addr)
        return false;
    return store.begin() >= windowLo() && store.end() <= windowHi();
}

bool
RwqWindow::accepts(const icn::Store &store) const
{
    if (empty())
        return true;
    // Condition (1): the store must fall inside the base+offset window.
    if (!covers(store))
        return false;
    return !payloadBound(store) && !entryBound(store);
}

bool
RwqWindow::payloadBound(const icn::Store &store) const
{
    // The store plus one sub-header must fit the remaining payload
    // budget (conservative estimate).
    return store.size + _config.subheader_bytes > _available_payload;
}

bool
RwqWindow::entryBound(const icn::Store &store) const
{
    // SRAM capacity: a miss needs a free entry.
    Addr line = common::alignDown(store.addr, _config.entry_bytes);
    return !_lookup.count(line) && _entries.size() >= _entry_budget;
}

RwqWindow::InsertOutcome
RwqWindow::insert(const icn::Store &store)
{
    InsertOutcome outcome;
    // Exact payload accounting: the packed cost of all entries plus the
    // available-payload register always reconstructs the full budget,
    // so whatever the queue accepted is guaranteed to packetize into
    // one outer transaction (checking builds walk every entry).
    auto payload_accounted = [this]() {
        std::uint64_t cost = 0;
        for (const QueueEntry &entry : _entries)
            cost += entry.packedCost(_config);
        return cost + _available_payload == _config.max_payload;
    };
    const std::size_t entries_before = _entries.size();
    const bool was_hit =
        _lookup.count(common::alignDown(store.addr, _config.entry_bytes)) >
        0;

    if (_entries.empty()) {
        // First store of a fresh window: the base address register
        // takes the store's address right-shifted by the offset width.
        _base_register = store.addr >> _config.offsetBits();
        fp_assert(_available_payload == _config.max_payload,
                  "payload register not reset on empty window");
    }

    Addr line = common::alignDown(store.addr, _config.entry_bytes);
    auto offset_in_line = static_cast<std::uint32_t>(store.addr - line);

    auto it = _lookup.find(line);
    if (it != _lookup.end()) {
        // Queue hit: OR the byte mask and overwrite the data in place.
        ++_queue_hits;
        outcome.queue_hit = true;
        QueueEntry &entry = _entries[it->second];
        std::uint64_t cost_before = entry.packedCost(_config);

        for (std::uint32_t i = 0; i < store.size; ++i) {
            if (entry.mask.test(offset_in_line + i)) {
                ++_bytes_elided;
                ++outcome.overwritten_bytes;
            }
            entry.mask.set(offset_in_line + i);
            if (!store.data.empty())
                entry.data[offset_in_line + i] = store.data[i];
        }
        entry.has_data |= !store.data.empty();

        std::uint64_t cost_after = entry.packedCost(_config);
        // Merging can only keep or reduce the packed cost relative to
        // the conservative (len + sub-header) estimate already checked.
        if (cost_after >= cost_before) {
            std::uint64_t delta = cost_after - cost_before;
            fp_assert(delta <= _available_payload,
                      "exact packed cost exceeded the checked budget");
            _available_payload -= delta;
        } else {
            _available_payload += cost_before - cost_after;
        }
    } else {
        // Miss: allocate a fresh entry.
        fp_assert(_entries.size() < _entry_budget,
                  "entry allocation without free space");
        QueueEntry entry;
        entry.line_addr = line;
        entry.data.assign(_config.entry_bytes, 0);
        entry.has_data = !store.data.empty();
        for (std::uint32_t i = 0; i < store.size; ++i) {
            entry.mask.set(offset_in_line + i);
            if (!store.data.empty())
                entry.data[offset_in_line + i] = store.data[i];
        }
        std::uint64_t cost = entry.packedCost(_config);
        fp_assert(cost <= _available_payload,
                  "new entry cost exceeded the checked budget");
        _available_payload -= cost;
        _lookup[line] = _entries.size();
        _entries.push_back(std::move(entry));
    }
    if (store.issue_tick != max_tick)
        _stamps.push_back({store.issue_tick, store.size});
    ++_buffered_stores;

    FP_INVARIANT(payload_accounted(), "rwq-payload-accounting",
                 "entries no longer fit one outer transaction after "
                 "inserting addr=", store.addr, " size=", store.size);
    FP_INVARIANT(store.begin() >= windowLo() && store.end() <= windowHi(),
                 "rwq-offset-in-window",
                 "store addr=", store.addr, " size=", store.size,
                 " escapes the ", _config.offsetBits(),
                 "-bit offset window [", windowLo(), ", ", windowHi(), ")");
    FP_INVARIANT(!was_hit || _entries.size() == entries_before,
                 "rwq-overwrite-in-place",
                 "a queue hit grew the entry count from ", entries_before,
                 " to ", _entries.size());
    FP_INVARIANT(_entries.size() <= _entry_budget, "rwq-entry-budget",
                 "entry count ", _entries.size(), " exceeds the budget ",
                 _entry_budget);
    return outcome;
}

bool
RwqWindow::conflicts(Addr addr, std::uint32_t size) const
{
    if (_entries.empty())
        return false;
    Addr line_lo = common::alignDown(addr, _config.entry_bytes);
    Addr line_hi = common::alignDown(addr + size - 1, _config.entry_bytes);
    for (Addr line = line_lo; line <= line_hi;
         line += _config.entry_bytes) {
        auto it = _lookup.find(line);
        if (it == _lookup.end())
            continue;
        const QueueEntry &entry = _entries[it->second];
        std::uint32_t lo =
            addr > line ? static_cast<std::uint32_t>(addr - line) : 0;
        std::uint32_t hi = static_cast<std::uint32_t>(
            std::min<Addr>(addr + size - line, _config.entry_bytes));
        for (std::uint32_t i = lo; i < hi; ++i)
            if (entry.mask.test(i))
                return true;
    }
    return false;
}

FlushedPartition
RwqWindow::take(GpuId dst)
{
    FlushedPartition result;
    result.dst = dst;
    result.window_base =
        _base_register == invalid_addr
            ? 0
            : (_base_register << _config.offsetBits());
    result.entries = std::move(_entries);
    result.packed_store_count = _buffered_stores;
    result.store_stamps = std::move(_stamps);

    // Sort entries by address so the packetized sub-packets appear in
    // ascending offset order (deterministic output).
    std::sort(result.entries.begin(), result.entries.end(),
              [](const QueueEntry &a, const QueueEntry &b) {
                  return a.line_addr < b.line_addr;
              });

    _entries.clear();
    _lookup.clear();
    _stamps.clear();
    _base_register = invalid_addr;
    _available_payload = _config.max_payload;
    _buffered_stores = 0;
    return result;
}

// ---------------------------------------------------------------------
// RwqPartition
// ---------------------------------------------------------------------

RwqPartition::RwqPartition(GpuId dst, const FinePackConfig &config)
    : _dst(dst), _config(config)
{
    _config.validate();
    std::uint32_t budget =
        config.queue_entries / config.windows_per_partition;
    for (std::uint32_t w = 0; w < config.windows_per_partition; ++w) {
        _windows.emplace_back(_config, budget);
        _lru.push_back(w);
    }
}

void
RwqPartition::touch(std::uint32_t index)
{
    auto it = std::find(_lru.begin(), _lru.end(), index);
    fp_assert(it != _lru.end(), "window missing from LRU order");
    _lru.erase(it);
    _lru.push_back(index);
}

void
RwqPartition::push(const icn::Store &store,
                   std::vector<FlushedPartition> &sink)
{
    fp_assert(store.dst == _dst, "store routed to wrong partition");
    fp_assert(!store.is_atomic, "atomics do not enter the write queue");
    fp_assert(store.size > 0 && store.size <= _config.entry_bytes,
              "store size out of range: ", store.size);
    fp_assert(common::alignDown(store.begin(), _config.entry_bytes) ==
                  common::alignDown(store.end() - 1, _config.entry_bytes),
              "store crosses a line boundary: addr=", store.addr,
              " size=", store.size);

    // A store spanning a window-grid boundary cannot live in one
    // base+offset window: split it at the boundary (at most two pieces,
    // since stores are line-contained and the range is >= 64 B).
    const std::uint64_t range = _config.addressableRange();
    if (common::alignDown(store.begin(), range) !=
        common::alignDown(store.end() - 1, range)) {
        Addr split = common::alignDown(store.end() - 1, range);
        icn::Store head = store;
        head.size = static_cast<std::uint32_t>(split - store.begin());
        icn::Store tail = store;
        tail.addr = split;
        tail.size = static_cast<std::uint32_t>(store.end() - split);
        if (!store.data.empty()) {
            head.data.assign(store.data.begin(),
                             store.data.begin() + head.size);
            tail.data.assign(store.data.begin() + head.size,
                             store.data.end());
        }
        pushPiece(head, sink);
        pushPiece(tail, sink);
        return;
    }
    pushPiece(store, sink);
}

std::optional<FlushedPartition>
RwqPartition::push(const icn::Store &store)
{
    std::vector<FlushedPartition> sink;
    push(store, sink);
    fp_assert(sink.size() <= 1,
              "split push produced multiple flushes; use the sink API");
    if (sink.empty())
        return std::nullopt;
    return std::move(sink.front());
}

void
RwqPartition::pushPiece(const icn::Store &store,
                        std::vector<FlushedPartition> &sink)
{
    ++_stores_pushed;
    _bytes_pushed += store.size;

    // 1. A window already covering the store's address range?
    for (std::uint32_t w = 0; w < _windows.size(); ++w) {
        RwqWindow &window = _windows[w];
        if (!window.covers(store))
            continue;
        if (window.accepts(store)) {
            insertObserved(window, store);
        } else {
            // Payload or entry capacity: flush this window, the store
            // seeds its replacement. Exactly these two triggers can
            // reject a covered store - anything else means accepts()
            // and the flush classification have drifted apart.
            bool payload_bound = window.payloadBound(store);
            FP_INVARIANT(payload_bound || window.entryBound(store),
                         "rwq-flush-trigger-exclusive",
                         "window rejected covered store addr=", store.addr,
                         " size=", store.size,
                         " without a capacity reason");
            captureWindow(window,
                          payload_bound ? FlushReason::payload_full
                                        : FlushReason::entries_full,
                          sink);
            insertObserved(window, store);
        }
        touch(w);
        return;
    }

    // 2. An empty window to open?
    for (std::uint32_t w = 0; w < _windows.size(); ++w) {
        if (_windows[w].empty()) {
            insertObserved(_windows[w], store);
            touch(w);
            return;
        }
    }

    // 3. All windows open elsewhere: flush the least recently used one
    //    and seed it with the incoming store.
    std::uint32_t victim = _lru.front();
    captureWindow(_windows[victim], FlushReason::window_violation, sink);
    insertObserved(_windows[victim], store);
    touch(victim);
}

void
RwqPartition::captureWindow(RwqWindow &window, FlushReason reason,
                            std::vector<FlushedPartition> &sink)
{
    FP_INVARIANT(!window.empty(), "rwq-flush-nonempty",
                 "capturing an empty window (reason ", toString(reason),
                 ")");
    recordFlush(reason);
    sink.push_back(window.take(_dst));
    sink.back().reason = reason;
    if (_observer)
        _observer->windowFlushed(sink.back(), reason);
    if (_trace_observer)
        _trace_observer->windowFlushed(sink.back(), reason);
}

void
RwqPartition::insertObserved(RwqWindow &window, const icn::Store &store)
{
    RwqWindow::InsertOutcome outcome = window.insert(store);
    if (outcome.queue_hit) {
        if (_observer)
            _observer->storeCoalesced(_dst, store,
                                      outcome.overwritten_bytes);
        if (_trace_observer)
            _trace_observer->storeCoalesced(_dst, store,
                                            outcome.overwritten_bytes);
    }
    if (_observer)
        _observer->storeBuffered(_dst, store);
    if (_trace_observer)
        _trace_observer->storeBuffered(_dst, store);
}

void
RwqPartition::flush(FlushReason reason,
                    std::vector<FlushedPartition> &sink)
{
    for (std::uint32_t w : _lru) {
        if (_windows[w].empty())
            continue;
        captureWindow(_windows[w], reason, sink);
    }
}

FlushedPartition
RwqPartition::flush(FlushReason reason)
{
    std::vector<FlushedPartition> sink;
    flush(reason, sink);
    fp_assert(sink.size() <= 1,
              "multi-window flush needs the sink API");
    if (sink.empty())
        return FlushedPartition{_dst, 0, {}, 0};
    return std::move(sink.front());
}

bool
RwqPartition::flushIfConflict(Addr addr, std::uint32_t size,
                              FlushReason reason,
                              std::vector<FlushedPartition> &sink)
{
    bool conflict = false;
    for (const RwqWindow &window : _windows)
        conflict = conflict || window.conflicts(addr, size);
    if (!conflict)
        return false;
    flush(reason, sink);
    return true;
}

std::optional<FlushedPartition>
RwqPartition::flushIfConflict(Addr addr, std::uint32_t size,
                              FlushReason reason)
{
    std::vector<FlushedPartition> sink;
    if (!flushIfConflict(addr, size, reason, sink))
        return std::nullopt;
    fp_assert(sink.size() <= 1,
              "multi-window conflict flush needs the sink API");
    if (sink.empty())
        return std::nullopt;
    return std::move(sink.front());
}

bool
RwqPartition::empty() const
{
    for (const RwqWindow &window : _windows)
        if (!window.empty())
            return false;
    return true;
}

std::size_t
RwqPartition::entryCount() const
{
    std::size_t total = 0;
    for (const RwqWindow &window : _windows)
        total += window.entryCount();
    return total;
}

std::uint64_t
RwqPartition::bufferedStores() const
{
    std::uint64_t total = 0;
    for (const RwqWindow &window : _windows)
        total += window.bufferedStores();
    return total;
}

const RwqWindow &
RwqPartition::window(std::uint32_t i) const
{
    fp_assert(i < _windows.size(), "window index out of range");
    return _windows[i];
}

std::uint64_t
RwqPartition::availablePayload() const
{
    fp_assert(_windows.size() == 1,
              "availablePayload is a single-window accessor");
    return _windows[0].availablePayload();
}

Addr
RwqPartition::baseAddrRegister() const
{
    fp_assert(_windows.size() == 1,
              "baseAddrRegister is a single-window accessor");
    return _windows[0].baseAddrRegister();
}

Addr
RwqPartition::windowLo() const
{
    fp_assert(_windows.size() == 1,
              "windowLo is a single-window accessor");
    return _windows[0].windowLo();
}

Addr
RwqPartition::windowHi() const
{
    fp_assert(_windows.size() == 1,
              "windowHi is a single-window accessor");
    return _windows[0].windowHi();
}

std::uint64_t
RwqPartition::bytesElided() const
{
    std::uint64_t total = 0;
    for (const RwqWindow &window : _windows)
        total += window.bytesElided();
    return total;
}

std::uint64_t
RwqPartition::queueHits() const
{
    std::uint64_t total = 0;
    for (const RwqWindow &window : _windows)
        total += window.queueHits();
    return total;
}

void
RwqPartition::recordFlush(FlushReason reason)
{
    ++_flush_counts[static_cast<std::size_t>(reason)];
}

std::uint64_t
RwqPartition::flushes(FlushReason reason) const
{
    return _flush_counts[static_cast<std::size_t>(reason)];
}

// ---------------------------------------------------------------------
// RemoteWriteQueue
// ---------------------------------------------------------------------

RemoteWriteQueue::RemoteWriteQueue(GpuId self, std::uint32_t num_gpus,
                                   const FinePackConfig &config)
    : _self(self), _num_gpus(num_gpus), _config(config)
{
    fp_assert(self < num_gpus, "bad self GPU id");
    _partitions.reserve(num_gpus);
    for (GpuId g = 0; g < num_gpus; ++g)
        _partitions.emplace_back(g, config);
}

void
RemoteWriteQueue::push(const icn::Store &store,
                       std::vector<FlushedPartition> &sink)
{
    fp_assert(store.dst != _self, "store to self reached the write queue");
    partition(store.dst).push(store, sink);
}

std::optional<FlushedPartition>
RemoteWriteQueue::push(const icn::Store &store)
{
    fp_assert(store.dst != _self, "store to self reached the write queue");
    return partition(store.dst).push(store);
}

FlushedPartition
RemoteWriteQueue::flush(GpuId dst, FlushReason reason)
{
    return partition(dst).flush(reason);
}

std::vector<FlushedPartition>
RemoteWriteQueue::flushAll(FlushReason reason)
{
    std::vector<FlushedPartition> result;
    for (GpuId g = 0; g < _num_gpus; ++g) {
        if (g == _self)
            continue;
        _partitions[g].flush(reason, result);
    }
    return result;
}

bool
RemoteWriteQueue::flushIfConflict(GpuId dst, Addr addr,
                                  std::uint32_t size, FlushReason reason,
                                  std::vector<FlushedPartition> &sink)
{
    return partition(dst).flushIfConflict(addr, size, reason, sink);
}

std::optional<FlushedPartition>
RemoteWriteQueue::flushIfConflict(GpuId dst, Addr addr,
                                  std::uint32_t size, FlushReason reason)
{
    return partition(dst).flushIfConflict(addr, size, reason);
}

void
RemoteWriteQueue::setObserver(RwqObserver *observer)
{
    for (GpuId g = 0; g < _num_gpus; ++g) {
        if (g == _self)
            continue;
        _partitions[g].setObserver(observer);
    }
}

void
RemoteWriteQueue::setTraceObserver(RwqObserver *observer)
{
    for (GpuId g = 0; g < _num_gpus; ++g) {
        if (g == _self)
            continue;
        _partitions[g].setTraceObserver(observer);
    }
}

RwqPartition &
RemoteWriteQueue::partition(GpuId dst)
{
    fp_assert(dst < _num_gpus, "bad destination GPU ", dst);
    fp_assert(dst != _self, "no partition for self");
    return _partitions[dst];
}

const RwqPartition &
RemoteWriteQueue::partition(GpuId dst) const
{
    fp_assert(dst < _num_gpus, "bad destination GPU ", dst);
    fp_assert(dst != _self, "no partition for self");
    return _partitions[dst];
}

std::uint64_t
RemoteWriteQueue::totalSramBytes() const
{
    // One partition per peer GPU, each queue_entries lines of
    // entry_bytes (split across its windows).
    return static_cast<std::uint64_t>(_num_gpus - 1) *
           _config.queue_entries * _config.entry_bytes;
}

} // namespace fp::finepack
