/**
 * @file
 * FinePack configuration: the sub-transaction header geometry of Table II
 * and the structure sizes of Table III.
 */

#ifndef FP_FINEPACK_CONFIG_HH
#define FP_FINEPACK_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace fp::finepack {

/**
 * Parameters of one FinePack deployment.
 *
 * The sub-transaction header always reserves 10 bits for the payload
 * length (mirroring PCIe); the remaining sub-header bits form the address
 * offset, so the addressable range per outer transaction is
 * 2^(8*subheader_bytes - 10) bytes (paper Table II).
 */
struct FinePackConfig
{
    /** Sub-transaction header size in bytes (paper sweeps 2..6). */
    std::uint32_t subheader_bytes = 5;
    /** Bits of the sub-header reserved for the payload length. */
    std::uint32_t length_bits = 10;
    /** Maximum outer-transaction payload (PCIe max payload size). */
    std::uint32_t max_payload = 4096;
    /** Remote write queue entries per destination partition. */
    std::uint32_t queue_entries = 64;
    /** Data bytes per remote write queue entry (one cache line). */
    std::uint32_t entry_bytes = 128;
    /**
     * Concurrently open outer transactions (base+offset windows) per
     * destination partition. The paper evaluates 1 and discusses
     * multiple windows as a way to avoid thrashing when access
     * streams straddle alignment boundaries (Section IV-C); the SRAM
     * entry budget is split evenly among windows.
     */
    std::uint32_t windows_per_partition = 1;

    /** Bits of the sub-header available as the address offset. */
    FP_HOT std::uint32_t
    offsetBits() const
    {
        return subheader_bytes * 8 - length_bits;
    }

    /** Addressable range per outer transaction, 2^offsetBits() bytes. */
    FP_HOT std::uint64_t
    addressableRange() const
    {
        return 1ull << offsetBits();
    }

    /** Sanity-check the configuration; fp_fatal on user error. */
    void validate() const;
};

/** The paper's Table III FinePack configuration (GV100, 4 GPUs). */
FinePackConfig defaultConfig();

/** A configuration with @p subheader_bytes (Figure 12 sweep points). */
FinePackConfig configWithSubheader(std::uint32_t subheader_bytes);

} // namespace fp::finepack

#endif // FP_FINEPACK_CONFIG_HH
