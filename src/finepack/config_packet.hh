/**
 * @file
 * Analytic model of the alternate "stateful configuration packet" design
 * discussed in Section VI-B.
 *
 * In that design, the common header fields of a store stream are sent
 * once in a special configuration packet; the stores that follow remain
 * independent PCIe TLPs, each still paying its own sequence number and
 * CRC fields (about 10 extra bytes per store versus a FinePack
 * sub-packet). The paper reports this alternative is ~18% less efficient
 * for packets of 32-64 stores.
 */

#ifndef FP_FINEPACK_CONFIG_PACKET_HH
#define FP_FINEPACK_CONFIG_PACKET_HH

#include <cstdint>

#include "finepack/config.hh"
#include "interconnect/protocol.hh"

namespace fp::finepack {

/** Byte accounting for the stateful config-packet alternative. */
class ConfigPacketModel
{
  public:
    struct Params
    {
        /** Wire bytes of one configuration packet. */
        std::uint32_t config_packet_bytes = 26;
        /**
         * Per-store link-level bytes that cannot be shared statefully:
         * STP framing + sequence number + LCRC (4 + 2 + 4).
         */
        std::uint32_t per_store_link_bytes = 10;
        /**
         * Residual per-store transaction bytes (compressed address +
         * length), matching the FinePack sub-header so the comparison
         * isolates the link-level overhead difference.
         */
        std::uint32_t per_store_txn_bytes = 5;
    };

    ConfigPacketModel(const FinePackConfig &config,
                      const icn::PcieProtocol &protocol);
    ConfigPacketModel(const FinePackConfig &config,
                      const icn::PcieProtocol &protocol, Params params);

    /**
     * Total wire bytes to transfer @p num_stores stores of
     * @p store_bytes each under the config-packet design (one config
     * packet amortized over the burst).
     */
    std::uint64_t wireBytes(std::uint64_t num_stores,
                            std::uint64_t store_bytes) const;

    /** Wire bytes for the same burst as one FinePack transaction. */
    std::uint64_t finePackWireBytes(std::uint64_t num_stores,
                                    std::uint64_t store_bytes) const;

    /**
     * Efficiency deficit of the config-packet design relative to
     * FinePack: (config_bytes / finepack_bytes) - 1.
     */
    double relativeInefficiency(std::uint64_t num_stores,
                                std::uint64_t store_bytes) const;

  private:
    FinePackConfig _config;
    icn::PcieProtocol _protocol;
    Params _params;
};

} // namespace fp::finepack

#endif // FP_FINEPACK_CONFIG_PACKET_HH
