#include "finepack/write_combine.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

WriteCombineBuffer::WriteCombineBuffer(GpuId src, GpuId dst,
                                       std::uint32_t num_lines,
                                       std::uint32_t line_bytes)
    : _src(src), _dst(dst), _num_lines(num_lines), _line_bytes(line_bytes)
{
    fp_assert(num_lines > 0, "write-combine buffer needs capacity");
    fp_assert(common::isPowerOfTwo(line_bytes), "line size power of two");
}

std::optional<WcLine>
WriteCombineBuffer::push(const icn::Store &store)
{
    fp_assert(store.dst == _dst, "store routed to wrong WC buffer");
    fp_assert(store.size > 0 && store.size <= _line_bytes,
              "store size out of range");
    fp_assert(common::alignDown(store.begin(), _line_bytes) ==
                  common::alignDown(store.end() - 1, _line_bytes),
              "store crosses a line boundary");

    ++_stores_pushed;

    Addr line_addr = common::alignDown(store.addr, _line_bytes);
    auto offset = static_cast<std::uint32_t>(store.addr - line_addr);

    std::optional<WcLine> evicted;

    auto it = _lines.find(line_addr);
    if (it == _lines.end()) {
        if (_lines.size() >= _num_lines) {
            // Evict the least recently written line.
            Addr victim = _lru.back();
            _lru.pop_back();
            auto vit = _lines.find(victim);
            fp_assert(vit != _lines.end(), "LRU bookkeeping broken");
            evicted = std::move(vit->second.line);
            _lines.erase(vit);
        }
        WcLine line;
        line.entry.line_addr = line_addr;
        line.entry.data.assign(_line_bytes, 0);
        _lru.push_front(line_addr);
        it = _lines.emplace(line_addr, Slot{std::move(line), _lru.begin()})
                 .first;
    } else {
        // Move to MRU position.
        _lru.erase(it->second.lru_it);
        _lru.push_front(line_addr);
        it->second.lru_it = _lru.begin();
    }

    Slot &slot = it->second;
    QueueEntry &entry = slot.line.entry;
    for (std::uint32_t i = 0; i < store.size; ++i) {
        if (entry.mask.test(offset + i))
            ++_bytes_elided;
        entry.mask.set(offset + i);
        if (!store.data.empty())
            entry.data[offset + i] = store.data[i];
    }
    entry.has_data |= !store.data.empty();
    ++slot.line.folded;

    return evicted;
}

std::vector<WcLine>
WriteCombineBuffer::flushAll()
{
    std::vector<WcLine> lines;
    lines.reserve(_lines.size());
    // fp-lint: allow(unordered-iteration) lines are sorted by address below
    for (auto &[addr, slot] : _lines) {
        (void)addr;
        lines.push_back(std::move(slot.line));
    }
    _lines.clear();
    _lru.clear();
    std::sort(lines.begin(), lines.end(),
              [](const WcLine &a, const WcLine &b) {
                  return a.entry.line_addr < b.entry.line_addr;
              });
    return lines;
}

icn::WireMessagePtr
WriteCombineBuffer::lineToMessage(const WcLine &line,
                                  const icn::PcieProtocol &protocol) const
{
    auto msg = icn::makeWireMessage();
    msg->kind = icn::MessageKind::write_combine_line;
    msg->src = _src;
    msg->dst = _dst;
    // The whole line travels as payload; unwritten bytes are waste.
    msg->payload_bytes = _line_bytes;
    msg->header_bytes = protocol.tlpOverhead();
    msg->data_bytes = line.entry.validBytes();
    msg->packed_store_count = line.folded;

    // The wire carries the whole line, but only the written bytes are
    // semantically delivered (the receiver applies byte enables); emit
    // one store per contiguous run so functional state stays correct.
    for (const auto &[start, len] : line.entry.runs()) {
        icn::Store store(line.entry.line_addr + start, len, _src, _dst);
        if (line.entry.has_data) {
            store.data.assign(line.entry.data.begin() + start,
                              line.entry.data.begin() + start + len);
        }
        msg->stores.push_back(std::move(store));
    }
    return msg;
}

} // namespace fp::finepack
