#include "finepack/config.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

void
FinePackConfig::validate() const
{
    if (subheader_bytes < 2 || subheader_bytes > 8)
        fp_fatal("sub-header must be 2..8 bytes, got ", subheader_bytes);
    if (length_bits == 0 || length_bits >= subheader_bytes * 8)
        fp_fatal("length bits must leave room for an address offset");
    if ((1u << length_bits) <= entry_bytes)
        fp_fatal("length field too narrow for a full queue entry");
    if (max_payload == 0 || max_payload % 4 != 0)
        fp_fatal("max payload must be a non-zero DW multiple");
    if (queue_entries == 0)
        fp_fatal("queue must have at least one entry");
    if (!common::isPowerOfTwo(entry_bytes))
        fp_fatal("entry size must be a power of two");
    if (windows_per_partition == 0)
        fp_fatal("at least one window per partition is required");
    if (queue_entries % windows_per_partition != 0)
        fp_fatal("windows must split the entry budget evenly: ",
                 queue_entries, " entries across ",
                 windows_per_partition, " windows");
}

FinePackConfig
defaultConfig()
{
    FinePackConfig config;
    config.subheader_bytes = 5; // 30-bit offset => 1 GiB window
    config.length_bits = 10;
    config.max_payload = 4096;
    config.queue_entries = 64;
    config.entry_bytes = 128;
    config.validate();
    return config;
}

FinePackConfig
configWithSubheader(std::uint32_t subheader_bytes)
{
    FinePackConfig config = defaultConfig();
    config.subheader_bytes = subheader_bytes;
    config.validate();
    return config;
}

} // namespace fp::finepack
