/**
 * @file
 * FinePack embedded in NVLink (paper Section IV-C, "Applicability
 * Beyond PCIe").
 *
 * NVLink transfers data in 16 B flits with a header flit per packet
 * and byte enables covering the whole payload, so the FinePack payload
 * needs a slightly different encoding than the PCIe TLP embedding:
 * the outer packet keeps its single header flit, the concatenated
 * sub-headers + data pad to whole flits, and no byte-enable flit is
 * needed at all because each sub-header already carries an exact
 * 1 B-aligned offset and length. This model provides the byte
 * accounting to compare against both raw NVLink stores and the PCIe
 * embedding.
 */

#ifndef FP_FINEPACK_NVLINK_PACKING_HH
#define FP_FINEPACK_NVLINK_PACKING_HH

#include <cstdint>

#include "finepack/transaction.hh"
#include "interconnect/protocol.hh"

namespace fp::finepack {

/** Byte accounting for FinePack transactions on an NVLink wire. */
class NvlinkFinePackModel
{
  public:
    explicit NvlinkFinePackModel(icn::NvlinkProtocol protocol =
                                     icn::NvlinkProtocol());

    const icn::NvlinkProtocol &protocol() const { return _protocol; }

    /**
     * Wire bytes for one FinePack transaction on NVLink: one header
     * flit per packet-sized piece plus the flit-padded payload
     * (sub-headers + data). Transactions larger than the NVLink max
     * payload split into multiple packets, each paying a header flit.
     */
    std::uint64_t wireBytes(const FinePackTransaction &txn) const;

    /**
     * Wire bytes for the same stores sent as individual NVLink write
     * packets (header flit + byte-enable flit when partial + padded
     * data per store).
     */
    std::uint64_t rawWireBytes(const FinePackTransaction &txn) const;

    /** rawWireBytes / wireBytes: the packing gain on NVLink. */
    double packingGain(const FinePackTransaction &txn) const;

  private:
    icn::NvlinkProtocol _protocol;
};

} // namespace fp::finepack

#endif // FP_FINEPACK_NVLINK_PACKING_HH
