/**
 * @file
 * The FinePack transaction format (paper Section IV-A, Figure 6, Table I).
 *
 * An outer PCIe memory-write TLP whose payload is a concatenation of
 * sub-packets. The outer header's address field carries the base address;
 * each sub-packet carries a sub-header with a 10-bit length and an
 * N-bit address offset (1-byte aligned), followed by its data.
 */

#ifndef FP_FINEPACK_TRANSACTION_HH
#define FP_FINEPACK_TRANSACTION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "finepack/config.hh"
#include "interconnect/store.hh"

namespace fp::finepack {

/** One packed store inside a FinePack transaction. */
struct SubPacket
{
    /** Byte offset from the outer transaction's base address. */
    std::uint64_t offset = 0;
    /** Payload length in bytes (fits the 10-bit length field). */
    std::uint32_t length = 0;
    /** Optional data bytes (empty in timing-only simulation). */
    std::vector<std::uint8_t> data;
};

/** A complete FinePack outer transaction. */
class FinePackTransaction
{
  public:
    FinePackTransaction(GpuId src, GpuId dst, Addr base,
                        const FinePackConfig &config)
        : _src(src), _dst(dst), _base(base), _config(config)
    {}

    /**
     * Append a sub-packet for @p length bytes at absolute address
     * @p addr; panics if the offset or length exceed the sub-header
     * field widths or the payload budget (the remote write queue
     * guarantees they never do).
     */
    FP_HOT void append(Addr addr, std::uint32_t length,
                       std::vector<std::uint8_t> data = {});

    /** Pre-size the sub-packet vector (>= one sub-packet per entry). */
    FP_HOT void reserve(std::size_t n) { _subs.reserve(n); }

    GpuId src() const { return _src; }
    GpuId dst() const { return _dst; }
    FP_HOT Addr baseAddr() const { return _base; }
    FP_HOT const std::vector<SubPacket> &subPackets() const
    { return _subs; }
    const FinePackConfig &config() const { return _config; }

    /** Payload bytes: sub-headers + data, before outer DW padding. */
    std::uint64_t rawPayloadBytes() const { return _payload; }

    /** Payload bytes on the wire (DW padded, per the outer Last BE). */
    FP_HOT std::uint64_t wirePayloadBytes() const;

    /** Store data bytes carried (excluding sub-headers). */
    FP_HOT std::uint64_t dataBytes() const { return _data_bytes; }

    /** Number of sub-packets. */
    std::size_t size() const { return _subs.size(); }
    bool empty() const { return _subs.empty(); }

    /**
     * Disaggregate into plain stores (the de-packetizer operation):
     * each sub-packet becomes a store at base + offset.
     */
    std::vector<icn::Store> unpack() const;

  private:
    GpuId _src;
    GpuId _dst;
    Addr _base;
    FinePackConfig _config;
    std::vector<SubPacket> _subs;
    std::uint64_t _payload = 0;
    std::uint64_t _data_bytes = 0;
};

} // namespace fp::finepack

#endif // FP_FINEPACK_TRANSACTION_HH
