/**
 * @file
 * The FinePack packetizer and de-packetizer (paper Section IV-B).
 *
 * The packetizer converts a flushed remote-write-queue partition into one
 * FinePack outer transaction: every contiguous byte-enable run of every
 * entry becomes a sub-packet (sub-headers carry no byte enables, so
 * non-contiguous bytes must split). The de-packetizer re-expands a
 * transaction into plain stores for the destination memory system.
 */

#ifndef FP_FINEPACK_PACKETIZER_HH
#define FP_FINEPACK_PACKETIZER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "finepack/remote_write_queue.hh"
#include "finepack/transaction.hh"
#include "interconnect/message.hh"
#include "interconnect/protocol.hh"

namespace fp::finepack {

/**
 * Observer of packetizer output, fired once per emitted outer
 * transaction (observability hook; the egress port adapts it onto the
 * event tracer). payloadEfficiency of the emitted message is
 * data_bytes / wire payload bytes.
 */
class PacketizerObserver
{
  public:
    virtual ~PacketizerObserver() = default;

    /** @p txn was packetized and wrapped into wire message @p msg. */
    FP_COLD virtual void packetEmitted(const FinePackTransaction &txn,
                                       const icn::WireMessage &msg) = 0;
};

/** Converts flushed partitions into FinePack transactions / messages. */
class Packetizer
{
  public:
    Packetizer(GpuId src, const FinePackConfig &config)
        : _src(src), _config(config)
    {}

    /**
     * Packetize one flushed partition. The remote write queue's payload
     * accounting guarantees the result fits a single outer transaction.
     */
    FP_HOT FinePackTransaction
    packetize(const FlushedPartition &flushed) const;

    /**
     * Packetize and wrap into a wire message using @p protocol for the
     * outer TLP overhead accounting.
     */
    FP_HOT icn::WireMessagePtr
    toMessage(const FlushedPartition &flushed,
              const icn::PcieProtocol &protocol) const;

    GpuId src() const { return _src; }
    const FinePackConfig &config() const { return _config; }

    /** Attach an output observer (nullptr detaches). */
    void setObserver(PacketizerObserver *observer) { _observer = observer; }

    /** Lifetime statistics (Figure 11 inputs). */
    std::uint64_t packetsEmitted() const { return _packets; }
    std::uint64_t subPacketsEmitted() const { return _sub_packets; }
    std::uint64_t storesPacked() const { return _stores_packed; }

    /**
     * Wire bytes the same coalesced runs would have cost as individual
     * TLPs - i.e. "write combining alone" at run granularity, without
     * FinePack's outer transaction sharing. Accumulated by toMessage().
     */
    std::uint64_t wcAloneWireBytes() const { return _wc_alone_bytes; }

    /**
     * Wire bytes under the coarser per-line interpretation of "write
     * combining alone": one TLP per buffered cache line, carrying the
     * line's written span (first..last enabled byte).
     */
    std::uint64_t wcLineWireBytes() const { return _wc_line_bytes; }

    /**
     * Wire bytes for the same aggregated transactions but with
     * *uncompressed* sub-headers (a full 64-bit address + 16-bit
     * length per run instead of the base+offset form) - i.e. write
     * combining and aggregation alone, isolating the contribution of
     * FinePack's address compression (the Section VI-A 24% figure).
     */
    std::uint64_t uncompressedWireBytes() const
    { return _uncompressed_bytes; }

    /** Average program stores folded into one packet (Figure 11). */
    double
    avgStoresPerPacket() const
    {
        return _packets ? static_cast<double>(_stores_packed) /
                              static_cast<double>(_packets)
                        : 0.0;
    }

  private:
    GpuId _src;
    FinePackConfig _config;
    PacketizerObserver *_observer = nullptr;
    mutable std::uint64_t _packets = 0;
    mutable std::uint64_t _sub_packets = 0;
    mutable std::uint64_t _stores_packed = 0;
    mutable std::uint64_t _wc_alone_bytes = 0;
    mutable std::uint64_t _wc_line_bytes = 0;
    mutable std::uint64_t _uncompressed_bytes = 0;
};

/**
 * The destination-side de-packetizer. Purely functional unpacking plus a
 * model of the 64 x 128 B ingress buffer: the buffer drains into the L2
 * at a fixed rate, so a full buffer back-pressures (reported as a stall
 * tick count the ingress port can apply).
 */
class DePacketizer
{
  public:
    explicit DePacketizer(const FinePackConfig &config) : _config(config) {}

    /** Disaggregate a transaction into individual stores. */
    FP_HOT std::vector<icn::Store>
    unpack(const FinePackTransaction &txn) const;

    /** Buffer capacity in bytes (64 entries x 128 B). */
    std::uint64_t
    bufferBytes() const
    {
        return std::uint64_t{64} * _config.entry_bytes;
    }

    std::uint64_t storesUnpacked() const { return _stores_unpacked; }

  private:
    FinePackConfig _config;
    mutable std::uint64_t _stores_unpacked = 0;
};

} // namespace fp::finepack

#endif // FP_FINEPACK_PACKETIZER_HH
