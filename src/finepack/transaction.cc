#include "finepack/transaction.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::finepack {

void
FinePackTransaction::append(Addr addr, std::uint32_t length,
                            std::vector<std::uint8_t> data)
{
    fp_assert(length > 0, "empty sub-packet");
    fp_assert(length < (1u << _config.length_bits),
              "sub-packet length ", length, " exceeds the length field");
    fp_assert(addr >= _base, "sub-packet address below base");
    std::uint64_t offset = addr - _base;
    fp_assert(offset + length <= _config.addressableRange(),
              "sub-packet beyond the addressable range: offset=", offset,
              " len=", length);
    fp_assert(data.empty() || data.size() == length,
              "sub-packet data size mismatch");

    std::uint64_t cost = _config.subheader_bytes + length;
    fp_assert(_payload + cost <= _config.max_payload,
              "outer transaction payload overflow");

    _payload += cost;
    _data_bytes += length;
    _subs.push_back(SubPacket{offset, length, std::move(data)});
}

std::uint64_t
FinePackTransaction::wirePayloadBytes() const
{
    return common::alignUp(_payload, 4);
}

std::vector<icn::Store>
FinePackTransaction::unpack() const
{
    std::vector<icn::Store> stores;
    stores.reserve(_subs.size());
    for (const auto &sub : _subs) {
        icn::Store store(_base + sub.offset, sub.length, _src, _dst);
        store.data = sub.data;
        stores.push_back(std::move(store));
    }
    return stores;
}

} // namespace fp::finepack
