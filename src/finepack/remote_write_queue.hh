/**
 * @file
 * The FinePack remote write queue (paper Section IV-B, Figure 8).
 *
 * One partition per destination GPU. Each partition holds one or more
 * base+offset *windows* (open outer transactions); the paper evaluates
 * one window per partition and discusses multiple windows as a remedy
 * for access streams that straddle alignment boundaries (Section IV-C).
 * Each window is a fully associative SRAM indexed by address at
 * cache-line (128 B) granularity; every entry holds an address tag, a
 * line of data, and per-byte enables. Stores to the same bytes
 * overwrite in place (legal under the GPU weak memory model); stores to
 * new addresses accumulate while they fit the window and the
 * outer-transaction payload budget.
 *
 * This class is purely functional (no timing); the GPU egress port
 * wraps it into the discrete-event simulation.
 */

#ifndef FP_FINEPACK_REMOTE_WRITE_QUEUE_HH
#define FP_FINEPACK_REMOTE_WRITE_QUEUE_HH

#include <bitset>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "finepack/config.hh"
#include "interconnect/store.hh"
#include "obs/latency.hh"

namespace fp::finepack {

/** One 128 B line buffered in a remote write queue window. */
struct QueueEntry
{
    /** Line-aligned tag address (device-local, destination GPU). */
    Addr line_addr = 0;
    /** Line data; only bytes with their enable set are meaningful. */
    std::vector<std::uint8_t> data;
    /** Per-byte write enables. */
    std::bitset<128> mask;
    /** True when at least one merged store carried payload bytes. */
    bool has_data = false;

    /**
     * The packed cost of this entry in a FinePack payload: one
     * sub-header plus the run length for every contiguous enabled run.
     */
    FP_HOT std::uint64_t packedCost(const FinePackConfig &config) const;

    /** Contiguous enabled-byte runs as (start byte, length) pairs. */
    FP_HOT std::vector<std::pair<std::uint32_t, std::uint32_t>> runs() const;

    /**
     * [first, last) written-byte span of the line (first enabled byte
     * to one past the last). Unlike runs(), allocates nothing; (0, 0)
     * for an empty mask.
     */
    FP_HOT std::pair<std::uint32_t, std::uint32_t> writtenSpan() const;

    /** Number of enabled bytes. */
    FP_HOT std::uint32_t validBytes() const
    { return static_cast<std::uint32_t>(mask.count()); }
};

/** Why a window was flushed (for statistics / Figure analysis). */
enum class FlushReason : std::uint8_t {
    window_violation,   ///< incoming store outside every open window
    payload_full,       ///< payload budget could not fit the store
    entries_full,       ///< all SRAM entries in use, store missed
    release,            ///< system-scoped release (fence / kernel end)
    load_conflict,      ///< remote load matched a queued store
    atomic_conflict,    ///< remote atomic matched a queued store
};

const char *toString(FlushReason reason);

/** The contents of one flushed window, ready to packetize. */
struct FlushedPartition
{
    GpuId dst = invalid_gpu;
    /** Base address register value (already shifted left). */
    Addr window_base = 0;
    std::vector<QueueEntry> entries;
    /** Program stores that were folded into these entries. */
    std::uint64_t packed_store_count = 0;
    /** Why the window flushed (set by RwqPartition::captureWindow). */
    FlushReason reason = FlushReason::release;
    /**
     * Issue stamps of the folded stores, in buffering order (latency
     * attribution only; empty when stores carry no issue_tick).
     */
    std::vector<obs::StoreStamp> store_stamps;

    bool empty() const { return entries.empty(); }
};

/**
 * Causal-order observer of remote-write-queue state changes, used by
 * the correctness tooling (check::ProtocolOracle). The hooks fire in
 * the exact order the hardware would commit the corresponding actions:
 * a window that must flush to admit a store reports windowFlushed()
 * *before* that store's storeBuffered(), so an observer replaying the
 * stream sees the same byte images the packetizer will.
 */
class RwqObserver
{
  public:
    virtual ~RwqObserver() = default;

    /** A store (after line/window-grid splitting) merged into a window. */
    FP_COLD virtual void storeBuffered(GpuId dst,
                                       const icn::Store &store) = 0;

    /** A window's contents were captured for packetization. */
    FP_COLD virtual void windowFlushed(const FlushedPartition &flushed,
                                       FlushReason reason) = 0;

    /**
     * A store hit an already-buffered line and merged in place
     * (fires just before the matching storeBuffered()).
     * @p overwritten_bytes counts bytes whose enable was already set,
     * i.e. wire traffic elided by overwrite-in-place. Optional hook
     * used by the observability layer.
     */
    FP_COLD virtual void
    storeCoalesced(GpuId dst, const icn::Store &store,
                   std::uint32_t overwritten_bytes)
    {
        (void)dst;
        (void)store;
        (void)overwritten_bytes;
    }
};

/**
 * One base+offset window: the register state of Figure 8 (base address
 * register, available-payload-length register, store counter) plus its
 * share of the partition's SRAM entries.
 */
class RwqWindow
{
  public:
    RwqWindow(const FinePackConfig &config, std::uint32_t entry_budget);

    bool empty() const { return _entries.empty(); }
    std::size_t entryCount() const { return _entries.size(); }
    std::uint64_t bufferedStores() const { return _buffered_stores; }

    /** Base address register; invalid_addr when the window is empty. */
    Addr baseAddrRegister() const { return _base_register; }
    FP_HOT Addr windowLo() const;
    FP_HOT Addr windowHi() const;

    /** The available-payload-length register (paper Figure 8). */
    std::uint64_t availablePayload() const { return _available_payload; }

    /** Does @p store fall inside this (non-empty) window? */
    FP_HOT bool covers(const icn::Store &store) const;

    /**
     * Can @p store be accepted without flushing? Checks the paper's two
     * conditions - window containment (unless empty) and the
     * conservative payload budget - plus SRAM entry capacity.
     */
    FP_HOT bool accepts(const icn::Store &store) const;

    /** Would @p store be rejected by the payload budget alone? */
    FP_HOT bool payloadBound(const icn::Store &store) const;

    /** Would @p store be rejected by SRAM entry capacity alone? */
    FP_HOT bool entryBound(const icn::Store &store) const;

    /** The observable outcome of one insert (for hooks/statistics). */
    struct InsertOutcome
    {
        /** The store merged into an already-buffered line. */
        bool queue_hit = false;
        /** Bytes whose enable was already set (overwritten in place). */
        std::uint32_t overwritten_bytes = 0;
    };

    /** Insert a store; accepts(store) must be true. */
    FP_HOT InsertOutcome insert(const icn::Store &store);

    /** Does any buffered byte overlap [addr, addr+size)? */
    FP_HOT bool conflicts(Addr addr, std::uint32_t size) const;

    /** Remove and return everything buffered (entries sorted). */
    FP_HOT FlushedPartition take(GpuId dst);

    /** Lifetime statistics. */
    std::uint64_t queueHits() const { return _queue_hits; }
    std::uint64_t bytesElided() const { return _bytes_elided; }

  private:
    FinePackConfig _config;
    std::uint32_t _entry_budget;

    Addr _base_register = invalid_addr;
    std::uint64_t _available_payload;
    std::uint64_t _buffered_stores = 0;

    std::vector<QueueEntry> _entries;
    /** Associative lookup: line address -> index into _entries. */
    std::unordered_map<Addr, std::size_t> _lookup;
    /** Issue stamps of buffered stores (latency attribution only). */
    std::vector<obs::StoreStamp> _stamps;

    std::uint64_t _queue_hits = 0;
    std::uint64_t _bytes_elided = 0;
};

/**
 * One partition of the remote write queue: every state element that
 * coalesces stores toward a single destination GPU.
 */
class RwqPartition
{
  public:
    RwqPartition(GpuId dst, const FinePackConfig &config);

    /**
     * Buffer one store. Any windows that must flush to make room
     * (window violation with all windows busy, payload budget, or
     * entry capacity) are appended to @p sink; the store then seeds or
     * joins a window. A store crossing a window-grid boundary (only
     * possible when the addressable range is smaller than two cache
     * lines) is split at the boundary.
     *
     * The store must not cross a 128 B line boundary and must not be
     * an atomic (the egress port handles those cases).
     */
    FP_HOT void push(const icn::Store &store,
                     std::vector<FlushedPartition> &sink);

    /**
     * Convenience wrapper for the common single-flush case; panics if
     * the push produced more than one flush (use the sink overload
     * when the window can be smaller than a cache line).
     */
    FP_HOT std::optional<FlushedPartition> push(const icn::Store &store);

    /**
     * Flush all windows (synchronization); empty windows contribute
     * nothing. Returns one FlushedPartition per non-empty window,
     * oldest first. The single-window convenience form returns the
     * first (or an empty result).
     */
    FP_HOT void flush(FlushReason reason,
                      std::vector<FlushedPartition> &sink);
    FP_HOT FlushedPartition flush(FlushReason reason);

    /**
     * Flush only if @p addr..addr+size overlaps a buffered store (the
     * same-address load / atomic ordering rule). Per the paper, a
     * conflict triggers a full partition flush, like a synchronization
     * would. @return true when a conflict existed.
     */
    FP_HOT bool flushIfConflict(Addr addr, std::uint32_t size,
                                FlushReason reason,
                                std::vector<FlushedPartition> &sink);
    FP_HOT std::optional<FlushedPartition>
    flushIfConflict(Addr addr, std::uint32_t size, FlushReason reason);

    bool empty() const;
    std::size_t entryCount() const;
    std::uint64_t bufferedStores() const;

    /** Number of configured windows. */
    std::uint32_t windowCount() const
    { return static_cast<std::uint32_t>(_windows.size()); }
    const RwqWindow &window(std::uint32_t i) const;

    // Single-window convenience accessors (panic when windowCount()>1).
    std::uint64_t availablePayload() const;
    Addr baseAddrRegister() const;
    Addr windowLo() const;
    Addr windowHi() const;

    /**
     * Attach a causal-order observer (nullptr detaches). Exactly one
     * observer at a time; the caller keeps ownership.
     */
    void setObserver(RwqObserver *observer) { _observer = observer; }

    /**
     * Attach a second, independent observer used for event tracing;
     * it sees the same causal stream as the primary observer (and
     * additionally storeCoalesced). Kept separate so the protocol
     * oracle and the tracer can coexist.
     */
    void setTraceObserver(RwqObserver *observer)
    { _trace_observer = observer; }

    /** Lifetime statistics. */
    std::uint64_t storesPushed() const { return _stores_pushed; }
    std::uint64_t bytesPushed() const { return _bytes_pushed; }
    std::uint64_t bytesElided() const;
    std::uint64_t flushes(FlushReason reason) const;
    std::uint64_t queueHits() const;

  private:
    FP_HOT void pushPiece(const icn::Store &store,
                          std::vector<FlushedPartition> &sink);
    /** Flush @p window into @p sink, notifying the observer in order. */
    FP_HOT void captureWindow(RwqWindow &window, FlushReason reason,
                              std::vector<FlushedPartition> &sink);
    /** Insert into @p window, notifying the observer in order. */
    FP_HOT void insertObserved(RwqWindow &window,
                               const icn::Store &store);
    FP_HOT void recordFlush(FlushReason reason);
    /** Move @p index to the back of the LRU order (most recent). */
    FP_HOT void touch(std::uint32_t index);

    GpuId _dst;
    FinePackConfig _config;
    RwqObserver *_observer = nullptr;
    RwqObserver *_trace_observer = nullptr;

    std::vector<RwqWindow> _windows;
    /** LRU order of window indices; back = most recently used. */
    std::vector<std::uint32_t> _lru;

    std::uint64_t _stores_pushed = 0;
    std::uint64_t _bytes_pushed = 0;
    std::uint64_t _flush_counts[6] = {};
};

/**
 * The complete remote write queue: one partition per peer GPU.
 */
class RemoteWriteQueue
{
  public:
    /**
     * @param self     The GPU this queue belongs to (owns no partition).
     * @param num_gpus Total GPUs in the system.
     */
    RemoteWriteQueue(GpuId self, std::uint32_t num_gpus,
                     const FinePackConfig &config);

    /** Buffer a store for its destination partition. */
    FP_HOT void push(const icn::Store &store,
                     std::vector<FlushedPartition> &sink);

    /** Convenience wrapper; see RwqPartition::push(store). */
    FP_HOT std::optional<FlushedPartition> push(const icn::Store &store);

    /** Flush one destination's partition (first window's contents). */
    FP_HOT FlushedPartition flush(GpuId dst, FlushReason reason);

    /** Flush every partition (system-scoped release). */
    FP_HOT std::vector<FlushedPartition> flushAll(FlushReason reason);

    /** Same-address ordering check for loads/atomics. */
    FP_HOT bool flushIfConflict(GpuId dst, Addr addr, std::uint32_t size,
                                FlushReason reason,
                                std::vector<FlushedPartition> &sink);
    FP_HOT std::optional<FlushedPartition>
    flushIfConflict(GpuId dst, Addr addr, std::uint32_t size,
                    FlushReason reason);

    FP_HOT RwqPartition &partition(GpuId dst);
    FP_HOT const RwqPartition &partition(GpuId dst) const;

    /** Attach a causal-order observer to every partition. */
    void setObserver(RwqObserver *observer);

    /** Attach a trace observer to every partition. */
    void setTraceObserver(RwqObserver *observer);

    GpuId self() const { return _self; }
    std::uint32_t numGpus() const { return _num_gpus; }
    const FinePackConfig &config() const { return _config; }

    /** Total SRAM data bytes across partitions (Table III: 192*128). */
    std::uint64_t totalSramBytes() const;

  private:
    GpuId _self;
    std::uint32_t _num_gpus;
    FinePackConfig _config;
    std::vector<RwqPartition> _partitions; // indexed by dst, self unused
};

} // namespace fp::finepack

#endif // FP_FINEPACK_REMOTE_WRITE_QUEUE_HH
