#include "baselines/gps_model.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace fp::baselines {

GpsModel::GpsModel(std::uint64_t page_bytes) : _page_bytes(page_bytes)
{
    fp_assert(common::isPowerOfTwo(page_bytes),
              "page size must be a power of two");
}

void
GpsModel::beginIteration(const trace::IterationWork &iter)
{
    _pages.assign(iter.consumed.size(), {});
    for (GpuId g = 0; g < iter.consumed.size(); ++g) {
        for (const auto &range : iter.consumed[g]) {
            Addr first = common::alignDown(range.base, _page_bytes);
            Addr last =
                common::alignDown(range.base + range.size - 1, _page_bytes);
            for (Addr page = first; page <= last; page += _page_bytes)
                _pages[g].insert(page);
        }
    }
}

bool
GpsModel::subscribed(GpuId dst, Addr addr) const
{
    if (dst >= _pages.size())
        return true; // no subscription data: conservatively send
    return _pages[dst].count(common::alignDown(addr, _page_bytes)) > 0;
}

} // namespace fp::baselines
