/**
 * @file
 * A model of GPS (MICRO'21, "GPS: A Global Publish-Subscribe Model for
 * Multi-GPU Memory Management"), the system the paper compares against
 * in Section VI-B.
 *
 * GPS maintains replicas updated by proactive stores, but (1) coalesces
 * at whole-cacheline granularity in a write-combining buffer, and
 * (2) tracks per-page subscriptions so that updates to pages a GPU
 * never reads are not sent to it at all. This model supplies the
 * subscription filter; the timing simulation combines it with the
 * write-combine egress mode.
 */

#ifndef FP_BASELINES_GPS_MODEL_HH
#define FP_BASELINES_GPS_MODEL_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace fp::baselines {

/** Per-iteration page-subscription filter. */
class GpsModel
{
  public:
    explicit GpsModel(std::uint64_t page_bytes = 4096);

    /**
     * Rebuild subscriptions from one iteration's consumption oracle:
     * GPU g subscribes to every page it reads any byte of. (GPS learns
     * this dynamically from access profiling; the oracle gives the
     * converged subscription set.)
     */
    void beginIteration(const trace::IterationWork &iter);

    /** Should a store to (dst, addr) be transferred at all? */
    bool subscribed(GpuId dst, Addr addr) const;

    std::uint64_t pageBytes() const { return _page_bytes; }

    /** Stores dropped by the subscription filter since construction. */
    std::uint64_t storesFiltered() const { return _filtered; }
    void countFiltered() { ++_filtered; }

  private:
    std::uint64_t _page_bytes;
    std::vector<std::unordered_set<Addr>> _pages; // [dst] -> page set
    std::uint64_t _filtered = 0;
};

} // namespace fp::baselines

#endif // FP_BASELINES_GPS_MODEL_HH
