#include "interconnect/topology.hh"

#include "obs/flight_recorder.hh"
#include "obs/flow.hh"

namespace fp::icn {

FabricParams
FabricParams::forPcie(PcieGen gen)
{
    FabricParams params;
    params.bytes_per_tick = PcieProtocol(gen).bytesPerTick();
    return params;
}

SwitchedFabric::SwitchedFabric(const std::string &name,
                               common::EventQueue &queue,
                               std::uint32_t num_gpus, FabricParams params)
    : SimObject(name, queue), _num_gpus(num_gpus), _params(params),
      _ingress(num_gpus)
{
    fp_assert(num_gpus >= 1, "fabric needs at least one GPU");
    for (std::uint32_t g = 0; g < num_gpus; ++g) {
        _uplinks.push_back(std::make_unique<Link>(
            name + ".up" + std::to_string(g), queue, params.bytes_per_tick,
            params.link_latency + params.switch_latency,
            [this](const WireMessagePtr &msg) { forward(msg); }));
        _downlinks.push_back(std::make_unique<Link>(
            name + ".down" + std::to_string(g), queue,
            params.bytes_per_tick, params.link_latency,
            [this, g](const WireMessagePtr &msg) {
                if (_ingress[g])
                    // fp-lint: allow(hot-escape) indirect callable (ingress hook); ROADMAP item 1
                    _ingress[g](msg);
            }));
        if (params.switch_buffer_bytes != 0)
            _uplinks.back()->setCreditLimit(params.switch_buffer_bytes);
        if (params.endpoint_buffer_bytes != 0)
            _downlinks.back()->setCreditLimit(
                params.endpoint_buffer_bytes);
    }
}

void
SwitchedFabric::releaseEndpointCredits(GpuId gpu, std::uint64_t bytes)
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    _downlinks[gpu]->releaseCredits(bytes);
}

void
SwitchedFabric::setIngressHandler(GpuId gpu, IngressFn handler)
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    _ingress[gpu] = std::move(handler);
}

void
SwitchedFabric::inject(const WireMessagePtr &msg)
{
    fp_assert(msg->src < _num_gpus, "bad source GPU ", msg->src);
    fp_assert(msg->dst < _num_gpus, "bad destination GPU ", msg->dst);
    fp_assert(msg->src != msg->dst, "message to self on GPU ", msg->src);
    msg->timing.created = curTick();
    if (_tracer && _tracer->full())
        msg->timing.flow_id = ++_next_flow_id;
    if (_flows)
        _flows->recordInject(msg->src, msg->dst, msg->wireBytes(),
                             msg->payload_bytes, msg->data_bytes,
                             msg->packed_store_count);
    if (_recorder)
        _recorder->record(obs::FlightKind::fabric_inject, curTick(),
                          "fabric.inject", msg->wireBytes(), msg->dst);
    _uplinks[msg->src]->send(msg);
}

void
SwitchedFabric::forward(const WireMessagePtr &msg)
{
    // Store-and-forward at the switch: the message re-serializes on the
    // destination's downlink. With flow control enabled, the switch
    // ingress buffer entry frees (uplink credits return) once the
    // downlink starts reading the message out.
    if (_params.switch_buffer_bytes != 0) {
        GpuId src = msg->src;
        std::uint64_t bytes = msg->wireBytes();
        _downlinks[msg->dst]->send(msg, [this, src, bytes]() {
            _uplinks[src]->releaseCredits(bytes);
        });
    } else {
        _downlinks[msg->dst]->send(msg);
    }
}

Link &
SwitchedFabric::uplink(GpuId gpu)
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    return *_uplinks[gpu];
}

Link &
SwitchedFabric::downlink(GpuId gpu)
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    return *_downlinks[gpu];
}

const Link &
SwitchedFabric::uplink(GpuId gpu) const
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    return *_uplinks[gpu];
}

const Link &
SwitchedFabric::downlink(GpuId gpu) const
{
    fp_assert(gpu < _num_gpus, "bad GPU id ", gpu);
    return *_downlinks[gpu];
}

Tick
SwitchedFabric::busyUntil() const
{
    Tick latest = 0;
    for (const auto &link : _uplinks)
        latest = std::max(latest, link->busyUntil());
    for (const auto &link : _downlinks)
        latest = std::max(latest, link->busyUntil());
    return latest;
}

std::uint64_t
SwitchedFabric::totalInjectedWireBytes() const
{
    std::uint64_t total = 0;
    for (const auto &link : _uplinks)
        total += link->totalWireBytes();
    return total;
}

void
SwitchedFabric::setTracer(obs::TraceSink *tracer)
{
    _tracer = tracer;
    for (std::uint32_t g = 0; g < _num_gpus; ++g) {
        _uplinks[g]->setTracer(tracer, obs::tracePidGpu(g),
                               obs::lane_uplink);
        _downlinks[g]->setTracer(tracer, obs::tracePidGpu(g),
                                 obs::lane_downlink);
    }
}

void
SwitchedFabric::setFlowCollector(obs::FlowCollector *flows)
{
    _flows = flows;
    for (std::uint32_t g = 0; g < _num_gpus; ++g) {
        _uplinks[g]->setFlowCollector(
            flows,
            flows ? flows->registerLink(
                        _uplinks[g]->name(),
                        obs::FlowCollector::LinkKind::uplink, g)
                  : 0);
        _downlinks[g]->setFlowCollector(
            flows,
            flows ? flows->registerLink(
                        _downlinks[g]->name(),
                        obs::FlowCollector::LinkKind::downlink, g)
                  : 0);
    }
}

void
SwitchedFabric::resetStats()
{
    for (auto &link : _uplinks)
        link->resetStats();
    for (auto &link : _downlinks)
        link->resetStats();
}

} // namespace fp::icn
