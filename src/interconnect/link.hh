/**
 * @file
 * A unidirectional, bandwidth-limited, store-and-forward link.
 *
 * Messages serialize onto the link in FIFO order at the configured
 * bandwidth; a delivered message is handed to the receiver callback after
 * the propagation latency. The link keeps the byte-level statistics that
 * the traffic-breakdown analyses consume.
 */

#ifndef FP_ICN_LINK_HH
#define FP_ICN_LINK_HH

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "common/sim_object.hh"
#include "interconnect/message.hh"
#include "obs/trace_event.hh"

namespace fp::obs {
class FlowCollector;
} // namespace fp::obs

namespace fp::icn {

/** One direction of a point-to-point interconnect link. */
class Link : public common::SimObject
{
  public:
    using DeliverFn = std::function<void(const WireMessagePtr &)>;

    /**
     * @param name        Component name for stats.
     * @param queue       The system event queue.
     * @param bytes_per_tick  Serialization bandwidth.
     * @param latency     Propagation + forwarding latency in ticks.
     * @param deliver     Called when a message fully arrives.
     */
    Link(const std::string &name, common::EventQueue &queue,
         double bytes_per_tick, Tick latency, DeliverFn deliver);

    /**
     * Enqueue @p msg for transmission at the current tick. When
     * credit-based flow control is enabled and the receiver buffer
     * cannot hold the message, transmission is deferred until credits
     * return. @p on_transmit fires when serialization actually starts
     * (used by the switch to free its ingress buffer).
     */
    FP_HOT void send(const WireMessagePtr &msg,
              std::function<void()> on_transmit = {});

    /**
     * Enable credit-based flow control: at most @p bytes of wire data
     * may be in the receiver's buffer (sent but not yet consumed).
     * The receiver must call releaseCredits() as it drains, or the
     * link stalls forever. 0 disables flow control (the default).
     * Must exceed the largest message sent.
     */
    void setCreditLimit(std::uint64_t bytes);

    /** Return @p bytes of receiver buffer; unblocks waiting messages. */
    FP_HOT void releaseCredits(std::uint64_t bytes);

    std::uint64_t creditLimit() const { return _credit_limit; }
    std::uint64_t creditsInUse() const { return _credits_in_use; }
    std::size_t waitingMessages() const { return _waiting.size(); }
    /** Times a message had to wait for credits. */
    std::uint64_t creditStalls() const
    { return static_cast<std::uint64_t>(_credit_stalls.value()); }

    /** Tick at which the link finishes serializing everything queued. */
    Tick busyUntil() const { return _busy_until; }

    /** True when nothing is queued or in flight on the wire. */
    FP_HOT bool idle() const { return _busy_until <= curTick(); }

    double bytesPerTick() const { return _bytes_per_tick; }

    /** Per-message-kind byte accounting (Figure 10 inputs). */
    struct KindStats
    {
        std::uint64_t payload_bytes = 0;
        std::uint64_t header_bytes = 0;
        std::uint64_t data_bytes = 0;
        std::uint64_t messages = 0;
    };

    const KindStats &kindStats(MessageKind kind) const;

    /** Lifetime totals. */
    std::uint64_t totalWireBytes() const;
    std::uint64_t payloadBytes() const
    { return static_cast<std::uint64_t>(_payload_bytes.value()); }
    std::uint64_t headerBytes() const
    { return static_cast<std::uint64_t>(_header_bytes.value()); }
    std::uint64_t dataBytes() const
    { return static_cast<std::uint64_t>(_data_bytes.value()); }
    std::uint64_t messageCount() const
    { return static_cast<std::uint64_t>(_messages.value()); }
    Tick busyTicks() const
    { return static_cast<Tick>(_busy_ticks.value()); }
    /** Wire bytes transmitted (payload + header); goodput per link. */
    std::uint64_t bytesTx() const
    { return static_cast<std::uint64_t>(_bytes_tx.value()); }
    /** Messages transmitted (serialization starts). */
    std::uint64_t msgsTx() const
    { return static_cast<std::uint64_t>(_msgs_tx.value()); }
    /** Ticks messages spent queued (busy link or credit stall). */
    Tick queueWaitTicks() const
    { return static_cast<Tick>(_wait_ticks.value()); }

    void resetStats();

    /**
     * Attach an event tracer (nullptr detaches). Busy spans - one
     * complete event per message serialization, carrying wire/data
     * byte counts - are emitted on (@p pid, @p tid) at full detail.
     */
    void
    setTracer(obs::TraceSink *tracer, std::uint32_t pid, std::uint32_t tid)
    {
        _tracer = tracer;
        _trace_pid = pid;
        _trace_tid = tid;
    }

    /**
     * Attach a flow collector (nullptr detaches): every serialization
     * start is reported under @p link_id with its (src, dst) flow,
     * enqueue-to-start queue wait, and the occupant flow any wait is
     * charged to (docs/fabric_observability.md).
     */
    void
    setFlowCollector(obs::FlowCollector *flows, std::uint32_t link_id)
    {
        _flows = flows;
        _flow_link_id = link_id;
    }

  private:
    /** Begin serializing a message (credits already consumed). */
    FP_HOT void transmit(const WireMessagePtr &msg,
                  const std::function<void()> &on_transmit,
                  Tick enqueued);
    /** Start any waiting messages that now fit the credit budget. */
    FP_HOT void drainWaiting();

    double _bytes_per_tick;
    Tick _latency;
    DeliverFn _deliver;
    Tick _busy_until = 0;

    /** A credit-stalled message and the tick it was enqueued. */
    struct Pending
    {
        WireMessagePtr msg;
        std::function<void()> on_transmit;
        Tick enqueued = 0;
    };

    std::uint64_t _credit_limit = 0; // 0 = unlimited
    std::uint64_t _credits_in_use = 0;
    std::deque<Pending> _waiting;

    obs::TraceSink *_tracer = nullptr;
    std::uint32_t _trace_pid = 0;
    std::uint32_t _trace_tid = 0;

    obs::FlowCollector *_flows = nullptr;
    std::uint32_t _flow_link_id = 0;
    /** Flow of the most recently transmitted message (wait charging). */
    bool _have_occupant = false;
    GpuId _occupant_src = 0;
    GpuId _occupant_dst = 0;

    common::Scalar _payload_bytes;
    common::Scalar _header_bytes;
    common::Scalar _data_bytes;
    common::Scalar _messages;
    common::Scalar _busy_ticks;
    common::Scalar _bytes_tx;
    common::Scalar _msgs_tx;
    common::Scalar _wait_ticks;
    common::Scalar _credit_stalls;
    std::array<KindStats, message_kind_count> _by_kind{};
};

} // namespace fp::icn

#endif // FP_ICN_LINK_HH
