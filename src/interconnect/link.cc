#include "interconnect/link.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "obs/flow.hh"

namespace fp::icn {

Link::Link(const std::string &name, common::EventQueue &queue,
           double bytes_per_tick, Tick latency, DeliverFn deliver)
    : SimObject(name, queue),
      _bytes_per_tick(bytes_per_tick),
      _latency(latency),
      _deliver(std::move(deliver))
{
    fp_assert(_bytes_per_tick > 0.0, "link bandwidth must be positive");
    stats().registerScalar("payload_bytes", &_payload_bytes,
                           "TLP payload bytes transmitted");
    stats().registerScalar("header_bytes", &_header_bytes,
                           "protocol overhead bytes transmitted");
    stats().registerScalar("data_bytes", &_data_bytes,
                           "store data bytes inside payloads");
    stats().registerScalar("messages", &_messages,
                           "messages transmitted");
    stats().registerScalar("busy_ticks", &_busy_ticks,
                           "ticks spent serializing");
    stats().registerScalar("bytes_tx", &_bytes_tx,
                           "wire bytes transmitted (payload + header)");
    stats().registerScalar("msgs_tx", &_msgs_tx,
                           "messages transmitted");
    stats().registerScalar("wait_ticks", &_wait_ticks,
                           "ticks messages waited to start serializing");
    stats().registerScalar("credit_stalls", &_credit_stalls,
                           "messages that waited for credits");
}

void
Link::setCreditLimit(std::uint64_t bytes)
{
    fp_assert(_credits_in_use == 0 && _waiting.empty(),
              "cannot change the credit limit mid-flight");
    _credit_limit = bytes;
}

void
Link::releaseCredits(std::uint64_t bytes)
{
    if (_credit_limit == 0)
        return;
    common::AccessRecorder(eventQueue()).write(this, name().c_str());
    fp_assert(bytes <= _credits_in_use,
              "credit release underflow on ", name());
    _credits_in_use -= bytes;
    drainWaiting();
}

void
Link::drainWaiting()
{
    // FIFO order: only the head may proceed, to preserve PCIe's posted
    // write ordering.
    while (!_waiting.empty()) {
        const Pending &head = _waiting.front();
        if (_credits_in_use + head.msg->wireBytes() > _credit_limit)
            break;
        _credits_in_use += head.msg->wireBytes();
        transmit(head.msg, head.on_transmit, head.enqueued);
        _waiting.pop_front();
    }
}

void
Link::send(const WireMessagePtr &msg, std::function<void()> on_transmit)
{
    fp_assert(msg != nullptr, "null message on link ", name());
    fp_assert(msg->wireBytes() > 0, "zero-byte message on link ", name());
    // Declare the serialization/credit state for the race detector:
    // two same-tick senders contend on this link's FIFO order.
    common::AccessRecorder(eventQueue()).write(this, name().c_str());

    if (_credit_limit != 0) {
        fp_assert(msg->wireBytes() <= _credit_limit,
                  "message larger than the whole credit budget on ",
                  name());
        if (!_waiting.empty() ||
            _credits_in_use + msg->wireBytes() > _credit_limit) {
            ++_credit_stalls;
            _waiting.push_back({msg, std::move(on_transmit), curTick()});
            return;
        }
        _credits_in_use += msg->wireBytes();
    }
    transmit(msg, on_transmit, curTick());
}

void
Link::transmit(const WireMessagePtr &msg,
               const std::function<void()> &on_transmit, Tick enqueued)
{
    Tick now = curTick();
    Tick start = std::max(now, _busy_until);
    auto tx_ticks = static_cast<Tick>(
        std::ceil(static_cast<double>(msg->wireBytes()) / _bytes_per_tick));
    tx_ticks = std::max<Tick>(tx_ticks, 1);
    _busy_until = start + tx_ticks;

    // First hop (source uplink) stamps the serialization milestones.
    bool first_hop = msg->timing.tx_start == obs::no_stamp;
    if (first_hop) {
        msg->timing.tx_start = start;
        msg->timing.tx_end = _busy_until;
    }

    _payload_bytes += static_cast<double>(msg->payload_bytes);
    _header_bytes += static_cast<double>(msg->header_bytes);
    _data_bytes += static_cast<double>(msg->data_bytes);
    ++_messages;
    _busy_ticks += static_cast<double>(tx_ticks);
    _bytes_tx += static_cast<double>(msg->wireBytes());
    ++_msgs_tx;
    Tick wait = start - enqueued;
    _wait_ticks += static_cast<double>(wait);

    if (_flows) {
        obs::FlowCollector::LinkTransmit tx;
        tx.link = _flow_link_id;
        tx.src = msg->src;
        tx.dst = msg->dst;
        tx.enqueued = enqueued;
        tx.start = start;
        tx.tx_ticks = tx_ticks;
        tx.wire_bytes = msg->wireBytes();
        tx.payload_bytes = msg->payload_bytes;
        tx.data_bytes = msg->data_bytes;
        tx.have_occupant = _have_occupant;
        tx.occupant_src = _occupant_src;
        tx.occupant_dst = _occupant_dst;
        _flows->recordTransmit(tx);
    }
    _have_occupant = true;
    _occupant_src = msg->src;
    _occupant_dst = msg->dst;

    KindStats &kind = _by_kind[static_cast<std::size_t>(msg->kind)];
    kind.payload_bytes += msg->payload_bytes;
    kind.header_bytes += msg->header_bytes;
    kind.data_bytes += msg->data_bytes;
    ++kind.messages;

    if (_tracer && _tracer->full()) {
        _tracer->complete(
            _trace_pid, _trace_tid, "tx", "link", start, tx_ticks,
            {"wire_bytes", static_cast<double>(msg->wireBytes())},
            {"data_bytes", static_cast<double>(msg->data_bytes)},
            {"stores", static_cast<double>(msg->packed_store_count)});
        if (msg->timing.flow_id != 0) {
            if (first_hop)
                _tracer->flowStart(_trace_pid, _trace_tid, "msg", "flow",
                                   start, msg->timing.flow_id);
            else
                _tracer->flowStep(_trace_pid, _trace_tid, "msg", "flow",
                                  start, msg->timing.flow_id);
        }
    }

    if (on_transmit)
        // fp-lint: allow(hot-escape) indirect callable (switch buffer-free hook); ROADMAP item 1
        on_transmit();

    Tick arrive = _busy_until + _latency;
    eventQueue().schedule(
        [this, msg]() {
            if (_deliver)
                // fp-lint: allow(hot-escape) indirect callable (receiver hook); ROADMAP item 1
                _deliver(msg);
        },
        arrive, common::Event::prio_arrival, "link.deliver");
}

std::uint64_t
Link::totalWireBytes() const
{
    return payloadBytes() + headerBytes();
}

const Link::KindStats &
Link::kindStats(MessageKind kind) const
{
    return _by_kind[static_cast<std::size_t>(kind)];
}

void
Link::resetStats()
{
    _payload_bytes.reset();
    _header_bytes.reset();
    _data_bytes.reset();
    _messages.reset();
    _busy_ticks.reset();
    _bytes_tx.reset();
    _msgs_tx.reset();
    _wait_ticks.reset();
    _credit_stalls.reset();
    _by_kind.fill(KindStats{});
}

} // namespace fp::icn
