/**
 * @file
 * The store record: the unit of fine-grained peer-to-peer communication.
 *
 * A Store represents one memory-write access as it egresses the source
 * GPU's L1 cache (after intra-warp coalescing), destined for a peer GPU's
 * memory. Addresses are device-local physical addresses on the destination
 * GPU; the destination id is carried separately.
 */

#ifndef FP_ICN_STORE_HH
#define FP_ICN_STORE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace fp::icn {

/** A single remote store as seen at the GPU's network egress port. */
struct Store
{
    /** Device-local byte address on the destination GPU. */
    Addr addr = 0;
    /** Number of bytes written (1..128 after L1 coalescing). */
    std::uint32_t size = 0;
    /** Issuing GPU. */
    GpuId src = invalid_gpu;
    /** GPU whose memory is written. */
    GpuId dst = invalid_gpu;
    /**
     * Optional payload bytes (size() == 0 or == size). Timing-only
     * simulations omit the data; functional tests carry it so that
     * coalescing/packetization round trips can be checked for value
     * preservation.
     */
    std::vector<std::uint8_t> data;
    /** Remote atomics bypass coalescing and flush aliasing queue entries. */
    bool is_atomic = false;
    /**
     * Simulated tick this store issued at the egress port; max_tick
     * (obs::no_stamp) when latency attribution is off. Not part of the
     * wire format: trace (de)serialization ignores it.
     */
    Tick issue_tick = max_tick;

    Store() = default;

    Store(Addr a, std::uint32_t s, GpuId src_gpu, GpuId dst_gpu)
        : addr(a), size(s), src(src_gpu), dst(dst_gpu)
    {}

    /** Inclusive first byte / exclusive last byte convenience. */
    Addr begin() const { return addr; }
    Addr end() const { return addr + size; }

    bool
    overlaps(const Store &other) const
    {
        return begin() < other.end() && other.begin() < end();
    }
};

/** A contiguous address range, used for DMA copies and consumption sets. */
struct AddrRange
{
    Addr base = 0;
    std::uint64_t size = 0;

    Addr begin() const { return base; }
    Addr end() const { return base + size; }

    bool contains(Addr a) const { return a >= base && a < base + size; }

    bool
    overlaps(const AddrRange &other) const
    {
        return begin() < other.end() && other.begin() < end();
    }
};

} // namespace fp::icn

#endif // FP_ICN_STORE_HH
