#include "interconnect/protocol.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "interconnect/message.hh"

namespace fp::icn {

const char *
toString(PcieGen gen)
{
    switch (gen) {
      case PcieGen::gen3: return "PCIe 3.0";
      case PcieGen::gen4: return "PCIe 4.0";
      case PcieGen::gen5: return "PCIe 5.0";
      case PcieGen::gen6: return "PCIe 6.0";
    }
    return "PCIe ?";
}

std::uint64_t
pcieBandwidthBytesPerSec(PcieGen gen)
{
    // Effective x16 per-direction data bandwidth, matching the paper's
    // "32 GB/s for PCIe 4.0 to 128 GB/s for PCIe 6.0".
    constexpr std::uint64_t GB = 1000ull * 1000 * 1000;
    switch (gen) {
      case PcieGen::gen3: return 16 * GB;
      case PcieGen::gen4: return 32 * GB;
      case PcieGen::gen5: return 64 * GB;
      case PcieGen::gen6: return 128 * GB;
    }
    fp_panic("unknown PCIe generation");
}

PcieProtocol::PcieProtocol(PcieGen gen) : PcieProtocol(gen, Params{}) {}

PcieProtocol::PcieProtocol(PcieGen gen, Params params)
    : _gen(gen), _params(params), _bandwidth(pcieBandwidthBytesPerSec(gen))
{
    fp_assert(common::isPowerOfTwo(_params.payload_align),
              "payload alignment must be a power of two");
    fp_assert(_params.max_payload % _params.payload_align == 0,
              "max payload must be alignment aligned");
}

std::uint64_t
PcieProtocol::tlpOverhead() const
{
    return _params.framing_bytes + _params.header_bytes +
           _params.lcrc_bytes + _params.dllp_bytes_per_tlp;
}

std::uint64_t
PcieProtocol::payloadOnWire(Addr addr, std::uint64_t size) const
{
    if (size == 0)
        return 0;
    Addr first = common::alignDown(addr, _params.payload_align);
    Addr last = common::alignUp(addr + size, _params.payload_align);
    return last - first;
}

std::uint64_t
PcieProtocol::storeWireBytes(Addr addr, std::uint64_t size) const
{
    fp_assert(size <= _params.max_payload,
              "store larger than max TLP payload: ", size);
    return tlpOverhead() + payloadOnWire(addr, size);
}

double
PcieProtocol::goodput(std::uint64_t size) const
{
    fp_assert(size > 0, "goodput of zero-size transfer");
    std::uint64_t wire = 0;
    std::uint64_t remaining = size;
    Addr addr = 0;
    while (remaining > 0) {
        std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                      _params.max_payload);
        wire += storeWireBytes(addr, chunk);
        addr += chunk;
        remaining -= chunk;
    }
    return static_cast<double>(size) / static_cast<double>(wire);
}

double
PcieProtocol::bytesPerTick() const
{
    return static_cast<double>(_bandwidth) /
           static_cast<double>(ticks_per_sec);
}

NvlinkProtocol::NvlinkProtocol() : NvlinkProtocol(Params{}) {}

NvlinkProtocol::NvlinkProtocol(Params params) : _params(params)
{
    fp_assert(_params.flit_bytes > 0, "flit size must be non-zero");
}

bool
NvlinkProtocol::needsByteEnableFlit(Addr addr, std::uint64_t size) const
{
    // A packet can omit the byte-enable flit only when the payload exactly
    // covers whole flits: flit-aligned start and flit-multiple size.
    return (addr % _params.flit_bytes) != 0 ||
           (size % _params.flit_bytes) != 0;
}

std::uint64_t
NvlinkProtocol::storeWireBytes(Addr addr, std::uint64_t size) const
{
    fp_assert(size <= _params.max_payload,
              "store larger than max NVLink payload: ", size);
    std::uint64_t flits = _params.header_flits;
    if (needsByteEnableFlit(addr, size))
        flits += 1;
    flits += common::divCeil(size, _params.flit_bytes);
    return flits * _params.flit_bytes;
}

double
NvlinkProtocol::goodput(std::uint64_t size) const
{
    fp_assert(size > 0, "goodput of zero-size transfer");
    std::uint64_t wire = 0;
    std::uint64_t remaining = size;
    Addr addr = 0;
    while (remaining > 0) {
        std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                      _params.max_payload);
        wire += storeWireBytes(addr, chunk);
        addr += chunk;
        remaining -= chunk;
    }
    return static_cast<double>(size) / static_cast<double>(wire);
}

const char *
toString(MessageKind kind)
{
    switch (kind) {
      case MessageKind::raw_store: return "raw-store";
      case MessageKind::finepack_packet: return "finepack";
      case MessageKind::dma_chunk: return "dma";
      case MessageKind::write_combine_line: return "wc-line";
      case MessageKind::atomic_op: return "atomic";
    }
    return "?";
}

} // namespace fp::icn
