/**
 * @file
 * A switched point-to-point topology: every GPU connects to a central
 * switch by one full-duplex link pair, as in the paper's 4-GPU switched
 * PCIe system. The switch is store-and-forward with a fixed forwarding
 * latency; FinePack traffic passes through it unmodified (Section IV-A).
 */

#ifndef FP_ICN_TOPOLOGY_HH
#define FP_ICN_TOPOLOGY_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/sim_object.hh"
#include "interconnect/link.hh"
#include "interconnect/protocol.hh"

namespace fp::obs {
class FlightRecorder;
} // namespace fp::obs

namespace fp::icn {

/** Parameters of the switched interconnect fabric. */
struct FabricParams
{
    /** Per-direction link bandwidth, bytes per tick. */
    double bytes_per_tick = 0.032; // PCIe 4.0 x16: 32 GB/s
    /** Wire propagation latency per hop in ticks. */
    Tick link_latency = 100 * ticks_per_ns;
    /** Switch forwarding latency in ticks. */
    Tick switch_latency = 150 * ticks_per_ns;
    /**
     * Credit-based flow control: per-uplink switch ingress buffer.
     * A message occupies the buffer from uplink transmission until the
     * switch forwards it onward; 0 disables (infinite buffering).
     */
    std::uint64_t switch_buffer_bytes = 0;
    /**
     * Per-downlink endpoint receive buffer. The endpoint must release
     * credits (SwitchedFabric::releaseEndpointCredits) as it consumes
     * messages, or the downlink stalls. 0 disables.
     */
    std::uint64_t endpoint_buffer_bytes = 0;

    static FabricParams forPcie(PcieGen gen);
};

/**
 * A star fabric connecting @p num_gpus endpoints through one switch.
 *
 * Route: uplink[src] -> (switch latency) -> downlink[dst]. Each endpoint
 * registers an ingress callback invoked when a message fully arrives at
 * its downlink.
 */
class SwitchedFabric : public common::SimObject
{
  public:
    using IngressFn = std::function<void(const WireMessagePtr &)>;

    SwitchedFabric(const std::string &name, common::EventQueue &queue,
                   std::uint32_t num_gpus, FabricParams params);

    /** Register the destination-side handler for GPU @p gpu. */
    void setIngressHandler(GpuId gpu, IngressFn handler);

    /** Inject a message at its source GPU's uplink. */
    FP_HOT void inject(const WireMessagePtr &msg);

    /**
     * Return endpoint receive-buffer credits for GPU @p gpu (only
     * meaningful when endpoint_buffer_bytes is configured).
     */
    FP_HOT void releaseEndpointCredits(GpuId gpu, std::uint64_t bytes);

    std::uint32_t numGpus() const { return _num_gpus; }
    const FabricParams &params() const { return _params; }

    Link &uplink(GpuId gpu);
    Link &downlink(GpuId gpu);
    const Link &uplink(GpuId gpu) const;
    const Link &downlink(GpuId gpu) const;

    /** Latest tick at which any link finishes serializing. */
    Tick busyUntil() const;

    /** Sum of wire bytes over all uplinks (each message counted once). */
    std::uint64_t totalInjectedWireBytes() const;

    void resetStats();

    /**
     * Attach an event tracer to every link: GPU g's uplink and
     * downlink emit busy spans on its trace process, on the uplink /
     * downlink lanes.
     */
    void setTracer(obs::TraceSink *tracer);

    /**
     * Attach a flow collector (nullptr detaches): registers every
     * link with it and accounts each injected message against its
     * src -> dst flow. Call after FlowCollector::beginRun() sized for
     * this fabric's GPU count.
     */
    void setFlowCollector(obs::FlowCollector *flows);

    /**
     * Attach a flight recorder (nullptr detaches): every inject()
     * appends one `fabric_inject` ring record (wire bytes, dst). Off
     * costs one branch per message; see docs/run_health.md.
     */
    void setFlightRecorder(obs::FlightRecorder *recorder)
    { _recorder = recorder; }

  private:
    FP_HOT void forward(const WireMessagePtr &msg);

    std::uint32_t _num_gpus;
    FabricParams _params;
    std::vector<std::unique_ptr<Link>> _uplinks;
    std::vector<std::unique_ptr<Link>> _downlinks;
    std::vector<IngressFn> _ingress;
    obs::TraceSink *_tracer = nullptr;
    obs::FlowCollector *_flows = nullptr;
    obs::FlightRecorder *_recorder = nullptr;
    /** Deterministic flow-event chain ids (full trace detail only). */
    std::uint64_t _next_flow_id = 0;
};

} // namespace fp::icn

#endif // FP_ICN_TOPOLOGY_HH
