/**
 * @file
 * Wire messages: what actually traverses a simulated interconnect link.
 *
 * Every transfer paradigm reduces to a stream of WireMessages with an
 * explicit payload/overhead byte split, so the traffic breakdown of the
 * paper's Figure 10 can be recovered from link statistics alone.
 */

#ifndef FP_ICN_MESSAGE_HH
#define FP_ICN_MESSAGE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/alloc_counters.hh"
#include "common/types.hh"
#include "interconnect/store.hh"
#include "obs/latency.hh"

namespace fp::icn {

/** Transfer paradigm that produced a message. */
enum class MessageKind : std::uint8_t {
    /** One raw peer-to-peer store per TLP (the P2P baseline). */
    raw_store,
    /** A FinePack outer transaction carrying packed sub-packets. */
    finepack_packet,
    /** A bulk-DMA chunk (one max-payload TLP worth of a memcpy). */
    dma_chunk,
    /** A cacheline flushed from a write-combining buffer (GPS-style). */
    write_combine_line,
    /** An atomic operation (never coalesced). */
    atomic_op,
};

FP_COLD const char *toString(MessageKind kind);

/** Number of MessageKind values (for per-kind accounting arrays). */
inline constexpr std::size_t message_kind_count = 5;

/**
 * One message on the wire. payload_bytes counts everything transferred as
 * TLP payload (including FinePack sub-headers and any padding);
 * header_bytes counts framing / TLP header / CRC / amortized DLLP
 * overhead. data_bytes counts the actual store data carried, so
 * (payload_bytes - data_bytes) is intra-payload overhead (sub-headers,
 * padding, unwritten write-combine line bytes).
 */
struct WireMessage
{
    MessageKind kind = MessageKind::raw_store;
    GpuId src = invalid_gpu;
    GpuId dst = invalid_gpu;

    /** Bytes of TLP payload on the wire. */
    std::uint64_t payload_bytes = 0;
    /** Bytes of link/transaction-protocol overhead. */
    std::uint64_t header_bytes = 0;
    /** Bytes of real store data inside the payload. */
    std::uint64_t data_bytes = 0;

    /** The individual stores delivered by this message (disaggregated). */
    std::vector<Store> stores;

    /** For dma_chunk messages: the copied address range. */
    AddrRange dma_range;

    /** Number of original program stores folded into this message. */
    std::uint64_t packed_store_count = 0;

    /** Lifecycle milestones for latency attribution (obs/latency.hh). */
    obs::MsgTimestamps timing;
    /**
     * Per-store issue stamps (latency attribution only; empty when no
     * collector is attached). Parallel to the original program stores,
     * not to `stores` (packetization reconstructs those).
     */
    std::vector<obs::StoreStamp> store_stamps;

    FP_HOT std::uint64_t wireBytes() const
    { return payload_bytes + header_bytes; }
};

using WireMessagePtr = std::shared_ptr<WireMessage>;

/**
 * Sole allocation point for wire messages. Routes every allocation
 * through common::AllocCounters so the host-side profiler can report
 * message-churn on the hot path (one branch when profiling is off),
 * and gives ROADMAP item 1's pool allocator a single seam to replace.
 */
FP_HOT inline WireMessagePtr
makeWireMessage()
{
    common::AllocCounters::countWireMessage();
    // fp-lint: allow(hot-alloc) the single wire-message allocation seam; pooling is ROADMAP item 1
    return std::make_shared<WireMessage>();
}

} // namespace fp::icn

#endif // FP_ICN_MESSAGE_HH
