/**
 * @file
 * Link-protocol byte-accounting models for PCIe generations 3-6 and
 * NVLink, used both for goodput analysis (paper Figure 2) and by the
 * timing simulation to convert payloads into wire bytes.
 *
 * PCIe accounting per memory-write TLP (Gen3+ 128b/130b framing):
 *   4 B STP token + 2 B sequence + 16 B 4DW header (64-bit address)
 *   + payload (DW padded) + 4 B LCRC, plus amortized DLLP (Ack/FC)
 *   overhead. All constants are configurable.
 *
 * NVLink accounting (per the paper's Figure 3 and footnote 1): 16 B flits,
 *   one header flit per packet, an optional byte-enable flit depending on
 *   payload size and alignment, data padded to whole flits. The BE-flit
 *   condition is what produces the goodput "spikes" the paper notes.
 */

#ifndef FP_ICN_PROTOCOL_HH
#define FP_ICN_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace fp::icn {

/** Interconnect generations evaluated in the paper (Figure 13). */
enum class PcieGen : std::uint8_t { gen3, gen4, gen5, gen6 };

const char *toString(PcieGen gen);

/** Effective per-direction x16 data bandwidth in bytes per second. */
std::uint64_t pcieBandwidthBytesPerSec(PcieGen gen);

/**
 * Byte-level accounting for one PCIe link direction.
 *
 * All wire-byte computations are pure functions of the transfer size and
 * address alignment; the timing model multiplies by link bandwidth.
 */
class PcieProtocol
{
  public:
    struct Params
    {
        /** STP framing + sequence number bytes per TLP. */
        std::uint32_t framing_bytes = 6;
        /** 4DW TLP header (64-bit addressing). */
        std::uint32_t header_bytes = 16;
        /** Link CRC bytes per TLP. */
        std::uint32_t lcrc_bytes = 4;
        /** Amortized DLLP (Ack / flow-control update) bytes per TLP. */
        std::uint32_t dllp_bytes_per_tlp = 8;
        /** Maximum TLP data payload (PCIe max_payload_size). */
        std::uint32_t max_payload = 4096;
        /** Payload alignment on the wire (PCIe payloads are DW units). */
        std::uint32_t payload_align = 4;
    };

    explicit PcieProtocol(PcieGen gen);
    PcieProtocol(PcieGen gen, Params params);

    PcieGen generation() const { return _gen; }
    const Params &params() const { return _params; }

    /** Fixed per-TLP overhead (framing + header + LCRC + DLLP share). */
    FP_HOT std::uint64_t tlpOverhead() const;

    /** Maximum TLP payload in bytes. */
    std::uint64_t maxPayload() const { return _params.max_payload; }

    /**
     * Bytes of payload occupied on the wire by a write of @p size bytes
     * at @p addr: the DW-aligned span covering the access (sub-DW edges
     * are carried as whole DWs with first/last byte enables).
     */
    FP_HOT std::uint64_t payloadOnWire(Addr addr, std::uint64_t size) const;

    /** Total wire bytes for one ordinary memory-write TLP. */
    FP_HOT std::uint64_t storeWireBytes(Addr addr, std::uint64_t size) const;

    /**
     * Goodput of @p size byte aligned writes: useful bytes divided by
     * total wire bytes, splitting transfers larger than max payload into
     * multiple TLPs. This regenerates the PCIe series of Figure 2.
     */
    double goodput(std::uint64_t size) const;

    /** Link bandwidth in bytes per simulation tick (tick = 1 ps). */
    FP_HOT double bytesPerTick() const;

    /** Link bandwidth in bytes per second. */
    std::uint64_t bytesPerSec() const { return _bandwidth; }

  private:
    PcieGen _gen;
    Params _params;
    std::uint64_t _bandwidth;
};

/**
 * Byte-level accounting for one NVLink direction (goodput analysis only;
 * the paper evaluates timing on PCIe).
 */
class NvlinkProtocol
{
  public:
    struct Params
    {
        /** Flit size in bytes. */
        std::uint32_t flit_bytes = 16;
        /** Header flits per packet. */
        std::uint32_t header_flits = 1;
        /** Maximum data payload per packet. */
        std::uint32_t max_payload = 256;
        /** Per-direction bandwidth (bytes/sec); NVLink3 x4 links. */
        std::uint64_t bandwidth = 100ull * 1000 * 1000 * 1000;
    };

    NvlinkProtocol();
    explicit NvlinkProtocol(Params params);

    const Params &params() const { return _params; }

    /**
     * True when a write of @p size at @p addr needs a dedicated
     * byte-enable flit: any partial-flit coverage requires one.
     */
    bool needsByteEnableFlit(Addr addr, std::uint64_t size) const;

    /** Total wire bytes for one write packet. */
    std::uint64_t storeWireBytes(Addr addr, std::uint64_t size) const;

    /** Goodput for aligned writes of @p size (Figure 2 NVLink series). */
    double goodput(std::uint64_t size) const;

  private:
    Params _params;
};

} // namespace fp::icn

#endif // FP_ICN_PROTOCOL_HH
