#include "trace/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace fp::trace {

std::uint64_t
WorkloadTrace::totalRemoteStores() const
{
    std::uint64_t total = 0;
    for (const auto &iter : iterations)
        for (const auto &gpu : iter.per_gpu)
            total += gpu.remote_stores.size();
    return total;
}

std::uint64_t
WorkloadTrace::totalRemoteStoreBytes() const
{
    std::uint64_t total = 0;
    for (const auto &iter : iterations)
        for (const auto &gpu : iter.per_gpu)
            for (const auto &store : gpu.remote_stores)
                total += store.size;
    return total;
}

void
IntervalSet::add(Addr base, std::uint64_t size)
{
    if (size == 0)
        return;
    _spans.emplace_back(base, base + size);
    _dirty = true;
}

void
IntervalSet::normalize()
{
    if (!_dirty)
        return;
    std::sort(_spans.begin(), _spans.end());
    std::vector<std::pair<Addr, Addr>> merged;
    for (const auto &span : _spans) {
        if (!merged.empty() && span.first <= merged.back().second) {
            merged.back().second =
                std::max(merged.back().second, span.second);
        } else {
            merged.push_back(span);
        }
    }
    _spans = std::move(merged);
    _dirty = false;
}

std::uint64_t
IntervalSet::totalBytes()
{
    normalize();
    std::uint64_t total = 0;
    for (const auto &[begin, end] : _spans)
        total += end - begin;
    return total;
}

std::uint64_t
IntervalSet::intersectBytes(IntervalSet &other)
{
    normalize();
    other.normalize();
    std::uint64_t total = 0;
    std::size_t i = 0, j = 0;
    while (i < _spans.size() && j < other._spans.size()) {
        Addr lo = std::max(_spans[i].first, other._spans[j].first);
        Addr hi = std::min(_spans[i].second, other._spans[j].second);
        if (lo < hi)
            total += hi - lo;
        if (_spans[i].second < other._spans[j].second)
            ++i;
        else
            ++j;
    }
    return total;
}

std::size_t
IntervalSet::intervalCount()
{
    normalize();
    return _spans.size();
}

bool
IntervalSet::contains(Addr addr)
{
    normalize();
    auto it = std::upper_bound(
        _spans.begin(), _spans.end(), addr,
        [](Addr a, const std::pair<Addr, Addr> &span) {
            return a < span.first;
        });
    if (it == _spans.begin())
        return false;
    --it;
    return addr >= it->first && addr < it->second;
}

const std::vector<std::pair<Addr, Addr>> &
IntervalSet::intervals()
{
    normalize();
    return _spans;
}

UpdateSummary
summarizeUpdates(const IterationWork &iter, GpuId dst)
{
    IntervalSet updated;
    for (const auto &gpu : iter.per_gpu)
        for (const auto &store : gpu.remote_stores)
            if (store.dst == dst)
                updated.add(store.addr, store.size);

    IntervalSet consumed;
    if (dst < iter.consumed.size())
        for (const auto &range : iter.consumed[dst])
            consumed.add(range);

    UpdateSummary summary;
    summary.unique_bytes = updated.totalBytes();
    summary.useful_bytes = updated.intersectBytes(consumed);
    return summary;
}

std::uint64_t
totalUsefulBytes(const WorkloadTrace &trace)
{
    std::uint64_t total = 0;
    for (const auto &iter : trace.iterations)
        for (GpuId g = 0; g < trace.num_gpus; ++g)
            total += summarizeUpdates(iter, g).useful_bytes;
    return total;
}

std::uint64_t
totalUniqueBytes(const WorkloadTrace &trace)
{
    std::uint64_t total = 0;
    for (const auto &iter : trace.iterations)
        for (GpuId g = 0; g < trace.num_gpus; ++g)
            total += summarizeUpdates(iter, g).unique_bytes;
    return total;
}

namespace {

constexpr std::uint64_t trace_magic = 0x46504b5452414345ull; // "FPKTRACE"

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    fp_assert(static_cast<bool>(is), "truncated trace stream");
    return value;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    auto len = readPod<std::uint32_t>(is);
    std::string s(len, '\0');
    is.read(s.data(), len);
    fp_assert(static_cast<bool>(is), "truncated trace stream");
    return s;
}

} // namespace

void
writeTrace(const WorkloadTrace &trace, std::ostream &os)
{
    writePod(os, trace_magic);
    writeString(os, trace.workload);
    writeString(os, trace.comm_pattern);
    writePod(os, trace.num_gpus);
    writePod<std::uint32_t>(os, trace.numIterations());

    for (const auto &iter : trace.iterations) {
        writePod<std::uint32_t>(os, iter.numGpus());
        for (const auto &gpu : iter.per_gpu) {
            writePod(os, gpu.flops);
            writePod(os, gpu.local_bytes);
            writePod(os, gpu.dma_extra_local_bytes);
            writePod<std::uint64_t>(os, gpu.remote_stores.size());
            for (const auto &store : gpu.remote_stores) {
                writePod(os, store.addr);
                writePod(os, store.size);
                writePod(os, store.src);
                writePod(os, store.dst);
                writePod<std::uint8_t>(os, store.is_atomic ? 1 : 0);
            }
            writePod<std::uint64_t>(os, gpu.dma_copies.size());
            for (const auto &copy : gpu.dma_copies) {
                writePod(os, copy.dst);
                writePod(os, copy.range.base);
                writePod(os, copy.range.size);
            }
        }
        writePod<std::uint32_t>(os,
                                static_cast<std::uint32_t>(
                                    iter.consumed.size()));
        for (const auto &ranges : iter.consumed) {
            writePod<std::uint64_t>(os, ranges.size());
            for (const auto &range : ranges) {
                writePod(os, range.base);
                writePod(os, range.size);
            }
        }
    }

    writePod<std::uint32_t>(os, static_cast<std::uint32_t>(
                                    trace.single_gpu_work.size()));
    for (const auto &[flops, bytes] : trace.single_gpu_work) {
        writePod(os, flops);
        writePod(os, bytes);
    }
}

WorkloadTrace
readTrace(std::istream &is)
{
    auto magic = readPod<std::uint64_t>(is);
    fp_assert(magic == trace_magic, "bad trace magic");

    WorkloadTrace trace;
    trace.workload = readString(is);
    trace.comm_pattern = readString(is);
    trace.num_gpus = readPod<std::uint32_t>(is);
    auto num_iters = readPod<std::uint32_t>(is);

    trace.iterations.resize(num_iters);
    for (auto &iter : trace.iterations) {
        auto num_gpus = readPod<std::uint32_t>(is);
        iter.per_gpu.resize(num_gpus);
        for (auto &gpu : iter.per_gpu) {
            gpu.flops = readPod<double>(is);
            gpu.local_bytes = readPod<std::uint64_t>(is);
            gpu.dma_extra_local_bytes = readPod<std::uint64_t>(is);
            auto num_stores = readPod<std::uint64_t>(is);
            gpu.remote_stores.resize(num_stores);
            for (auto &store : gpu.remote_stores) {
                store.addr = readPod<Addr>(is);
                store.size = readPod<std::uint32_t>(is);
                store.src = readPod<GpuId>(is);
                store.dst = readPod<GpuId>(is);
                store.is_atomic = readPod<std::uint8_t>(is) != 0;
            }
            auto num_copies = readPod<std::uint64_t>(is);
            gpu.dma_copies.resize(num_copies);
            for (auto &copy : gpu.dma_copies) {
                copy.dst = readPod<GpuId>(is);
                copy.range.base = readPod<Addr>(is);
                copy.range.size = readPod<std::uint64_t>(is);
            }
        }
        auto num_consumed = readPod<std::uint32_t>(is);
        iter.consumed.resize(num_consumed);
        for (auto &ranges : iter.consumed) {
            auto num_ranges = readPod<std::uint64_t>(is);
            ranges.resize(num_ranges);
            for (auto &range : ranges) {
                range.base = readPod<Addr>(is);
                range.size = readPod<std::uint64_t>(is);
            }
        }
    }

    auto num_work = readPod<std::uint32_t>(is);
    trace.single_gpu_work.resize(num_work);
    for (auto &[flops, bytes] : trace.single_gpu_work) {
        flops = readPod<double>(is);
        bytes = readPod<std::uint64_t>(is);
    }
    return trace;
}

} // namespace fp::trace
