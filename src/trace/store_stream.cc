#include "trace/store_stream.hh"

#include "common/logging.hh"

namespace fp::trace {

StoreStreamBuilder::StoreStreamBuilder(GpuId src,
                                       std::vector<icn::Store> &sink,
                                       gpu::WarpCoalescer &coalescer,
                                       std::uint32_t warp_size)
    : _src(src), _sink(sink), _coalescer(coalescer), _warp_size(warp_size)
{
    fp_assert(warp_size > 0, "warp size must be non-zero");
    _pending.reserve(warp_size);
}

void
StoreStreamBuilder::laneWrite(GpuId dst, Addr addr, std::uint32_t size)
{
    fp_assert(size > 0, "zero-size lane write");
    if (dst != _pending_dst && !_pending.empty())
        flushWarp();
    _pending_dst = dst;
    _pending.push_back(gpu::LaneAccess{addr, size});
    if (_pending.size() >= _warp_size)
        flushWarp();
}

void
StoreStreamBuilder::scalarWrite(GpuId dst, Addr addr, std::uint32_t size)
{
    flushWarp();
    _pending_dst = dst;
    _pending.push_back(gpu::LaneAccess{addr, size});
    flushWarp();
}

void
StoreStreamBuilder::flushWarp()
{
    if (_pending.empty())
        return;
    _coalescer.coalesceToStores(std::move(_pending), _src, _pending_dst,
                                _sink);
    _pending.clear();
    _pending.reserve(_warp_size);
    _pending_dst = invalid_gpu;
}

} // namespace fp::trace
