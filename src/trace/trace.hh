/**
 * @file
 * Workload traces: the interface between algorithm execution and the
 * timing simulation.
 *
 * A workload run produces one IterationWork per program iteration: for
 * every GPU, a compute descriptor (flops + local memory traffic), the
 * ordered stream of remote stores the kernel emits (post L1 coalescing),
 * and the address ranges a bulk-DMA implementation of the same program
 * would copy. Per-destination consumption ranges provide the oracle for
 * classifying delivered bytes as useful or wasted (paper Figure 10).
 */

#ifndef FP_TRACE_TRACE_HH
#define FP_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "interconnect/store.hh"

namespace fp::trace {

/** A DMA copy a memcpy-paradigm implementation would perform. */
struct DmaCopy
{
    GpuId dst = invalid_gpu;
    icn::AddrRange range;
};

/** One GPU's work within one iteration. */
struct GpuIterationWork
{
    /** Arithmetic operations executed by the kernel. */
    double flops = 0.0;
    /** Local (HBM) memory traffic in bytes. */
    std::uint64_t local_bytes = 0;
    /** Remote stores in issue order (addresses are destination-local). */
    std::vector<icn::Store> remote_stores;
    /** What the bulk-DMA paradigm copies at the kernel boundary. */
    std::vector<DmaCopy> dma_copies;
    /**
     * Extra local memory traffic only the memcpy paradigm pays (halo
     * packing / unpacking kernels when the communicated data is strided
     * in memory). Charged by the bulk-DMA and infinite-bandwidth
     * paradigms, not by the store-based ones.
     */
    std::uint64_t dma_extra_local_bytes = 0;
};

/** One iteration across all GPUs. */
struct IterationWork
{
    std::vector<GpuIterationWork> per_gpu;
    /**
     * consumed[g]: destination-local address ranges GPU g actually reads
     * from its replicas before they are next overwritten.
     */
    std::vector<std::vector<icn::AddrRange>> consumed;

    std::uint32_t numGpus() const
    { return static_cast<std::uint32_t>(per_gpu.size()); }
};

/** A complete multi-iteration trace plus workload metadata. */
struct WorkloadTrace
{
    std::string workload;
    std::string comm_pattern;
    std::uint32_t num_gpus = 0;
    std::vector<IterationWork> iterations;
    /**
     * Reference single-GPU work per iteration (flops, local bytes);
     * used to compute the strong-scaling baseline.
     */
    std::vector<std::pair<double, std::uint64_t>> single_gpu_work;

    std::uint32_t numIterations() const
    { return static_cast<std::uint32_t>(iterations.size()); }

    /** Totals across all iterations/GPUs. */
    std::uint64_t totalRemoteStores() const;
    std::uint64_t totalRemoteStoreBytes() const;
};

/** Sorted, disjoint interval set over byte addresses. */
class IntervalSet
{
  public:
    /** Add [base, base+size). */
    void add(Addr base, std::uint64_t size);
    void add(const icn::AddrRange &range) { add(range.base, range.size); }

    /** Merge overlapping/touching intervals; idempotent. */
    void normalize();

    /** Total bytes covered (normalizes first). */
    std::uint64_t totalBytes();

    /** Bytes covered by both this and @p other. */
    std::uint64_t intersectBytes(IntervalSet &other);

    /** Number of disjoint intervals after normalization. */
    std::size_t intervalCount();

    bool contains(Addr addr);

    const std::vector<std::pair<Addr, Addr>> &intervals();

  private:
    std::vector<std::pair<Addr, Addr>> _spans; // [begin, end)
    bool _dirty = false;
};

/**
 * The information content of one iteration's updates to one GPU:
 * unique updated bytes and the consumed (useful) subset. Identical for
 * every transfer paradigm, which is what makes the Figure 10 byte
 * classification well-defined.
 */
struct UpdateSummary
{
    std::uint64_t unique_bytes = 0;
    std::uint64_t useful_bytes = 0;
};

/** Compute the per-destination update summary of one iteration. */
UpdateSummary summarizeUpdates(const IterationWork &iter, GpuId dst);

/** Sum of useful bytes over all iterations and destinations. */
std::uint64_t totalUsefulBytes(const WorkloadTrace &trace);

/** Sum of unique updated bytes over all iterations and destinations. */
std::uint64_t totalUniqueBytes(const WorkloadTrace &trace);

/** Binary trace serialization (stores only; data payloads dropped). */
void writeTrace(const WorkloadTrace &trace, std::ostream &os);
WorkloadTrace readTrace(std::istream &is);

} // namespace fp::trace

#endif // FP_TRACE_TRACE_HH
