/**
 * @file
 * Helper that workloads use to emit remote stores: lane-level writes are
 * grouped into warp store instructions and run through the L1 warp
 * coalescer, producing the post-L1 egress store stream the simulator
 * (and FinePack) actually sees.
 */

#ifndef FP_TRACE_STORE_STREAM_HH
#define FP_TRACE_STORE_STREAM_HH

#include <vector>

#include "gpu/warp_coalescer.hh"
#include "trace/trace.hh"

namespace fp::trace {

/** Builds one GPU's remote store stream for one iteration. */
class StoreStreamBuilder
{
  public:
    /**
     * @param src        Issuing GPU.
     * @param sink       Store vector to append to (a
     *                   GpuIterationWork::remote_stores).
     * @param coalescer  Shared warp coalescer (accumulates the Figure 4
     *                   size histogram across the workload).
     * @param warp_size  Lanes per warp.
     */
    StoreStreamBuilder(GpuId src, std::vector<icn::Store> &sink,
                       gpu::WarpCoalescer &coalescer,
                       std::uint32_t warp_size = 32);

    ~StoreStreamBuilder() { flushWarp(); }

    /**
     * One lane writes @p size bytes at @p addr on GPU @p dst. Lane
     * writes accumulate into the current warp instruction; once
     * warp_size lanes (or a destination change) accumulate, the warp
     * issues through the coalescer.
     *
     * Matches GPU execution: a warp's lanes execute the same store
     * instruction, so only writes of the same logical operation (and
     * destination) share a warp.
     */
    void laneWrite(GpuId dst, Addr addr, std::uint32_t size);

    /**
     * A scalar store issued by a single lane (e.g. the lane-0 result
     * store of a warp-per-row reduction): always its own instruction,
     * never coalesced with neighbours.
     */
    void scalarWrite(GpuId dst, Addr addr, std::uint32_t size);

    /** Force the pending warp instruction to issue (kernel boundary). */
    void flushWarp();

    /** Total egress stores produced so far. */
    std::size_t storesEmitted() const { return _sink.size(); }

  private:
    GpuId _src;
    std::vector<icn::Store> &_sink;
    gpu::WarpCoalescer &_coalescer;
    std::uint32_t _warp_size;

    GpuId _pending_dst = invalid_gpu;
    std::vector<gpu::LaneAccess> _pending;
};

} // namespace fp::trace

#endif // FP_TRACE_STORE_STREAM_HH
