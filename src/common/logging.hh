/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant of the simulator was violated (a bug in
 *            this library). Aborts so a debugger or core dump can inspect it.
 * fatal()  - the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments). Exits with an error code.
 * warn()   - something works, but not as well as it should.
 * inform() - plain status output.
 */

#ifndef FP_COMMON_LOGGING_HH
#define FP_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fp::common {

/**
 * Documented process exit codes (docs/run_health.md). The CLI maps
 * every failure mode onto one of these so campaign drivers can triage
 * thousands of runs from exit status alone.
 */
namespace exit_code {
inline constexpr int fatal = 1;        ///< user/configuration error
inline constexpr int usage = 2;        ///< bad command line
inline constexpr int panic = 3;        ///< simulator bug (fp_panic/assert)
inline constexpr int invariant = 86;   ///< FP_INVARIANT violation
inline constexpr int interrupted = 130; ///< SIGINT (128 + 2)
inline constexpr int terminated = 143;  ///< SIGTERM (128 + 15)
} // namespace exit_code

/** Thrown by panic()/fatal() so tests can observe failures without dying. */
class SimError : public std::runtime_error
{
  public:
    enum class Kind { Panic, Fatal };

    SimError(Kind kind, const std::string &message)
        : std::runtime_error(message), _kind(kind)
    {}

    Kind kind() const { return _kind; }

  private:
    Kind _kind;
};

namespace detail {

/** Fold any streamable argument pack into a single string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/**
 * Fire the installed failure hook (recursion-guarded, no-op when none
 * is installed). Called on the panic path before the SimError throws
 * or the process aborts, and by InvariantRegistry::fail; user errors
 * (fatal()) do not fire it -- a bad command line needs no post-mortem.
 */
void invokeFailureHook(const char *message);

} // namespace detail

/**
 * Install a hook that runs once per simulator-bug failure (panic,
 * failed assertion, invariant violation) just before the error
 * propagates. The run-health layer installs a post-mortem dump here so
 * an FP_INVARIANT trip or a ProtocolOracle mismatch flushes the flight
 * recorder even when the exception is swallowed upstream. Install
 * before starting threads (the slot is two plain atomics, not a
 * synchronized pair); pass nullptr to uninstall. The hook must not
 * panic -- re-entry is suppressed, not queued.
 */
void setFailureHook(void (*hook)(void *arg, const char *message),
                    void *arg);

/**
 * Control whether panic()/fatal() throw SimError (used by unit tests) or
 * terminate the process (default for standalone binaries).
 */
void setExceptionsEnabled(bool enable);
bool exceptionsEnabled();

/** Suppress warn()/inform() output (benchmarks want quiet runs). */
void setQuiet(bool quiet);

/**
 * While a simulation driver is running an event queue, warn()/inform()
 * prefix their messages with the current simulated tick so diagnostics
 * in long replays are attributable. The driver installs a tick source
 * for the duration of a run via this RAII guard; nesting restores the
 * previous source. The underlying slot is thread_local, so concurrent
 * simulations (the parallel sweep runner) each keep their own context.
 */
class ScopedTickContext
{
  public:
    explicit ScopedTickContext(std::function<std::uint64_t()> now);
    ~ScopedTickContext();

    ScopedTickContext(const ScopedTickContext &) = delete;
    ScopedTickContext &operator=(const ScopedTickContext &) = delete;

  private:
    std::function<std::uint64_t()> _previous;
};

} // namespace fp::common

#define fp_panic(...)                                                        \
    ::fp::common::detail::panicImpl(                                         \
        __FILE__, __LINE__, ::fp::common::detail::formatMessage(__VA_ARGS__))

#define fp_fatal(...)                                                        \
    ::fp::common::detail::fatalImpl(                                         \
        __FILE__, __LINE__, ::fp::common::detail::formatMessage(__VA_ARGS__))

#define fp_warn(...)                                                         \
    ::fp::common::detail::warnImpl(                                          \
        ::fp::common::detail::formatMessage(__VA_ARGS__))

#define fp_inform(...)                                                       \
    ::fp::common::detail::informImpl(                                        \
        ::fp::common::detail::formatMessage(__VA_ARGS__))

/** Assert a simulator invariant; violation is a bug, so it panics. */
#define fp_assert(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            fp_panic("assertion '" #cond "' failed: ",                       \
                     ::fp::common::detail::formatMessage(__VA_ARGS__));      \
        }                                                                    \
    } while (0)

#endif // FP_COMMON_LOGGING_HH
