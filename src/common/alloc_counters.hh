/**
 * @file
 * Coarse allocation counters for the simulation hot paths.
 *
 * ROADMAP item 1 targets arena/pool allocation for events and wire
 * messages; these counters are the "before" instrument: they count how
 * many queue-owned lambda events and heap-allocated wire messages a run
 * creates, so the profiler report shows what a pool would amortize.
 *
 * The counters are process-wide atomics gated on an activation count:
 * when no obs::Profiler run is in flight (`active == 0`, every normal
 * run) each hook is one relaxed load and a predictable branch. They are
 * deliberately coarse - under a parallel sweep (sim::SweepRunner) all
 * shards fold into the same totals - because they inform "is allocation
 * a hotspot at all", not per-shard attribution.
 */

#ifndef FP_COMMON_ALLOC_COUNTERS_HH
#define FP_COMMON_ALLOC_COUNTERS_HH

#include <atomic>
#include <cstdint>

#include "common/types.hh"

namespace fp::common {

struct AllocCounters
{
    /** Number of obs::Profiler runs currently collecting (0 = off). */
    inline static std::atomic<int> active{0};

    /** Queue-owned LambdaEvent allocations (EventQueue::schedule(fn)). */
    inline static std::atomic<std::uint64_t> lambda_events{0};

    /** icn::WireMessage heap allocations (icn::makeWireMessage()). */
    inline static std::atomic<std::uint64_t> wire_messages{0};

    FP_HOT static void
    countLambdaEvent()
    {
        if (active.load(std::memory_order_relaxed) > 0)
            lambda_events.fetch_add(1, std::memory_order_relaxed);
    }

    FP_HOT static void
    countWireMessage()
    {
        if (active.load(std::memory_order_relaxed) > 0)
            wire_messages.fetch_add(1, std::memory_order_relaxed);
    }
};

} // namespace fp::common

#endif // FP_COMMON_ALLOC_COUNTERS_HH
