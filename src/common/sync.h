/**
 * @file
 * Annotated synchronization primitives and the thread pool.
 *
 * This is the ONLY file in the tree allowed to use raw standard-library
 * concurrency (`std::mutex`, `std::thread`, ...); everything else goes
 * through the wrappers here so that Clang's Thread Safety Analysis
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) sees every
 * lock the simulator takes. The `raw-concurrency` rule in
 * tools/fp_lint.py enforces the boundary lexically, and the CI
 * `thread-safety` job compiles the whole tree with
 * `-Wthread-safety -Werror=thread-safety` so an unguarded access to an
 * FP_GUARDED_BY member is a build error, not a TSan roll of the dice.
 *
 * Under GCC (which has no thread-safety attributes) the annotation
 * macros expand to nothing and the wrappers are plain forwarding
 * shims, so the default build is unaffected.
 *
 * Conventions (docs/thread_safety.md):
 *  - every mutable object reachable from more than one thread is a
 *    member annotated FP_GUARDED_BY(<its fp::Mutex>);
 *  - public member functions lock internally and are annotated
 *    FP_EXCLUDES(mu); internal helpers that expect the caller to hold
 *    the lock are annotated FP_REQUIRES(mu);
 *  - data confined to one thread (thread_local, or owned by a single
 *    simulation worker) is not annotated - confinement, not locking,
 *    is its thread-safety argument, stated in a comment.
 */

#ifndef FP_COMMON_SYNC_H
#define FP_COMMON_SYNC_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"

// ---- Clang thread-safety annotation macros ----------------------------
//
// FP_THREAD_ANNOTATION expands to the attribute under Clang and to
// nothing elsewhere; the named macros below are the only spellings the
// rest of the tree uses.

#if defined(__clang__)
#define FP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FP_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define FP_CAPABILITY(x) FP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its dtor. */
#define FP_SCOPED_CAPABILITY FP_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding mutex @p x. */
#define FP_GUARDED_BY(x) FP_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by mutex @p x. */
#define FP_PT_GUARDED_BY(x) FP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the caller to already hold the listed mutexes. */
#define FP_REQUIRES(...)                                                     \
    FP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed mutexes and holds them on return. */
#define FP_ACQUIRE(...)                                                      \
    FP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed mutexes (held on entry). */
#define FP_RELEASE(...)                                                      \
    FP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the mutex iff it returns @p ret. */
#define FP_TRY_ACQUIRE(ret, ...)                                             \
    FP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the listed mutexes (deadlock prevention). */
#define FP_EXCLUDES(...) FP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the mutex guarding its result. */
#define FP_RETURN_CAPABILITY(x) FP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable analysis for one function (justify in a comment). */
#define FP_NO_THREAD_SAFETY_ANALYSIS                                         \
    FP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fp {

/**
 * An annotated standard mutex. Non-recursive; locking it twice on one
 * thread deadlocks (and the analysis rejects it statically).
 */
class FP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FP_ACQUIRE() { _m.lock(); }
    void unlock() FP_RELEASE() { _m.unlock(); }
    bool try_lock() FP_TRY_ACQUIRE(true) { return _m.try_lock(); }

  private:
    friend class CondVar;
    std::mutex _m;
};

/**
 * RAII lock over an fp::Mutex (the analysis-aware std::lock_guard).
 * Scope it tightly: the analyzer treats the guarded region as exactly
 * the lifetime of this object.
 */
class FP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) FP_ACQUIRE(mu) : _mu(mu) { _mu.lock(); }
    ~MutexLock() FP_RELEASE() { _mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mu;
};

/**
 * Condition variable over fp::Mutex. wait() must be called with the
 * mutex held (enforced statically via FP_REQUIRES); as always, re-check
 * the predicate in a loop after waking.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /**
     * Atomically release @p mu and block; reacquires before returning.
     * The analysis sees the capability as held across the call, which
     * matches the caller's view (held before, held after).
     */
    void
    wait(Mutex &mu) FP_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> relock(mu._m, std::adopt_lock);
        _cv.wait(relock);
        relock.release();
    }

    /**
     * wait() with a deadline: blocks at most @p timeout_ns nanoseconds.
     * Returns true when notified, false on timeout; either way the
     * mutex is reacquired before returning, and as with wait() the
     * caller must re-check its predicate (spurious wakeups and the
     * notify/timeout race both surface as "woke without the predicate").
     * This is what periodic background services (the run-health
     * watchdog) block on, so stop() can interrupt a sleep instantly by
     * notifying instead of waiting out the period.
     */
    bool
    waitFor(Mutex &mu, std::uint64_t timeout_ns) FP_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> relock(mu._m, std::adopt_lock);
        auto status =
            _cv.wait_for(relock, std::chrono::nanoseconds(timeout_ns));
        relock.release();
        return status == std::cv_status::no_timeout;
    }

    void notify_one() { _cv.notify_one(); }
    void notify_all() { _cv.notify_all(); }

  private:
    std::condition_variable _cv;
};

/**
 * A single background thread for long-lived services that are not
 * batch-shaped (the run-health watchdog): ThreadPool::parallelFor is a
 * blocking barrier, so anything that must run *alongside* the caller
 * needs its own thread. RAII: joins on destruction, so the service
 * body must observe its own stop flag (under an fp::Mutex / CondVar)
 * or the destructor blocks forever. Detaching is deliberately not
 * offered -- detached threads outlive every scope the thread-safety
 * analysis (and the fp-lint raw-concurrency rule) reasons about.
 */
class Thread
{
  public:
    Thread() = default;

    explicit Thread(std::function<void()> fn) : _thread(std::move(fn)) {}

    ~Thread() { join(); }

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    Thread(Thread &&) = default;
    Thread &operator=(Thread &&other)
    {
        join();
        _thread = std::move(other._thread);
        return *this;
    }

    bool joinable() const { return _thread.joinable(); }

    /** Wait for the body to return; no-op when not joinable. */
    void
    join()
    {
        if (_thread.joinable())
            _thread.join();
    }

  private:
    std::thread _thread;
};

/**
 * A fixed-size worker pool for fanning out independent, deterministic
 * jobs (the sweep runner's engine). Tasks must not assume any execution
 * order; determinism comes from writing results into index-addressed
 * slots, never from scheduling.
 *
 * A pool of size() <= 1 runs everything inline on the calling thread,
 * so serial and parallel configurations share one code path and the
 * serial path has zero threading overhead.
 */
class ThreadPool
{
  public:
    /**
     * @p threads worker threads; 0 and 1 both mean "no workers, run
     * inline". The pool is reusable across parallelFor() batches.
     */
    explicit ThreadPool(unsigned threads)
    {
        for (unsigned i = 1; i < threads; ++i)
            _workers.emplace_back([this] { workerLoop(); });
        // With N >= 2 requested, N-1 workers plus the calling thread
        // (which joins in during parallelFor) give N lanes total.
        _lanes = threads > 1 ? threads : 1;
    }

    ~ThreadPool()
    {
        {
            MutexLock lock(_mu);
            _stop = true;
        }
        _work_ready.notify_all();
        for (std::thread &worker : _workers)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Parallel lanes available, including the calling thread. */
    unsigned size() const { return _lanes; }

    /**
     * Run fn(0) .. fn(n-1), fanning across the workers plus the calling
     * thread; returns when all n calls finished. If any call throws,
     * the first exception (in completion order) is rethrown here after
     * the batch drains; the remaining indices still run.
     *
     * With size() <= 1 (or n <= 1) the calls run inline, in index
     * order, on the calling thread - the deterministic serial path.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (_lanes <= 1 || n <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        {
            MutexLock lock(_mu);
            fp_assert(!_batch_active,
                      "ThreadPool::parallelFor is not reentrant");
            _batch_active = true;
            _fn = &fn;
            _next = 0;
            _limit = n;
            _in_flight = 0;
        }
        _work_ready.notify_all();
        drainBatch();
        std::exception_ptr error;
        {
            MutexLock lock(_mu);
            while (_in_flight != 0)
                _batch_done.wait(_mu);
            _batch_active = false;
            _fn = nullptr;
            error = std::exchange(_error, nullptr);
        }
        if (error)
            std::rethrow_exception(error);
    }

  private:
    /** Claim and run batch indices until the batch is exhausted. */
    void
    drainBatch() FP_EXCLUDES(_mu)
    {
        for (;;) {
            const std::function<void(std::size_t)> *fn = nullptr;
            std::size_t index = 0;
            {
                MutexLock lock(_mu);
                if (!_batch_active || _next >= _limit)
                    return;
                index = _next++;
                ++_in_flight;
                fn = _fn;
            }
            try {
                (*fn)(index);
            } catch (...) {
                MutexLock lock(_mu);
                if (!_error)
                    _error = std::current_exception();
            }
            {
                MutexLock lock(_mu);
                --_in_flight;
                if (_in_flight == 0 && _next >= _limit)
                    _batch_done.notify_all();
            }
        }
    }

    void
    workerLoop() FP_EXCLUDES(_mu)
    {
        for (;;) {
            {
                MutexLock lock(_mu);
                while (!_stop && (!_batch_active || _next >= _limit))
                    _work_ready.wait(_mu);
                if (_stop)
                    return;
            }
            drainBatch();
        }
    }

    std::vector<std::thread> _workers;
    unsigned _lanes = 1;

    Mutex _mu;
    CondVar _work_ready;
    CondVar _batch_done;
    bool _stop FP_GUARDED_BY(_mu) = false;
    bool _batch_active FP_GUARDED_BY(_mu) = false;
    const std::function<void(std::size_t)> *_fn FP_GUARDED_BY(_mu) =
        nullptr;
    std::size_t _next FP_GUARDED_BY(_mu) = 0;
    std::size_t _limit FP_GUARDED_BY(_mu) = 0;
    std::size_t _in_flight FP_GUARDED_BY(_mu) = 0;
    std::exception_ptr _error FP_GUARDED_BY(_mu);
};

} // namespace fp

#endif // FP_COMMON_SYNC_H
