#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace fp::common {

std::string
JsonWriter::quoted(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::preValue()
{
    if (_scopes.empty()) {
        fp_assert(!_emitted_root, "JSON document already complete");
        _emitted_root = true;
        return;
    }
    if (_scopes.back() == Scope::object) {
        fp_assert(_key_pending, "object member emitted without a key");
        _key_pending = false;
        return;
    }
    if (_has_member.back())
        _os << ',';
    _has_member.back() = true;
}

void
JsonWriter::key(const std::string &name)
{
    fp_assert(!_scopes.empty() && _scopes.back() == Scope::object,
              "key() outside an object scope");
    fp_assert(!_key_pending, "two keys in a row");
    if (_has_member.back())
        _os << ',';
    _has_member.back() = true;
    _os << quoted(name) << ':';
    _key_pending = true;
}

void
JsonWriter::beginObject()
{
    preValue();
    _os << '{';
    _scopes.push_back(Scope::object);
    _has_member.push_back(false);
}

void
JsonWriter::endObject()
{
    fp_assert(!_scopes.empty() && _scopes.back() == Scope::object,
              "endObject() without a matching beginObject()");
    fp_assert(!_key_pending, "dangling key at endObject()");
    _scopes.pop_back();
    _has_member.pop_back();
    _os << '}';
}

void
JsonWriter::beginArray()
{
    preValue();
    _os << '[';
    _scopes.push_back(Scope::array);
    _has_member.push_back(false);
}

void
JsonWriter::endArray()
{
    fp_assert(!_scopes.empty() && _scopes.back() == Scope::array,
              "endArray() without a matching beginArray()");
    _scopes.pop_back();
    _has_member.pop_back();
    _os << ']';
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    _os << quoted(v);
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        _os << "null";
        return;
    }
    // Integral doubles print without an exponent or trailing zeros so
    // counters stay readable; %.17g round-trips everything else.
    char buf[32];
    if (std::abs(v) < 9e15 && v == std::floor(v)) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    _os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    _os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    _os << v;
}

void
JsonWriter::value(bool v)
{
    preValue();
    _os << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    preValue();
    _os << "null";
}

} // namespace fp::common
