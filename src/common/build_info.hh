/**
 * @file
 * Build provenance: which binary produced a given measurement.
 *
 * Host-side profiling numbers (docs/profiling.md) are only comparable
 * when the build is: wall time depends on commit, compiler, build
 * type, and whether sanitizers or FP_CHECK invariants are compiled in.
 * Every stats/profile JSON document and `fptrace --version` therefore
 * carry this record, so a slow hotspot report can be traced to "that
 * was an ASan Debug build" instead of a phantom regression.
 */

#ifndef FP_COMMON_BUILD_INFO_HH
#define FP_COMMON_BUILD_INFO_HH

#include <string>

namespace fp::common {

class JsonWriter;

/** Configure/compile-time facts about this binary. */
struct BuildInfo
{
    /** Short git SHA at configure time ("unknown" outside a checkout). */
    const char *git_sha;
    /** Compiler id and version (e.g. "GNU 13.2.0"). */
    const char *compiler;
    /** CMake build type (e.g. "RelWithDebInfo"). */
    const char *build_type;
    /** FP_SANITIZE value, or "none". */
    const char *sanitizer;
    /** FP_INVARIANT runtime checks compiled in? */
    bool fp_check;
};

/** The facts baked into this binary. */
const BuildInfo &buildInfo();

/** One-line human-readable summary (for --version output). */
std::string buildInfoLine();

/** The `provenance` JSON object shared by stats and profile docs. */
void dumpBuildInfoJson(JsonWriter &json);

} // namespace fp::common

#endif // FP_COMMON_BUILD_INFO_HH
