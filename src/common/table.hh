/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print paper
 * figure/table reproductions in a uniform format.
 */

#ifndef FP_COMMON_TABLE_HH
#define FP_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fp::common {

/** A simple column-aligned text table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : _title(std::move(title)) {}

    /** Set the header row (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimal places. */
    static std::string num(double value, int precision = 2);

    void print(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace fp::common

#endif // FP_COMMON_TABLE_HH
