/**
 * @file
 * Cooperative interrupt flag for long simulations.
 *
 * The run-health fatal handlers (src/obs/fatal.cc) set the flag from a
 * SIGINT handler; the event queue polls it once per executed event and
 * throws SimInterrupted, which the simulation driver converts into an
 * orderly partial teardown (RunResult::interrupted) so the CLI can
 * flush partial stats instead of losing the run. The flag is a single
 * relaxed atomic: setting it is async-signal-safe and polling it costs
 * one uncontended load on the hot path.
 *
 * The flag deliberately stays set across runs: an interrupted replay
 * may have follow-up runs queued (the single-GPU baseline, racecheck
 * seeds), and those must abort on their first event rather than run to
 * completion against an operator who asked to stop. Only the CLI entry
 * points clear() it, before starting fresh work.
 */

#ifndef FP_COMMON_INTERRUPT_HH
#define FP_COMMON_INTERRUPT_HH

#include <atomic>
#include <exception>

#include "common/types.hh"

namespace fp::common {

/** Thrown by EventQueue::step() when an interrupt is pending. */
class SimInterrupted : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "simulation interrupted";
    }
};

namespace interrupt {

namespace detail {
// One process-wide flag; std::atomic, so lint-exempt and safe to set
// from a signal handler (atomic stores are async-signal-safe).
inline std::atomic<bool> requested{false};
} // namespace detail

/** Request a cooperative stop (async-signal-safe). */
inline void
request()
{
    detail::requested.store(true, std::memory_order_relaxed);
}

/** Polled by EventQueue::step() before dispatching each event. */
FP_HOT inline bool
pending()
{
    return detail::requested.load(std::memory_order_relaxed);
}

/** Re-arm for fresh work (CLI entry points only; see file comment). */
inline void
clear()
{
    detail::requested.store(false, std::memory_order_relaxed);
}

} // namespace interrupt

} // namespace fp::common

#endif // FP_COMMON_INTERRUPT_HH
