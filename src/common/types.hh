/**
 * @file
 * Fundamental scalar types shared across the FinePack simulator.
 */

#ifndef FP_COMMON_TYPES_HH
#define FP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace fp {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A physical (per-GPU) or global byte address. */
using Addr = std::uint64_t;

/** Identifies one GPU in the multi-GPU system. */
using GpuId = std::uint32_t;

/** Sentinel for "no GPU" / broadcast contexts. */
inline constexpr GpuId invalid_gpu = std::numeric_limits<GpuId>::max();

/** Sentinel address, matches the paper's UINT64_MAX base-register reset. */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Ticks per common time unit (1 tick == 1 ps). */
inline constexpr Tick ticks_per_ns = 1000;
inline constexpr Tick ticks_per_us = 1000 * ticks_per_ns;
inline constexpr Tick ticks_per_ms = 1000 * ticks_per_us;
inline constexpr Tick ticks_per_sec = 1000 * ticks_per_ms;

/** Byte-size literals. */
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

} // namespace fp

#endif // FP_COMMON_TYPES_HH
