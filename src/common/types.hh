/**
 * @file
 * Fundamental scalar types shared across the FinePack simulator.
 */

#ifndef FP_COMMON_TYPES_HH
#define FP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

/**
 * Hot-path annotations, enforced by tools/fp_hotpath.py (see
 * docs/hot_path_analysis.md).
 *
 * FP_HOT marks a function on the per-event / per-message path: the
 * analyzer bans heap allocation inside it (hot-alloc) and requires
 * everything it calls to be FP_HOT, FP_COLD, or known-trivial
 * (hot-escape). It expands to [[gnu::hot]] so the optimizer also
 * groups and favors these functions.
 *
 * FP_COLD marks a function deliberately *off* the hot path - setup,
 * teardown, slow paths behind unlikely branches, observer hooks -
 * that hot code is still allowed to call. It expands to nothing; it
 * exists for the analyzer (and the reader).
 */
#if defined(__GNUC__) || defined(__clang__)
#define FP_HOT [[gnu::hot]]
#else
#define FP_HOT
#endif
#define FP_COLD

namespace fp {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A physical (per-GPU) or global byte address. */
using Addr = std::uint64_t;

/** Identifies one GPU in the multi-GPU system. */
using GpuId = std::uint32_t;

/** Sentinel for "no GPU" / broadcast contexts. */
inline constexpr GpuId invalid_gpu = std::numeric_limits<GpuId>::max();

/** Sentinel address, matches the paper's UINT64_MAX base-register reset. */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

inline constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Ticks per common time unit (1 tick == 1 ps). */
inline constexpr Tick ticks_per_ns = 1000;
inline constexpr Tick ticks_per_us = 1000 * ticks_per_ns;
inline constexpr Tick ticks_per_ms = 1000 * ticks_per_us;
inline constexpr Tick ticks_per_sec = 1000 * ticks_per_ms;

/** Byte-size literals. */
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

} // namespace fp

#endif // FP_COMMON_TYPES_HH
