#include "common/build_info.hh"

#include "common/build_info_gen.hh"
#include "common/json.hh"

namespace fp::common {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = {
        FP_BUILD_GIT_SHA,
        FP_BUILD_COMPILER,
        FP_BUILD_TYPE,
        FP_BUILD_SANITIZER[0] ? FP_BUILD_SANITIZER : "none",
#ifdef FP_CHECK_ENABLED
        true,
#else
        false,
#endif
    };
    return info;
}

std::string
buildInfoLine()
{
    const BuildInfo &info = buildInfo();
    std::string line = "commit ";
    line += info.git_sha;
    line += ", ";
    line += info.compiler;
    line += ", ";
    line += info.build_type;
    line += ", sanitizer=";
    line += info.sanitizer;
    line += ", fp_check=";
    line += info.fp_check ? "on" : "off";
    return line;
}

void
dumpBuildInfoJson(JsonWriter &json)
{
    const BuildInfo &info = buildInfo();
    json.beginObject();
    json.kv("git_sha", info.git_sha);
    json.kv("compiler", info.compiler);
    json.kv("build_type", info.build_type);
    json.kv("sanitizer", info.sanitizer);
    json.kv("fp_check", info.fp_check);
    json.endObject();
}

} // namespace fp::common
