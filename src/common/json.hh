/**
 * @file
 * A minimal streaming JSON writer.
 *
 * The observability layer (stats export, trace events, time series)
 * emits machine-readable JSON; this writer handles the syntax - comma
 * placement, nesting, string escaping, non-finite doubles - so the
 * serialization code reads as schema, not as punctuation. No DOM, no
 * allocation beyond the scope stack.
 */

#ifndef FP_COMMON_JSON_HH
#define FP_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fp::common {

/**
 * Streaming JSON writer over an std::ostream. Scopes must be closed in
 * the order they were opened; every value in an object scope must be
 * preceded by key(). Misuse panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : _os(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    /** Non-finite doubles serialize as null (JSON has no NaN/Inf). */
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(const std::string &name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** True once every opened scope has been closed. */
    bool complete() const { return _scopes.empty() && _emitted_root; }

    /** Escape @p s into a quoted JSON string literal. */
    static std::string quoted(const std::string &s);

  private:
    enum class Scope : std::uint8_t { object, array };

    /** Comma/validity bookkeeping before any value is emitted. */
    void preValue();

    std::ostream &_os;
    std::vector<Scope> _scopes;
    /** Member/element already emitted in the innermost scope? */
    std::vector<bool> _has_member;
    bool _key_pending = false;
    bool _emitted_root = false;
};

} // namespace fp::common

#endif // FP_COMMON_JSON_HH
