#include "common/event_queue.hh"

#include <algorithm>

#include "check/invariant.hh"
#include "common/interrupt.hh"

namespace fp::common {

namespace {

/**
 * SplitMix64 finalizer: a fixed, platform-independent bijection on
 * 64-bit values. Applied to (seed ^ sequence) it yields one stable
 * pseudo-random permutation of same-(tick, priority) ties per seed.
 */
FP_HOT std::uint64_t
mixTieKey(std::uint64_t seed, std::uint64_t sequence)
{
    std::uint64_t z = (seed + 0x9e3779b97f4a7c15ull) ^ sequence;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

void
EventQueue::schedule(Event *event, Tick when)
{
    fp_assert(event != nullptr, "cannot schedule null event");
    fp_assert(!event->_scheduled,
              "event already scheduled (", event->description(), ")");
    FP_INVARIANT(when >= _now, "event-not-in-past",
                 "event '", event->description(), "' scheduled at ", when,
                 " with now=", _now);
    fp_assert(when >= _now, "scheduling in the past: when=", when,
              " now=", _now);

    event->_when = when;
    event->_sequence = _next_sequence++;
    event->_scheduled = true;
    std::uint64_t tie_key =
        _shuffle ? mixTieKey(_shuffle_seed, event->_sequence)
                 : event->_sequence;
    _queue.push(Entry{when, event->priority(), tie_key, event->_sequence,
                      event});
    if (_queue.size() > _peak_depth)
        _peak_depth = _queue.size();
}

void
EventQueue::addObserver(EventQueueObserver *observer)
{
    fp_assert(observer != nullptr, "cannot attach null observer");
    fp_assert(std::find(_observers.begin(), _observers.end(), observer) ==
                  _observers.end(),
              "observer already attached");
    _observers.push_back(observer);
    refreshAccessObserver();
}

void
EventQueue::removeObserver(EventQueueObserver *observer)
{
    std::erase(_observers, observer);
    refreshAccessObserver();
}

void
EventQueue::setObserver(EventQueueObserver *observer)
{
    _observers.clear();
    if (observer)
        _observers.push_back(observer);
    refreshAccessObserver();
}

void
EventQueue::refreshAccessObserver()
{
    _access_observer = nullptr;
    for (auto it = _observers.rbegin(); it != _observers.rend(); ++it) {
        if ((*it)->wantsAccesses()) {
            _access_observer = *it;
            break;
        }
    }
}

void
EventQueue::notifyBegin(const Event &event)
{
    for (EventQueueObserver *observer : _observers)
        observer->beginEvent(event);
}

void
EventQueue::notifyEnd(const Event &event)
{
    for (EventQueueObserver *observer : _observers)
        observer->endEvent(event);
}

void
EventQueue::enableTieBreakShuffle(std::uint64_t seed)
{
    fp_assert(empty(), "cannot change tie-break mode with events queued");
    _shuffle = true;
    _shuffle_seed = seed;
}

void
EventQueue::disableTieBreakShuffle()
{
    fp_assert(empty(), "cannot change tie-break mode with events queued");
    _shuffle = false;
    _shuffle_seed = 0;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    fp_assert(event != nullptr, "cannot reschedule null event");
    // The stale heap entry (if any) is detected later by sequence mismatch.
    event->_scheduled = false;
    schedule(event, when);
}

void
EventQueue::pruneStale()
{
    while (!_queue.empty() && isStale(_queue.top())) {
        _queue.pop();
        ++_stale_drops;
    }
}

Tick
EventQueue::nextEventTick()
{
    pruneStale();
    return _queue.empty() ? max_tick : _queue.top().when;
}

bool
EventQueue::step()
{
    // Cooperative interrupt: polled before each dispatch (one relaxed
    // atomic load), so a SIGINT unwinds between events -- never inside
    // a handler -- and the driver can tear down an internally
    // consistent partial run. run() and the sampler's pump() both
    // drain through step(), so one poll point covers every loop.
    if (interrupt::pending()) [[unlikely]]
        throw SimInterrupted();
    pruneStale();
    if (_queue.empty())
        return false;

    Entry top = _queue.top();
    _queue.pop();

    FP_INVARIANT(top.when >= _now, "event-time-monotonic",
                 "next event at ", top.when, " behind now=", _now);
    fp_assert(top.when >= _now, "time went backwards");
    _now = top.when;

    Event *event = top.event;
    event->_scheduled = false;
    ++_processed;
    // The hottest branch in the repo: with no observers attached (every
    // normal run) dispatch is a single emptiness test - no virtual
    // calls, no vector iteration.
    if (_observers.empty()) [[likely]] {
        event->process();
    } else {
        notifyBegin(*event);
        event->process();
        notifyEnd(*event);
    }
    collectGarbage();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        pruneStale();
        if (_queue.empty() || _queue.top().when > limit)
            break;
        step();
    }
    // The queue is idle: reclaim every executed one-shot lambda now so
    // repeated run() cycles (one per driver iteration) never
    // accumulate ownership records up to the amortized GC threshold.
    collectGarbage(/*force=*/true);
    return _now;
}

void
EventQueue::collectGarbage(bool force)
{
    // Periodically drop completed one-shot lambda events so long
    // simulations do not accumulate unbounded ownership records. The
    // threshold doubles with the surviving population so the amortized
    // cost per event stays constant.
    if (!force && _owned.size() < _gc_threshold)
        return;
    std::erase_if(_owned, [](const std::unique_ptr<LambdaEvent> &event) {
        return !event->scheduled();
    });
    _gc_threshold = std::max<std::size_t>(4096, _owned.size() * 2);
}

} // namespace fp::common
