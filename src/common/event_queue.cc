#include "common/event_queue.hh"

#include <algorithm>

#include "check/invariant.hh"

namespace fp::common {

void
EventQueue::schedule(Event *event, Tick when)
{
    fp_assert(event != nullptr, "cannot schedule null event");
    fp_assert(!event->_scheduled,
              "event already scheduled (", event->description(), ")");
    FP_INVARIANT(when >= _now, "event-not-in-past",
                 "event '", event->description(), "' scheduled at ", when,
                 " with now=", _now);
    fp_assert(when >= _now, "scheduling in the past: when=", when,
              " now=", _now);

    event->_when = when;
    event->_sequence = _next_sequence++;
    event->_scheduled = true;
    _queue.push(Entry{when, event->priority(), event->_sequence, event});
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    fp_assert(event != nullptr, "cannot reschedule null event");
    // The stale heap entry (if any) is detected later by sequence mismatch.
    event->_scheduled = false;
    schedule(event, when);
}

void
EventQueue::pruneStale()
{
    while (!_queue.empty() && isStale(_queue.top()))
        _queue.pop();
}

Tick
EventQueue::nextEventTick()
{
    pruneStale();
    return _queue.empty() ? max_tick : _queue.top().when;
}

bool
EventQueue::step()
{
    pruneStale();
    if (_queue.empty())
        return false;

    Entry top = _queue.top();
    _queue.pop();

    FP_INVARIANT(top.when >= _now, "event-time-monotonic",
                 "next event at ", top.when, " behind now=", _now);
    fp_assert(top.when >= _now, "time went backwards");
    _now = top.when;

    Event *event = top.event;
    event->_scheduled = false;
    ++_processed;
    event->process();
    collectGarbage();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        pruneStale();
        if (_queue.empty() || _queue.top().when > limit)
            break;
        step();
    }
    return _now;
}

void
EventQueue::collectGarbage()
{
    // Periodically drop completed one-shot lambda events so long
    // simulations do not accumulate unbounded ownership records. The
    // threshold doubles with the surviving population so the amortized
    // cost per event stays constant.
    if (_owned.size() < _gc_threshold)
        return;
    std::erase_if(_owned, [](const std::unique_ptr<LambdaEvent> &event) {
        return !event->scheduled();
    });
    _gc_threshold = std::max<std::size_t>(4096, _owned.size() * 2);
}

} // namespace fp::common
