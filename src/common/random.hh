/**
 * @file
 * Deterministic random number generation for dataset synthesis.
 *
 * A thin wrapper around a fixed-algorithm PRNG (xoshiro256**) so that
 * workload datasets are bit-identical across platforms and standard library
 * implementations (std::mt19937 distributions are not portable).
 */

#ifndef FP_COMMON_RANDOM_HH
#define FP_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace fp::common {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        fp_assert(bound != 0, "Rng::below(0)");
        // Rejection sampling for unbiased results.
        std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        fp_assert(hi >= lo, "Rng::range lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace fp::common

#endif // FP_COMMON_RANDOM_HH
