/**
 * @file
 * Base class for named simulation components.
 */

#ifndef FP_COMMON_SIM_OBJECT_HH
#define FP_COMMON_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "common/event_queue.hh"
#include "common/stats.hh"

namespace fp::common {

/**
 * A named component attached to an event queue, with its own stat group.
 * Mirrors gem5's SimObject in spirit: everything with simulated behaviour
 * derives from this.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &queue)
        : _name(std::move(name)), _queue(queue), _stats(_name)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    FP_HOT const std::string &name() const { return _name; }
    FP_HOT EventQueue &eventQueue() { return _queue; }
    FP_HOT Tick curTick() const { return _queue.now(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  protected:
    FP_HOT void
    scheduleIn(std::function<void()> fn, Tick delay,
               int priority = Event::prio_default,
               const char *label = "lambda event")
    {
        _queue.scheduleIn(std::move(fn), delay, priority, label);
    }

  private:
    std::string _name;
    EventQueue &_queue;
    StatGroup _stats;
};

} // namespace fp::common

#endif // FP_COMMON_SIM_OBJECT_HH
