#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/json.hh"

namespace fp::common {

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
    MetricsRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    MetricsRegistry::instance().remove(this);
}

void
Distribution::sample(double v, std::uint64_t weight)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _count += weight;
    _sum += v * weight;
    _sum_sq += v * v * weight;

    if (v < _lo) {
        _underflow += weight;
    } else if (v >= _hi) {
        _overflow += weight;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucket_width);
        idx = std::min(idx, _buckets.size() - 1);
        _buckets[idx] += weight;
    }
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = _count = 0;
    _sum = _sum_sq = 0.0;
    _min = _max = 0.0;
}

double
Distribution::variance() const
{
    if (_count < 2)
        return 0.0;
    double n = static_cast<double>(_count);
    double m = _sum / n;
    return std::max(0.0, _sum_sq / n - m * m);
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    // Bucket i covers [edges[i], edges[i+1]); values below edges[0] are
    // clamped into bucket 0; the final bucket is unbounded above.
    std::size_t idx = 0;
    auto it = std::upper_bound(_edges.begin(), _edges.end(), v);
    if (it != _edges.begin())
        idx = static_cast<std::size_t>(it - _edges.begin()) - 1;
    if (_total == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _counts[idx] += weight;
    _total += weight;
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _total = 0;
    _min = _max = 0.0;
}

double
Histogram::percentile(double p) const
{
    if (_total == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    double target = p * static_cast<double>(_total);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        double next = static_cast<double>(cum + _counts[i]);
        if (next >= target) {
            // Interpolate within bucket i, bounded by the observed
            // sample range (the last bucket has no upper edge).
            double lo = std::max(_edges[i], _min);
            double hi = i + 1 < _edges.size()
                ? std::min(_edges[i + 1], _max) : _max;
            if (hi < lo)
                hi = lo;
            double frac = (target - static_cast<double>(cum))
                / static_cast<double>(_counts[i]);
            double v = lo + frac * (hi - lo);
            return std::min(std::max(v, _min), _max);
        }
        cum += _counts[i];
    }
    return _max;
}

void
StatGroup::registerScalar(const std::string &name, const Scalar *stat,
                          const std::string &desc)
{
    fp_assert(!_scalars.count(name), "duplicate scalar stat: ", name);
    _scalars[name] = Named{desc, stat};
}

void
StatGroup::registerAverage(const std::string &name, const Average *stat,
                           const std::string &desc)
{
    fp_assert(!_averages.count(name), "duplicate average stat: ", name);
    _averages[name] = Named{desc, stat};
}

void
StatGroup::registerDistribution(const std::string &name,
                                const Distribution *stat,
                                const std::string &desc)
{
    fp_assert(!_distributions.count(name),
              "duplicate distribution stat: ", name);
    _distributions[name] = Named{desc, stat};
}

void
StatGroup::registerHistogram(const std::string &name, const Histogram *stat,
                             const std::string &desc)
{
    fp_assert(!_histograms.count(name),
              "duplicate histogram stat: ", name);
    _histograms[name] = Named{desc, stat};
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = _scalars.find(name);
    fp_assert(it != _scalars.end(), "unknown scalar stat: ", _name, ".",
              name);
    return static_cast<const Scalar *>(it->second.stat)->value();
}

double
StatGroup::averageValue(const std::string &name) const
{
    auto it = _averages.find(name);
    fp_assert(it != _averages.end(), "unknown average stat: ", _name, ".",
              name);
    return static_cast<const Average *>(it->second.stat)->mean();
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return _scalars.count(name) > 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    auto emit = [&](const std::string &name, double value,
                    const std::string &desc) {
        os << std::left << std::setw(44) << (_name + "." + name)
           << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &[name, named] : _scalars)
        emit(name, static_cast<const Scalar *>(named.stat)->value(),
             named.desc);
    for (const auto &[name, named] : _averages)
        emit(name, static_cast<const Average *>(named.stat)->mean(),
             named.desc);
    for (const auto &[name, named] : _distributions) {
        const auto *dist = static_cast<const Distribution *>(named.stat);
        emit(name + ".mean", dist->mean(), named.desc);
        emit(name + ".count", static_cast<double>(dist->count()), "");
    }
    for (const auto &[name, named] : _histograms) {
        const auto *hist = static_cast<const Histogram *>(named.stat);
        emit(name + ".total", static_cast<double>(hist->total()),
             named.desc);
        for (std::size_t i = 0; i < hist->edges().size(); ++i) {
            std::ostringstream bucket;
            bucket << name << '[' << hist->edges()[i] << ']';
            emit(bucket.str(), static_cast<double>(hist->counts()[i]),
                 "");
        }
    }
}

void
StatGroup::dumpJson(JsonWriter &json) const
{
    json.beginObject();
    json.kv("name", _name);

    json.key("scalars");
    json.beginObject();
    for (const auto &[name, named] : _scalars) {
        json.key(name);
        json.beginObject();
        json.kv("value", static_cast<const Scalar *>(named.stat)->value());
        if (!named.desc.empty())
            json.kv("desc", named.desc);
        json.endObject();
    }
    json.endObject();

    json.key("averages");
    json.beginObject();
    for (const auto &[name, named] : _averages) {
        const auto *avg = static_cast<const Average *>(named.stat);
        json.key(name);
        json.beginObject();
        json.kv("mean", avg->mean());
        json.kv("sum", avg->sum());
        json.kv("count", avg->count());
        if (!named.desc.empty())
            json.kv("desc", named.desc);
        json.endObject();
    }
    json.endObject();

    json.key("distributions");
    json.beginObject();
    for (const auto &[name, named] : _distributions) {
        const auto *dist = static_cast<const Distribution *>(named.stat);
        json.key(name);
        json.beginObject();
        json.kv("count", dist->count());
        json.kv("mean", dist->mean());
        json.kv("variance", dist->variance());
        json.kv("min", dist->min());
        json.kv("max", dist->max());
        json.kv("underflow", dist->underflow());
        json.kv("overflow", dist->overflow());
        json.key("bucket_lo");
        json.beginArray();
        for (std::size_t i = 0; i < dist->buckets().size(); ++i)
            json.value(dist->bucketLow(i));
        json.endArray();
        json.key("buckets");
        json.beginArray();
        for (std::uint64_t b : dist->buckets())
            json.value(b);
        json.endArray();
        if (!named.desc.empty())
            json.kv("desc", named.desc);
        json.endObject();
    }
    json.endObject();

    json.key("histograms");
    json.beginObject();
    for (const auto &[name, named] : _histograms) {
        const auto *hist = static_cast<const Histogram *>(named.stat);
        json.key(name);
        json.beginObject();
        json.kv("total", hist->total());
        json.key("edges");
        json.beginArray();
        for (double e : hist->edges())
            json.value(e);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (std::uint64_t c : hist->counts())
            json.value(c);
        json.endArray();
        json.kv("min", hist->min());
        json.kv("max", hist->max());
        json.kv("p50", hist->percentile(0.50));
        json.kv("p90", hist->percentile(0.90));
        json.kv("p95", hist->percentile(0.95));
        json.kv("p99", hist->percentile(0.99));
        if (!named.desc.empty())
            json.kv("desc", named.desc);
        json.endObject();
    }
    json.endObject();

    json.endObject();
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Membership is guarded by the registry's own fp::Mutex.
    // fp-lint: allow(global-state) internally synchronized
    static MetricsRegistry registry;
    return registry;
}

std::vector<const StatGroup *>
MetricsRegistry::groups() const
{
    fp::MutexLock lock(_mu);
    return _groups;
}

void
MetricsRegistry::add(const StatGroup *group)
{
    fp::MutexLock lock(_mu);
    _groups.push_back(group);
}

void
MetricsRegistry::remove(const StatGroup *group)
{
    fp::MutexLock lock(_mu);
    auto it = std::find(_groups.begin(), _groups.end(), group);
    if (it != _groups.end())
        _groups.erase(it);
}

void
MetricsRegistry::dumpJson(JsonWriter &json) const
{
    // The membership lock is held across the walk so groups cannot be
    // torn down mid-dump; each group's contents are read unlocked (see
    // the class comment: groups are confined to their owning thread).
    fp::MutexLock lock(_mu);
    json.beginArray();
    for (const StatGroup *group : _groups)
        group->dumpJson(json);
    json.endArray();
}

} // namespace fp::common
