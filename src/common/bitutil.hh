/**
 * @file
 * Small bit-manipulation and alignment helpers used throughout the
 * interconnect and FinePack models.
 */

#ifndef FP_COMMON_BITUTIL_HH
#define FP_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace fp::common {

/** True iff @p value is a power of two (zero is not). */
FP_HOT constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Round @p value down to a multiple of @p align (power of two). */
FP_HOT constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

/** Round @p value up to a multiple of @p align (power of two). */
FP_HOT constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value up to a multiple of arbitrary (non-zero) @p unit. */
FP_HOT constexpr std::uint64_t
roundUpTo(std::uint64_t value, std::uint64_t unit)
{
    return ((value + unit - 1) / unit) * unit;
}

/** Ceiling division. */
FP_HOT constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Number of bits needed to represent values in [0, n). */
FP_HOT constexpr unsigned
bitsFor(std::uint64_t n)
{
    if (n <= 1)
        return 0;
    return 64u - static_cast<unsigned>(std::countl_zero(n - 1));
}

/** Extract bits [lo, hi] (inclusive) of @p value. */
FP_HOT constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    std::uint64_t mask = hi >= 63 ? ~0ull : ((1ull << (hi + 1)) - 1);
    return (value & mask) >> lo;
}

/** A mask with the low @p n bits set. */
FP_HOT constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ull : (1ull << n) - 1;
}

} // namespace fp::common

#endif // FP_COMMON_BITUTIL_HH
