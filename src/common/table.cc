#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace fp::common {

void
Table::setHeader(std::vector<std::string> header)
{
    fp_assert(!header.empty(), "table header cannot be empty");
    _header = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    fp_assert(row.size() == _header.size(),
              "row width ", row.size(), " != header width ", _header.size());
    _rows.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        width[c] = _header[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << " | ";
        }
        os << '\n';
    };

    std::size_t total = 1;
    for (auto w : width)
        total += w + 3;

    os << '\n' << _title << '\n' << std::string(total, '-') << '\n';
    print_row(_header);
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        print_row(row);
    os << std::string(total, '-') << '\n';
}

} // namespace fp::common
