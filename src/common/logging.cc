#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace fp::common {

namespace {

// Process-wide output switches: atomics, so any thread may flip them
// and any simulation worker may consult them without locking.
std::atomic<bool> exceptions_enabled{true};
std::atomic<bool> quiet{false};

/**
 * Installed by ScopedTickContext while a simulation is running.
 * thread_local: each simulation runs on one thread, so under the
 * parallel sweep runner every worker carries its own tick context and
 * diagnostics are stamped with the emitting simulation's clock -
 * confinement is the thread-safety argument here, not locking.
 */
thread_local std::function<std::uint64_t()> tick_source;

/** "[tick N] " when a tick source is active, empty otherwise. */
std::string
tickPrefix()
{
    if (!tick_source)
        return {};
    return "[tick " + std::to_string(tick_source()) + "] ";
}

} // namespace

ScopedTickContext::ScopedTickContext(std::function<std::uint64_t()> now)
    : _previous(std::move(tick_source))
{
    tick_source = std::move(now);
}

ScopedTickContext::~ScopedTickContext()
{
    tick_source = std::move(_previous);
}

void
setExceptionsEnabled(bool enable)
{
    exceptions_enabled.store(enable);
}

bool
exceptionsEnabled()
{
    return exceptions_enabled.load();
}

void
setQuiet(bool q)
{
    quiet.store(q);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::string full = std::string("panic: ") + message + " @ " + file + ":" +
                       std::to_string(line);
    if (exceptionsEnabled())
        throw SimError(SimError::Kind::Panic, full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::string full = std::string("fatal: ") + message + " @ " + file + ":" +
                       std::to_string(line);
    if (exceptionsEnabled())
        throw SimError(SimError::Kind::Fatal, full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (!quiet.load())
        std::cerr << "warn: " << tickPrefix() << message << std::endl;
}

void
informImpl(const std::string &message)
{
    if (!quiet.load())
        std::cout << "info: " << tickPrefix() << message << std::endl;
}

} // namespace detail

} // namespace fp::common
