#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace fp::common {

namespace {

// Process-wide output switches: atomics, so any thread may flip them
// and any simulation worker may consult them without locking.
std::atomic<bool> exceptions_enabled{true};
std::atomic<bool> quiet{false};

// The failure hook slot (setFailureHook): two atomics installed
// together before any simulation thread starts, read on the (cold)
// failure path only.
std::atomic<void (*)(void *, const char *)> failure_hook{nullptr};
std::atomic<void *> failure_hook_arg{nullptr};

// Re-entry guard: a hook that itself panics must not recurse.
// thread_local -- each thread's failure path guards itself.
thread_local bool in_failure_hook = false;

/**
 * Installed by ScopedTickContext while a simulation is running.
 * thread_local: each simulation runs on one thread, so under the
 * parallel sweep runner every worker carries its own tick context and
 * diagnostics are stamped with the emitting simulation's clock -
 * confinement is the thread-safety argument here, not locking.
 */
thread_local std::function<std::uint64_t()> tick_source;

/** "[tick N] " when a tick source is active, empty otherwise. */
std::string
tickPrefix()
{
    if (!tick_source)
        return {};
    return "[tick " + std::to_string(tick_source()) + "] ";
}

} // namespace

ScopedTickContext::ScopedTickContext(std::function<std::uint64_t()> now)
    : _previous(std::move(tick_source))
{
    tick_source = std::move(now);
}

ScopedTickContext::~ScopedTickContext()
{
    tick_source = std::move(_previous);
}

void
setExceptionsEnabled(bool enable)
{
    exceptions_enabled.store(enable);
}

bool
exceptionsEnabled()
{
    return exceptions_enabled.load();
}

void
setQuiet(bool q)
{
    quiet.store(q);
}

void
setFailureHook(void (*hook)(void *, const char *), void *arg)
{
    failure_hook_arg.store(arg, std::memory_order_relaxed);
    failure_hook.store(hook, std::memory_order_release);
}

namespace detail {

void
invokeFailureHook(const char *message)
{
    auto hook = failure_hook.load(std::memory_order_acquire);
    if (!hook || in_failure_hook)
        return;
    in_failure_hook = true;
    hook(failure_hook_arg.load(std::memory_order_relaxed), message);
    in_failure_hook = false;
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::string full = std::string("panic: ") + message + " @ " + file + ":" +
                       std::to_string(line);
    invokeFailureHook(full.c_str());
    if (exceptionsEnabled())
        throw SimError(SimError::Kind::Panic, full);
    std::cerr << full << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::string full = std::string("fatal: ") + message + " @ " + file + ":" +
                       std::to_string(line);
    if (exceptionsEnabled())
        throw SimError(SimError::Kind::Fatal, full);
    std::cerr << full << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (!quiet.load())
        std::cerr << "warn: " << tickPrefix() << message << std::endl;
}

void
informImpl(const std::string &message)
{
    if (!quiet.load())
        std::cout << "info: " << tickPrefix() << message << std::endl;
}

} // namespace detail

} // namespace fp::common
