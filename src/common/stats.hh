/**
 * @file
 * Lightweight statistics package, loosely modeled on gem5's stats.
 *
 * A StatGroup owns named statistics; components register Scalar, Average,
 * Distribution, and Histogram stats and the group can render them all or
 * expose them programmatically to the metrics collector / benches.
 */

#ifndef FP_COMMON_STATS_HH
#define FP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/sync.h"
#include "common/types.hh"

namespace fp::common {

/** A monotonically accumulated counter / gauge. */
class Scalar
{
  public:
    FP_HOT Scalar &operator+=(double v) { _value += v; return *this; }
    FP_HOT Scalar &operator-=(double v) { _value -= v; return *this; }
    FP_HOT Scalar &operator++() { _value += 1.0; return *this; }
    void set(double v) { _value = v; }
    void reset() { _value = 0.0; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    FP_HOT void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    void reset() { _sum = 0.0; _count = 0; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * A bucketed distribution over a fixed [min, max) range with uniform
 * bucket width, plus underflow/overflow and moment tracking.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Configure as @p n_buckets uniform buckets over [lo, hi). */
    void
    init(double lo, double hi, std::size_t n_buckets)
    {
        fp_assert(hi > lo && n_buckets > 0, "bad distribution bounds");
        _lo = lo;
        _hi = hi;
        _buckets.assign(n_buckets, 0);
        _bucket_width = (hi - lo) / static_cast<double>(n_buckets);
        reset();
    }

    FP_HOT void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double variance() const;
    double min() const { return _min; }
    double max() const { return _max; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    double bucketLow(std::size_t i) const { return _lo + i * _bucket_width; }

  private:
    double _lo = 0.0, _hi = 1.0, _bucket_width = 1.0;
    std::vector<std::uint64_t> _buckets{1, 0};
    std::uint64_t _underflow = 0, _overflow = 0, _count = 0;
    double _sum = 0.0, _sum_sq = 0.0;
    double _min = 0.0, _max = 0.0;
};

/** A histogram over explicit, caller-supplied bucket edge values. */
class Histogram
{
  public:
    /** Bucket i covers [edges[i], edges[i+1]); last bucket is unbounded. */
    void
    init(std::vector<double> edges)
    {
        fp_assert(!edges.empty(), "histogram needs at least one edge");
        for (std::size_t i = 1; i < edges.size(); ++i)
            fp_assert(edges[i] > edges[i - 1], "edges must increase");
        _edges = std::move(edges);
        _counts.assign(_edges.size(), 0);
        _total = 0;
        _min = _max = 0.0;
    }

    FP_HOT void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::uint64_t total() const { return _total; }
    const std::vector<double> &edges() const { return _edges; }
    const std::vector<std::uint64_t> &counts() const { return _counts; }
    double min() const { return _min; }
    double max() const { return _max; }

    /**
     * Approximate quantile @p p in [0, 1], linearly interpolated within
     * the containing bucket and clamped to the observed [min, max]
     * (exact at the extremes; the unbounded last bucket interpolates
     * toward the observed max). Returns 0 for an empty histogram.
     */
    double percentile(double p) const;

    /** Fraction of samples landing in bucket @p i. */
    double
    fraction(std::size_t i) const
    {
        fp_assert(i < _counts.size(), "histogram bucket out of range");
        return _total ? static_cast<double>(_counts[i]) / _total : 0.0;
    }

  private:
    std::vector<double> _edges;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _total = 0;
    double _min = 0.0;
    double _max = 0.0;
};

class JsonWriter;

/**
 * A named collection of statistics. Non-owning: stats live in their
 * components; the group records (name, description, accessor) tuples
 * for reporting. Every group registers itself with the process-wide
 * MetricsRegistry for its lifetime, so the metrics exporter can walk
 * all live groups without explicit wiring.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    void registerScalar(const std::string &name, const Scalar *stat,
                        const std::string &desc = "");
    void registerAverage(const std::string &name, const Average *stat,
                         const std::string &desc = "");
    void registerDistribution(const std::string &name,
                              const Distribution *stat,
                              const std::string &desc = "");
    void registerHistogram(const std::string &name, const Histogram *stat,
                           const std::string &desc = "");

    const std::string &name() const { return _name; }

    /** Look up a registered scalar by name; panics if absent. */
    double scalarValue(const std::string &name) const;
    /** Look up a registered average by name; panics if absent. */
    double averageValue(const std::string &name) const;

    bool hasScalar(const std::string &name) const;

    /** Render all registered stats, one per line, gem5-dump style. */
    void dump(std::ostream &os) const;

    /**
     * Serialize every registered stat as one JSON object (the schema
     * documented in docs/observability.md): name plus one sub-object
     * per stat kind, each member keyed by stat name.
     */
    void dumpJson(JsonWriter &json) const;

  private:
    struct Named
    {
        std::string desc;
        const void *stat;
    };

    std::string _name;
    std::map<std::string, Named> _scalars;
    std::map<std::string, Named> _averages;
    std::map<std::string, Named> _distributions;
    std::map<std::string, Named> _histograms;
};

/**
 * Process-wide registry of all live StatGroups, in registration order.
 * StatGroup's constructor/destructor maintain membership; the metrics
 * exporter serializes the registry while the simulated system is still
 * alive (components own their groups, so a torn-down system leaves the
 * registry automatically).
 *
 * Thread safety: membership is guarded by an internal fp::Mutex, so
 * concurrent simulations (the parallel sweep runner) may construct and
 * destroy StatGroups freely. The groups themselves are NOT locked: a
 * StatGroup and its stats stay confined to the simulation that owns
 * them, so dumpJson() must only run while no other thread is mutating
 * live groups (e.g. after a sweep batch has drained).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Snapshot of the live groups, in registration order. */
    std::vector<const StatGroup *> groups() const FP_EXCLUDES(_mu);

    /** Serialize all live groups as one JSON array of group objects. */
    void dumpJson(JsonWriter &json) const FP_EXCLUDES(_mu);

  private:
    friend class StatGroup;

    void add(const StatGroup *group) FP_EXCLUDES(_mu);
    void remove(const StatGroup *group) FP_EXCLUDES(_mu);

    mutable fp::Mutex _mu;
    std::vector<const StatGroup *> _groups FP_GUARDED_BY(_mu);
};

} // namespace fp::common

#endif // FP_COMMON_STATS_HH
