/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue: events are (tick, priority,
 * sequence) ordered callbacks. Components schedule lambdas or derive from
 * Event for reusable/cancellable events. The queue is the single source of
 * simulated time for a MultiGpuSystem instance.
 *
 * Lifetime contract (as in gem5): an Event object that has been scheduled
 * must outlive the queue entry that refers to it, i.e. until it has either
 * executed or the queue has been drained past its tick. Lambda events
 * scheduled by value are owned by the queue itself.
 */

#ifndef FP_COMMON_EVENT_QUEUE_HH
#define FP_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace fp::common {

class EventQueue;

/**
 * A schedulable event. Derive and implement process(), or use
 * EventQueue::schedule() with a callable for one-shot events.
 */
class Event
{
  public:
    /**
     * Lower priorities execute first among events at the same tick.
     * The defaults mirror the ordering needs of the link models: packet
     * arrivals drain before new injections at the same tick, and stat
     * dumps run last.
     */
    enum Priority : int {
        prio_arrival = 0,
        prio_default = 10,
        prio_inject = 20,
        prio_sync = 30,
        prio_stat = 100,
    };

    explicit Event(int priority = prio_default) : _priority(priority) {}
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** Human-readable label for debugging. */
    virtual const char *description() const { return "generic event"; }

    bool scheduled() const { return _scheduled; }
    Tick when() const { return _when; }
    int priority() const { return _priority; }

    /**
     * Insertion-order id of the most recent scheduling. Two live events
     * at the same (tick, priority) execute in sequence order (unless
     * the queue's tie-break shuffle is enabled); observers use it to
     * report which of two racing events would run first.
     */
    std::uint64_t sequence() const { return _sequence; }

    /** Deschedule without executing; safe to call when not scheduled. */
    void cancel() { _scheduled = false; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** One-shot event wrapping a callable; owned by the queue. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::function<void()> fn, int priority)
        : Event(priority), _fn(std::move(fn))
    {}

    void process() override { _fn(); }
    const char *description() const override { return "lambda event"; }

  private:
    std::function<void()> _fn;
};

/**
 * Observes event execution on an EventQueue (at most one per queue).
 *
 * The hooks fire synchronously on the simulation path: beginEvent()
 * immediately before an event's process(), endEvent() immediately
 * after, and recordAccess() whenever code running under the current
 * event declares a logical state access through an AccessRecorder.
 * The determinism tooling (check::RaceDetector) implements this to
 * flag same-(tick, priority) events with conflicting accesses - the
 * outcomes that silently depend on insertion order.
 */
class EventQueueObserver
{
  public:
    virtual ~EventQueueObserver() = default;

    /** @p event is about to process() at the queue's current tick. */
    virtual void beginEvent(const Event &event) = 0;

    /** The event's process() returned. */
    virtual void endEvent(const Event &event) = 0;

    /**
     * Code running under the current event declared a logical access.
     * @p resource identifies the state (any stable address - a
     * component, a queue partition, a buffer); @p label is a stable,
     * human-readable name for reports and waivers; @p is_write
     * distinguishes mutation from inspection.
     */
    virtual void recordAccess(const void *resource, const char *label,
                              bool is_write) = 0;
};

/**
 * The central event queue. Deterministic: ties at the same (tick, priority)
 * break by insertion order. Cancelled and rescheduled events leave stale
 * heap entries that are pruned lazily; staleness is detected by sequence
 * number mismatch against the Event object.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Attach an execution observer (nullptr detaches; the caller keeps
     * ownership). Costs one branch per event when attached, nothing
     * measurable when not.
     */
    void setObserver(EventQueueObserver *observer)
    { _observer = observer; }

    EventQueueObserver *observer() const { return _observer; }

    /**
     * Enable the schedule-perturbation mode: ties at the same
     * (tick, priority) break by a seeded pseudo-random key instead of
     * insertion order. Every seed yields one fixed, reproducible
     * permutation; events at different ticks or priorities are
     * unaffected. Must be called while the queue is empty (keys are
     * stamped at schedule time). A run whose results change under any
     * seed depends on insertion order somewhere - the property
     * `fptrace racecheck` falsifies.
     */
    void enableTieBreakShuffle(std::uint64_t seed);

    /** Restore insertion-order tie-breaking (queue must be empty). */
    void disableTieBreakShuffle();

    bool tieBreakShuffleEnabled() const { return _shuffle; }

    /** Schedule @p event at absolute time @p when (>= now). */
    void schedule(Event *event, Tick when);

    /** (Re-)schedule an event, descheduling it first if already queued. */
    void reschedule(Event *event, Tick when);

    /** Schedule a one-shot callable at absolute time @p when. */
    void
    schedule(std::function<void()> fn, Tick when,
             int priority = Event::prio_default)
    {
        auto owned = std::make_unique<LambdaEvent>(std::move(fn), priority);
        LambdaEvent *raw = owned.get();
        _owned.push_back(std::move(owned));
        schedule(raw, when);
    }

    /** Schedule a one-shot callable @p delay ticks from now. */
    void
    scheduleIn(std::function<void()> fn, Tick delay,
               int priority = Event::prio_default)
    {
        schedule(std::move(fn), _now + delay, priority);
    }

    /** True when no live (non-cancelled) events remain. */
    bool empty() { pruneStale(); return _queue.empty(); }

    /** Tick of the next live event; max_tick when empty. */
    Tick nextEventTick();

    /**
     * Run events until the queue drains or the next event would be past
     * @p limit. @return the tick of the last executed event.
     */
    Tick run(Tick limit = max_tick);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Total number of events processed since construction. */
    std::uint64_t eventsProcessed() const { return _processed; }

    /**
     * Ownership records still held for queue-owned lambda events
     * (executed ones are reclaimed on the GC threshold and whenever
     * run() completes; exposed so tests can bound retention).
     */
    std::size_t ownedPending() const { return _owned.size(); }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        /** Tie-break key: the sequence, or its shuffled image. */
        std::uint64_t tie_key;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            if (tie_key != other.tie_key)
                return tie_key > other.tie_key;
            return sequence > other.sequence;
        }
    };

    /** Pop heap entries whose event was cancelled or rescheduled. */
    void pruneStale();
    /**
     * Reclaim executed queue-owned lambdas. Amortized via
     * _gc_threshold on the hot path; @p force (used when run()
     * completes) sweeps unconditionally so idle queues hold nothing.
     */
    void collectGarbage(bool force = false);

    bool
    isStale(const Entry &entry) const
    {
        return !entry.event->_scheduled ||
               entry.event->_sequence != entry.sequence;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _queue;
    std::vector<std::unique_ptr<LambdaEvent>> _owned;
    Tick _now = 0;
    std::uint64_t _next_sequence = 0;
    std::uint64_t _processed = 0;
    std::size_t _gc_threshold = 4096;
    EventQueueObserver *_observer = nullptr;
    bool _shuffle = false;
    std::uint64_t _shuffle_seed = 0;
};

/**
 * Scoped access declaration for the determinism tooling. Component
 * code constructs one (per method, on the stack) and declares the
 * logical state it reads or mutates while handling the current event:
 *
 *     common::AccessRecorder rec(eventQueue());
 *     rec.write(this, name().c_str());
 *
 * When no observer is attached - every normal run - the whole object
 * is a cached null pointer and each call is a single branch. @p label
 * must outlive the observer's analysis (component names and string
 * literals qualify).
 */
class AccessRecorder
{
  public:
    /** Inert recorder (no observer); every call is a null-pointer test. */
    AccessRecorder() = default;

    explicit AccessRecorder(const EventQueue &queue)
        : _observer(queue.observer())
    {}

    /** True when a detector is listening (lets callers skip work). */
    bool active() const { return _observer != nullptr; }

    void
    read(const void *resource, const char *label)
    {
        if (_observer)
            _observer->recordAccess(resource, label, false);
    }

    void
    write(const void *resource, const char *label)
    {
        if (_observer)
            _observer->recordAccess(resource, label, true);
    }

  private:
    EventQueueObserver *_observer = nullptr;
};

} // namespace fp::common

#endif // FP_COMMON_EVENT_QUEUE_HH
