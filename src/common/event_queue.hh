/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue: events are (tick, priority,
 * sequence) ordered callbacks. Components schedule lambdas or derive from
 * Event for reusable/cancellable events. The queue is the single source of
 * simulated time for a MultiGpuSystem instance.
 *
 * Lifetime contract (as in gem5): an Event object that has been scheduled
 * must outlive the queue entry that refers to it, i.e. until it has either
 * executed or the queue has been drained past its tick. Lambda events
 * scheduled by value are owned by the queue itself.
 */

#ifndef FP_COMMON_EVENT_QUEUE_HH
#define FP_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace fp::common {

class EventQueue;

/**
 * A schedulable event. Derive and implement process(), or use
 * EventQueue::schedule() with a callable for one-shot events.
 */
class Event
{
  public:
    /**
     * Lower priorities execute first among events at the same tick.
     * The defaults mirror the ordering needs of the link models: packet
     * arrivals drain before new injections at the same tick, and stat
     * dumps run last.
     */
    enum Priority : int {
        prio_arrival = 0,
        prio_default = 10,
        prio_inject = 20,
        prio_sync = 30,
        prio_stat = 100,
    };

    explicit Event(int priority = prio_default) : _priority(priority) {}
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** Human-readable label for debugging. */
    virtual const char *description() const { return "generic event"; }

    bool scheduled() const { return _scheduled; }
    Tick when() const { return _when; }
    int priority() const { return _priority; }

    /** Deschedule without executing; safe to call when not scheduled. */
    void cancel() { _scheduled = false; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** One-shot event wrapping a callable; owned by the queue. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::function<void()> fn, int priority)
        : Event(priority), _fn(std::move(fn))
    {}

    void process() override { _fn(); }
    const char *description() const override { return "lambda event"; }

  private:
    std::function<void()> _fn;
};

/**
 * The central event queue. Deterministic: ties at the same (tick, priority)
 * break by insertion order. Cancelled and rescheduled events leave stale
 * heap entries that are pruned lazily; staleness is detected by sequence
 * number mismatch against the Event object.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p event at absolute time @p when (>= now). */
    void schedule(Event *event, Tick when);

    /** (Re-)schedule an event, descheduling it first if already queued. */
    void reschedule(Event *event, Tick when);

    /** Schedule a one-shot callable at absolute time @p when. */
    void
    schedule(std::function<void()> fn, Tick when,
             int priority = Event::prio_default)
    {
        auto owned = std::make_unique<LambdaEvent>(std::move(fn), priority);
        LambdaEvent *raw = owned.get();
        _owned.push_back(std::move(owned));
        schedule(raw, when);
    }

    /** Schedule a one-shot callable @p delay ticks from now. */
    void
    scheduleIn(std::function<void()> fn, Tick delay,
               int priority = Event::prio_default)
    {
        schedule(std::move(fn), _now + delay, priority);
    }

    /** True when no live (non-cancelled) events remain. */
    bool empty() { pruneStale(); return _queue.empty(); }

    /** Tick of the next live event; max_tick when empty. */
    Tick nextEventTick();

    /**
     * Run events until the queue drains or the next event would be past
     * @p limit. @return the tick of the last executed event.
     */
    Tick run(Tick limit = max_tick);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Total number of events processed since construction. */
    std::uint64_t eventsProcessed() const { return _processed; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return sequence > other.sequence;
        }
    };

    /** Pop heap entries whose event was cancelled or rescheduled. */
    void pruneStale();
    void collectGarbage();

    bool
    isStale(const Entry &entry) const
    {
        return !entry.event->_scheduled ||
               entry.event->_sequence != entry.sequence;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _queue;
    std::vector<std::unique_ptr<LambdaEvent>> _owned;
    Tick _now = 0;
    std::uint64_t _next_sequence = 0;
    std::uint64_t _processed = 0;
    std::size_t _gc_threshold = 4096;
};

} // namespace fp::common

#endif // FP_COMMON_EVENT_QUEUE_HH
