/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue: events are (tick, priority,
 * sequence) ordered callbacks. Components schedule lambdas or derive from
 * Event for reusable/cancellable events. The queue is the single source of
 * simulated time for a MultiGpuSystem instance.
 *
 * Lifetime contract (as in gem5): an Event object that has been scheduled
 * must outlive the queue entry that refers to it, i.e. until it has either
 * executed or the queue has been drained past its tick. Lambda events
 * scheduled by value are owned by the queue itself.
 */

#ifndef FP_COMMON_EVENT_QUEUE_HH
#define FP_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/alloc_counters.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace fp::common {

class EventQueue;

/**
 * A schedulable event. Derive and implement process(), or use
 * EventQueue::schedule() with a callable for one-shot events.
 */
class Event
{
  public:
    /**
     * Lower priorities execute first among events at the same tick.
     * The defaults mirror the ordering needs of the link models: packet
     * arrivals drain before new injections at the same tick, and stat
     * dumps run last.
     */
    enum Priority : int {
        prio_arrival = 0,
        prio_default = 10,
        prio_inject = 20,
        prio_sync = 30,
        prio_stat = 100,
    };

    explicit Event(int priority = prio_default) : _priority(priority) {}
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    FP_HOT virtual void process() = 0;

    /**
     * Human-readable label for debugging and host-side profiling.
     * Must be a string literal (or otherwise outlive the queue): the
     * self-profiler aggregates handler time by this pointer without
     * copying, so a dangling label would corrupt the hotspot report.
     */
    virtual const char *description() const { return "generic event"; }

    FP_HOT bool scheduled() const { return _scheduled; }
    FP_HOT Tick when() const { return _when; }
    FP_HOT int priority() const { return _priority; }

    /**
     * Insertion-order id of the most recent scheduling. Two live events
     * at the same (tick, priority) execute in sequence order (unless
     * the queue's tie-break shuffle is enabled); observers use it to
     * report which of two racing events would run first.
     */
    FP_HOT std::uint64_t sequence() const { return _sequence; }

    /** Deschedule without executing; safe to call when not scheduled. */
    FP_HOT void cancel() { _scheduled = false; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** One-shot event wrapping a callable; owned by the queue. */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::function<void()> fn, int priority,
                const char *label = "lambda event")
        : Event(priority), _fn(std::move(fn)), _label(label)
    {}

    FP_HOT void process() override
    {
        // fp-lint: allow(hot-escape) indirect callable; devirtualized dispatch is ROADMAP item 1
        _fn();
    }
    const char *description() const override { return _label; }

  private:
    std::function<void()> _fn;
    /** Static attribution label (see Event::description()). */
    const char *_label;
};

/**
 * Observes event execution on an EventQueue.
 *
 * The hooks fire synchronously on the simulation path: beginEvent()
 * immediately before an event's process(), endEvent() immediately
 * after, and recordAccess() whenever code running under the current
 * event declares a logical state access through an AccessRecorder.
 * Two kinds of observer implement this today: the determinism tooling
 * (check::RaceDetector) flags same-(tick, priority) events with
 * conflicting accesses, and the host-side self-profiler
 * (obs::Profiler) attributes wall-clock time to event labels.
 *
 * Access recording is opt-in: only observers returning true from
 * wantsAccesses() are visible through EventQueue::observer(), so a
 * profiler-only run keeps every AccessRecorder on its inert
 * null-pointer fast path.
 */
class EventQueueObserver
{
  public:
    virtual ~EventQueueObserver() = default;

    /** @p event is about to process() at the queue's current tick. */
    FP_COLD virtual void beginEvent(const Event &event) = 0;

    /** The event's process() returned. */
    FP_COLD virtual void endEvent(const Event &event) = 0;

    /**
     * Code running under the current event declared a logical access.
     * @p resource identifies the state (any stable address - a
     * component, a queue partition, a buffer); @p label is a stable,
     * human-readable name for reports and waivers; @p is_write
     * distinguishes mutation from inspection. Only delivered to
     * observers whose wantsAccesses() returns true.
     */
    FP_COLD virtual void
    recordAccess(const void *resource, const char *label, bool is_write)
    {
        (void)resource;
        (void)label;
        (void)is_write;
    }

    /**
     * True when this observer consumes recordAccess() and component
     * code should pay the cost of declaring accesses. Default false:
     * execution-only observers (the profiler) never activate the
     * AccessRecorder paths.
     */
    FP_COLD virtual bool wantsAccesses() const { return false; }
};

/**
 * The central event queue. Deterministic: ties at the same (tick, priority)
 * break by insertion order. Cancelled and rescheduled events leave stale
 * heap entries that are pruned lazily; staleness is detected by sequence
 * number mismatch against the Event object.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    FP_HOT Tick now() const { return _now; }

    /**
     * Attach an execution observer (the caller keeps ownership; at most
     * once per observer). Dispatch costs one branch per event while the
     * observer list is empty - no virtual call, no list iteration - and
     * one virtual call per attached observer per hook otherwise.
     */
    void addObserver(EventQueueObserver *observer);

    /** Detach a previously attached observer (no-op when absent). */
    void removeObserver(EventQueueObserver *observer);

    /**
     * Legacy single-observer attach: @p observer replaces the whole
     * observer list (nullptr detaches everything). Prefer
     * addObserver()/removeObserver() when composing observers.
     */
    void setObserver(EventQueueObserver *observer);

    /** Any observer attached (the per-event dispatch branch)? */
    bool observed() const { return !_observers.empty(); }

    const std::vector<EventQueueObserver *> &observers() const
    { return _observers; }

    /**
     * The observer AccessRecorders should deliver logical accesses to:
     * the most recently attached observer with wantsAccesses() == true,
     * or nullptr when none is listening (every normal run - including
     * profiled ones - so access declaration stays a single branch).
     */
    EventQueueObserver *observer() const { return _access_observer; }

    /**
     * Enable the schedule-perturbation mode: ties at the same
     * (tick, priority) break by a seeded pseudo-random key instead of
     * insertion order. Every seed yields one fixed, reproducible
     * permutation; events at different ticks or priorities are
     * unaffected. Must be called while the queue is empty (keys are
     * stamped at schedule time). A run whose results change under any
     * seed depends on insertion order somewhere - the property
     * `fptrace racecheck` falsifies.
     */
    void enableTieBreakShuffle(std::uint64_t seed);

    /** Restore insertion-order tie-breaking (queue must be empty). */
    void disableTieBreakShuffle();

    bool tieBreakShuffleEnabled() const { return _shuffle; }

    /** Schedule @p event at absolute time @p when (>= now). */
    FP_HOT void schedule(Event *event, Tick when);

    /** (Re-)schedule an event, descheduling it first if already queued. */
    FP_HOT void reschedule(Event *event, Tick when);

    /**
     * Schedule a one-shot callable at absolute time @p when. @p label
     * must be a string literal; the self-profiler attributes the
     * handler's host time to it (see docs/profiling.md).
     */
    FP_HOT void
    schedule(std::function<void()> fn, Tick when,
             int priority = Event::prio_default,
             const char *label = "lambda event")
    {
        AllocCounters::countLambdaEvent();
        // fp-lint: allow(hot-alloc) queue-owned one-shot event; the pooled arena is ROADMAP item 1
        auto owned = std::make_unique<LambdaEvent>(std::move(fn), priority,
                                                   label);
        LambdaEvent *raw = owned.get();
        _owned.push_back(std::move(owned));
        schedule(raw, when);
    }

    /** Schedule a one-shot callable @p delay ticks from now. */
    FP_HOT void
    scheduleIn(std::function<void()> fn, Tick delay,
               int priority = Event::prio_default,
               const char *label = "lambda event")
    {
        schedule(std::move(fn), _now + delay, priority, label);
    }

    /** True when no live (non-cancelled) events remain. */
    FP_HOT bool empty() { pruneStale(); return _queue.empty(); }

    /** Tick of the next live event; max_tick when empty. */
    FP_HOT Tick nextEventTick();

    /**
     * Run events until the queue drains or the next event would be past
     * @p limit. @return the tick of the last executed event.
     */
    FP_HOT Tick run(Tick limit = max_tick);

    /** Execute at most one event. @return false if the queue was empty. */
    FP_HOT bool step();

    /** Total number of events processed since construction. */
    std::uint64_t eventsProcessed() const { return _processed; }

    // ---- Host-profiling operation counters (always on, near-free) ----

    /** Total schedule() calls (heap pushes) since construction. */
    std::uint64_t eventsScheduled() const { return _next_sequence; }

    /**
     * Stale heap entries dropped by lazy pruning - the cost of
     * cancel()/reschedule() churn (each leaves one dead entry behind).
     */
    std::uint64_t staleDrops() const { return _stale_drops; }

    /** High-water mark of the heap size (live + stale entries). */
    std::size_t peakDepth() const { return _peak_depth; }

    /**
     * Current heap size (live + not-yet-pruned stale entries; an upper
     * bound on pending events). The run-health layer samples this for
     * heartbeats and wedge diagnosis; exact liveness would cost a scan.
     */
    std::size_t depth() const { return _queue.size(); }

    /**
     * Ownership records still held for queue-owned lambda events
     * (executed ones are reclaimed on the GC threshold and whenever
     * run() completes; exposed so tests can bound retention).
     */
    std::size_t ownedPending() const { return _owned.size(); }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        /** Tie-break key: the sequence, or its shuffled image. */
        std::uint64_t tie_key;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            if (tie_key != other.tie_key)
                return tie_key > other.tie_key;
            return sequence > other.sequence;
        }
    };

    /** Pop heap entries whose event was cancelled or rescheduled. */
    FP_HOT void pruneStale();
    /**
     * Reclaim executed queue-owned lambdas. Amortized via
     * _gc_threshold on the hot path; @p force (used when run()
     * completes) sweeps unconditionally so idle queues hold nothing.
     */
    FP_COLD void collectGarbage(bool force = false);

    /** Out-of-line observer dispatch (cold unless observers attached). */
    FP_COLD void notifyBegin(const Event &event);
    FP_COLD void notifyEnd(const Event &event);

    /** Recompute the cached access-wanting observer after add/remove. */
    void refreshAccessObserver();

    FP_HOT bool
    isStale(const Entry &entry) const
    {
        return !entry.event->_scheduled ||
               entry.event->_sequence != entry.sequence;
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _queue;
    std::vector<std::unique_ptr<LambdaEvent>> _owned;
    Tick _now = 0;
    std::uint64_t _next_sequence = 0;
    std::uint64_t _processed = 0;
    std::uint64_t _stale_drops = 0;
    std::size_t _peak_depth = 0;
    std::size_t _gc_threshold = 4096;
    std::vector<EventQueueObserver *> _observers;
    EventQueueObserver *_access_observer = nullptr;
    bool _shuffle = false;
    std::uint64_t _shuffle_seed = 0;
};

/**
 * Scoped access declaration for the determinism tooling. Component
 * code constructs one (per method, on the stack) and declares the
 * logical state it reads or mutates while handling the current event:
 *
 *     common::AccessRecorder rec(eventQueue());
 *     rec.write(this, name().c_str());
 *
 * When no access-consuming observer is attached - every normal run,
 * including profiled ones - the whole object is a cached null pointer
 * and each call is a single branch. @p label must outlive the
 * observer's analysis (component names and string literals qualify).
 */
class AccessRecorder
{
  public:
    /** Inert recorder (no observer); every call is a null-pointer test. */
    AccessRecorder() = default;

    FP_HOT explicit AccessRecorder(const EventQueue &queue)
        : _observer(queue.observer())
    {}

    /** True when a detector is listening (lets callers skip work). */
    FP_HOT bool active() const { return _observer != nullptr; }

    FP_HOT void
    read(const void *resource, const char *label)
    {
        if (_observer)
            _observer->recordAccess(resource, label, false);
    }

    FP_HOT void
    write(const void *resource, const char *label)
    {
        if (_observer)
            _observer->recordAccess(resource, label, true);
    }

  private:
    EventQueueObserver *_observer = nullptr;
};

} // namespace fp::common

#endif // FP_COMMON_EVENT_QUEUE_HH
