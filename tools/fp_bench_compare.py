#!/usr/bin/env python3
"""Compare bench --json output against checked-in baselines.

Every bench binary accepts `--json FILE` and writes a flat document

    {"bench": NAME, "schema_version": 1, "scale": S, "metrics": {...}}

This tool diffs one or more such files against `bench/baselines/<bench>.json`
and fails (exit 1) when any metric drifts outside its tolerance, when the
metric name sets diverge, or when scale / schema_version differ (a baseline
recorded at another scale is not comparable). A failing bench's summary
line names the worst-offending metric - the one with the largest relative
drift - so CI logs point straight at the regression.

Tolerances are relative, default 2%. Per-metric overrides live in
`bench/baselines/tolerances.json`:

    {"<bench>": {"<metric glob>": <percent>, ...}, "*": {...}}

Globs are fnmatch-style; the most specific match wins (bench section before
the "*" section, longer pattern before shorter). A tolerance of 0 demands
exact equality - used for deterministic count metrics.

Metrics under the reserved `host.` prefix (host.wall_ns,
host.events_per_sec, ...) measure the *simulator's* wall-clock
throughput; they are machine-dependent by design, so both sides drop
them before comparing - including the name-set check, so a baseline
recorded with host metrics still compares clean on a binary without
them (and vice versa). Pass --include-host to compare them anyway,
e.g. when chasing a simulator-performance regression on one machine.

Usage:
    fp_bench_compare.py [options] CURRENT.json [CURRENT.json ...]

Options:
    --baseline-dir DIR   baseline directory (default: bench/baselines
                         relative to the repository root)
    --tolerance PCT      default relative tolerance in percent (default 2)
    --include-host       compare machine-dependent host.* metrics too
                         (skipped by default)
    --update             overwrite the baselines with the current files
                         instead of comparing (records new expectations)

Exit status: 0 all within tolerance, 1 regression or mismatch, 2 usage or
I/O error.
"""

import argparse
import fnmatch
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load(path: Path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    for key in ("bench", "schema_version", "scale", "metrics"):
        if key not in doc:
            sys.exit(f"error: {path}: missing key '{key}'")
    return doc


def load_tolerances(baseline_dir: Path):
    path = baseline_dir / "tolerances.json"
    if not path.exists():
        return {}
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")


def tolerance_for(tolerances, bench, metric, default_pct):
    """Most specific tolerance: bench section first, then "*" section;
    within a section the longest matching glob wins."""
    for section in (bench, "*"):
        rules = tolerances.get(section, {})
        best = None
        for pattern, pct in rules.items():
            if fnmatch.fnmatchcase(metric, pattern):
                if best is None or len(pattern) > len(best[0]):
                    best = (pattern, pct)
        if best is not None:
            return float(best[1])
    return default_pct


HOST_PREFIX = "host."


def drop_host_metrics(metrics):
    """Metrics minus the machine-dependent host.* namespace."""
    return {name: value for name, value in metrics.items()
            if not name.startswith(HOST_PREFIX)}


def compare_detailed(current: Path, baseline_dir: Path, tolerances,
                     default_pct, include_host=False):
    """Return (failures, worst) where failures is a list of strings
    (empty = pass) and worst is the largest-relative-drift offending
    metric as a (name, rel_pct, tolerance_pct) tuple, or None when no
    metric drifted (structural failures only)."""
    cur = load(current)
    bench = cur["bench"]
    base_path = baseline_dir / f"{bench}.json"
    if not base_path.exists():
        return ([f"{bench}: no baseline at {base_path} "
                 f"(record one with --update)"], None)
    base = load(base_path)
    if not include_host:
        cur = dict(cur, metrics=drop_host_metrics(cur["metrics"]))
        base = dict(base, metrics=drop_host_metrics(base["metrics"]))

    failures = []
    if cur["schema_version"] != base["schema_version"]:
        failures.append(
            f"{bench}: schema_version {cur['schema_version']} != "
            f"baseline {base['schema_version']}")
    if cur["scale"] != base["scale"]:
        failures.append(
            f"{bench}: scale {cur['scale']} != baseline {base['scale']} "
            f"(re-record the baseline at this scale)")
        return (failures, None)

    cur_names = set(cur["metrics"])
    base_names = set(base["metrics"])
    for name in sorted(base_names - cur_names):
        failures.append(f"{bench}: metric '{name}' missing from current run")
    for name in sorted(cur_names - base_names):
        failures.append(f"{bench}: new metric '{name}' not in baseline "
                        f"(re-record with --update)")

    worst = None
    for name in sorted(cur_names & base_names):
        cur_v = float(cur["metrics"][name])
        base_v = float(base["metrics"][name])
        pct = tolerance_for(tolerances, bench, name, default_pct)
        if base_v == 0.0:
            ok = cur_v == 0.0 if pct == 0.0 else abs(cur_v) <= pct / 100.0
            rel = float("inf") if cur_v else 0.0
        else:
            rel = abs(cur_v - base_v) / abs(base_v) * 100.0
            ok = rel <= pct
        if not ok:
            failures.append(
                f"{bench}: {name} = {cur_v:.6g}, baseline {base_v:.6g} "
                f"(drift {rel:.2f}% > tolerance {pct:g}%)")
            if worst is None or rel > worst[1]:
                worst = (name, rel, pct)
    return (failures, worst)


def compare(current: Path, baseline_dir: Path, tolerances, default_pct,
            include_host=False):
    """Return a list of failure strings (empty = pass)."""
    return compare_detailed(current, baseline_dir, tolerances,
                            default_pct, include_host)[0]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="+", type=Path,
                        help="bench --json output file(s)")
    parser.add_argument("--baseline-dir", type=Path,
                        default=REPO_ROOT / "bench" / "baselines")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="default relative tolerance in percent")
    parser.add_argument("--include-host", action="store_true",
                        help="compare machine-dependent host.* metrics "
                             "(skipped by default)")
    parser.add_argument("--update", action="store_true",
                        help="record the current files as the new baselines")
    args = parser.parse_args()

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in args.current:
            bench = load(path)["bench"]
            dest = args.baseline_dir / f"{bench}.json"
            shutil.copyfile(path, dest)
            print(f"recorded {dest}")
        return 0

    tolerances = load_tolerances(args.baseline_dir)
    all_failures = []
    for path in args.current:
        failures, worst = compare_detailed(path, args.baseline_dir,
                                           tolerances, args.tolerance,
                                           args.include_host)
        bench = load(path)["bench"]
        if failures:
            all_failures.extend(failures)
            if worst is not None:
                name, rel, pct = worst
                print(f"FAIL {bench} ({len(failures)} issue(s); worst: "
                      f"{name} drift {rel:.2f}% > {pct:g}%)")
            else:
                print(f"FAIL {bench} ({len(failures)} issue(s))")
        else:
            print(f"ok   {bench}")
    if all_failures:
        print(f"\n{len(all_failures)} regression(s):", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
