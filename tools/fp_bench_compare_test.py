#!/usr/bin/env python3
"""Unit tests for fp_bench_compare.py's host.* metric filtering.

host.* metrics (simulator wall-clock throughput) are machine-dependent
by design: the comparison must ignore them by default - values AND
name-set membership, in both directions - and only compare them under
--include-host. A regression here would either make the CI perf-smoke
job flaky (comparing wall clock across runners) or silently stop
comparing real metrics.

Run directly (python3 tools/fp_bench_compare_test.py) or via ctest
(registered as fp_bench_compare_selftest).
"""

import json
import os
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import fp_bench_compare as fbc  # noqa: E402


def doc(bench="b", scale=0.1, metrics=None):
    return {"bench": bench, "schema_version": 1, "scale": scale,
            "metrics": metrics or {}}


class DropHostMetricsTest(unittest.TestCase):
    def test_drops_only_host_prefix(self):
        metrics = {"host.wall_ns": 5.0, "host.events_per_sec": 2e6,
                   "speedup.jacobi": 2.5, "hostile_metric": 1.0}
        kept = fbc.drop_host_metrics(metrics)
        self.assertEqual(kept, {"speedup.jacobi": 2.5,
                                "hostile_metric": 1.0})

    def test_empty_ok(self):
        self.assertEqual(fbc.drop_host_metrics({}), {})


class CompareHostFilterTest(unittest.TestCase):
    """compare() against a real baseline dir in a tempdir."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.baseline_dir = self.dir / "baselines"
        self.baseline_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, document):
        path = self.dir / name
        path.write_text(json.dumps(document))
        return path

    def write_baseline(self, document):
        path = self.baseline_dir / f"{document['bench']}.json"
        path.write_text(json.dumps(document))
        return path

    def compare(self, current, include_host=False, tolerances=None):
        return fbc.compare(current, self.baseline_dir, tolerances or {},
                           2.0, include_host)

    def test_host_drift_ignored_by_default(self):
        self.write_baseline(doc(metrics={"speedup": 2.0,
                                         "host.wall_ns": 1e9}))
        cur = self.write("cur.json",
                         doc(metrics={"speedup": 2.0,
                                      "host.wall_ns": 9e9}))
        self.assertEqual(self.compare(cur), [])

    def test_host_name_set_divergence_ignored_both_ways(self):
        # Baseline without host metrics vs current with them...
        self.write_baseline(doc(metrics={"speedup": 2.0}))
        cur = self.write("cur.json",
                         doc(metrics={"speedup": 2.0,
                                      "host.events": 5.0}))
        self.assertEqual(self.compare(cur), [])
        # ... and baseline with them vs current without.
        self.write_baseline(doc(metrics={"speedup": 2.0,
                                         "host.events": 5.0}))
        cur = self.write("cur2.json", doc(metrics={"speedup": 2.0}))
        self.assertEqual(self.compare(cur), [])

    def test_include_host_compares_values(self):
        self.write_baseline(doc(metrics={"speedup": 2.0,
                                         "host.wall_ns": 1e9}))
        cur = self.write("cur.json",
                         doc(metrics={"speedup": 2.0,
                                      "host.wall_ns": 9e9}))
        failures = self.compare(cur, include_host=True)
        self.assertEqual(len(failures), 1)
        self.assertIn("host.wall_ns", failures[0])

    def test_include_host_flags_missing_metric(self):
        self.write_baseline(doc(metrics={"speedup": 2.0,
                                         "host.events": 5.0}))
        cur = self.write("cur.json", doc(metrics={"speedup": 2.0}))
        failures = self.compare(cur, include_host=True)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing", failures[0])

    def test_real_metric_drift_still_fails(self):
        self.write_baseline(doc(metrics={"speedup": 2.0,
                                         "host.wall_ns": 1e9}))
        cur = self.write("cur.json",
                         doc(metrics={"speedup": 3.0,
                                      "host.wall_ns": 1e9}))
        failures = self.compare(cur)
        self.assertEqual(len(failures), 1)
        self.assertIn("speedup", failures[0])

    def test_real_metric_name_divergence_still_fails(self):
        self.write_baseline(doc(metrics={"speedup": 2.0}))
        cur = self.write("cur.json",
                         doc(metrics={"speedup": 2.0, "extra": 1.0}))
        failures = self.compare(cur)
        self.assertEqual(len(failures), 1)
        self.assertIn("extra", failures[0])

    def test_host_tolerance_rule_applies_under_include_host(self):
        tolerances = {"*": {"host.*": 50}}
        self.write_baseline(doc(metrics={"host.events_per_sec": 100.0}))
        within = self.write("a.json",
                            doc(metrics={"host.events_per_sec": 130.0}))
        beyond = self.write("b.json",
                            doc(metrics={"host.events_per_sec": 300.0}))
        self.assertEqual(
            self.compare(within, include_host=True,
                         tolerances=tolerances), [])
        self.assertEqual(
            len(self.compare(beyond, include_host=True,
                             tolerances=tolerances)), 1)


class WorstOffenderTest(unittest.TestCase):
    """compare_detailed() must name the largest relative drift."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.baseline_dir = self.dir / "baselines"
        self.baseline_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, document):
        path = self.dir / name
        path.write_text(json.dumps(document))
        return path

    def write_baseline(self, document):
        path = self.baseline_dir / f"{document['bench']}.json"
        path.write_text(json.dumps(document))
        return path

    def detailed(self, current, tolerances=None):
        return fbc.compare_detailed(current, self.baseline_dir,
                                    tolerances or {}, 2.0, False)

    def test_worst_is_largest_relative_drift(self):
        self.write_baseline(doc(metrics={"a": 100.0, "b": 100.0,
                                         "c": 100.0}))
        cur = self.write("cur.json",
                         doc(metrics={"a": 105.0,   # 5% drift
                                      "b": 150.0,   # 50% drift
                                      "c": 100.0})) # clean
        failures, worst = self.detailed(cur)
        self.assertEqual(len(failures), 2)
        self.assertIsNotNone(worst)
        name, rel, pct = worst
        self.assertEqual(name, "b")
        self.assertAlmostEqual(rel, 50.0)
        self.assertEqual(pct, 2.0)

    def test_worst_respects_per_metric_tolerance(self):
        # a drifts more, but its loose tolerance passes it; b is the
        # only (and hence worst) offender.
        tolerances = {"*": {"a": 50}}
        self.write_baseline(doc(metrics={"a": 100.0, "b": 100.0}))
        cur = self.write("cur.json",
                         doc(metrics={"a": 140.0, "b": 110.0}))
        failures, worst = self.detailed(cur, tolerances)
        self.assertEqual(len(failures), 1)
        self.assertEqual(worst[0], "b")

    def test_structural_failures_have_no_worst(self):
        self.write_baseline(doc(metrics={"a": 1.0}))
        cur = self.write("cur.json", doc(metrics={"a": 1.0, "new": 2.0}))
        failures, worst = self.detailed(cur)
        self.assertEqual(len(failures), 1)
        self.assertIsNone(worst)

    def test_clean_compare_has_no_worst(self):
        self.write_baseline(doc(metrics={"a": 1.0}))
        cur = self.write("cur.json", doc(metrics={"a": 1.0}))
        failures, worst = self.detailed(cur)
        self.assertEqual(failures, [])
        self.assertIsNone(worst)

    def test_compare_wrapper_stays_compatible(self):
        self.write_baseline(doc(metrics={"a": 100.0}))
        cur = self.write("cur.json", doc(metrics={"a": 150.0}))
        self.assertEqual(
            fbc.compare(cur, self.baseline_dir, {}, 2.0, False),
            self.detailed(cur)[0])


if __name__ == "__main__":
    unittest.main()
