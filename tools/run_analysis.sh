#!/usr/bin/env bash
#
# run_analysis.sh - the correctness-tooling gauntlet.
#
# Runs the determinism source lint (tools/fp_lint.py), builds the
# simulator under AddressSanitizer and UndefinedBehaviorSanitizer (with
# FP_CHECK invariants and -Werror enabled), runs the tier-1 test suite
# under each, replays example traces through `fptrace racecheck`
# (same-tick race detection + schedule-perturbation digest diff, see
# docs/determinism.md), and finishes with a clang-tidy sweep over src/.
# Any failure fails the script.
#
# Usage:
#   tools/run_analysis.sh              # full gauntlet
#   tools/run_analysis.sh --fast       # lint + ASan only
#   FP_ANALYSIS_JOBS=4 tools/run_analysis.sh
#
# clang-tidy is optional: when the binary is absent the lint stage is
# skipped with a warning (the sanitizer stages still gate).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="${FP_ANALYSIS_JOBS:-2}"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

bold() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

run_sanitizer_stage() {
    local preset="$1"
    local build_dir="build-${preset}"

    bold "configure + build: ${preset} (FP_CHECK=ON, FP_WERROR=ON)"
    cmake --preset "${preset}"
    cmake --build "${build_dir}" -j "${jobs}"

    bold "tier-1 tests under ${preset}"
    # halt_on_error: make UBSan findings fail the test run rather than
    # scroll past; ASan aborts on error by default.
    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
        ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
              --output-on-failure
}

bold "determinism lint (tools/fp_lint.py)"
python3 tools/fp_lint.py --root "${repo_root}"

run_sanitizer_stage asan
if [[ "${fast}" -eq 0 ]]; then
    run_sanitizer_stage ubsan

    # Racecheck under the ASan binary: the detector watches every run
    # and the perturbed schedules double as sanitizer coverage of the
    # tie-break machinery. Small scales keep the 4x replay cheap.
    bold "schedule racecheck on example traces (ASan build)"
    fptrace="build-asan/tools/fptrace"
    racecheck_dir="$(mktemp -d)"
    trap 'rm -rf "${racecheck_dir}"' EXIT
    for workload in jacobi sssp; do
        "${fptrace}" generate "${workload}" \
            "${racecheck_dir}/${workload}.fpt" --scale 0.05
        for paradigm in finepack write-combine; do
            "${fptrace}" racecheck "${racecheck_dir}/${workload}.fpt" \
                --paradigm "${paradigm}" --seeds 4
        done
    done
fi

if [[ "${fast}" -eq 1 ]]; then
    bold "fast mode: skipping racecheck and clang-tidy"
    exit 0
fi

bold "clang-tidy over src/ and tools/"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "warning: clang-tidy not installed; skipping lint stage" >&2
    echo "         (sanitizer stages above still gate)" >&2
    exit 0
fi

# clang-tidy needs a compilation database; reuse the default build tree.
tidy_dir="build"
if [[ ! -f "${tidy_dir}/compile_commands.json" ]]; then
    cmake -B "${tidy_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t sources < <(find src tools -name '*.cc' -o -name '*.cpp' | sort)
clang-tidy -p "${tidy_dir}" --quiet --warnings-as-errors='' \
    "${sources[@]}"

bold "analysis gauntlet passed"
