#!/usr/bin/env bash
#
# run_analysis.sh - the correctness-tooling gauntlet.
#
# Runs the source lints (tools/fp_lint.py + tools/fp_hotpath.py and
# their self-tests), the Clang
# thread-safety analysis build (-Werror=thread-safety over the
# common/sync.h annotations, see docs/thread_safety.md), builds the
# simulator under AddressSanitizer and UndefinedBehaviorSanitizer (with
# FP_CHECK invariants and -Werror enabled), runs the tier-1 test suite
# under each, runs the concurrency tests (`ctest -L threadsafe`) under
# ThreadSanitizer, replays example traces through `fptrace racecheck`
# (same-tick race detection + schedule-perturbation digest diff, see
# docs/determinism.md), and finishes with a clang-tidy sweep over src/.
# Any failure fails the script.
#
# Usage:
#   tools/run_analysis.sh              # full gauntlet
#   tools/run_analysis.sh --fast       # lint + thread-safety + ASan
#   FP_ANALYSIS_JOBS=4 tools/run_analysis.sh
#
# The clang-based stages (thread-safety build, clang-tidy) are skipped
# with a warning when the binaries are absent (the sanitizer stages
# still gate) -- unless FP_ANALYSIS_REQUIRE_TIDY=1, which CI sets to
# make a missing clang-tidy a hard failure instead of silent coverage
# loss.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="${FP_ANALYSIS_JOBS:-2}"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

bold() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

run_sanitizer_stage() {
    local preset="$1"
    local build_dir="build-${preset}"

    bold "configure + build: ${preset} (FP_CHECK=ON, FP_WERROR=ON)"
    cmake --preset "${preset}"
    cmake --build "${build_dir}" -j "${jobs}"

    bold "tier-1 tests under ${preset}"
    # halt_on_error: make UBSan findings fail the test run rather than
    # scroll past; ASan aborts on error by default.
    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
        ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
              --output-on-failure
}

bold "determinism + thread-safety lint (tools/fp_lint.py)"
python3 tools/fp_lint.py --root "${repo_root}"

bold "hot-path hygiene gate (tools/fp_hotpath.py)"
python3 tools/fp_hotpath.py --root "${repo_root}"

bold "lint self-tests (fp_lint_test.py + fp_hotpath_test.py)"
python3 tools/fp_lint_test.py
python3 tools/fp_hotpath_test.py

# Clang thread-safety analysis: the whole tree under
# -Wthread-safety -Werror=thread-safety (the thread-safety preset sets
# clang++; CMakeLists adds the flags for any Clang). Runs in --fast
# too: it is a compile-only gate and the cheapest way to catch an
# unlocked FP_GUARDED_BY access.
bold "clang thread-safety analysis build"
if command -v clang++ >/dev/null 2>&1; then
    cmake --preset thread-safety
    cmake --build build-thread-safety -j "${jobs}"
else
    echo "warning: clang++ not installed; skipping thread-safety" >&2
    echo "         analysis build (CI runs it; see ci.yml)" >&2
fi

run_sanitizer_stage asan
if [[ "${fast}" -eq 0 ]]; then
    run_sanitizer_stage ubsan

    bold "configure + build: tsan"
    cmake --preset tsan
    cmake --build build-tsan -j "${jobs}"

    bold "concurrency tests under ThreadSanitizer (-L threadsafe)"
    TSAN_OPTIONS="halt_on_error=1" \
        ctest --test-dir build-tsan -L threadsafe -j "${jobs}" \
              --output-on-failure

    # Racecheck under the ASan binary: the detector watches every run
    # and the perturbed schedules double as sanitizer coverage of the
    # tie-break machinery. Small scales keep the 4x replay cheap.
    bold "schedule racecheck on example traces (ASan build)"
    fptrace="build-asan/tools/fptrace"
    racecheck_dir="$(mktemp -d)"
    trap 'rm -rf "${racecheck_dir}"' EXIT
    for workload in jacobi sssp; do
        "${fptrace}" generate "${workload}" \
            "${racecheck_dir}/${workload}.fpt" --scale 0.05
        for paradigm in finepack write-combine; do
            "${fptrace}" racecheck "${racecheck_dir}/${workload}.fpt" \
                --paradigm "${paradigm}" --seeds 4
        done
    done
fi

if [[ "${fast}" -eq 1 ]]; then
    bold "fast mode: skipping UBSan, TSan, racecheck, and clang-tidy"
    exit 0
fi

bold "clang-tidy over src/ and tools/"
if ! command -v clang-tidy >/dev/null 2>&1; then
    if [[ "${FP_ANALYSIS_REQUIRE_TIDY:-0}" == "1" ]]; then
        echo "error: clang-tidy not installed but" >&2
        echo "       FP_ANALYSIS_REQUIRE_TIDY=1 (CI requires the" >&2
        echo "       stage; install clang-tidy)" >&2
        exit 1
    fi
    echo "warning: clang-tidy not installed; skipping lint stage" >&2
    echo "         (sanitizer stages above still gate;" >&2
    echo "         set FP_ANALYSIS_REQUIRE_TIDY=1 to hard-fail)" >&2
    exit 0
fi

# clang-tidy needs a compilation database; reuse the default build tree.
tidy_dir="build"
if [[ ! -f "${tidy_dir}/compile_commands.json" ]]; then
    cmake -B "${tidy_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t sources < <(find src tools -name '*.cc' -o -name '*.cpp' | sort)
clang-tidy -p "${tidy_dir}" --quiet --warnings-as-errors='' \
    "${sources[@]}"

bold "analysis gauntlet passed"
