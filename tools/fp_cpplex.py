#!/usr/bin/env python3
"""Shared C++ lexing layer for the repo's static-analysis tools.

fp_lint.py (line-oriented determinism/thread-safety lint) and
fp_hotpath.py (function-scope hot-path analyzer) both need the same
ground truth about C++ source text: what is code versus what is a
comment, a string literal, a char literal, a raw string, or a
preprocessor line. Regexes per line get this wrong in well-known ways
(multi-line /* */ blocks, R"(...)"s spanning lines, '"' inside char
literals), so the partitioning lives here, once, as a small character
scanner with no dependencies.

Three views of a translation unit are exported:

  scrub(text)            -> list of lines, same count and column layout
                            as the input, with comments blanked, string
                            literals collapsed to "" and char literals
                            to '', so line-oriented regex rules never
                            match inside quoted or commented text.
                            `// fp-lint:` marker comments survive
                            verbatim (the waiver idiom lives in
                            comments by design).
  lex(text)              -> flat token list [(kind, text, line), ...]
                            with kind in {ident, number, string, char,
                            punct}. Comments and preprocessor lines are
                            not tokens; "::"/"->" and the common
                            multi-char operators come out as single
                            punct tokens.
  project_includes(text) -> the quoted (project-local) include paths in
                            order, for folding declarations across a
                            translation-unit pair.

The scanner is deliberately not a preprocessor: macros are not
expanded, so consumers see FP_HOT / FP_GUARDED_BY and friends as plain
identifier tokens - which is exactly what annotation-driven rules
want.
"""

import bisect
import collections
import re

Token = collections.namedtuple("Token", ("kind", "text", "line"))

# Region kinds produced by _regions().
CODE = "code"
LINE_COMMENT = "line_comment"
BLOCK_COMMENT = "block_comment"
STRING = "string"
CHAR = "char"
PP = "pp"

# Multi-char operators that change how consumers read the stream
# ("::" for qualified names, "->" for member access / trailing return).
_TOKEN = re.compile(
    r"[A-Za-z_]\w*"          # identifier / keyword / macro name
    r"|\.\d[\w.+\-']*"       # .5f style literal
    r"|\d[\w.']*(?:[eEpP][+-]\d+)?[\w.']*"  # numeric literal
    r"|::|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\|"
    r"|\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\."
    r"|."                    # any other single char
)

_RAW_PREFIXES = ("R", "uR", "UR", "LR", "u8R")
_ENC_PREFIXES = ("u8", "u", "U", "L")

_FP_MARKER = re.compile(r"//\s*fp-lint:")


def _ident_run_start(text, end):
    """Start index of the [A-Za-z0-9_] run ending just before `end`."""
    i = end
    while i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
        i -= 1
    return i


def _regions(text):
    """Partition `text` into (kind, start, end) half-open regions.

    Every character belongs to exactly one region; CODE regions hold
    everything that is neither comment, literal, nor preprocessor line.
    Unterminated constructs extend to end-of-input rather than raising.
    """
    out = []
    i, n = 0, len(text)
    code_start = 0
    at_line_start = True  # only whitespace seen since the last newline

    def flush(upto):
        if upto > code_start:
            out.append((CODE, code_start, upto))

    while i < n:
        c = text[i]
        if c == "\n":
            at_line_start = True
            i += 1
            continue
        if at_line_start and c == "#":
            # Preprocessor line, honoring backslash-newline continuation.
            flush(i)
            start = i
            while i < n:
                if text[i] == "\n":
                    j = i - 1
                    if j >= start and text[j] == "\r":
                        j -= 1
                    if j >= start and text[j] == "\\":
                        i += 1
                        continue
                    break
                i += 1
            out.append((PP, start, i))
            code_start = i
            continue
        if not c.isspace():
            at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            flush(i)
            start = i
            end = text.find("\n", i)
            i = n if end == -1 else end
            out.append((LINE_COMMENT, start, i))
            code_start = i
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            flush(i)
            start = i
            end = text.find("*/", i + 2)
            i = n if end == -1 else end + 2
            out.append((BLOCK_COMMENT, start, i))
            code_start = i
            continue
        if c == '"':
            prefix_start = _ident_run_start(text, i)
            prefix = text[prefix_start:i]
            if prefix in _RAW_PREFIXES:
                # R"delim( ... )delim"
                flush(prefix_start)
                start = prefix_start
                paren = text.find("(", i + 1)
                if paren == -1:
                    out.append((STRING, start, n))
                    i = code_start = n
                    continue
                delim = text[i + 1:paren]
                close = text.find(")" + delim + '"', paren + 1)
                i = n if close == -1 else close + len(delim) + 2
                out.append((STRING, start, i))
                code_start = i
                continue
            start = prefix_start if prefix in _ENC_PREFIXES else i
            flush(start)
            i += 1
            while i < n and text[i] != '"' and text[i] != "\n":
                i += 2 if text[i] == "\\" else 1
            i = min(i + 1, n)
            out.append((STRING, start, i))
            code_start = i
            continue
        if c == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev == "_":
                # Digit separator (1'000'000) or suffix context: code.
                i += 1
                continue
            flush(i)
            start = i
            i += 1
            while i < n and text[i] != "'" and text[i] != "\n":
                i += 2 if text[i] == "\\" else 1
            i = min(i + 1, n)
            out.append((CHAR, start, i))
            code_start = i
            continue
        i += 1
    flush(n)
    return out


def scrub(text):
    """Line-aligned, noise-free view of `text` as a list of lines.

    The output has exactly as many lines as the input and preserves
    column positions of code: comments become spaces (except
    `// fp-lint:` markers, kept verbatim), string literals collapse to
    `""` padded with spaces, char literals to `''`. Newlines inside
    blanked regions survive, so multi-line comments and raw strings
    stay line-aligned.
    """
    chars = list(text)

    def blank(start, end, replacement=""):
        for idx in range(start, end):
            if chars[idx] != "\n":
                chars[idx] = " "
        for idx, ch in enumerate(replacement):
            if start + idx < end and chars[start + idx] != "\n":
                chars[start + idx] = ch

    for kind, start, end in _regions(text):
        if kind == CODE or kind == PP:
            continue
        if kind == LINE_COMMENT and _FP_MARKER.match(text, start):
            continue
        if kind == STRING:
            blank(start, end, '""')
        elif kind == CHAR:
            blank(start, end, "''")
        else:
            blank(start, end)
    return "".join(chars).split("\n")


def lex(text):
    """Tokenize `text` into a flat list of Token(kind, text, line)."""
    line_starts = [0]
    for idx, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(idx + 1)

    def line_of(pos):
        return bisect.bisect_right(line_starts, pos)

    tokens = []
    for kind, start, end in _regions(text):
        if kind == STRING:
            tokens.append(Token("string", '""', line_of(start)))
        elif kind == CHAR:
            tokens.append(Token("char", "''", line_of(start)))
        elif kind == CODE:
            for m in _TOKEN.finditer(text, start, end):
                tok = m.group(0)
                if tok.isspace():
                    continue
                if tok[0].isalpha() or tok[0] == "_":
                    tok_kind = "ident"
                elif tok[0].isdigit() or (tok[0] == "."
                                          and len(tok) > 1
                                          and tok[1].isdigit()):
                    tok_kind = "number"
                else:
                    tok_kind = "punct"
                tokens.append(Token(tok_kind, tok, line_of(m.start())))
        # comments and preprocessor lines produce no tokens
    return tokens


_INCLUDE = re.compile(r'#\s*include\s*"([^"]+)"')


def project_includes(text):
    """Quoted #include paths in order (angle includes are external)."""
    paths = []
    for kind, start, end in _regions(text):
        if kind != PP:
            continue
        m = _INCLUDE.match(text, start, end)
        if m:
            paths.append(m.group(1))
    return paths
