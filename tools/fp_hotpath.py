#!/usr/bin/env python3
"""Hot-path hygiene analyzer for the FinePack simulator sources.

FinePack's thesis is that per-message software overhead dominates
fine-grained transfers; the simulator's own profiler (obs::Profiler +
common::AllocCounters, PR 7) shows the DES core has the same disease:
per-event and per-wire-message heap allocation. ROADMAP item 1 (arena
allocation, devirtualized dispatch) needs two things from static
analysis before the overhaul: an inventory of every allocation site on
the hot path, and a gate that keeps new ones from creeping in after
the cleanup. No libclang exists in the toolchain, so this is a
token-aware analyzer built on the repo's own lexer (tools/fp_cpplex.py,
shared with fp_lint.py) with a lightweight function-scope parser: it
recognizes function definitions and declarations, the FP_HOT / FP_COLD
annotations on them (src/common/types.hh), and the calls each body
makes.

Annotation model: FP_HOT marks a function on the per-event /
per-message path (expands to [[gnu::hot]]); FP_COLD marks a function
deliberately off it - slow paths, setup/teardown, observer hooks -
that hot code may still call (expands to nothing; it exists for the
analyzer). Header declarations and out-of-line definitions are merged
by (class, name), so annotating the declaration covers the .cc body.

Rules (waivable with `// fp-lint: allow(<rule>) <reason>` on the line
or the line above, same idiom as fp_lint.py; a waiver without a reason
is itself an error):

  hot-alloc        No `new`, std::make_shared / make_unique,
                   std::function construction, or string building
                   (std::string locals/temporaries, std::to_string,
                   stringstreams) inside an FP_HOT function. Waived
                   sites still land in the --json inventory - the
                   work-list for the arena-allocation PR.
  hot-escape       An FP_HOT function may only call functions that are
                   themselves FP_HOT, explicitly FP_COLD, or on a
                   small allowlist of known-trivial std calls - a
                   one-level call-graph closure over src/. Lambdas
                   defined inside a hot body are analyzed as part of
                   that body (they run on the event path they were
                   scheduled from).
  schedule-label   Every EventQueue::schedule()/scheduleIn() call site
                   with a callable passes an explicit label argument
                   (the self-profiler attributes host time by label;
                   the Event* overload carries description() instead).
  observer-purity  Classes deriving from an observer interface (any
                   base whose name ends in `Observer`) never call
                   schedule()/scheduleIn() from their hook overrides:
                   observers stay passive so attaching one cannot
                   change simulation results.

Known lexical limits (this is a token analyzer, not a compiler):
explicit-template calls `f<T>(x)` are not recognized as calls,
overloads share one annotation entry (any annotated overload
satisfies hot-escape), and calls through function pointers /
std::function values are invisible - invoke them via a named wrapper
or waive the site.

Usage: tools/fp_hotpath.py [--root DIR] [--json PATH] [PATH...]
Exits 1 when any unwaived finding remains.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import fp_cpplex  # noqa: E402

RULES = ("hot-alloc", "hot-escape", "schedule-label", "observer-purity")

WAIVER = re.compile(r"//\s*fp-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# Keywords and keyword-like tokens that look like `name (` but are not
# calls.
NOT_CALLS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "noexcept", "typeid", "throw", "catch",
    "new", "delete", "case", "default", "static_assert", "assert",
    "defined", "this", "operator", "co_await", "co_return", "co_yield",
    "and", "or", "not", "requires", "explicit", "constexpr", "const",
    # primitive type names: `std::function<void()>`, `int(x)` casts
    "void", "bool", "char", "int", "short", "long", "float", "double",
    "auto", "unsigned", "signed",
))

# Known-trivial calls an FP_HOT function may make without annotation:
# std containers/algorithms/smart-pointer accessors that do not
# allocate on the paths we use them, plus the repo's assertion macros
# (cold by definition: they fire on the way to abort). Names are
# matched unqualified, so a src-defined method sharing a name with an
# allowlisted std call is not checked through this rule - keep hot
# methods off these names or rely on their own annotations being
# checked at their own call sites.
TRIVIAL_CALLS = frozenset((
    # std::algorithm / numeric one-liners
    "min", "max", "clamp", "swap", "move", "forward", "get", "abs",
    "ceil", "floor", "exchange", "distance", "lower_bound",
    "upper_bound", "sort", "fill", "copy", "accumulate",
    # container / string / view accessors and non-allocating mutators
    "size", "empty", "begin", "end", "rbegin", "rend", "front", "back",
    "data", "c_str", "top", "pop", "pop_back", "pop_front", "clear",
    "reserve", "capacity", "resize", "find", "count", "contains",
    "at", "erase", "insert", "emplace", "emplace_back", "push_back",
    "push", "push_front", "assign", "length", "substr_nocopy", "first",
    "second", "reset", "release", "value", "value_or", "has_value",
    "tie",
    # std::bitset bit ops
    "test", "set", "flip", "none", "any", "all",
    # atomics / numeric-limits style constants
    "load", "store", "fetch_add", "fetch_sub", "compare_exchange_weak",
    "compare_exchange_strong",
    # <bit> intrinsics (single instructions on the targets we build for)
    "countl_zero", "countr_zero", "popcount", "bit_width",
    "has_single_bit",
    # assertion / invariant macros are lowercase in this repo
    "fp_assert", "fp_panic", "fp_fatal",
))

# Allocation-site kinds reported in the inventory.
ALLOC_NEW = "new"
ALLOC_MAKE_SHARED = "make_shared"
ALLOC_MAKE_UNIQUE = "make_unique"
ALLOC_STD_FUNCTION = "std::function"
ALLOC_STRING = "string"

STRING_BUILDERS = frozenset(("to_string", "stoi", "stoul", "stoull"))
STRING_TYPES = frozenset(("string", "ostringstream", "stringstream",
                          "istringstream"))


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Func:
    """One function definition or declaration."""

    def __init__(self, path, line, scope, name, annotation,
                 is_definition):
        self.path = path
        self.line = line
        self.scope = scope          # innermost class (or "" for free)
        self.name = name
        self.annotation = annotation  # "hot" | "cold" | None
        self.is_definition = is_definition
        self.body = []              # tokens, definitions only
        self.calls = []             # Call
        self.alloc_sites = []       # (line, kind)

    @property
    def qualified(self):
        return f"{self.scope}::{self.name}" if self.scope else self.name


class Call:
    def __init__(self, name, qualifier, line, args, method):
        self.name = name
        self.qualifier = qualifier  # "" unless written Qual::name(
        self.line = line
        self.args = args            # list of top-level argument token lists
        self.method = method        # written obj.name( / obj->name(


def _head_annotation(head):
    ann = None
    for tok in head:
        if tok.text == "FP_HOT":
            ann = "hot"
        elif tok.text == "FP_COLD":
            ann = "cold"
    return ann


def _skip_template_intro(head):
    """Index after a leading `template < ... >` group, else 0."""
    if not head or head[0].text != "template":
        return 0
    depth = 0
    for i, tok in enumerate(head[1:], start=1):
        if tok.text == "<":
            depth += 1
        elif tok.text == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif tok.text == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
    return len(head)


def parse_function_head(head):
    """Recognize a function signature in the tokens before a { or ;.

    Returns (qualifier, name, name_index, params_start) or None.
    The name is the identifier immediately before the first top-level
    parenthesis group; a preceding `A::B::` chain becomes the
    qualifier (last component). `operator<op>` is recognized so
    operator overloads don't confuse the brace classifier.
    """
    start = _skip_template_intro(head)
    head = head[start:]
    if not head:
        return None
    depth_angle = 0
    for i, tok in enumerate(head):
        t = tok.text
        if t == "<":
            depth_angle += 1
        elif t == ">" and depth_angle:
            depth_angle -= 1
        elif t == ">>" and depth_angle:
            depth_angle = max(0, depth_angle - 2)
        elif t == "=" and depth_angle == 0:
            return None  # initializer, not a signature
        elif t in ("using", "typedef", "friend"):
            return None
        elif t == "(" and depth_angle == 0:
            if i == 0:
                return None
            j = i - 1
            prev = head[j]
            if prev.kind == "ident" and prev.text not in NOT_CALLS:
                name_idx = j
                name = prev.text
            elif prev.kind == "punct" or prev.text == "operator":
                # operator overload: operator> / operator() / operator+=
                k = j
                while k >= 0 and head[k].text != "operator":
                    k -= 1
                if k < 0:
                    return None
                name_idx = k
                name = "operator" + "".join(
                    tok2.text for tok2 in head[k + 1:i])
            else:
                return None
            # Qualifier chain: ... A :: B :: name
            qualifier = ""
            q = name_idx - 1
            parts = []
            while q >= 1 and head[q].text == "::" \
                    and head[q - 1].kind == "ident":
                parts.append(head[q - 1].text)
                q -= 2
            if parts:
                qualifier = parts[0]  # innermost enclosing class
            return qualifier, name, name_idx + start, i + start
    return None


def _looks_like_class_head(head):
    idx = _skip_template_intro(head)
    for tok in head[idx:]:
        if tok.text in ("class", "struct", "union", "enum"):
            return True
        if tok.text == "(":
            return False
    return False


def _class_name_and_bases(head):
    """(name, [base names]) for a class/struct head."""
    idx = _skip_template_intro(head)
    toks = head[idx:]
    name = ""
    bases = []
    i = 0
    while i < len(toks) and toks[i].text not in ("class", "struct",
                                                 "union", "enum"):
        i += 1
    i += 1
    while i < len(toks) and toks[i].text in ("enum", "class", "struct"):
        i += 1  # enum class
    # skip attributes / export macros before the name
    while i < len(toks) and toks[i].kind != "ident":
        i += 1
    if i < len(toks):
        name = toks[i].text
        i += 1
    # base-clause: ": public a::b::Base, private Other"
    if i < len(toks) and toks[i].text == ":":
        current = []
        depth = 0
        for tok in toks[i + 1:]:
            t = tok.text
            if t in ("<",):
                depth += 1
            elif t in (">", ">>"):
                depth = max(0, depth - (2 if t == ">>" else 1))
            elif t == "," and depth == 0:
                if current:
                    bases.append(current[-1])
                current = []
                continue
            if depth == 0 and tok.kind == "ident" and t not in (
                    "public", "private", "protected", "virtual", "final"):
                current.append(t)
        if current:
            bases.append(current[-1])
    return name, bases


class FileModel:
    """Parsed view of one source file."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.raw_lines = self.text.split("\n")
        self.tokens = fp_cpplex.lex(self.text)
        self.functions = []        # Func, definitions and declarations
        self.classes = {}          # name -> [base names]
        self._parse()

    def waiver_for(self, line):
        for probe in (line - 1, line - 2):
            if probe < 0 or probe >= len(self.raw_lines):
                continue
            m = WAIVER.search(self.raw_lines[probe])
            if m:
                return m.group(1), m.group(2).strip()
        return None

    def _parse(self):
        toks = self.tokens
        n = len(toks)
        scope = []   # ("namespace"|"class"|"block", name)
        head = []
        i = 0
        while i < n:
            tok = toks[i]
            t = tok.text
            if t == "{":
                kind = self._classify_brace(head, scope)
                if kind[0] == "function":
                    func = kind[1]
                    body, i = self._collect_body(i + 1)
                    func.body = body
                    self._analyze_body(func)
                    self.functions.append(func)
                    head = []
                    continue
                scope.append(kind)
                head = []
            elif t == "}":
                if scope:
                    scope.pop()
                head = []
            elif t == ";":
                self._maybe_declaration(head, scope)
                head = []
            elif t == ":" and self._is_access_label(head):
                head = []
            else:
                head.append(tok)
            i += 1

    @staticmethod
    def _is_access_label(head):
        return len(head) == 1 and head[0].text in ("public", "private",
                                                   "protected")

    def _current_class(self, scope):
        for kind, name in reversed(scope):
            if kind == "class":
                return name
        return ""

    def _classify_brace(self, head, scope):
        texts = [tok.text for tok in head]
        if "namespace" in texts:
            return ("namespace", "")
        if _looks_like_class_head(head):
            name, bases = _class_name_and_bases(head)
            if name:
                self.classes.setdefault(name, []).extend(bases)
            return ("class", name)
        sig = parse_function_head(head)
        if sig is not None:
            qualifier, name, name_idx, _ = sig
            scope_name = qualifier or self._current_class(scope)
            func = Func(self.rel, head[name_idx].line, scope_name, name,
                        _head_annotation(head), is_definition=True)
            return ("function", func)
        return ("block", "")

    def _maybe_declaration(self, head, scope):
        """Record a function declaration (`FP_HOT void f(...);`)."""
        sig = parse_function_head(head)
        if sig is None:
            return
        qualifier, name, name_idx, params_start = sig
        # Reject declarations whose parens are actually an initializer
        # (`int x(5);`): a real parameter list is empty or contains a
        # type-ish first token; cheap filter: name must be preceded by
        # a type token or be a ctor (name == enclosing class).
        scope_name = qualifier or self._current_class(scope)
        func = Func(self.rel, head[name_idx].line, scope_name, name,
                    _head_annotation(head), is_definition=False)
        self.functions.append(func)

    def _collect_body(self, start):
        """Tokens from `start` to the matching close brace."""
        depth = 1
        body = []
        i = start
        n = len(self.tokens)
        while i < n:
            tok = self.tokens[i]
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth -= 1
                if depth == 0:
                    return body, i + 1
            body.append(tok)
            i += 1
        return body, n

    def _analyze_body(self, func):
        """One pass over the body: calls and allocation sites.

        Argument spans of assertion/invariant macros are skipped
        entirely - their arguments build diagnostic strings on the way
        to abort, which is cold by definition and must not generate
        hot-path findings.
        """
        toks = func.body
        n = len(toks)
        i = 0
        while i < n:
            tok = toks[i]
            t = tok.text
            if tok.kind != "ident":
                i += 1
                continue
            prev = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1].text if i + 1 < n else ""

            # ---- allocation sites (hot-alloc inventory) ----
            if t == "new" and (prev is None or prev.text != "delete"):
                func.alloc_sites.append((tok.line, ALLOC_NEW))
            elif t == "make_shared" and nxt in ("(", "<"):
                func.alloc_sites.append((tok.line, ALLOC_MAKE_SHARED))
            elif t == "make_unique" and nxt in ("(", "<"):
                func.alloc_sites.append((tok.line, ALLOC_MAKE_UNIQUE))
            elif t == "function" and prev is not None \
                    and prev.text == "::" and i >= 2 \
                    and toks[i - 2].text == "std":
                func.alloc_sites.append((tok.line, ALLOC_STD_FUNCTION))
            elif t in STRING_BUILDERS and nxt == "(":
                func.alloc_sites.append((tok.line, ALLOC_STRING))
            elif t in STRING_TYPES and prev is not None \
                    and prev.text == "::" and i >= 2 \
                    and toks[i - 2].text == "std":
                # `std::string s(...)` and temporaries allocate;
                # `const std::string &` references do not.
                j = i + 1
                while j < n and toks[j].text == "const":
                    j += 1
                if not (j < n and toks[j].text in ("&", "*")):
                    func.alloc_sites.append((tok.line, ALLOC_STRING))

            # ---- calls ----
            if t in NOT_CALLS or nxt != "(":
                i += 1
                continue
            if is_macro_name(t) or t in ("fp_assert", "fp_panic",
                                         "fp_fatal", "fp_warn",
                                         "fp_inform"):
                # Skip the macro's argument span wholesale.
                i = self._skip_group(toks, i + 1)
                continue
            # `Type name(args)` is a declaration, not a call; `obj.f(`
            # and `Qual::f(` are calls.
            method = prev is not None and prev.text in (".", "->")
            qualifier = ""
            if prev is not None and prev.text == "::" and i >= 2 \
                    and toks[i - 2].kind == "ident":
                qualifier = toks[i - 2].text
            if not method and not qualifier and prev is not None \
                    and (prev.kind == "ident" or prev.text in (">", "&",
                                                               "*")):
                i += 1
                continue  # declaration with ctor args
            args = self._split_args(toks, i + 1)
            func.calls.append(Call(t, qualifier, tok.line, args, method))
            i += 1

    @staticmethod
    def _skip_group(toks, open_idx):
        """Index just past the group closing the paren at open_idx."""
        depth = 0
        i = open_idx
        n = len(toks)
        while i < n:
            t = toks[i].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    @staticmethod
    def _split_args(toks, open_idx):
        """Top-level argument token lists of the group at open_idx.

        Angle brackets only count as template delimiters directly
        after an identifier (`foo<A, B>(x)`), so comparison operators
        inside lambda arguments (`i < end`) cannot swallow the
        argument separators that follow.
        """
        args = []
        current = []
        depth = 0
        angle = 0
        i = open_idx
        n = len(toks)
        while i < n:
            t = toks[i].text
            if t in ("(", "[", "{"):
                depth += 1
                angle = 0
                if depth > 1:
                    current.append(toks[i])
            elif t in (")", "]", "}"):
                depth -= 1
                angle = 0
                if depth == 0:
                    break
                current.append(toks[i])
            elif t == "," and depth == 1 and angle == 0:
                args.append(current)
                current = []
            else:
                if t == "<":
                    prev = toks[i - 1] if i > 0 else None
                    if angle or (prev is not None
                                 and prev.kind == "ident"):
                        angle += 1
                elif t in (">", ">>") and angle:
                    angle = max(0, angle - (2 if t == ">>" else 1))
                elif t == ";":
                    angle = 0
                if depth >= 1:
                    current.append(toks[i])
            i += 1
        if current:
            args.append(current)
        return args


def is_macro_name(name):
    return name.isupper() and len(name) > 1


def build_annotation_index(models):
    """(scope, name) -> annotation, plus name -> known-in-src flag."""
    by_key = {}
    names = {}
    for model in models:
        for func in model.functions:
            key = (func.scope, func.name)
            ann = by_key.get(key)
            if func.annotation and ann and ann != func.annotation:
                pass  # conflicting overload annotations: last wins below
            if func.annotation or key not in by_key:
                by_key[key] = func.annotation or by_key.get(key)
            entry = names.setdefault(func.name, set())
            if func.annotation:
                entry.add(func.annotation)
    return by_key, names


def annotation_of(func, by_key):
    return func.annotation or by_key.get((func.scope, func.name))


def observer_hooks(models):
    """Method names declared virtual in *Observer interface classes."""
    hooks = set()
    for model in models:
        toks = model.tokens
        # Reuse the parse: any function whose scope ends in Observer
        # counts as a hook candidate when declared in the interface.
        for func in model.functions:
            if func.scope.endswith("Observer"):
                hooks.add(func.name)
        del toks
    return hooks


def observer_derived(models):
    """Class names deriving (transitively, by name) from *Observer."""
    bases = {}
    for model in models:
        for cls, bs in model.classes.items():
            bases.setdefault(cls, []).extend(bs)
    derived = set()

    def is_observer(cls, seen):
        if cls.endswith("Observer"):
            return True
        if cls in seen:
            return False
        seen.add(cls)
        return any(is_observer(b, seen) for b in bases.get(cls, ()))

    for cls in bases:
        if not cls.endswith("Observer") and is_observer(cls, set()):
            derived.add(cls)
    return derived


def check_hot_alloc(model, func, findings, inventory, by_key):
    waivable = []
    for line, kind in func.alloc_sites:
        waiver = model.waiver_for(line)
        waived = waiver is not None and waiver[0] == "hot-alloc" \
            and bool(waiver[1])
        inventory.append({
            "file": model.rel, "line": line, "kind": kind,
            "function": func.qualified, "waived": waived,
            "reason": waiver[1] if waived else "",
        })
        waivable.append((line, kind))
    for line, kind in waivable:
        emit(model, findings, line, "hot-alloc",
             f"{kind} in FP_HOT function '{func.qualified}' "
             "(hot-path allocation; pool it, hoist it, or waive with "
             "the plan)")


def check_hot_escape(model, func, findings, by_key, names):
    seen_lines = set()
    for call in func.calls:
        name = call.name
        if is_macro_name(name) or name in TRIVIAL_CALLS:
            continue
        if name in ("make_shared", "make_unique"):
            continue  # reported by hot-alloc, not twice
        key = (call.qualifier or func.scope, name)
        ann = by_key.get(key)
        if ann is None:
            # Unqualified call, method call, or a qualifier that is a
            # namespace rather than a class: any annotated definition
            # of this name anywhere satisfies the closure (overloads
            # and virtual dispatch share one entry by design).
            anns = names.get(name)
            if anns:
                ann = "hot" if "hot" in anns else \
                    ("cold" if "cold" in anns else None)
            elif (("", name) in by_key or (func.scope, name) in by_key):
                ann = by_key.get(("", name)) or by_key.get(
                    (func.scope, name))
        if ann in ("hot", "cold"):
            continue
        known = name in names or key in by_key
        if (call.line, name) in seen_lines:
            continue
        seen_lines.add((call.line, name))
        if known:
            what = f"unannotated function '{name}'"
        elif call.method:
            what = f"method '.{name}()' not on the trivial allowlist"
        else:
            what = f"unknown function '{name}' (not defined in src/, " \
                   "not on the trivial allowlist)"
        emit(model, findings, call.line, "hot-escape",
             f"FP_HOT function '{func.qualified}' calls {what}; "
             "annotate the callee FP_HOT/FP_COLD, allowlist it, or "
             "waive")


def check_schedule_label(model, func, findings):
    for call in func.calls:
        if call.name not in ("schedule", "scheduleIn"):
            continue
        args = call.args
        first_is_callable = bool(args) and bool(args[0]) and (
            args[0][0].text == "[" or
            any(tok.text == "function" for tok in args[0][:4]) or
            (args[0][0].text in ("std",) and len(args[0]) > 2
             and args[0][2].text in ("move", "function")))
        if call.name == "schedule" and len(args) == 2 \
                and not first_is_callable:
            continue  # Event* overload: label comes from description()
        if len(args) >= 4:
            continue  # explicit priority + label
        emit(model, findings, call.line, "schedule-label",
             f"{call.name}() call without an explicit label argument "
             "(pass a string-literal label; the self-profiler "
             "attributes host time by it)")


def check_observer_purity(model, func, findings, derived, hooks):
    if func.scope not in derived or func.name not in hooks:
        return
    for call in func.calls:
        if call.name in ("schedule", "scheduleIn"):
            emit(model, findings, call.line, "observer-purity",
                 f"observer hook '{func.qualified}' schedules events "
                 "(observers must stay passive so attaching one cannot "
                 "change simulation results)")


def emit(model, findings, line, rule, message):
    waiver = model.waiver_for(line)
    if waiver and waiver[0] == rule:
        if not waiver[1]:
            findings.append(Finding(
                model.rel, line, rule,
                "waiver without a reason (state why this hot-path "
                "exception is safe)"))
        return
    findings.append(Finding(model.rel, line, rule, message))


def analyze(files, root):
    models = []
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        models.append(FileModel(path, rel))

    by_key, names = build_annotation_index(models)
    hooks = observer_hooks(models)
    derived = observer_derived(models)

    findings = []
    inventory = []
    hot_functions = []
    cold_functions = []

    # The inventory lists each annotated function once, at its
    # definition; an annotated declaration whose definition is outside
    # the analyzed set (interface methods, externally-defined helpers)
    # is listed at the declaration instead of being dropped.
    defined = {(f.scope, f.name)
               for m in models for f in m.functions if f.is_definition}
    listed_decls = set()

    for model in models:
        for func in model.functions:
            ann = annotation_of(func, by_key)
            key = (func.scope, func.name)
            if func.is_definition or (key not in defined
                                      and key not in listed_decls):
                entry = {"file": model.rel, "line": func.line,
                         "scope": func.scope, "name": func.name}
                if ann == "hot":
                    hot_functions.append(entry)
                elif ann == "cold":
                    cold_functions.append(entry)
                if not func.is_definition and ann:
                    listed_decls.add(key)
            if ann == "hot" and func.is_definition:
                check_hot_alloc(model, func, findings, inventory, by_key)
                check_hot_escape(model, func, findings, by_key, names)
            if func.is_definition:
                check_schedule_label(model, func, findings)
                check_observer_purity(model, func, findings, derived,
                                      hooks)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    inventory.sort(key=lambda s: (s["file"], s["line"], s["kind"]))
    hot_functions.sort(key=lambda e: (e["file"], e["line"]))
    cold_functions.sort(key=lambda e: (e["file"], e["line"]))
    return findings, {
        "schema_version": 1,
        "kind": "hotpath",
        "hot_functions": hot_functions,
        "cold_functions": cold_functions,
        "allocation_sites": inventory,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the hot-path inventory (use '-' "
                             "for stdout)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]

    files = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, _, filenames in os.walk(target):
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh", ".cpp", ".hpp", ".h")):
                    files.append(os.path.join(dirpath, name))

    findings, inventory = analyze(sorted(files), root)

    if args.json is not None:
        text = json.dumps(inventory, indent=2, sort_keys=False)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(text + "\n")

    # Keep stdout pure JSON under --json -, so it pipes into jq/python.
    report = sys.stderr if args.json == "-" else sys.stdout
    for finding in findings:
        print(finding, file=report)
    print(f"fp_hotpath: {len(files)} files, "
          f"{len(inventory['hot_functions'])} hot / "
          f"{len(inventory['cold_functions'])} cold functions, "
          f"{len(inventory['allocation_sites'])} hot allocation "
          f"site(s), {len(findings)} finding(s)", file=report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
