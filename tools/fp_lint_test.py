#!/usr/bin/env python3
"""Self-tests for fp_lint.py: every rule's positive and negative cases,
plus waiver parsing. Pure stdlib unittest, registered with ctest as
`fp_lint_selftest` so a rule regression fails tier-1 the same way a
simulator regression does.

Each case writes a synthetic source file into a temp tree and asserts
exactly which (rule, line) findings come back, so both missed
detections and false positives fail.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "fp_lint",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "fp_lint.py"))
fp_lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(fp_lint)


class LintCase(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.root = self._dir.name
        fp_lint._scrub_cache.clear()

    def tearDown(self):
        self._dir.cleanup()

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def lint(self, rel, text):
        path = self.write(rel, text)
        findings = []
        fp_lint.lint_file(path, findings)
        return [(f.rule, f.line) for f in findings]


class WallClockTest(LintCase):
    def test_clock_reads_flagged(self):
        found = self.lint("a.cc", (
            "auto t0 = std::chrono::steady_clock::now();\n"
            "double t1 = clock();\n"
            "time_t t2 = time(NULL);\n"))
        self.assertEqual(found, [("wall-clock", 1), ("wall-clock", 2),
                                 ("wall-clock", 3)])

    def test_simulated_time_not_flagged(self):
        self.assertEqual(self.lint("a.cc", (
            "Tick now = queue.currentTick();\n"
            "double t = result.totalSeconds();\n")), [])


class UnseededRngTest(LintCase):
    def test_rand_and_random_device_flagged(self):
        found = self.lint("a.cc", (
            "void f() {\n"
            "    int x = rand() % 7;\n"
            "    std::random_device rd;\n"
            "    srand(42);\n"
            "}\n"))
        self.assertEqual(found, [("unseeded-rng", 2),
                                 ("unseeded-rng", 3),
                                 ("unseeded-rng", 4)])

    def test_seeded_common_rng_not_flagged(self):
        self.assertEqual(self.lint("a.cc", (
            "common::Rng rng(params.seed);\n"
            "auto v = rng.uniform(0, 10);\n")), [])


class UnorderedIterationTest(LintCase):
    def test_local_decl_iteration_flagged(self):
        found = self.lint("a.cc", (
            "void f() {\n"
            "    std::unordered_map<int, int> table;\n"
            "    for (const auto &kv : table)\n"
            "        use(kv);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 3)])

    def test_range_expr_with_call_args_not_truncated(self):
        # Regression: the old regex cut the range expression at the
        # first ')', binding the last *argument* of a call instead of
        # no identifier at all.
        self.assertEqual(self.lint("a.cc", (
            "void f() {\n"
            "    std::unordered_set<int> hi;\n"
            "    for (auto &v : clamp(values, lo, hi))\n"
            "        use(v);\n"
            "}\n")), [])

    def test_structured_binding_iteration_flagged(self):
        found = self.lint("a.cc", (
            "void f() {\n"
            "    std::unordered_map<int, int> m;\n"
            "    for (auto &[k, v] : m)\n"
            "        use(k, v);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 3)])

    def test_member_decl_spanning_lines_flagged(self):
        # Class members wrap and may carry FP_GUARDED_BY; the decl
        # scanner must still bind the name.
        found = self.lint("a.hh", (
            "class C {\n"
            "    std::unordered_map<std::string,\n"
            "                       int> _index FP_GUARDED_BY(_mu);\n"
            "    void walk() {\n"
            "        for (const auto &kv : _index)\n"
            "            use(kv);\n"
            "    }\n"
            "};\n"))
        self.assertEqual(found, [("unordered-iteration", 5)])

    def test_sibling_header_members_folded_into_cc(self):
        self.write("b.hh", (
            "class C {\n"
            "    std::unordered_set<int> _seen;\n"
            "};\n"))
        found = self.lint("b.cc", (
            "void C::walk() {\n"
            "    for (int v : _seen)\n"
            "        use(v);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 2)])

    def test_included_header_members_folded_into_cc(self):
        # The declaring header need not be the sibling: a .cc iterating
        # a member declared in some *other* project header it includes
        # is still caught, via the shared lexer's include list.
        self.write("inc/registry.hh", (
            "class Registry {\n"
            "    std::unordered_map<int, int> _entries;\n"
            "};\n"))
        found = self.lint("walker.cc", (
            '#include "inc/registry.hh"\n'
            "void Registry::dump() {\n"
            "    for (const auto &kv : _entries)\n"
            "        use(kv);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 3)])

    def test_include_resolved_against_ancestor_dirs(self):
        # Project includes are src/-relative ("gpu/foo.hh"); from a
        # file in a subdirectory the resolver must walk up to find the
        # include root, the way the compiler's -I flag does.
        self.write("common/table.hh", (
            "class Table {\n"
            "    std::unordered_set<int> _keys;\n"
            "};\n"))
        found = self.lint("gpu/user.cc", (
            '#include "common/table.hh"\n'
            "void Table::walk() {\n"
            "    for (int k : _keys)\n"
            "        use(k);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 3)])

    def test_angle_includes_not_folded(self):
        # <system> includes are external; only quoted project includes
        # contribute declarations.
        self.assertEqual(self.lint("a.cc", (
            "#include <unordered_map>\n"
            "void f(const std::map<int, int> &m) {\n"
            "    for (const auto &kv : m)\n"
            "        use(kv);\n"
            "}\n")), [])

    def test_ordered_container_not_flagged(self):
        self.assertEqual(self.lint("a.cc", (
            "void f() {\n"
            "    std::map<int, int> table;\n"
            "    for (const auto &kv : table)\n"
            "        use(kv);\n"
            "}\n")), [])

    def test_telemetry_ledger_emission_flagged(self):
        # The fabric-observability failure mode: a per-link contention
        # ledger declared unordered in the header, serialized straight
        # into a keyed JSON object from the .cc. Iteration order would
        # leak into the stats document and break digest comparisons.
        self.write("flow.hh", (
            "class Collector {\n"
            "    std::unordered_map<std::pair<int, int>, Tick>\n"
            "        _interference FP_GUARDED_BY(_mu);\n"
            "};\n"))
        found = self.lint("flow.cc", (
            "void Collector::dumpJson(JsonWriter &json) {\n"
            "    for (const auto &[flows, ticks] : _interference)\n"
            "        json.kv(name(flows), ticks);\n"
            "}\n"))
        self.assertEqual(found, [("unordered-iteration", 2)])

    def test_sorted_ledger_emission_not_flagged(self):
        # The pattern src/obs/flow.cc actually uses: an ordered map
        # keyed by (flow, flow), so JSON keys sort deterministically.
        self.write("flow2.hh", (
            "class Collector {\n"
            "    std::map<std::pair<int, int>, Tick> _interference;\n"
            "};\n"))
        self.assertEqual(self.lint("flow2.cc", (
            "void Collector::dumpJson(JsonWriter &json) {\n"
            "    for (const auto &[flows, ticks] : _interference)\n"
            "        json.kv(name(flows), ticks);\n"
            "}\n")), [])


class LexerNoiseTest(LintCase):
    # The shared fp_cpplex scrubber replaced the old per-line regex;
    # these pin the cases the regex was known to get wrong.

    def test_block_comment_spanning_lines_suppressed(self):
        self.assertEqual(self.lint("a.cc", (
            "/* historical code:\n"
            "   int x = rand();\n"
            "   std::unordered_map<int, int> m;\n"
            "*/\n"
            "void live() {}\n")), [])

    def test_raw_string_contents_suppressed(self):
        self.assertEqual(self.lint("a.cc", (
            "const char *doc = R\"(\n"
            "call rand() and iterate std::mutex tables\n"
            ")\";\n")), [])

    def test_code_after_block_comment_still_linted(self):
        found = self.lint("a.cc", (
            "/* setup */ int x = rand();\n"))
        self.assertEqual(found, [("unseeded-rng", 1)])


class RawConcurrencyTest(LintCase):
    def test_primitives_and_detach_flagged(self):
        found = self.lint("a.cc", (
            "#include <thread>\n"
            "void f() {\n"
            "    std::mutex m;\n"
            "    std::thread worker(loop);\n"
            "    worker.detach();\n"
            "    std::condition_variable cv;\n"
            "}\n"))
        self.assertEqual(found, [("raw-concurrency", 1),
                                 ("raw-concurrency", 3),
                                 ("raw-concurrency", 4),
                                 ("raw-concurrency", 5),
                                 ("raw-concurrency", 6)])

    def test_sync_header_exempt(self):
        self.assertEqual(self.lint("common/sync.h", (
            "#include <mutex>\n"
            "class Mutex {\n"
            "    std::mutex _m;\n"
            "};\n")), [])

    def test_fp_wrappers_not_flagged(self):
        self.assertEqual(self.lint("a.cc", (
            "fp::Mutex mu;\n"
            "fp::MutexLock lock(mu);\n"
            "fp::ThreadPool pool(4);\n")), [])

    def test_this_thread_not_flagged(self):
        # std::this_thread is observational, not a primitive the
        # analysis needs to see; the \\b boundary must not match it.
        self.assertEqual(self.lint("a.cc", (
            "auto id = std::this_thread::get_id();\n")), [])


class GlobalStateTest(LintCase):
    def test_static_local_flagged(self):
        found = self.lint("a.cc", (
            "int f() {\n"
            "    static int calls = 0;\n"
            "    return ++calls;\n"
            "}\n"))
        self.assertEqual(found, [("global-state", 2)])

    def test_namespace_scope_var_flagged(self):
        found = self.lint("a.cc", (
            "namespace fp {\n"
            "std::string last_error;\n"
            "} // namespace fp\n"))
        self.assertEqual(found, [("global-state", 2)])

    def test_guarded_confined_and_immutable_exempt(self):
        self.assertEqual(self.lint("a.hh", (
            "class C {\n"
            "    static const int limit = 4;\n"
            "    static constexpr double pi = 3.14;\n"
            "    bool _stop FP_GUARDED_BY(_mu) = false;\n"
            "};\n"
            "namespace fp {\n"
            "thread_local std::string context;\n"
            "std::atomic<bool> quiet{false};\n"
            "constexpr int k = 3;\n"
            "fp::Mutex registry_mu;\n"
            "} // namespace fp\n")), [])

    def test_function_decls_not_flagged(self):
        self.assertEqual(self.lint("a.hh", (
            "namespace fp {\n"
            "static void helper();\n"
            "void api(int arg);\n"
            "std::string\n"
            "format(const std::string &message,\n"
            "       int width = 80);\n"
            "} // namespace fp\n")), [])

    def test_class_members_not_flagged_as_namespace_vars(self):
        self.assertEqual(self.lint("a.hh", (
            "namespace fp {\n"
            "class C {\n"
            "    int _count = 0;\n"
            "    std::vector<int> _items;\n"
            "};\n"
            "} // namespace fp\n")), [])


class WaiverTest(LintCase):
    def test_same_line_waiver_accepted(self):
        self.assertEqual(self.lint("a.cc", (
            "static int hits; "
            "// fp-lint: allow(global-state) test-only counter\n")), [])

    def test_line_above_waiver_accepted(self):
        self.assertEqual(self.lint("a.cc", (
            "// fp-lint: allow(global-state) internally synchronized\n"
            "static Registry registry;\n")), [])

    def test_waiver_without_reason_is_error(self):
        found = self.lint("a.cc", (
            "// fp-lint: allow(global-state)\n"
            "static Registry registry;\n"))
        self.assertEqual([r for r, _ in found], ["global-state"])
        self.assertEqual(found[0][1], 2)

    def test_wrong_rule_waiver_does_not_apply(self):
        found = self.lint("a.cc", (
            "// fp-lint: allow(wall-clock) not actually a clock\n"
            "static Registry registry;\n"))
        self.assertEqual(found, [("global-state", 2)])

    def test_two_lines_above_does_not_apply(self):
        found = self.lint("a.cc", (
            "// fp-lint: allow(global-state) too far away\n"
            "// explanatory text\n"
            "static Registry registry;\n"))
        self.assertEqual(found, [("global-state", 3)])


class SignalUnsafeTest(LintCase):
    MARK = "// fp-lint: async-signal-safe\n"

    def test_unmarked_file_is_out_of_scope(self):
        self.assertEqual(self.lint("a.cc", (
            "void f() {\n"
            "    std::string s = std::to_string(7);\n"
            "    printf(\"%d\\n\", 7);\n"
            "}\n")), [])

    def test_allocation_and_stdio_flagged_in_marked_file(self):
        found = self.lint("fatal.cc", self.MARK + (
            "void f() {\n"
            "    char *p = (char *)malloc(16);\n"
            "    printf(\"%s\", p);\n"
            "    free(p);\n"
            "    int *q = new int;\n"
            "    delete q;\n"
            "}\n"))
        self.assertEqual(found, [("signal-unsafe", 3),
                                 ("signal-unsafe", 4),
                                 ("signal-unsafe", 5),
                                 ("signal-unsafe", 6),
                                 ("signal-unsafe", 7)])

    def test_cpp_machinery_and_throw_flagged(self):
        found = self.lint("fatal.cc", self.MARK + (
            "#include <sstream>\n"
            "void f() {\n"
            "    std::string s;\n"
            "    std::cerr << s;\n"
            "    throw 1;\n"
            "    fp_panic(\"boom\");\n"
            "}\n"))
        self.assertEqual(found, [("signal-unsafe", 2),
                                 ("signal-unsafe", 4),
                                 ("signal-unsafe", 5),
                                 ("signal-unsafe", 6),
                                 ("signal-unsafe", 7)])

    def test_exit_flagged_but_underscore_exit_allowed(self):
        found = self.lint("fatal.cc", self.MARK + (
            "void f() {\n"
            "    ::_exit(130);\n"
            "    std::_Exit(86);\n"
            "    exit(1);\n"
            "}\n"))
        self.assertEqual(found, [("signal-unsafe", 5)])

    def test_safe_handler_primitives_pass(self):
        self.assertEqual(self.lint("fatal.cc", self.MARK + (
            "#include <atomic>\n"
            "#include <csignal>\n"
            "#include <cstring>\n"
            "void f(int fd) {\n"
            "    std::atomic<int> ready{0};\n"
            "    char buf[64];\n"
            "    std::memset(buf, 0, sizeof(buf));\n"
            "    ssize_t rc = ::write(fd, buf, 64);\n"
            "    (void)rc;\n"
            "    std::signal(SIGTERM, SIG_DFL);\n"
            "    ::raise(SIGTERM);\n"
            "}\n")), [])

    def test_waiver_applies(self):
        self.assertEqual(self.lint("fatal.cc", self.MARK + (
            "void f() {\n"
            "    // fp-lint: allow(signal-unsafe) install-time only\n"
            "    std::string s;\n"
            "}\n")), [])

    def test_banned_token_in_comment_not_flagged(self):
        # Comments are scrubbed before the scan, so prose mentioning
        # malloc or printf does not trip the rule.
        self.assertEqual(self.lint("fatal.cc", self.MARK + (
            "// bans malloc, printf, and std::string\n"
            "void f() {}\n")), [])


if __name__ == "__main__":
    sys.exit(unittest.main())
