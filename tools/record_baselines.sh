#!/usr/bin/env bash
# Refresh bench/baselines/: run every JSON-capable bench at the canonical
# baseline scale and record its output via fp_bench_compare.py --update.
#
# Usage: tools/record_baselines.sh [-j N] [BUILD_DIR]
#
# -j N fans each bench's independent simulations across N in-process
# sweep lanes (exported as FINEPACK_BENCH_JOBS; see sim::SweepRunner).
# Results are aggregated by sweep index, so the recorded JSON is
# byte-identical whatever N is; the default of 1 is the serial
# reference order.
#
# Trace-driven benches run at FINEPACK_BENCH_SCALE=0.1 to keep the refresh
# (and the CI perf-smoke job that replays fig02 at the same scale) fast;
# the analytic benches (tab02, micro_finepack) are scale-independent.
# fp_bench_compare.py refuses to compare across scales, so CI must use the
# same value - keep this in sync with .github/workflows/ci.yml.

set -euo pipefail

jobs=1
while getopts "j:" opt; do
    case "$opt" in
      j) jobs="$OPTARG" ;;
      *) echo "usage: $0 [-j N] [BUILD_DIR]" >&2; exit 2 ;;
    esac
done
shift $((OPTIND - 1))

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

export FINEPACK_BENCH_SCALE=0.1
export FINEPACK_BENCH_JOBS="$jobs"

benches=(
    fig02_goodput
    fig04_store_sizes
    fig09_speedup
    fig10_traffic_breakdown
    fig11_coalescing
    fig12_subheader_sweep
    fig13_bandwidth_sweep
    tab02_subheader_ranges
    scalability_sweep
    scale16_gpu
    micro_finepack
)

for bench in "${benches[@]}"; do
    bin="$build_dir/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "error: $bin not built (cmake --build $build_dir)" >&2
        exit 2
    fi
    echo "=== $bench"
    extra=()
    [[ "$bench" == micro_finepack ]] && extra=(--no-timing)
    "$bin" --json "$out_dir/$bench.json" "${extra[@]}" > /dev/null
done

python3 "$repo_root/tools/fp_bench_compare.py" --update \
    --baseline-dir "$repo_root/bench/baselines" "$out_dir"/*.json
echo "baselines refreshed in bench/baselines/"
