#!/usr/bin/env python3
"""Self-tests for fp_hotpath.py (and the fp_cpplex lexer underneath):
every rule's positive and negative cases, waiver handling, and the
lexer edge cases (raw strings, macros, block comments) the
function-scope parser must survive. Pure stdlib unittest, registered
with ctest as `fp_hotpath_selftest` so a rule regression fails tier-1
the same way a simulator regression does.

Each case writes a synthetic source tree into a temp dir and asserts
exactly which (rule, line) findings come back, so both missed
detections and false positives fail.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_TOOLS = os.path.dirname(os.path.abspath(__file__))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_TOOLS, name + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


fp_cpplex = _load("fp_cpplex")
fp_hotpath = _load("fp_hotpath")


class HotpathCase(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.root = self._dir.name

    def tearDown(self):
        self._dir.cleanup()

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def analyze(self, files):
        """files: {relpath: text}. Returns ([(rule, line)], inventory)."""
        paths = sorted(self.write(rel, text) for rel, text in files.items())
        findings, inventory = fp_hotpath.analyze(paths, self.root)
        return [(f.rule, f.line) for f in findings], inventory

    def findings(self, text, rel="a.cc"):
        return self.analyze({rel: text})[0]


class LexerTest(unittest.TestCase):
    """fp_cpplex edge cases the hot-path parser depends on."""

    def test_block_comment_produces_no_tokens(self):
        toks = fp_cpplex.lex("int a; /* int b; */ int c;")
        self.assertEqual([t.text for t in toks if t.kind == "ident"],
                         ["int", "a", "int", "c"])

    def test_raw_string_is_one_token(self):
        toks = fp_cpplex.lex('auto s = R"js({"new": 1})js"; new X;')
        kinds = [(t.kind, t.text) for t in toks]
        self.assertIn(("string", '""'), kinds)
        # The "new" inside the raw string must not leak out as code.
        self.assertEqual([t for t in toks if t.text == "new"],
                         [toks[-3]])

    def test_digit_separator_is_not_char_literal(self):
        toks = fp_cpplex.lex("x = 1'000'000;")
        self.assertEqual([t.kind for t in toks if t.text.startswith("1")],
                         ["number"])

    def test_scrub_preserves_line_count_and_waivers(self):
        text = ("int a; /* multi\n"
                "line */ int b;\n"
                "// fp-lint: allow(hot-alloc) reason\n"
                '// ordinary comment\n')
        lines = fp_cpplex.scrub(text)
        self.assertEqual(len(lines), text.count("\n") + 1)
        self.assertIn("fp-lint: allow(hot-alloc)", lines[2])
        self.assertNotIn("ordinary", lines[3])

    def test_preprocessor_continuation(self):
        toks = fp_cpplex.lex("#define M(x) \\\n    do_thing(x)\nint y;")
        self.assertEqual([t.text for t in toks if t.kind == "ident"],
                         ["int", "y"])

    def test_project_includes(self):
        text = ('#include "common/types.hh"\n'
                "#include <vector>\n"
                '#  include "gpu/port.hh"\n')
        self.assertEqual(fp_cpplex.project_includes(text),
                         ["common/types.hh", "gpu/port.hh"])


class HotAllocTest(HotpathCase):
    def test_allocation_kinds_flagged(self):
        found = self.findings(
            "FP_HOT void f() {\n"
            "    auto *e = new Event();\n"
            "    auto p = std::make_shared<Msg>();\n"
            "    auto q = std::make_unique<Msg>();\n"
            "    std::function<void()> fn = cb;\n"
            "    std::string label = base + suffix;\n"
            "}\n")
        self.assertEqual(found, [("hot-alloc", 2), ("hot-alloc", 3),
                                 ("hot-alloc", 4), ("hot-alloc", 5),
                                 ("hot-alloc", 6)])

    def test_cold_function_may_allocate(self):
        self.assertEqual(self.findings(
            "FP_COLD void setup() {\n"
            "    auto *e = new Event();\n"
            "}\n"
            "void unannotated() {\n"
            "    auto p = std::make_shared<Msg>();\n"
            "}\n"), [])

    def test_waived_alloc_is_inventoried_not_flagged(self):
        found, inventory = self.analyze({"a.cc": (
            "FP_HOT void f() {\n"
            "    // fp-lint: allow(hot-alloc) pooled in ROADMAP item 1\n"
            "    auto *e = new Event();\n"
            "}\n")})
        self.assertEqual(found, [])
        sites = inventory["allocation_sites"]
        self.assertEqual(len(sites), 1)
        self.assertTrue(sites[0]["waived"])
        self.assertEqual(sites[0]["kind"], "new")
        self.assertEqual(sites[0]["function"], "f")

    def test_waiver_without_reason_is_error(self):
        found = self.findings(
            "FP_HOT void f() {\n"
            "    // fp-lint: allow(hot-alloc)\n"
            "    auto *e = new Event();\n"
            "}\n")
        self.assertEqual([r for r, _ in found], ["hot-alloc"])

    def test_new_inside_raw_string_not_flagged(self):
        self.assertEqual(self.findings(
            "FP_HOT void f() {\n"
            '    const char *s = R"(allocating new Event)";\n'
            '    buffer.assign(R"(std::make_shared<X>() here)");\n'
            "}\n"), [])

    def test_new_inside_macro_argument_not_flagged(self):
        # Assertion macros stringify expressions; their argument spans
        # are cold by definition (they fire on the way to abort).
        self.assertEqual(self.findings(
            "FP_HOT void f() {\n"
            "    fp_assert(ok, describe(new_count));\n"
            "}\n"), [])


class HotEscapeTest(HotpathCase):
    def test_call_to_unannotated_function_flagged(self):
        found = self.findings(
            "void helper() {}\n"
            "FP_HOT void f() {\n"
            "    helper();\n"
            "}\n")
        self.assertEqual(found, [("hot-escape", 3)])

    def test_call_to_hot_or_cold_function_ok(self):
        self.assertEqual(self.findings(
            "FP_HOT void fast() {}\n"
            "FP_COLD void slow() {}\n"
            "FP_HOT void f() {\n"
            "    fast();\n"
            "    slow();\n"
            "}\n"), [])

    def test_annotation_seen_across_files(self):
        # Declaration annotated in the header, call in another file.
        found, _ = self.analyze({
            "b.hh": "FP_HOT void fast();\n",
            "a.cc": ("FP_HOT void f() {\n"
                     "    fast();\n"
                     "}\n"),
        })
        self.assertEqual(found, [])

    def test_method_annotation_matched_through_object_call(self):
        self.assertEqual(self.findings(
            "class Q {\n"
            "  public:\n"
            "    FP_HOT void push(int v);\n"
            "};\n"
            "FP_HOT void f(Q &q) {\n"
            "    q.push(1);\n"
            "}\n"), [])

    def test_trivial_std_calls_allowed(self):
        self.assertEqual(self.findings(
            "FP_HOT void f(std::vector<int> &v) {\n"
            "    v.push_back(std::min(3, 4));\n"
            "    std::sort(v.begin(), v.end());\n"
            "}\n"), [])

    def test_unknown_external_call_flagged(self):
        found = self.findings(
            "FP_HOT void f() {\n"
            "    frobnicate();\n"
            "}\n")
        self.assertEqual(found, [("hot-escape", 2)])

    def test_waiver_on_call_accepted(self):
        self.assertEqual(self.findings(
            "FP_HOT void f() {\n"
            "    // fp-lint: allow(hot-escape) indirect hook\n"
            "    callback();\n"
            "}\n"), [])

    def test_lambda_body_checked_as_enclosing_function(self):
        found = self.findings(
            "void helper() {}\n"
            "FP_HOT void f() {\n"
            "    auto fn = [&] {\n"
            "        helper();\n"
            "    };\n"
            "}\n")
        self.assertEqual(found, [("hot-escape", 4)])


class ScheduleLabelTest(HotpathCase):
    def test_unlabeled_lambda_schedule_flagged(self):
        found = self.findings(
            "void f(EventQueue &q) {\n"
            "    q.schedule([this] { step(); }, when);\n"
            "    q.scheduleIn([this] { step(); }, delay);\n"
            "}\n")
        self.assertEqual(found, [("schedule-label", 2),
                                 ("schedule-label", 3)])

    def test_labeled_schedule_ok(self):
        self.assertEqual(self.findings(
            "void f(EventQueue &q) {\n"
            "    q.schedule([this] { step(); }, when,\n"
            "               Event::prio_default, \"step\");\n"
            "    q.scheduleIn([this] { step(); }, delay,\n"
            "                 Event::prio_default, \"step\");\n"
            "}\n"), [])

    def test_event_pointer_overload_needs_no_label(self):
        # The 2-arg Event* overload labels via Event::description().
        self.assertEqual(self.findings(
            "void f(EventQueue &q, Event *e) {\n"
            "    q.schedule(e, when);\n"
            "}\n"), [])

    def test_comma_inside_lambda_args_not_miscounted(self):
        # Calls and templates inside the lambda body must not make a
        # 4-argument call look shorter or longer than it is.
        self.assertEqual(self.findings(
            "void f(EventQueue &q) {\n"
            "    q.schedule([this] { emit(a, b); }, when,\n"
            "               Event::prio_default, \"emit\");\n"
            "}\n"), [])


class ObserverPurityTest(HotpathCase):
    def test_observer_scheduling_from_hook_flagged(self):
        found = self.findings(
            "class QueueObserver {\n"
            "  public:\n"
            "    virtual void beginEvent(const Event &e) = 0;\n"
            "};\n"
            "class Meddler : public QueueObserver {\n"
            "    void beginEvent(const Event &e) override {\n"
            "        _q.scheduleIn([] {}, 1, 0, \"meddle\");\n"
            "    }\n"
            "};\n")
        self.assertEqual(found, [("observer-purity", 7)])

    def test_observer_passive_hook_ok(self):
        self.assertEqual(self.findings(
            "class QueueObserver {\n"
            "  public:\n"
            "    virtual void beginEvent(const Event &e) = 0;\n"
            "};\n"
            "class Recorder : public QueueObserver {\n"
            "    void beginEvent(const Event &e) override {\n"
            "        _count += 1;\n"
            "    }\n"
            "};\n"), [])

    def test_non_observer_class_may_schedule(self):
        self.assertEqual(self.findings(
            "class Port {\n"
            "    void beginEvent() {\n"
            "        _q.scheduleIn([] {}, 1, 0, \"ok\");\n"
            "    }\n"
            "};\n"), [])

    def test_transitive_observer_base_detected(self):
        found = self.findings(
            "class RwqObserver {\n"
            "  public:\n"
            "    virtual void windowFlushed(const F &f, R r) = 0;\n"
            "};\n"
            "class Base : public RwqObserver {};\n"
            "class Derived : public Base {\n"
            "    void windowFlushed(const F &f, R r) override {\n"
            "        _q.schedule([] {}, 1, 0, \"bad\");\n"
            "    }\n"
            "};\n")
        self.assertEqual(found, [("observer-purity", 8)])


class InventoryTest(HotpathCase):
    def test_inventory_lists_functions_and_sites(self):
        _, inventory = self.analyze({"a.hh": (
            "class Q {\n"
            "  public:\n"
            "    FP_HOT void push(int v);\n"
            "    FP_COLD void dump() const;\n"
            "};\n"
            "FP_HOT inline void fire() {\n"
            "    // fp-lint: allow(hot-alloc) seam\n"
            "    auto p = std::make_shared<M>();\n"
            "}\n")})
        self.assertEqual(inventory["schema_version"], 1)
        self.assertEqual(inventory["kind"], "hotpath")
        hot = {(f["scope"], f["name"])
               for f in inventory["hot_functions"]}
        self.assertIn(("Q", "push"), hot)
        self.assertIn(("", "fire"), hot)
        cold = {(f["scope"], f["name"])
                for f in inventory["cold_functions"]}
        self.assertIn(("Q", "dump"), cold)
        self.assertEqual(
            [s["kind"] for s in inventory["allocation_sites"]],
            ["make_shared"])

    def test_inventory_is_deterministic(self):
        files = {
            "b.cc": "FP_HOT void beta() {}\n",
            "a.cc": "FP_HOT void alpha() {}\n",
        }
        _, inv1 = self.analyze(files)
        fresh = HotpathCase()
        fresh.setUp()
        try:
            _, inv2 = fresh.analyze(files)
        finally:
            fresh.tearDown()
        strip = lambda inv: [(f["file"], f["scope"], f["name"])
                             for f in inv["hot_functions"]]
        self.assertEqual(strip(inv1), strip(inv2))
        self.assertEqual(strip(inv1),
                         sorted(strip(inv1)))


if __name__ == "__main__":
    sys.exit(unittest.main())
