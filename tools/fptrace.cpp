/**
 * @file
 * fptrace - workload trace generation, inspection, and replay CLI.
 *
 * Subcommands:
 *   generate <workload> <out.fpt> [--scale S] [--gpus N] [--seed X]
 *       Execute the workload and serialize its trace to a file.
 *   info <trace.fpt>
 *       Print structural statistics of a serialized trace.
 *   replay <trace.fpt> [--paradigm P] [--pcie GEN] [--check]
 *          [--stats-json FILE] [--trace-out FILE]
 *          [--trace-detail full|flush|off] [--sample-ns N]
 *          [--no-latency] [--fabric-report] [--json FILE]
 *          [--fabric-window-ns N]
 *       Simulate a serialized trace under one paradigm. With --check,
 *       the shadow-memory protocol oracle verifies every FinePack
 *       transaction byte-for-byte against the issued store stream.
 *       --stats-json exports every registered stat group plus sampled
 *       time series; --trace-out writes a Chrome trace-event /
 *       Perfetto-compatible event trace of the pipeline. Latency
 *       attribution (docs/latency.md) is on by default: its stage
 *       histograms land in the stats JSON, a one-line p50/p99 summary
 *       prints otherwise, and at --trace-detail full each message gets
 *       a flow-event chain; --no-latency disables the stamping.
 *       --fabric-report attaches the obs::FlowCollector
 *       (docs/fabric_observability.md) and prints per-link
 *       utilization, the per-flow accounting table, and the N x N
 *       contention-attribution matrix; it also adds per-link
 *       utilization / queue-depth counter tracks to --trace-out, a
 *       `fabric` section to --stats-json, and (with --json FILE) a
 *       machine-readable fabric report document.
 *   profile <trace.fpt> [--paradigm P] [--pcie GEN] [--reps N]
 *           [--top N] [--json FILE]
 *       Host-side self-profiling (docs/profiling.md): replay the trace
 *       N times with obs::Profiler attached and report where the
 *       *simulator's* wall-clock time goes - top-N event-label
 *       hotspots, events/sec throughput, event-queue operation
 *       counters, and allocation counts on the hot paths. --json
 *       writes the machine-readable profile document (provenance +
 *       host section).
 *   racecheck <trace.fpt> [--paradigm P] [--pcie GEN] [--seeds N]
 *             [--report FILE] [--waive GLOB] [--no-default-waivers]
 *       Determinism analysis (docs/determinism.md). Statically: replay
 *       under the same-tick race detector and report conflicting
 *       accesses between events at the same (tick, priority).
 *       Dynamically: re-run under N-1 shuffled tie-break seeds and
 *       diff the protocol-oracle digest, the stats JSON, and the run
 *       result against the insertion-order baseline. Exit 1 on any
 *       unwaived conflict or digest mismatch.
 *   list
 *       List the available workloads.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/digest.hh"
#include "check/invariant.hh"
#include "check/race_detector.hh"
#include "common/build_info.hh"
#include "common/interrupt.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "obs/fatal.hh"
#include "obs/flight_recorder.hh"
#include "obs/flow.hh"
#include "obs/health.hh"
#include "obs/latency.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/trace_event.hh"
#include "sim/driver.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace {

using namespace fp;

int
usage()
{
    std::cerr
        << "usage:\n"
           "  fptrace generate <workload> <out.fpt> [--scale S]"
           " [--gpus N] [--seed X]\n"
           "  fptrace info <trace.fpt>\n"
           "  fptrace replay <trace.fpt> [--paradigm P] [--pcie 3|4|5|6]"
           " [--check]\n"
           "                 [--stats-json FILE] [--trace-out FILE]\n"
           "                 [--trace-detail full|flush|off]"
           " [--sample-ns N]\n"
           "                 [--no-latency] [--profile]\n"
           "                 [--fabric-report] [--json FILE]"
           " [--fabric-window-ns N]\n"
           "  fptrace profile <trace.fpt> [--paradigm P]"
           " [--pcie 3|4|5|6]\n"
           "                 [--reps N] [--top N] [--json FILE]\n"
           "  fptrace racecheck <trace.fpt> [--paradigm P]"
           " [--pcie 3|4|5|6]\n"
           "                 [--seeds N] [--report FILE] [--waive GLOB]\n"
           "                 [--no-default-waivers]\n"
           "  fptrace list\n"
           "  fptrace --version\n"
           "run health (replay / profile / racecheck; "
           "docs/run_health.md):\n"
           "  [--flight-recorder[=N]] [--heartbeat-ns N]"
           " [--heartbeat-out FILE]\n"
           "  [--stall-ns N] [--postmortem-out FILE] [--wedge-ms N]\n"
           "exit codes: 0 ok, 1 fatal, 2 usage, 3 panic, 86 invariant,\n"
           "            130 interrupted (SIGINT), 143 terminated"
           " (SIGTERM)\n";
    return 2;
}

const char *
argValue(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 0; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 0; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/**
 * Run-health wiring shared by replay / profile / racecheck
 * (docs/run_health.md): parses --flight-recorder[=N], --heartbeat-ns,
 * --heartbeat-out, --stall-ns, --postmortem-out and --wedge-ms,
 * installs the fatal signal handlers plus the logging failure hook
 * (panic / FP_INVARIANT trip / oracle mismatch all flush the same
 * `kind:"postmortem"` document), and owns the flight recorder and
 * stall watchdog for the duration of the command.
 */
struct RunHealth
{
    std::unique_ptr<obs::FlightRecorder> recorder;
    std::unique_ptr<obs::HealthMonitor> monitor;
    std::uint32_t wedge_ms = 0;

    RunHealth(int argc, char **argv)
    {
        // A fresh CLI invocation re-arms the cooperative flag (it
        // deliberately survives across the runs inside one command).
        common::interrupt::clear();

        std::size_t ring = 0;
        for (int i = 0; i < argc; ++i) {
            if (std::strcmp(argv[i], "--flight-recorder") == 0) {
                ring = obs::FlightRecorder::default_capacity;
            } else if (std::strncmp(argv[i], "--flight-recorder=",
                                    18) == 0) {
                int n = std::atoi(argv[i] + 18);
                ring = n > 0 ? static_cast<std::size_t>(n)
                             : obs::FlightRecorder::default_capacity;
            }
        }
        auto heartbeat_ns = static_cast<std::uint64_t>(
            std::atoll(argValue(argc, argv, "--heartbeat-ns", "0")));
        const char *heartbeat_out =
            argValue(argc, argv, "--heartbeat-out", "");
        auto stall_ns = static_cast<std::uint64_t>(
            std::atoll(argValue(argc, argv, "--stall-ns", "0")));
        wedge_ms = static_cast<std::uint32_t>(
            std::atoi(argValue(argc, argv, "--wedge-ms", "0")));

        // The watchdog needs a progress source, so asking for
        // heartbeats implies a (default-sized) recorder.
        bool want_monitor = heartbeat_ns > 0 ||
                            *heartbeat_out != '\0' || stall_ns > 0;
        if (ring != 0 || want_monitor)
            recorder = std::make_unique<obs::FlightRecorder>(
                ring != 0 ? ring
                          : obs::FlightRecorder::default_capacity);

        // Signal handlers and the failure hook are always armed: a
        // SIGINT'd replay flushes partial stats, and every panic or
        // invariant trip produces a postmortem, recorder or not.
        std::ostringstream provenance;
        {
            common::JsonWriter json(provenance);
            common::dumpBuildInfoJson(json);
        }
        std::string provenance_str = provenance.str();
        obs::fatal::Config fatal_config;
        fatal_config.recorder = recorder.get();
        const char *postmortem =
            argValue(argc, argv, "--postmortem-out", "");
        fatal_config.postmortem_path =
            *postmortem != '\0' ? postmortem : nullptr;
        fatal_config.provenance_json = provenance_str.c_str();
        obs::fatal::install(fatal_config);
        common::setFailureHook(
            [](void *, const char *message) {
                obs::fatal::writePostmortem(message);
            },
            nullptr);

        if (recorder)
            recorder->installInvariantHooks();
        if (want_monitor) {
            obs::HealthMonitor::Options options;
            options.heartbeat_ns = heartbeat_ns; // 0 -> 1 s default
            options.stall_ns = stall_ns;
            options.heartbeat_path = heartbeat_out;
            monitor = std::make_unique<obs::HealthMonitor>(options);
            monitor->attachRecorder(recorder.get());
            monitor->start();
        }
    }

    ~RunHealth()
    {
        if (monitor)
            monitor->stop();
        common::setFailureHook(nullptr, nullptr);
    }

    /** Point one run's @p config at the recorder / wedge aid. */
    void
    configure(sim::SimConfig &config) const
    {
        config.recorder = recorder.get();
        config.wedge_host_ms = wedge_ms;
    }
};

sim::Paradigm
parseParadigm(const std::string &name)
{
    if (name == "p2p-stores")
        return sim::Paradigm::p2p_stores;
    if (name == "bulk-dma")
        return sim::Paradigm::bulk_dma;
    if (name == "finepack")
        return sim::Paradigm::finepack;
    if (name == "write-combine")
        return sim::Paradigm::write_combine;
    if (name == "gps")
        return sim::Paradigm::gps;
    if (name == "infinite-bw")
        return sim::Paradigm::infinite_bw;
    if (name == "single-gpu")
        return sim::Paradigm::single_gpu;
    fp_fatal("unknown paradigm: ", name);
}

int
cmdGenerate(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    workloads::WorkloadParams params;
    params.scale = std::atof(argValue(argc, argv, "--scale", "1.0"));
    params.num_gpus = static_cast<std::uint32_t>(
        std::atoi(argValue(argc, argv, "--gpus", "4")));
    params.seed = static_cast<std::uint64_t>(
        std::atoll(argValue(argc, argv, "--seed", "42")));

    auto workload = workloads::createWorkload(argv[2]);
    std::cout << "generating " << argv[2] << " (scale=" << params.scale
              << ", gpus=" << params.num_gpus << ")...\n";
    trace::WorkloadTrace trace = workload->generateTrace(params);

    std::ofstream out(argv[3], std::ios::binary);
    if (!out) {
        std::cerr << "cannot open " << argv[3] << " for writing\n";
        return 1;
    }
    trace::writeTrace(trace, out);
    std::cout << "wrote " << trace.totalRemoteStores()
              << " remote stores across " << trace.numIterations()
              << " iterations to " << argv[3] << "\n";
    return 0;
}

trace::WorkloadTrace
loadTrace(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fp_fatal("cannot open trace file: ", path);
    return trace::readTrace(in);
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::WorkloadTrace trace = loadTrace(argv[2]);

    std::cout << "workload:      " << trace.workload << "\n"
              << "comm pattern:  " << trace.comm_pattern << "\n"
              << "gpus:          " << trace.num_gpus << "\n"
              << "iterations:    " << trace.numIterations() << "\n"
              << "remote stores: " << trace.totalRemoteStores() << "\n"
              << "store bytes:   " << trace.totalRemoteStoreBytes()
              << "\n"
              << "unique bytes:  " << trace::totalUniqueBytes(trace)
              << "\n"
              << "useful bytes:  " << trace::totalUsefulBytes(trace)
              << "\n";

    common::Table table("per-iteration profile");
    table.setHeader({"iter", "stores", "store KiB", "dma KiB",
                     "flops (M)"});
    for (std::uint32_t i = 0; i < trace.numIterations(); ++i) {
        const auto &iter = trace.iterations[i];
        std::uint64_t stores = 0, bytes = 0, dma = 0;
        double flops = 0.0;
        for (const auto &gpu : iter.per_gpu) {
            stores += gpu.remote_stores.size();
            for (const auto &store : gpu.remote_stores)
                bytes += store.size;
            for (const auto &copy : gpu.dma_copies)
                dma += copy.range.size;
            flops += gpu.flops;
        }
        table.addRow({std::to_string(i), std::to_string(stores),
                      std::to_string(bytes / 1024),
                      std::to_string(dma / 1024),
                      common::Table::num(flops / 1e6, 1)});
    }
    table.print(std::cout);
    return 0;
}

/** Ticks (ps) rendered as microseconds with one decimal. */
std::string
usStr(Tick ticks)
{
    return common::Table::num(
        static_cast<double>(ticks) / static_cast<double>(ticks_per_us),
        1);
}

/**
 * The human-readable --fabric-report: a one-line summary, the top-k
 * hot links, the per-flow accounting table, and the fabric-wide
 * contention-attribution matrix (full data: --json / --stats-json).
 */
void
printFabricReport(const obs::FlowCollector &flows)
{
    const auto &links = flows.links();
    std::cout << "fabric:     " << links.size() << " links, "
              << flows.activeFlows() << " active flows, busy "
              << usStr(flows.totalBusyTicks()) << " us, queue wait "
              << usStr(flows.totalWaitTicks()) << " us, packing "
              << common::Table::num(flows.packingEfficiency() * 100.0, 1)
              << "% of wire bytes\n";

    common::Table hot("hottest links (lifetime utilization)");
    hot.setHeader(
        {"link", "util %", "msgs", "wire KiB", "busy us", "wait us"});
    for (std::uint32_t i : flows.hottestLinks(8)) {
        const auto &link = links[i];
        hot.addRow({link.name,
                    common::Table::num(
                        flows.linkUtilization(link) * 100.0, 1),
                    std::to_string(link.msgs),
                    std::to_string(link.wire_bytes / KiB),
                    usStr(link.busy_ticks), usStr(link.wait_ticks)});
    }
    hot.print(std::cout);

    struct FlowRow
    {
        GpuId src = 0;
        GpuId dst = 0;
        const obs::FlowCollector::FlowStats *flow = nullptr;
    };
    std::vector<FlowRow> rows;
    for (GpuId src = 0; src < flows.numGpus(); ++src)
        for (GpuId dst = 0; dst < flows.numGpus(); ++dst)
            if (src != dst && flows.flow(src, dst).active())
                rows.push_back({src, dst, &flows.flow(src, dst)});
    std::sort(rows.begin(), rows.end(),
              [](const FlowRow &a, const FlowRow &b) {
                  if (a.flow->injected_wire_bytes !=
                      b.flow->injected_wire_bytes)
                      return a.flow->injected_wire_bytes >
                             b.flow->injected_wire_bytes;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });
    constexpr std::size_t max_flow_rows = 16;
    bool truncated = rows.size() > max_flow_rows;
    if (truncated)
        rows.resize(max_flow_rows);

    common::Table per_flow(
        truncated ? "per-flow accounting (top 16 by wire bytes; "
                    "--json for all)"
                  : "per-flow accounting");
    per_flow.setHeader({"flow", "msgs", "wire KiB", "packing %",
                        "up wait us", "down wait us", "caused us",
                        "suffered us"});
    for (const FlowRow &row : rows) {
        const auto &flow = *row.flow;
        per_flow.addRow(
            {obs::FlowCollector::flowName(row.src, row.dst),
             std::to_string(flow.injected_msgs),
             std::to_string(flow.injected_wire_bytes / KiB),
             common::Table::num(
                 flow.injected_wire_bytes
                     ? 100.0 *
                           static_cast<double>(flow.injected_data_bytes) /
                           static_cast<double>(flow.injected_wire_bytes)
                     : 0.0,
                 1),
             usStr(flow.uplink_wait_ticks),
             usStr(flow.downlink_wait_ticks),
             usStr(flow.delay_caused_ticks),
             usStr(flow.delay_suffered_ticks)});
    }
    per_flow.print(std::cout);

    common::Table matrix(
        "contention attribution (us; row delayed column's traffic)");
    std::vector<std::string> header = {"delayer"};
    for (GpuId on = 0; on < flows.numGpus(); ++on)
        header.push_back("g" + std::to_string(on));
    matrix.setHeader(header);
    for (GpuId by = 0; by < flows.numGpus(); ++by) {
        std::vector<std::string> cells = {"g" + std::to_string(by)};
        for (GpuId on = 0; on < flows.numGpus(); ++on)
            cells.push_back(usStr(flows.interferenceTicks(by, on)));
        matrix.addRow(cells);
    }
    matrix.print(std::cout);
}

/** The machine-readable fabric report document (--fabric-report --json). */
void
writeFabricJson(const char *path, const char *trace_path,
                const trace::WorkloadTrace &trace,
                sim::Paradigm paradigm, icn::PcieGen pcie,
                const obs::FlowCollector &flows)
{
    std::ofstream out(path);
    if (!out)
        fp_fatal("cannot open ", path, " for writing");
    common::JsonWriter json(out);
    json.beginObject();
    json.kv("schema_version", 1);
    json.kv("kind", "fabric");
    json.key("provenance");
    common::dumpBuildInfoJson(json);
    json.kv("trace", trace_path);
    json.kv("workload", trace.workload);
    json.kv("paradigm", toString(paradigm));
    json.kv("pcie", toString(pcie));
    json.kv("gpus", trace.num_gpus);
    json.key("fabric");
    flows.dumpJson(json);
    json.endObject();
    out << "\n";
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::WorkloadTrace trace = loadTrace(argv[2]);

    sim::SimConfig config;
    std::string gen = argValue(argc, argv, "--pcie", "4");
    config.pcie_gen = gen == "3"   ? icn::PcieGen::gen3
                      : gen == "5" ? icn::PcieGen::gen5
                      : gen == "6" ? icn::PcieGen::gen6
                                   : icn::PcieGen::gen4;
    sim::Paradigm paradigm =
        parseParadigm(argValue(argc, argv, "--paradigm", "finepack"));
    config.check = hasFlag(argc, argv, "--check");

    // ---- Observability wiring ----------------------------------------
    const char *stats_path = argValue(argc, argv, "--stats-json", "");
    const char *trace_path = argValue(argc, argv, "--trace-out", "");
    std::string detail_name =
        argValue(argc, argv, "--trace-detail", "flush");
    obs::TraceDetail detail = detail_name == "full" ? obs::TraceDetail::full
                              : detail_name == "off"
                                  ? obs::TraceDetail::off
                                  : obs::TraceDetail::flush;
    auto sample_ns = static_cast<Tick>(
        std::atoll(argValue(argc, argv, "--sample-ns", "1000")));
    if (sample_ns == 0)
        sample_ns = 1000;

    auto fabric_window_ns = static_cast<Tick>(
        std::atoll(argValue(argc, argv, "--fabric-window-ns", "1000")));
    if (fabric_window_ns == 0)
        fabric_window_ns = 1000;
    const char *fabric_json = argValue(argc, argv, "--json", "");

    obs::TraceSink tracer(detail);
    obs::PeriodicSampler sampler(sample_ns * ticks_per_ns);
    obs::MetricsCapture metrics;
    obs::LatencyCollector latency;
    obs::Profiler profiler;
    obs::FlowCollector flows(fabric_window_ns * ticks_per_ns);
    if (*trace_path != '\0' && detail != obs::TraceDetail::off)
        config.tracer = &tracer;
    if (*stats_path != '\0') {
        config.sampler = &sampler;
        config.metrics = &metrics;
    }
    // Latency attribution is on by default (its stats groups land in
    // the stats JSON); --no-latency restores the zero-stamp fast path.
    bool want_latency = !hasFlag(argc, argv, "--no-latency");
    if (want_latency)
        config.latency = &latency;
    bool want_profile = hasFlag(argc, argv, "--profile");
    if (want_profile)
        config.profiler = &profiler;
    bool fabric_report = hasFlag(argc, argv, "--fabric-report");
    if (fabric_report)
        config.flows = &flows;

    RunHealth health(argc, argv);
    health.configure(config);

    sim::SimulationDriver driver(config);
    sim::RunResult baseline =
        driver.run(trace, sim::Paradigm::single_gpu);
    sim::RunResult result = driver.run(trace, paradigm);
    // SIGINT lands here as a cleanly interrupted run: everything below
    // still executes so the operator gets partial stats (marked
    // `"partial": true`), and the exit code says the run was cut short.
    bool partial = baseline.interrupted || result.interrupted;

    if (*stats_path != '\0') {
        std::ofstream out(stats_path);
        if (!out)
            fp_fatal("cannot open ", stats_path, " for writing");
        metrics.writeDocument(out, &sampler,
                              want_profile ? &profiler : nullptr,
                              fabric_report ? &flows : nullptr,
                              partial);
        std::cout << "stats json: " << stats_path
                  << (partial ? " (partial)" : "") << "\n";
    }
    if (config.tracer) {
        std::ofstream out(trace_path);
        if (!out)
            fp_fatal("cannot open ", trace_path, " for writing");
        // The host timeline renders alongside the simulated one as a
        // second clock domain (docs/profiling.md).
        if (want_profile)
            profiler.emitTrace(tracer);
        // Per-link utilization / queue-depth counter tracks.
        if (fabric_report)
            flows.emitTrace(tracer);
        tracer.write(out);
        std::cout << "trace:      " << trace_path << " ("
                  << tracer.eventCount() << " events, detail "
                  << toString(detail) << ")\n";
    }

    std::cout << "paradigm:   " << toString(paradigm) << " on "
              << toString(config.pcie_gen) << "\n"
              << "time:       "
              << common::Table::num(result.totalSeconds() * 1e6, 1)
              << " us  (1 GPU: "
              << common::Table::num(baseline.totalSeconds() * 1e6, 1)
              << " us, speedup "
              << common::Table::num(
                     static_cast<double>(baseline.total_time) /
                         static_cast<double>(result.total_time),
                     2)
              << "x)\n"
              << "wire bytes: " << result.wire_bytes << " (useful "
              << result.useful_bytes << ", protocol "
              << result.protocol_bytes << ", wasted "
              << result.wasted_bytes << ")\n";
    if (result.avg_stores_per_packet > 0.0)
        std::cout << "packing:    "
                  << common::Table::num(result.avg_stores_per_packet, 1)
                  << " stores/packet over " << result.finepack_packets
                  << " packets\n";
    if (want_latency && *stats_path == '\0' && latency.messages() > 0) {
        // Per-stage p50/p99 in ns; full breakdowns need --stats-json.
        auto ns = [](const common::Histogram &h, double p) {
            return common::Table::num(
                h.percentile(p) / static_cast<double>(ticks_per_ns), 1);
        };
        auto stage = [&](const common::Histogram &h) {
            return ns(h, 0.50) + "/" + ns(h, 0.99);
        };
        std::cout << "latency:    p50/p99 ns - residency "
                  << stage(latency.residency()) << ", serialize "
                  << stage(latency.serialization()) << ", propagate "
                  << stage(latency.propagation()) << ", ingress "
                  << stage(latency.ingressWait()) << ", total "
                  << stage(latency.total()) << " (" << latency.messages()
                  << " msgs)\n";
    }
    if (config.check && paradigm == sim::Paradigm::finepack)
        std::cout << "oracle:     verified " << result.oracle_transactions
                  << " transactions / " << result.oracle_bytes
                  << " bytes (" << result.oracle_value_bytes
                  << " value-compared) across " << result.oracle_stores
                  << " buffered stores\n";
    if (want_profile)
        std::cout << "host:       " << profiler.events() << " events in "
                  << common::Table::num(
                         static_cast<double>(profiler.wallNs()) / 1e6, 2)
                  << " ms ("
                  << common::Table::num(profiler.eventsPerSec() / 1e6, 2)
                  << " M events/s); details via `fptrace profile` or "
                     "--stats-json\n";
    if (fabric_report) {
        printFabricReport(flows);
        if (*fabric_json != '\0') {
            writeFabricJson(fabric_json, argv[2], trace, paradigm,
                            config.pcie_gen, flows);
            std::cout << "fabric json: " << fabric_json << "\n";
        }
    }
    if (partial) {
        std::cout << "interrupted: results above are partial\n";
        return common::exit_code::interrupted;
    }
    return 0;
}

/**
 * Print the hotspot table plus throughput/counter summary; shared by
 * the human-readable half of cmdProfile.
 */
void
printProfileReport(const obs::Profiler &profiler, std::size_t top_n)
{
    std::cout << "build:      " << common::buildInfoLine() << "\n"
              << "host time:  "
              << common::Table::num(
                     static_cast<double>(profiler.wallNs()) / 1e6, 2)
              << " ms wall, " << profiler.events() << " events, "
              << common::Table::num(profiler.eventsPerSec() / 1e6, 3)
              << " M events/s\n"
              << "queue:      " << profiler.queuePushes() << " pushes, "
              << profiler.queuePops() << " pops, "
              << profiler.queueStaleDrops() << " stale drops, peak depth "
              << profiler.queuePeakDepth() << "\n"
              << "alloc:      " << profiler.lambdaEventAllocs()
              << " lambda events, " << profiler.wireMessageAllocs()
              << " wire messages\n";

    common::Table table("top host-time consumers (self time)");
    table.setHeader({"label", "count", "self ms", "self %", "total ms",
                     "max us"});
    double wall = static_cast<double>(profiler.wallNs());
    for (const auto &spot : profiler.hotspots(top_n)) {
        table.addRow(
            {spot.label, std::to_string(spot.count),
             common::Table::num(static_cast<double>(spot.self_ns) / 1e6,
                                3),
             common::Table::num(
                 wall > 0.0
                     ? 100.0 * static_cast<double>(spot.self_ns) / wall
                     : 0.0,
                 1),
             common::Table::num(static_cast<double>(spot.total_ns) / 1e6,
                                3),
             common::Table::num(static_cast<double>(spot.max_ns) / 1e3,
                                1)});
    }
    table.print(std::cout);
}

int
cmdProfile(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::WorkloadTrace trace = loadTrace(argv[2]);

    sim::SimConfig config;
    std::string gen = argValue(argc, argv, "--pcie", "4");
    config.pcie_gen = gen == "3"   ? icn::PcieGen::gen3
                      : gen == "5" ? icn::PcieGen::gen5
                      : gen == "6" ? icn::PcieGen::gen6
                                   : icn::PcieGen::gen4;
    sim::Paradigm paradigm =
        parseParadigm(argValue(argc, argv, "--paradigm", "finepack"));
    int reps = std::atoi(argValue(argc, argv, "--reps", "3"));
    if (reps < 1)
        reps = 1;
    auto top_n = static_cast<std::size_t>(
        std::atoi(argValue(argc, argv, "--top", "10")));
    const char *json_path = argValue(argc, argv, "--json", "");

    RunHealth health(argc, argv);
    health.configure(config);

    obs::Profiler profiler;
    config.profiler = &profiler;
    sim::SimulationDriver driver(config);
    bool partial = false;
    for (int r = 0; r < reps && !partial; ++r)
        partial = driver.run(trace, paradigm).interrupted;

    std::cout << "profile:    " << trace.workload << " under "
              << toString(paradigm) << " on "
              << toString(config.pcie_gen) << ", " << trace.num_gpus
              << " GPUs, " << reps << " rep(s)\n";
    printProfileReport(profiler, top_n);

    if (*json_path != '\0') {
        std::ofstream out(json_path);
        if (!out)
            fp_fatal("cannot open ", json_path, " for writing");
        common::JsonWriter json(out);
        json.beginObject();
        json.kv("schema_version", 1);
        json.kv("kind", "profile");
        json.key("provenance");
        common::dumpBuildInfoJson(json);
        json.kv("trace", argv[2]);
        json.kv("workload", trace.workload);
        json.kv("paradigm", toString(paradigm));
        json.kv("pcie", toString(config.pcie_gen));
        json.kv("gpus", trace.num_gpus);
        json.kv("reps", reps);
        json.key("host");
        profiler.dumpJson(json, top_n);
        json.endObject();
        out << "\n";
        std::cout << "json:       " << json_path << "\n";
    }
    if (partial) {
        std::cout << "interrupted: profile above is partial\n";
        return common::exit_code::interrupted;
    }
    return 0;
}

/** One racecheck run's comparable outcome. */
struct SeedOutcome
{
    std::uint64_t seed = 0; ///< 0 = insertion-order baseline
    std::uint64_t oracle_digest = 0;
    std::uint64_t stats_digest = 0;
    std::uint64_t result_digest = 0;
    Tick total_time = 0;
    bool interrupted = false; ///< SIGINT cut this run short

    bool
    matches(const SeedOutcome &other) const
    {
        return oracle_digest == other.oracle_digest &&
               stats_digest == other.stats_digest &&
               result_digest == other.result_digest;
    }
};

/**
 * Replay @p trace once under one tie-break seed, with @p detector (may
 * be null) observing the event queue, and fingerprint everything the
 * run produced: the oracle digest, the full stats JSON document
 * (StatGroups + sampled time series), and the RunResult fields.
 */
SeedOutcome
racecheckRun(const trace::WorkloadTrace &trace, sim::Paradigm paradigm,
             icn::PcieGen pcie, std::uint64_t seed,
             check::RaceDetector *detector, const RunHealth &health)
{
    sim::SimConfig config;
    config.pcie_gen = pcie;
    config.check = paradigm == sim::Paradigm::finepack;
    config.tie_break_shuffle_seed = seed;
    config.queue_observer = detector;
    health.configure(config);

    obs::PeriodicSampler sampler(1000 * ticks_per_ns);
    obs::MetricsCapture metrics;
    config.sampler = &sampler;
    config.metrics = &metrics;

    sim::SimulationDriver driver(config);
    sim::RunResult result = driver.run(trace, paradigm);
    if (detector)
        detector->finish();

    SeedOutcome outcome;
    outcome.seed = seed;
    outcome.total_time = result.total_time;
    outcome.oracle_digest = result.oracle_digest;
    outcome.interrupted = result.interrupted;

    check::Digest stats;
    std::ostringstream doc;
    metrics.writeDocument(doc, &sampler);
    stats.update(doc.str());
    outcome.stats_digest = stats.value();

    check::Digest summary;
    summary.updateU64(result.total_time);
    summary.updateU64(result.wire_bytes);
    summary.updateU64(result.payload_bytes);
    summary.updateU64(result.header_bytes);
    summary.updateU64(result.data_bytes);
    summary.updateU64(result.messages);
    summary.updateU64(result.useful_bytes);
    summary.updateU64(result.protocol_bytes);
    summary.updateU64(result.wasted_bytes);
    summary.updateU64(result.finepack_packets);
    summary.updateU64(result.oracle_transactions);
    summary.updateU64(result.oracle_stores);
    summary.updateU64(result.oracle_bytes);
    outcome.result_digest = summary.value();
    return outcome;
}

int
cmdRacecheck(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::WorkloadTrace trace = loadTrace(argv[2]);

    std::string gen = argValue(argc, argv, "--pcie", "4");
    icn::PcieGen pcie = gen == "3"   ? icn::PcieGen::gen3
                        : gen == "5" ? icn::PcieGen::gen5
                        : gen == "6" ? icn::PcieGen::gen6
                                     : icn::PcieGen::gen4;
    sim::Paradigm paradigm =
        parseParadigm(argValue(argc, argv, "--paradigm", "finepack"));
    int seeds = std::atoi(argValue(argc, argv, "--seeds", "4"));
    if (seeds < 1)
        seeds = 1;
    const char *report_path = argValue(argc, argv, "--report", "");

    RunHealth health(argc, argv);

    check::RaceDetector detector;
    if (!hasFlag(argc, argv, "--no-default-waivers")) {
        // The switch's downlink FIFO arbitrates same-tick arrivals from
        // independent uplinks. The winner only shifts serialization
        // order within one tick; every aggregate outcome is
        // order-insensitive, which the perturbation pass verifies
        // dynamically on every racecheck run.
        detector.waive("fabric.down*");
    }
    for (int i = 2; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--waive") == 0)
            detector.waive(argv[i + 1]);

    // Every run (baseline and shuffled) executes under the detector, so
    // a conflict only reachable in a permuted order is still caught.
    std::vector<SeedOutcome> outcomes;
    bool interrupted = false;
    for (int s = 0; s < seeds && !interrupted; ++s) {
        outcomes.push_back(racecheckRun(
            trace, paradigm, pcie, static_cast<std::uint64_t>(s),
            &detector, health));
        interrupted = outcomes.back().interrupted;
    }

    bool schedule_independent = true;
    for (const SeedOutcome &outcome : outcomes)
        if (!outcome.matches(outcomes.front()))
            schedule_independent = false;

    const auto &conflicts = detector.conflicts();
    bool clean = conflicts.empty() && detector.droppedConflicts() == 0;

    std::cout << "racecheck:  " << trace.workload << " under "
              << toString(paradigm) << ", " << seeds << " seed(s)\n"
              << "events:     " << detector.eventsObserved()
              << " observed, " << detector.accessesRecorded()
              << " accesses, " << detector.contendedBatches()
              << " contended same-(tick, priority) groups\n"
              << "conflicts:  " << conflicts.size() << " unwaived ("
              << detector.waivedConflicts() << " waived, "
              << detector.droppedConflicts() << " dropped)\n";
    for (const auto &conflict : conflicts) {
        std::cout << "  [" << conflict.kind() << "] tick "
                  << conflict.tick << " prio " << conflict.priority
                  << " on " << conflict.label << ": '"
                  << conflict.first_event << "' (seq "
                  << conflict.first_sequence << ") vs '"
                  << conflict.second_event << "' (seq "
                  << conflict.second_sequence << ")\n";
    }
    std::cout << "perturb:    ";
    if (seeds < 2) {
        std::cout << "skipped (need --seeds >= 2)\n";
    } else if (schedule_independent) {
        std::cout << "all " << seeds
                  << " seeds bit-identical (oracle digest "
                  << outcomes.front().oracle_digest << ", stats digest "
                  << outcomes.front().stats_digest << ")\n";
    } else {
        std::cout << "DIGEST MISMATCH - outcomes depend on same-tick "
                     "scheduling order:\n";
        for (const SeedOutcome &outcome : outcomes) {
            std::cout << "  seed " << outcome.seed << ": oracle "
                      << outcome.oracle_digest << ", stats "
                      << outcome.stats_digest << ", result "
                      << outcome.result_digest << ", time "
                      << outcome.total_time << "\n";
        }
    }

    if (*report_path != '\0') {
        std::ofstream out(report_path);
        if (!out)
            fp_fatal("cannot open ", report_path, " for writing");
        // The detector serializes itself as one JSON object; compose
        // the surrounding report by hand around it.
        out << "{\n\"trace\": "
            << common::JsonWriter::quoted(argv[2]) << ",\n\"workload\": "
            << common::JsonWriter::quoted(trace.workload)
            << ",\n\"paradigm\": "
            << common::JsonWriter::quoted(toString(paradigm))
            << ",\n\"seeds\": [";
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const SeedOutcome &outcome = outcomes[i];
            out << (i ? "," : "") << "\n  {\"seed\": " << outcome.seed
                << ", \"oracle_digest\": " << outcome.oracle_digest
                << ", \"stats_digest\": " << outcome.stats_digest
                << ", \"result_digest\": " << outcome.result_digest
                << ", \"total_time\": " << outcome.total_time << "}";
        }
        out << "\n],\n\"schedule_independent\": "
            << (schedule_independent ? "true" : "false")
            << ",\n\"detector\": ";
        detector.writeReport(out);
        out << "\n}\n";
        std::cout << "report:     " << report_path << "\n";
    }

    if (interrupted) {
        std::cout << "racecheck: INTERRUPTED (partial)\n";
        return common::exit_code::interrupted;
    }
    if (!clean || !schedule_independent) {
        std::cout << "racecheck: FAIL\n";
        return 1;
    }
    std::cout << "racecheck: OK\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    // Failures unwind here so the exit code is diagnostic
    // (docs/run_health.md): 86 = invariant violation (the postmortem
    // was already flushed by the failure hook), 3 = panic, 1 = fatal.
    try {
        if (command == "generate")
            return cmdGenerate(argc, argv);
        if (command == "info")
            return cmdInfo(argc, argv);
        if (command == "replay")
            return cmdReplay(argc, argv);
        if (command == "profile")
            return cmdProfile(argc, argv);
        if (command == "racecheck")
            return cmdRacecheck(argc, argv);
    } catch (const fp::check::InvariantViolation &err) {
        std::cerr << err.what() << "\n";
        return fp::common::exit_code::invariant;
    } catch (const fp::common::SimError &err) {
        std::cerr << err.what() << "\n";
        return err.kind() == fp::common::SimError::Kind::Fatal
                   ? fp::common::exit_code::fatal
                   : fp::common::exit_code::panic;
    }
    if (command == "--version" || command == "version") {
        std::cout << "fptrace " << fp::common::buildInfoLine() << "\n";
        return 0;
    }
    if (command == "list") {
        for (const auto &name : fp::workloads::allWorkloadNames())
            std::cout << name << "\n";
        return 0;
    }
    return usage();
}
