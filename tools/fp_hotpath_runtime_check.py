#!/usr/bin/env python3
"""Static <-> runtime allocation-inventory cross-check.

fp_hotpath.py's --json inventory claims to list *every* hot-path
allocation site; common::AllocCounters counts the allocations that
actually happen per run (exported by `fptrace profile --json` under
host.alloc). This check replays a small trace and reconciles the two
views:

  * every runtime allocation counter that fired must be backed by a
    site in the static inventory (a counter with no site means an
    allocation path the analyzer cannot see -- a gap in the gate), and
  * every counted static site must fire at runtime on a replay that
    exercises the full pipeline (a site that never fires would mean
    the inventory is stale or mislocated).

The two AllocCounters streams map to sites like this:

  lambda_events  <- the make_unique seam in EventQueue::schedule
                    (src/common/event_queue.hh)
  wire_messages  <- the make_shared seam in icn::makeWireMessage
                    (src/interconnect/message.hh)

If the arena PR (ROADMAP item 1) retires a seam, it must retire the
counter and this mapping together.

The check then profiles the same trace a second time with the flight
recorder enabled (--flight-recorder): FlightRecorder::record() is on
the per-event hot path and claims to be zero-allocation after setup
(src/obs/flight_recorder.hh), so both host.alloc counters must come
back *identical* to the plain run -- any drift means the run-health
layer started allocating per event.

Usage: fp_hotpath_runtime_check.py <fptrace-binary> [--keep]
Exits non-zero on any mismatch.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

TOOLS = os.path.dirname(os.path.abspath(__file__))

# counter name in host.alloc -> (file, kind, function) of the static
# site that increments it.
COUNTER_SITES = {
    "lambda_events": ("src/common/event_queue.hh", "make_unique",
                      "EventQueue::schedule"),
    "wire_messages": ("src/interconnect/message.hh", "make_shared",
                      "makeWireMessage"),
}


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, text=True, **kwargs)
    if proc.returncode != 0:
        sys.stderr.write(f"command failed: {' '.join(cmd)}\n")
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(2)
    return proc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fptrace", help="path to the fptrace binary")
    parser.add_argument("--workload", default="jacobi")
    parser.add_argument("--scale", default="0.05")
    args = parser.parse_args()

    # Static side: the analyzer must be green and its inventory parse.
    proc = run([sys.executable, os.path.join(TOOLS, "fp_hotpath.py"),
                "--json", "-"])
    inventory = json.loads(proc.stdout)
    sites = inventory["allocation_sites"]

    failures = []
    if len(inventory["hot_functions"]) < 5:
        failures.append(
            f"inventory lists only {len(inventory['hot_functions'])} "
            "hot functions; the per-event path should contribute >= 5")

    # Runtime side: generate + profile a small replay, then the same
    # replay with the flight recorder riding the event hooks.
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "check.fpt")
        profile = os.path.join(tmp, "profile.json")
        recorded = os.path.join(tmp, "profile_recorded.json")
        run([args.fptrace, "generate", args.workload, trace,
             "--scale", args.scale, "--gpus", "2", "--seed", "7"])
        run([args.fptrace, "profile", trace, "--reps", "1",
             "--json", profile])
        run([args.fptrace, "profile", trace, "--reps", "1",
             "--flight-recorder", "--json", recorded])
        with open(profile, encoding="utf-8") as f:
            alloc = json.load(f)["host"]["alloc"]
        with open(recorded, encoding="utf-8") as f:
            alloc_recorded = json.load(f)["host"]["alloc"]

    # The recorder's ring is preallocated and record() is wait-free:
    # attaching it may not add a single counted allocation.
    if alloc_recorded != alloc:
        failures.append(
            "host.alloc drifted with --flight-recorder on: "
            f"{alloc} (plain) vs {alloc_recorded} (recorded) -- "
            "FlightRecorder::record() must stay zero-alloc after setup")

    for counter, count in sorted(alloc.items()):
        mapping = COUNTER_SITES.get(counter)
        if mapping is None:
            failures.append(
                f"runtime counter host.alloc.{counter} has no known "
                "static site mapping; extend COUNTER_SITES and the "
                "inventory together")
            continue
        file, kind, function = mapping
        match = [s for s in sites
                 if s["file"] == file and s["kind"] == kind
                 and s["function"] == function]
        if count > 0 and not match:
            failures.append(
                f"host.alloc.{counter} = {count} at runtime but the "
                f"static inventory has no {kind} site in {function} "
                f"({file}) -- the analyzer lost track of a hot "
                "allocation")
        if count == 0 and match:
            failures.append(
                f"static inventory lists {kind} in {function} ({file}) "
                f"but host.alloc.{counter} stayed 0 on a full replay "
                "-- stale or mislocated site")

    # Every static site must be attributable to some runtime counter:
    # an unattributed site cannot be reconciled at all.
    mapped = {(f, k, fn) for f, k, fn in COUNTER_SITES.values()}
    for site in sites:
        key = (site["file"], site["kind"], site["function"])
        if key not in mapped:
            failures.append(
                f"static site {key} has no AllocCounters stream; add "
                "a counter (common/alloc_counters.hh) so the runtime "
                "view covers it")

    for failure in failures:
        print(f"fp_hotpath_runtime_check: MISMATCH: {failure}")
    print(f"fp_hotpath_runtime_check: {len(sites)} static site(s), "
          f"{len(alloc)} runtime counter(s), "
          f"{len(failures)} mismatch(es)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
