#!/usr/bin/env python3
"""Determinism lint for the FinePack simulator sources.

The simulator's results must be a pure function of (trace, config,
seed): CI diffs stats JSON and oracle digests across replays and
shuffled event schedules (`fptrace racecheck`), so any hidden source of
run-to-run variation in src/ is a bug. This lint bans the usual
suspects lexically:

  wall-clock           std::chrono clock reads, time()/clock()/
                       gettimeofday/clock_gettime in simulation code.
  unseeded-rng         rand()/srand() and std::random_device (the
                       repo's common::Rng must be seeded explicitly).
  unordered-iteration  range-for over a std::unordered_map/set
                       declared in the same file. Iteration order is
                       implementation-defined; iterating one into any
                       ordered output (messages, traces, stats) is the
                       classic silent nondeterminism. Sort the keys
                       first, or waive when the consumer is
                       order-insensitive.

Waivers: append `// fp-lint: allow(<rule>) <reason>` to the offending
line, or place it on the line directly above. Waivers without a reason
are themselves errors.

Usage: tools/fp_lint.py [--root DIR] [PATH...]
Exits 1 when any unwaived finding remains.
"""

import argparse
import os
import re
import sys

RULES = ("wall-clock", "unseeded-rng", "unordered-iteration")

WALL_CLOCK = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock"
    r"|gettimeofday|clock_gettime)\b"
    r"|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"
    r"|\bclock\s*\(\s*\)"
)
UNSEEDED_RNG = re.compile(
    r"\b(std::)?random_device\b|\bs?rand\s*\("
)
UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
# Identifier the declaration binds: the first plain identifier after
# the closing template bracket(s), e.g. `std::unordered_map<K, V> name`
# or `const std::unordered_set<T> &name`.
DECL_NAME = re.compile(r">\s*[&*]?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)")
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*([^)]+)\)")
LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")
WAIVER = re.compile(r"//\s*fp-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

LINE_COMMENT = re.compile(r"//(?!\s*fp-lint:).*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_noise(line):
    """Drop string literals and non-waiver comments before matching."""
    line = STRING.sub('""', line)
    return LINE_COMMENT.sub("", line)


def unordered_names(lines):
    """Identifiers declared with an unordered container type in-file."""
    names = set()
    for raw in lines:
        line = strip_noise(raw)
        m = UNORDERED_DECL.search(line)
        if not m:
            continue
        # Walk to the matching '>' of the template argument list, then
        # pull the declared name that follows.
        depth, i = 0, m.end() - 1
        while i < len(line):
            if line[i] == "<":
                depth += 1
            elif line[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        name = DECL_NAME.search(line[i:])
        if name:
            names.add(name.group(1))
    return names


def waiver_for(lines, idx):
    """The waiver (rule, reason) covering line idx, if any."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = WAIVER.search(lines[probe])
        if m:
            return m.group(1), m.group(2).strip()
    return None


def lint_file(path, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()
    containers = unordered_names(lines)

    # Members iterated in a .cc are declared in the class header; fold
    # the sibling header's declarations in so `for (x : _map)` is seen.
    base, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp"):
        for header_ext in (".hh", ".h", ".hpp"):
            sibling = base + header_ext
            if os.path.isfile(sibling):
                with open(sibling, encoding="utf-8",
                          errors="replace") as f:
                    containers |= unordered_names(f.read().splitlines())

    for idx, raw in enumerate(lines):
        line = strip_noise(raw)
        hits = []
        if WALL_CLOCK.search(line):
            hits.append(("wall-clock",
                         "wall-clock time source in simulation code"))
        if UNSEEDED_RNG.search(line):
            hits.append(("unseeded-rng",
                         "nondeterministically-seeded randomness "
                         "(use common::Rng with an explicit seed)"))
        m = RANGE_FOR.search(line)
        if m:
            ident = LAST_IDENT.search(m.group(1).strip())
            if ident and ident.group(1) in containers:
                hits.append(("unordered-iteration",
                             f"range-for over unordered container "
                             f"'{ident.group(1)}' "
                             "(implementation-defined order)"))
        if not hits:
            continue
        waiver = waiver_for(lines, idx)
        for rule, message in hits:
            if waiver and waiver[0] == rule:
                if not waiver[1]:
                    findings.append(Finding(
                        path, idx + 1, rule,
                        "waiver without a reason (state why the "
                        "order/time dependence is safe)"))
                continue
            findings.append(Finding(path, idx + 1, rule, message))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]

    files = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, _, filenames in os.walk(target):
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh", ".cpp", ".hpp", ".h")):
                    files.append(os.path.join(dirpath, name))

    findings = []
    for path in sorted(files):
        lint_file(path, findings)

    for finding in findings:
        print(finding)
    print(f"fp_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
