#!/usr/bin/env python3
"""Determinism lint for the FinePack simulator sources.

The simulator's results must be a pure function of (trace, config,
seed): CI diffs stats JSON and oracle digests across replays and
shuffled event schedules (`fptrace racecheck`), so any hidden source of
run-to-run variation in src/ is a bug. This lint bans the usual
suspects lexically:

  wall-clock           std::chrono clock reads, time()/clock()/
                       gettimeofday/clock_gettime in simulation code.
  unseeded-rng         rand()/srand() and std::random_device (the
                       repo's common::Rng must be seeded explicitly).
  unordered-iteration  range-for over a std::unordered_map/set
                       declared in this file, its sibling header, or
                       any project header it #includes (one level).
                       Iteration order is implementation-defined;
                       iterating one into any ordered output
                       (messages, traces, stats) is the classic
                       silent nondeterminism. Sort the keys first, or
                       waive when the consumer is order-insensitive.

Thread-safety companions to the Clang -Wthread-safety build (see
docs/thread_safety.md):

  raw-concurrency      raw std concurrency primitives (std::mutex,
                       std::thread, std::condition_variable, ...,
                       their headers, and .detach()) anywhere but
                       common/sync.h. Everything else goes through the
                       annotated fp::Mutex/MutexLock/CondVar/ThreadPool
                       wrappers so the static analysis sees every lock.
  global-state         mutable process-global data -- static locals,
                       static members, namespace-scope variables --
                       with no FP_GUARDED_BY annotation. const /
                       constexpr / thread_local / std::atomic /
                       fp::Mutex-family declarations are exempt;
                       anything else needs a guard or a waiver naming
                       its synchronization story.

Signal-safety companion for the fatal-handler TU (docs/run_health.md):

  signal-unsafe        in a file whose first lines carry the marker
                       `// fp-lint: async-signal-safe` (src/obs/
                       fatal.cc -- code that runs inside signal
                       handlers), every construct POSIX does not
                       guarantee async-signal-safe is banned:
                       allocation (malloc family, operator new/delete,
                       std::make_*), stdio/iostream formatting,
                       std::string and friends, exceptions, exit()
                       (use _exit), and the fp_panic/fp_fatal logging
                       macros. Only marker-carrying files are scanned;
                       everything else is out of scope by definition.

Waivers: append `// fp-lint: allow(<rule>) <reason>` to the offending
line, or place it on the line directly above. Waivers without a reason
are themselves errors.

Lexing (comment/string/raw-string/preprocessor partitioning) is
delegated to the shared tools/fp_cpplex.py scanner, the same ground
truth tools/fp_hotpath.py parses with, so the two analyzers can never
disagree about what is code.

Usage: tools/fp_lint.py [--root DIR] [PATH...]
Exits 1 when any unwaived finding remains.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import fp_cpplex  # noqa: E402

RULES = ("wall-clock", "unseeded-rng", "unordered-iteration",
         "raw-concurrency", "global-state", "signal-unsafe")

WALL_CLOCK = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock"
    r"|gettimeofday|clock_gettime)\b"
    r"|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"
    r"|\bclock\s*\(\s*\)"
)
UNSEEDED_RNG = re.compile(
    r"\b(std::)?random_device\b|\bs?rand\s*\("
)
UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
# Identifier the declaration binds: the first plain identifier after
# the closing template bracket(s), e.g. `std::unordered_map<K, V> name`
# or `const std::unordered_set<T> &name`, optionally followed by an
# FP_GUARDED_BY / other all-caps annotation macro before the
# terminator.
DECL_NAME = re.compile(
    r">\s*[&*]?\s*([A-Za-z_]\w*)\s*"
    r"(?:[A-Z_][A-Z0-9_]*\s*\([^)]*\)\s*)?"
    r"(?:[;={(,)]|$)")
FOR_HEAD = re.compile(r"\bfor\s*\(")
LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*$")
WAIVER = re.compile(r"//\s*fp-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

# Raw std concurrency primitives; only common/sync.h may use them, so
# every lock/thread in the tree carries Clang thread-safety
# annotations. `.detach()` is banned outright (detached threads outlive
# the scopes the analysis reasons about).
RAW_CONCURRENCY = re.compile(
    r"\bstd::(?:recursive_mutex|shared_timed_mutex|shared_mutex"
    r"|timed_mutex|mutex"
    r"|condition_variable_any|condition_variable"
    r"|jthread|thread|async|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|future|promise|packaged_task|barrier|latch"
    r"|counting_semaphore|binary_semaphore|stop_token|stop_source)\b"
    r"|\.\s*detach\s*\(\s*\)"
)
CONCURRENCY_INCLUDE = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable|thread"
    r"|future|barrier|latch|semaphore|stop_token)>"
)

# Mutable `static` data (local statics and static members): the name
# must be followed directly by `;`, `=` or `{`, so function
# declarations (`static void f();`) and FP_GUARDED_BY-annotated
# members never match.
STATIC_DECL = re.compile(
    r"\bstatic\s+(?!const\b|constexpr\b|constinit\b|thread_local\b)"
    r"[^=;(){]*?([A-Za-z_]\w*)\s*(?:=|;|\{)"
)
# Candidate namespace-scope variable: type tokens then a name, ending
# in `;`, `=` or a braced initializer. Only consulted on lines the
# scope scanner places at namespace scope.
NS_VAR = re.compile(
    r"^\s*(?:[\w:]+(?:<[^;]*>)?[\s&*]+)+([A-Za-z_]\w*)\s*"
    r"(?:=|;|\{[^{}]*\}\s*;)")
# Opt-in marker placing a whole translation unit under the
# signal-unsafe rule (fp_cpplex.scrub keeps `// fp-lint:` comments, so
# the marker survives into the scrubbed lines the scan runs over).
SIGNAL_SAFE_MARKER = re.compile(r"//\s*fp-lint:\s*async-signal-safe\b")
# Constructs POSIX does not list as async-signal-safe, lexically:
# allocation, buffered stdio, C++ formatting/container machinery,
# exceptions, atexit-running exit(), and the repo's logging macros
# (they format into std::string and may throw). `\bexit` deliberately
# does not match `_exit` / `_Exit` / `quick_exit` (no word boundary
# after '_'), which is exactly the discipline the handler needs.
SIGNAL_UNSAFE = re.compile(
    r"\b(?:malloc|calloc|realloc|free|strdup)\s*\("
    r"|\b(?:printf|fprintf|sprintf|snprintf|vprintf|vfprintf"
    r"|vsnprintf|puts|fputs|fputc|putchar|fwrite|fread|fopen|fclose"
    r"|fflush|perror|syslog)\s*\("
    r"|\bexit\s*\("
    r"|\bnew\b|\bdelete\b|\bthrow\b"
    r"|\bstd::(?:string|cout|cerr|clog|ostringstream|istringstream"
    r"|stringstream|vector|map|unordered_map|function|make_unique"
    r"|make_shared|to_string)\b"
    r"|\bfp_(?:panic|fatal|warn|inform|assert)\b"
)
# Headers whose facilities are wholesale off-limits in a handler TU.
SIGNAL_UNSAFE_INCLUDE = re.compile(
    r"#\s*include\s*<(?:iostream|ostream|sstream|fstream|string"
    r"|vector|map|unordered_map|functional|memory|cstdio)>"
)

# Declarations that are safe by construction: immutable, confined, or
# internally synchronized primitives from common/sync.h.
GLOBAL_STATE_EXEMPT = re.compile(
    r"\b(?:const|constexpr|consteval|constinit|thread_local|using"
    r"|typedef|extern|friend|return|namespace|class|struct|enum"
    r"|template|operator|atomic|atomic_\w+)\b"
    r"|\bfp::(?:Mutex|CondVar|ThreadPool)\b"
    r"|\bFP_GUARDED_BY\b")



class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_scrub_cache = {}


def load_scrubbed(path):
    """Scrubbed (comment/string-free, line-aligned) lines of `path`.

    Cached: headers get folded into every translation unit that
    includes them, so each file is lexed once per run.
    """
    path = os.path.abspath(path)
    if path not in _scrub_cache:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        _scrub_cache[path] = (fp_cpplex.scrub(text),
                              fp_cpplex.project_includes(text))
    return _scrub_cache[path]


def resolve_include(inc, from_path):
    """Resolve a quoted include against the includer's directory and
    its ancestors (the build adds src/ to the include path; walking up
    finds it from any depth without knowing the layout)."""
    directory = os.path.dirname(os.path.abspath(from_path))
    for _ in range(6):
        candidate = os.path.join(directory, inc)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    return None


def unordered_names(lines):
    """Identifiers declared with an unordered container type in-file.

    Declarations may wrap: a member like
        std::unordered_map<Key,
                           Value> _name FP_GUARDED_BY(_mu);
    spans lines, so when the template bracket list is unbalanced at the
    end of a line the following lines are folded in (bounded, so a
    stray '<' cannot make the scan quadratic).
    """
    names = set()
    for idx, line in enumerate(lines):
        m = UNORDERED_DECL.search(line)
        if not m:
            continue
        # Fold continuation lines until the template brackets balance
        # AND a declared name binds -- the name itself may sit on the
        # line after the closing '>' (`std::unordered_map<K, V>\n
        # name;`).
        for joined in lines[idx + 1:idx + 6]:
            close = template_close(line, m.end() - 1)
            if close is not None and DECL_NAME.search(line[close:]):
                break
            line = line + " " + joined
        close = template_close(line, m.end() - 1)
        if close is None:
            continue
        name = DECL_NAME.search(line[close:])
        if name:
            names.add(name.group(1))
    return names


def template_close(line, start):
    """Index of the '>' matching the '<' at/after start, else None."""
    depth = 0
    for i in range(start, len(line)):
        if line[i] == "<":
            depth += 1
        elif line[i] == ">":
            depth -= 1
            if depth == 0:
                return i
    return None


def range_for_expr(line):
    """The range expression of a range-for on this line, or None.

    Walks the for-header with balanced parentheses, so calls inside
    the range expression -- `for (auto &v : view(a, b))` -- do not
    truncate it at the first ')' the way a regex scan would.
    """
    m = FOR_HEAD.search(line)
    if not m:
        return None
    depth, colon, i = 1, None, m.end()
    while i < len(line):
        c = line[i]
        if c == "(" or c == "[":
            depth += 1
        elif c == ")" or c == "]":
            depth -= 1
            if depth == 0:
                if colon is None:
                    return None
                return line[colon + 1:i].strip()
        elif c == ":" and depth == 1 and colon is None:
            if i + 1 < len(line) and line[i + 1] == ":":
                i += 2  # scope operator, not the range colon
                continue
            colon = i
        i += 1
    return None  # header continues past this line; out of scope


def namespace_scope_mask(lines):
    """mask[i]: line i *starts* at namespace (or file) scope.

    Tracks the brace stack, classifying each '{' by the declaration
    head before it: namespace braces keep namespace scope; class /
    function / initializer braces leave it.
    """
    mask = []
    stack = []  # True per open brace that preserves namespace scope
    head = ""   # text since the last ';' / '{' / '}'
    parens = 0  # unbalanced '(': inside a parameter / argument list
    for line in lines:
        mask.append(all(stack) and parens == 0)
        for c in line:
            if c == "(":
                parens += 1
            elif c == ")":
                parens = max(0, parens - 1)
            elif c == "{":
                is_ns = re.search(r"\bnamespace\b", head) is not None \
                    and "=" not in head
                stack.append(is_ns)
                head = ""
            elif c == "}":
                if stack:
                    stack.pop()
                head = ""
            elif c == ";":
                head = ""
            else:
                head += c
        head += " "  # newline separates tokens
    return mask


def is_sync_header(path):
    """common/sync.h is the one file allowed raw std concurrency."""
    return path.replace(os.sep, "/").endswith("common/sync.h")


def waiver_for(lines, idx):
    """The waiver (rule, reason) covering line idx, if any."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = WAIVER.search(lines[probe])
        if m:
            return m.group(1), m.group(2).strip()
    return None


def lint_file(path, findings):
    lines, includes = load_scrubbed(path)
    containers = unordered_names(lines)

    # Members iterated in a .cc are usually declared in a header: fold
    # the sibling header plus every project header this file includes
    # (one level -- the declaring header is directly included in
    # practice) so `for (x : _map)` is seen wherever _map lives.
    folded = set()
    base, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp"):
        for header_ext in (".hh", ".h", ".hpp"):
            sibling = base + header_ext
            if os.path.isfile(sibling):
                folded.add(os.path.abspath(sibling))
    for inc in includes:
        resolved = resolve_include(inc, path)
        if resolved:
            folded.add(resolved)
    for header in sorted(folded):
        containers |= unordered_names(load_scrubbed(header)[0])

    allow_raw = is_sync_header(path)
    ns_scope = namespace_scope_mask(lines)
    signal_safe_tu = any(
        SIGNAL_SAFE_MARKER.search(line) for line in lines)

    for idx, line in enumerate(lines):
        hits = []
        if WALL_CLOCK.search(line):
            hits.append(("wall-clock",
                         "wall-clock time source in simulation code"))
        if UNSEEDED_RNG.search(line):
            hits.append(("unseeded-rng",
                         "nondeterministically-seeded randomness "
                         "(use common::Rng with an explicit seed)"))
        expr = range_for_expr(line)
        if expr is not None:
            ident = LAST_IDENT.search(expr)
            if ident and ident.group(1) in containers:
                hits.append(("unordered-iteration",
                             f"range-for over unordered container "
                             f"'{ident.group(1)}' "
                             "(implementation-defined order)"))
        if not allow_raw and (RAW_CONCURRENCY.search(line)
                              or CONCURRENCY_INCLUDE.search(line)):
            hits.append(("raw-concurrency",
                         "raw std concurrency primitive (use the "
                         "annotated fp::Mutex / MutexLock / CondVar / "
                         "ThreadPool from common/sync.h)"))
        if signal_safe_tu and not SIGNAL_SAFE_MARKER.search(line) \
                and (SIGNAL_UNSAFE.search(line)
                     or SIGNAL_UNSAFE_INCLUDE.search(line)):
            hits.append(("signal-unsafe",
                         "not async-signal-safe in a TU marked "
                         "`fp-lint: async-signal-safe` (write(2), "
                         "manual formatting, and _exit only)"))
        if not GLOBAL_STATE_EXEMPT.search(line):
            m = STATIC_DECL.search(line)
            if not m and ns_scope[idx] and "(" not in line:
                m = NS_VAR.search(line)
            if m:
                hits.append(("global-state",
                             f"mutable process-global state "
                             f"'{m.group(1)}' without FP_GUARDED_BY "
                             "(annotate, confine, or waive with its "
                             "synchronization story)"))
        if not hits:
            continue
        waiver = waiver_for(lines, idx)
        for rule, message in hits:
            if waiver and waiver[0] == rule:
                if not waiver[1]:
                    findings.append(Finding(
                        path, idx + 1, rule,
                        "waiver without a reason (state why the "
                        "order/time dependence is safe)"))
                continue
            findings.append(Finding(path, idx + 1, rule, message))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: script's parent)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(root, "src")]

    files = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, _, filenames in os.walk(target):
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh", ".cpp", ".hpp", ".h")):
                    files.append(os.path.join(dirpath, name))

    findings = []
    for path in sorted(files):
        lint_file(path, findings)

    for finding in findings:
        print(finding)
    print(f"fp_lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
