file(REMOVE_RECURSE
  "CMakeFiles/fptrace.dir/fptrace.cpp.o"
  "CMakeFiles/fptrace.dir/fptrace.cpp.o.d"
  "fptrace"
  "fptrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
