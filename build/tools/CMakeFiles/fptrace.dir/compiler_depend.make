# Empty compiler generated dependencies file for fptrace.
# This may be replaced when dependencies are built.
