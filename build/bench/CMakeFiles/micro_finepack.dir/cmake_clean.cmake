file(REMOVE_RECURSE
  "CMakeFiles/micro_finepack.dir/micro_finepack.cpp.o"
  "CMakeFiles/micro_finepack.dir/micro_finepack.cpp.o.d"
  "micro_finepack"
  "micro_finepack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_finepack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
