# Empty compiler generated dependencies file for micro_finepack.
# This may be replaced when dependencies are built.
