# Empty dependencies file for ablation_gps_comparison.
# This may be replaced when dependencies are built.
