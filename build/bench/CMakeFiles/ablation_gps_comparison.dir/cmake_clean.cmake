file(REMOVE_RECURSE
  "CMakeFiles/ablation_gps_comparison.dir/ablation_gps_comparison.cpp.o"
  "CMakeFiles/ablation_gps_comparison.dir/ablation_gps_comparison.cpp.o.d"
  "ablation_gps_comparison"
  "ablation_gps_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gps_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
