file(REMOVE_RECURSE
  "CMakeFiles/fig02_goodput.dir/fig02_goodput.cpp.o"
  "CMakeFiles/fig02_goodput.dir/fig02_goodput.cpp.o.d"
  "fig02_goodput"
  "fig02_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
