file(REMOVE_RECURSE
  "CMakeFiles/fig11_coalescing.dir/fig11_coalescing.cpp.o"
  "CMakeFiles/fig11_coalescing.dir/fig11_coalescing.cpp.o.d"
  "fig11_coalescing"
  "fig11_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
