# Empty compiler generated dependencies file for fig11_coalescing.
# This may be replaced when dependencies are built.
