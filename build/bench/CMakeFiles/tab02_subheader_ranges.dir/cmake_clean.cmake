file(REMOVE_RECURSE
  "CMakeFiles/tab02_subheader_ranges.dir/tab02_subheader_ranges.cpp.o"
  "CMakeFiles/tab02_subheader_ranges.dir/tab02_subheader_ranges.cpp.o.d"
  "tab02_subheader_ranges"
  "tab02_subheader_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_subheader_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
