# Empty compiler generated dependencies file for tab02_subheader_ranges.
# This may be replaced when dependencies are built.
