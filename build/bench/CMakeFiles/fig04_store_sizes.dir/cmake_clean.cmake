file(REMOVE_RECURSE
  "CMakeFiles/fig04_store_sizes.dir/fig04_store_sizes.cpp.o"
  "CMakeFiles/fig04_store_sizes.dir/fig04_store_sizes.cpp.o.d"
  "fig04_store_sizes"
  "fig04_store_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_store_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
