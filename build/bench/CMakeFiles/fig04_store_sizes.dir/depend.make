# Empty dependencies file for fig04_store_sizes.
# This may be replaced when dependencies are built.
