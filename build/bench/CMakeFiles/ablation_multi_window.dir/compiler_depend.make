# Empty compiler generated dependencies file for ablation_multi_window.
# This may be replaced when dependencies are built.
