file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_window.dir/ablation_multi_window.cpp.o"
  "CMakeFiles/ablation_multi_window.dir/ablation_multi_window.cpp.o.d"
  "ablation_multi_window"
  "ablation_multi_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
