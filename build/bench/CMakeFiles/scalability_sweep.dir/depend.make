# Empty dependencies file for scalability_sweep.
# This may be replaced when dependencies are built.
