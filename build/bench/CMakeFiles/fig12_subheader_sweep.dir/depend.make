# Empty dependencies file for fig12_subheader_sweep.
# This may be replaced when dependencies are built.
