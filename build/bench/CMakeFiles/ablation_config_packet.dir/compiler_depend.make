# Empty compiler generated dependencies file for ablation_config_packet.
# This may be replaced when dependencies are built.
