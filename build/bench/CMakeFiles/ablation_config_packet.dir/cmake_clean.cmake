file(REMOVE_RECURSE
  "CMakeFiles/ablation_config_packet.dir/ablation_config_packet.cpp.o"
  "CMakeFiles/ablation_config_packet.dir/ablation_config_packet.cpp.o.d"
  "ablation_config_packet"
  "ablation_config_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
