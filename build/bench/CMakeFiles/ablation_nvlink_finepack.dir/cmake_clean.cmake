file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvlink_finepack.dir/ablation_nvlink_finepack.cpp.o"
  "CMakeFiles/ablation_nvlink_finepack.dir/ablation_nvlink_finepack.cpp.o.d"
  "ablation_nvlink_finepack"
  "ablation_nvlink_finepack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvlink_finepack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
