# Empty dependencies file for ablation_nvlink_finepack.
# This may be replaced when dependencies are built.
