file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeout_flush.dir/ablation_timeout_flush.cpp.o"
  "CMakeFiles/ablation_timeout_flush.dir/ablation_timeout_flush.cpp.o.d"
  "ablation_timeout_flush"
  "ablation_timeout_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeout_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
