file(REMOVE_RECURSE
  "CMakeFiles/scale16_gpu.dir/scale16_gpu.cpp.o"
  "CMakeFiles/scale16_gpu.dir/scale16_gpu.cpp.o.d"
  "scale16_gpu"
  "scale16_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale16_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
