# Empty compiler generated dependencies file for scale16_gpu.
# This may be replaced when dependencies are built.
