# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baselines_gps_model_test[1]_include.cmake")
include("/root/repo/build/tests/common_bitutil_test[1]_include.cmake")
include("/root/repo/build/tests/common_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/common_logging_test[1]_include.cmake")
include("/root/repo/build/tests/common_random_test[1]_include.cmake")
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/common_table_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_config_packet_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_config_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_multi_window_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_nvlink_packing_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_packetizer_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_property_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_remote_write_queue_test[1]_include.cmake")
include("/root/repo/build/tests/finepack_write_combine_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_egress_port_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_ingress_dma_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_warp_coalescer_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_flow_control_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_link_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_topology_test[1]_include.cmake")
include("/root/repo/build/tests/sim_driver_test[1]_include.cmake")
include("/root/repo/build/tests/sim_paradigm_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/trace_trace_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_datasets_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_workload_common_test[1]_include.cmake")
