file(REMOVE_RECURSE
  "CMakeFiles/finepack_write_combine_test.dir/finepack/write_combine_test.cc.o"
  "CMakeFiles/finepack_write_combine_test.dir/finepack/write_combine_test.cc.o.d"
  "finepack_write_combine_test"
  "finepack_write_combine_test.pdb"
  "finepack_write_combine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_write_combine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
