# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for finepack_write_combine_test.
