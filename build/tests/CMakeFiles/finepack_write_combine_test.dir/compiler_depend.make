# Empty compiler generated dependencies file for finepack_write_combine_test.
# This may be replaced when dependencies are built.
