file(REMOVE_RECURSE
  "CMakeFiles/sim_paradigm_invariants_test.dir/sim/paradigm_invariants_test.cc.o"
  "CMakeFiles/sim_paradigm_invariants_test.dir/sim/paradigm_invariants_test.cc.o.d"
  "sim_paradigm_invariants_test"
  "sim_paradigm_invariants_test.pdb"
  "sim_paradigm_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_paradigm_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
