file(REMOVE_RECURSE
  "CMakeFiles/interconnect_protocol_test.dir/interconnect/protocol_test.cc.o"
  "CMakeFiles/interconnect_protocol_test.dir/interconnect/protocol_test.cc.o.d"
  "interconnect_protocol_test"
  "interconnect_protocol_test.pdb"
  "interconnect_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
