file(REMOVE_RECURSE
  "CMakeFiles/interconnect_flow_control_test.dir/interconnect/flow_control_test.cc.o"
  "CMakeFiles/interconnect_flow_control_test.dir/interconnect/flow_control_test.cc.o.d"
  "interconnect_flow_control_test"
  "interconnect_flow_control_test.pdb"
  "interconnect_flow_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_flow_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
