# Empty compiler generated dependencies file for interconnect_flow_control_test.
# This may be replaced when dependencies are built.
