# Empty compiler generated dependencies file for common_event_queue_test.
# This may be replaced when dependencies are built.
