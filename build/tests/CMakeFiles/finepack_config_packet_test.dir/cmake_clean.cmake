file(REMOVE_RECURSE
  "CMakeFiles/finepack_config_packet_test.dir/finepack/config_packet_test.cc.o"
  "CMakeFiles/finepack_config_packet_test.dir/finepack/config_packet_test.cc.o.d"
  "finepack_config_packet_test"
  "finepack_config_packet_test.pdb"
  "finepack_config_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_config_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
