# Empty dependencies file for finepack_config_packet_test.
# This may be replaced when dependencies are built.
