# Empty compiler generated dependencies file for gpu_ingress_dma_test.
# This may be replaced when dependencies are built.
