file(REMOVE_RECURSE
  "CMakeFiles/gpu_ingress_dma_test.dir/gpu/ingress_dma_test.cc.o"
  "CMakeFiles/gpu_ingress_dma_test.dir/gpu/ingress_dma_test.cc.o.d"
  "gpu_ingress_dma_test"
  "gpu_ingress_dma_test.pdb"
  "gpu_ingress_dma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_ingress_dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
