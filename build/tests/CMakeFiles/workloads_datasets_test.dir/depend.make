# Empty dependencies file for workloads_datasets_test.
# This may be replaced when dependencies are built.
