file(REMOVE_RECURSE
  "CMakeFiles/workloads_datasets_test.dir/workloads/datasets_test.cc.o"
  "CMakeFiles/workloads_datasets_test.dir/workloads/datasets_test.cc.o.d"
  "workloads_datasets_test"
  "workloads_datasets_test.pdb"
  "workloads_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
