file(REMOVE_RECURSE
  "CMakeFiles/finepack_config_test.dir/finepack/config_test.cc.o"
  "CMakeFiles/finepack_config_test.dir/finepack/config_test.cc.o.d"
  "finepack_config_test"
  "finepack_config_test.pdb"
  "finepack_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
