# Empty compiler generated dependencies file for finepack_nvlink_packing_test.
# This may be replaced when dependencies are built.
