file(REMOVE_RECURSE
  "CMakeFiles/finepack_nvlink_packing_test.dir/finepack/nvlink_packing_test.cc.o"
  "CMakeFiles/finepack_nvlink_packing_test.dir/finepack/nvlink_packing_test.cc.o.d"
  "finepack_nvlink_packing_test"
  "finepack_nvlink_packing_test.pdb"
  "finepack_nvlink_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_nvlink_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
