# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for finepack_nvlink_packing_test.
