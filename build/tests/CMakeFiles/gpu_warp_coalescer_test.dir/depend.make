# Empty dependencies file for gpu_warp_coalescer_test.
# This may be replaced when dependencies are built.
