file(REMOVE_RECURSE
  "CMakeFiles/gpu_warp_coalescer_test.dir/gpu/warp_coalescer_test.cc.o"
  "CMakeFiles/gpu_warp_coalescer_test.dir/gpu/warp_coalescer_test.cc.o.d"
  "gpu_warp_coalescer_test"
  "gpu_warp_coalescer_test.pdb"
  "gpu_warp_coalescer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_warp_coalescer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
