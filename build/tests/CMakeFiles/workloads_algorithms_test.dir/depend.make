# Empty dependencies file for workloads_algorithms_test.
# This may be replaced when dependencies are built.
