file(REMOVE_RECURSE
  "CMakeFiles/workloads_algorithms_test.dir/workloads/algorithms_test.cc.o"
  "CMakeFiles/workloads_algorithms_test.dir/workloads/algorithms_test.cc.o.d"
  "workloads_algorithms_test"
  "workloads_algorithms_test.pdb"
  "workloads_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
