# Empty dependencies file for sim_driver_test.
# This may be replaced when dependencies are built.
