file(REMOVE_RECURSE
  "CMakeFiles/sim_driver_test.dir/sim/driver_test.cc.o"
  "CMakeFiles/sim_driver_test.dir/sim/driver_test.cc.o.d"
  "sim_driver_test"
  "sim_driver_test.pdb"
  "sim_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
