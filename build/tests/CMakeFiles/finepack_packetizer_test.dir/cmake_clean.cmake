file(REMOVE_RECURSE
  "CMakeFiles/finepack_packetizer_test.dir/finepack/packetizer_test.cc.o"
  "CMakeFiles/finepack_packetizer_test.dir/finepack/packetizer_test.cc.o.d"
  "finepack_packetizer_test"
  "finepack_packetizer_test.pdb"
  "finepack_packetizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_packetizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
