
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/finepack/packetizer_test.cc" "tests/CMakeFiles/finepack_packetizer_test.dir/finepack/packetizer_test.cc.o" "gcc" "tests/CMakeFiles/finepack_packetizer_test.dir/finepack/packetizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/fp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/finepack/CMakeFiles/fp_finepack.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/fp_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
