# Empty dependencies file for finepack_packetizer_test.
# This may be replaced when dependencies are built.
