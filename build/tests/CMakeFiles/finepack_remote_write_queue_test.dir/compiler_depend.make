# Empty compiler generated dependencies file for finepack_remote_write_queue_test.
# This may be replaced when dependencies are built.
