# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for finepack_remote_write_queue_test.
