file(REMOVE_RECURSE
  "CMakeFiles/finepack_remote_write_queue_test.dir/finepack/remote_write_queue_test.cc.o"
  "CMakeFiles/finepack_remote_write_queue_test.dir/finepack/remote_write_queue_test.cc.o.d"
  "finepack_remote_write_queue_test"
  "finepack_remote_write_queue_test.pdb"
  "finepack_remote_write_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_remote_write_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
