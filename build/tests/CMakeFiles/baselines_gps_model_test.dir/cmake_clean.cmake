file(REMOVE_RECURSE
  "CMakeFiles/baselines_gps_model_test.dir/baselines/gps_model_test.cc.o"
  "CMakeFiles/baselines_gps_model_test.dir/baselines/gps_model_test.cc.o.d"
  "baselines_gps_model_test"
  "baselines_gps_model_test.pdb"
  "baselines_gps_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_gps_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
