# Empty dependencies file for baselines_gps_model_test.
# This may be replaced when dependencies are built.
