# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for baselines_gps_model_test.
