file(REMOVE_RECURSE
  "CMakeFiles/common_bitutil_test.dir/common/bitutil_test.cc.o"
  "CMakeFiles/common_bitutil_test.dir/common/bitutil_test.cc.o.d"
  "common_bitutil_test"
  "common_bitutil_test.pdb"
  "common_bitutil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bitutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
