# Empty dependencies file for common_bitutil_test.
# This may be replaced when dependencies are built.
