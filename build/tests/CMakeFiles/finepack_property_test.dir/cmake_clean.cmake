file(REMOVE_RECURSE
  "CMakeFiles/finepack_property_test.dir/finepack/property_test.cc.o"
  "CMakeFiles/finepack_property_test.dir/finepack/property_test.cc.o.d"
  "finepack_property_test"
  "finepack_property_test.pdb"
  "finepack_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
