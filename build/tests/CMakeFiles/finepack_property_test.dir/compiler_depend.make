# Empty compiler generated dependencies file for finepack_property_test.
# This may be replaced when dependencies are built.
