file(REMOVE_RECURSE
  "CMakeFiles/workloads_workload_common_test.dir/workloads/workload_common_test.cc.o"
  "CMakeFiles/workloads_workload_common_test.dir/workloads/workload_common_test.cc.o.d"
  "workloads_workload_common_test"
  "workloads_workload_common_test.pdb"
  "workloads_workload_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_workload_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
