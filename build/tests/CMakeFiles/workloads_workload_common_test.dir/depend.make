# Empty dependencies file for workloads_workload_common_test.
# This may be replaced when dependencies are built.
