file(REMOVE_RECURSE
  "CMakeFiles/interconnect_link_test.dir/interconnect/link_test.cc.o"
  "CMakeFiles/interconnect_link_test.dir/interconnect/link_test.cc.o.d"
  "interconnect_link_test"
  "interconnect_link_test.pdb"
  "interconnect_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
