# Empty compiler generated dependencies file for interconnect_link_test.
# This may be replaced when dependencies are built.
