file(REMOVE_RECURSE
  "CMakeFiles/gpu_egress_port_test.dir/gpu/egress_port_test.cc.o"
  "CMakeFiles/gpu_egress_port_test.dir/gpu/egress_port_test.cc.o.d"
  "gpu_egress_port_test"
  "gpu_egress_port_test.pdb"
  "gpu_egress_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_egress_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
