# Empty compiler generated dependencies file for gpu_egress_port_test.
# This may be replaced when dependencies are built.
