file(REMOVE_RECURSE
  "CMakeFiles/interconnect_topology_test.dir/interconnect/topology_test.cc.o"
  "CMakeFiles/interconnect_topology_test.dir/interconnect/topology_test.cc.o.d"
  "interconnect_topology_test"
  "interconnect_topology_test.pdb"
  "interconnect_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
