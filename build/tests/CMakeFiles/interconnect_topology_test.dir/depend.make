# Empty dependencies file for interconnect_topology_test.
# This may be replaced when dependencies are built.
