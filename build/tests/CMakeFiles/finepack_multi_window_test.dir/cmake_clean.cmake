file(REMOVE_RECURSE
  "CMakeFiles/finepack_multi_window_test.dir/finepack/multi_window_test.cc.o"
  "CMakeFiles/finepack_multi_window_test.dir/finepack/multi_window_test.cc.o.d"
  "finepack_multi_window_test"
  "finepack_multi_window_test.pdb"
  "finepack_multi_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finepack_multi_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
