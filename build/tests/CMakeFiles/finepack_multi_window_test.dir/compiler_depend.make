# Empty compiler generated dependencies file for finepack_multi_window_test.
# This may be replaced when dependencies are built.
