# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for finepack_multi_window_test.
