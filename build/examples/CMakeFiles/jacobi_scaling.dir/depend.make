# Empty dependencies file for jacobi_scaling.
# This may be replaced when dependencies are built.
