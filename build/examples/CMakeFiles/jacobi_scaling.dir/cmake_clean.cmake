file(REMOVE_RECURSE
  "CMakeFiles/jacobi_scaling.dir/jacobi_scaling.cpp.o"
  "CMakeFiles/jacobi_scaling.dir/jacobi_scaling.cpp.o.d"
  "jacobi_scaling"
  "jacobi_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
