file(REMOVE_RECURSE
  "libfp_workloads.a"
)
