
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/als.cc" "src/workloads/CMakeFiles/fp_workloads.dir/als.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/als.cc.o.d"
  "/root/repo/src/workloads/ct.cc" "src/workloads/CMakeFiles/fp_workloads.dir/ct.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/ct.cc.o.d"
  "/root/repo/src/workloads/datasets.cc" "src/workloads/CMakeFiles/fp_workloads.dir/datasets.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/datasets.cc.o.d"
  "/root/repo/src/workloads/diffusion.cc" "src/workloads/CMakeFiles/fp_workloads.dir/diffusion.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/diffusion.cc.o.d"
  "/root/repo/src/workloads/eqwp.cc" "src/workloads/CMakeFiles/fp_workloads.dir/eqwp.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/eqwp.cc.o.d"
  "/root/repo/src/workloads/hit.cc" "src/workloads/CMakeFiles/fp_workloads.dir/hit.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/hit.cc.o.d"
  "/root/repo/src/workloads/jacobi.cc" "src/workloads/CMakeFiles/fp_workloads.dir/jacobi.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/jacobi.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/workloads/CMakeFiles/fp_workloads.dir/pagerank.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/pagerank.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/workloads/CMakeFiles/fp_workloads.dir/sssp.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/sssp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/fp_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/fp_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/fp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/finepack/CMakeFiles/fp_finepack.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/fp_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
