file(REMOVE_RECURSE
  "CMakeFiles/fp_workloads.dir/als.cc.o"
  "CMakeFiles/fp_workloads.dir/als.cc.o.d"
  "CMakeFiles/fp_workloads.dir/ct.cc.o"
  "CMakeFiles/fp_workloads.dir/ct.cc.o.d"
  "CMakeFiles/fp_workloads.dir/datasets.cc.o"
  "CMakeFiles/fp_workloads.dir/datasets.cc.o.d"
  "CMakeFiles/fp_workloads.dir/diffusion.cc.o"
  "CMakeFiles/fp_workloads.dir/diffusion.cc.o.d"
  "CMakeFiles/fp_workloads.dir/eqwp.cc.o"
  "CMakeFiles/fp_workloads.dir/eqwp.cc.o.d"
  "CMakeFiles/fp_workloads.dir/hit.cc.o"
  "CMakeFiles/fp_workloads.dir/hit.cc.o.d"
  "CMakeFiles/fp_workloads.dir/jacobi.cc.o"
  "CMakeFiles/fp_workloads.dir/jacobi.cc.o.d"
  "CMakeFiles/fp_workloads.dir/pagerank.cc.o"
  "CMakeFiles/fp_workloads.dir/pagerank.cc.o.d"
  "CMakeFiles/fp_workloads.dir/sssp.cc.o"
  "CMakeFiles/fp_workloads.dir/sssp.cc.o.d"
  "CMakeFiles/fp_workloads.dir/workload.cc.o"
  "CMakeFiles/fp_workloads.dir/workload.cc.o.d"
  "libfp_workloads.a"
  "libfp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
