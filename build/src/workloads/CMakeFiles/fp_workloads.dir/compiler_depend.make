# Empty compiler generated dependencies file for fp_workloads.
# This may be replaced when dependencies are built.
