file(REMOVE_RECURSE
  "libfp_sim.a"
)
