file(REMOVE_RECURSE
  "CMakeFiles/fp_common.dir/event_queue.cc.o"
  "CMakeFiles/fp_common.dir/event_queue.cc.o.d"
  "CMakeFiles/fp_common.dir/logging.cc.o"
  "CMakeFiles/fp_common.dir/logging.cc.o.d"
  "CMakeFiles/fp_common.dir/stats.cc.o"
  "CMakeFiles/fp_common.dir/stats.cc.o.d"
  "CMakeFiles/fp_common.dir/table.cc.o"
  "CMakeFiles/fp_common.dir/table.cc.o.d"
  "libfp_common.a"
  "libfp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
