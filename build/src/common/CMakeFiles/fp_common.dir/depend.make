# Empty dependencies file for fp_common.
# This may be replaced when dependencies are built.
