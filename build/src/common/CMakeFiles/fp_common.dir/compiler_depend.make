# Empty compiler generated dependencies file for fp_common.
# This may be replaced when dependencies are built.
