file(REMOVE_RECURSE
  "libfp_common.a"
)
