file(REMOVE_RECURSE
  "libfp_finepack.a"
)
