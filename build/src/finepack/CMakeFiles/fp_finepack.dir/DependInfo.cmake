
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/finepack/config.cc" "src/finepack/CMakeFiles/fp_finepack.dir/config.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/config.cc.o.d"
  "/root/repo/src/finepack/config_packet.cc" "src/finepack/CMakeFiles/fp_finepack.dir/config_packet.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/config_packet.cc.o.d"
  "/root/repo/src/finepack/nvlink_packing.cc" "src/finepack/CMakeFiles/fp_finepack.dir/nvlink_packing.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/nvlink_packing.cc.o.d"
  "/root/repo/src/finepack/packetizer.cc" "src/finepack/CMakeFiles/fp_finepack.dir/packetizer.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/packetizer.cc.o.d"
  "/root/repo/src/finepack/remote_write_queue.cc" "src/finepack/CMakeFiles/fp_finepack.dir/remote_write_queue.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/remote_write_queue.cc.o.d"
  "/root/repo/src/finepack/transaction.cc" "src/finepack/CMakeFiles/fp_finepack.dir/transaction.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/transaction.cc.o.d"
  "/root/repo/src/finepack/write_combine.cc" "src/finepack/CMakeFiles/fp_finepack.dir/write_combine.cc.o" "gcc" "src/finepack/CMakeFiles/fp_finepack.dir/write_combine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/fp_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
