file(REMOVE_RECURSE
  "CMakeFiles/fp_finepack.dir/config.cc.o"
  "CMakeFiles/fp_finepack.dir/config.cc.o.d"
  "CMakeFiles/fp_finepack.dir/config_packet.cc.o"
  "CMakeFiles/fp_finepack.dir/config_packet.cc.o.d"
  "CMakeFiles/fp_finepack.dir/nvlink_packing.cc.o"
  "CMakeFiles/fp_finepack.dir/nvlink_packing.cc.o.d"
  "CMakeFiles/fp_finepack.dir/packetizer.cc.o"
  "CMakeFiles/fp_finepack.dir/packetizer.cc.o.d"
  "CMakeFiles/fp_finepack.dir/remote_write_queue.cc.o"
  "CMakeFiles/fp_finepack.dir/remote_write_queue.cc.o.d"
  "CMakeFiles/fp_finepack.dir/transaction.cc.o"
  "CMakeFiles/fp_finepack.dir/transaction.cc.o.d"
  "CMakeFiles/fp_finepack.dir/write_combine.cc.o"
  "CMakeFiles/fp_finepack.dir/write_combine.cc.o.d"
  "libfp_finepack.a"
  "libfp_finepack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_finepack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
