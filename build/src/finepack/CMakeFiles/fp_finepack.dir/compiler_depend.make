# Empty compiler generated dependencies file for fp_finepack.
# This may be replaced when dependencies are built.
