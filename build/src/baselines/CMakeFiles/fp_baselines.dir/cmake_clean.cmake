file(REMOVE_RECURSE
  "CMakeFiles/fp_baselines.dir/gps_model.cc.o"
  "CMakeFiles/fp_baselines.dir/gps_model.cc.o.d"
  "libfp_baselines.a"
  "libfp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
