
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gps_model.cc" "src/baselines/CMakeFiles/fp_baselines.dir/gps_model.cc.o" "gcc" "src/baselines/CMakeFiles/fp_baselines.dir/gps_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/fp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/finepack/CMakeFiles/fp_finepack.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/fp_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
