file(REMOVE_RECURSE
  "libfp_baselines.a"
)
