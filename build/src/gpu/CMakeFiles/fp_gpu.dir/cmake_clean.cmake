file(REMOVE_RECURSE
  "CMakeFiles/fp_gpu.dir/dma_engine.cc.o"
  "CMakeFiles/fp_gpu.dir/dma_engine.cc.o.d"
  "CMakeFiles/fp_gpu.dir/egress_port.cc.o"
  "CMakeFiles/fp_gpu.dir/egress_port.cc.o.d"
  "CMakeFiles/fp_gpu.dir/functional_memory.cc.o"
  "CMakeFiles/fp_gpu.dir/functional_memory.cc.o.d"
  "CMakeFiles/fp_gpu.dir/gpu_config.cc.o"
  "CMakeFiles/fp_gpu.dir/gpu_config.cc.o.d"
  "CMakeFiles/fp_gpu.dir/ingress_port.cc.o"
  "CMakeFiles/fp_gpu.dir/ingress_port.cc.o.d"
  "CMakeFiles/fp_gpu.dir/warp_coalescer.cc.o"
  "CMakeFiles/fp_gpu.dir/warp_coalescer.cc.o.d"
  "libfp_gpu.a"
  "libfp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
