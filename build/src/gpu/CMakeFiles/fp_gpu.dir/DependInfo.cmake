
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/dma_engine.cc" "src/gpu/CMakeFiles/fp_gpu.dir/dma_engine.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/dma_engine.cc.o.d"
  "/root/repo/src/gpu/egress_port.cc" "src/gpu/CMakeFiles/fp_gpu.dir/egress_port.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/egress_port.cc.o.d"
  "/root/repo/src/gpu/functional_memory.cc" "src/gpu/CMakeFiles/fp_gpu.dir/functional_memory.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/functional_memory.cc.o.d"
  "/root/repo/src/gpu/gpu_config.cc" "src/gpu/CMakeFiles/fp_gpu.dir/gpu_config.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/gpu_config.cc.o.d"
  "/root/repo/src/gpu/ingress_port.cc" "src/gpu/CMakeFiles/fp_gpu.dir/ingress_port.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/ingress_port.cc.o.d"
  "/root/repo/src/gpu/warp_coalescer.cc" "src/gpu/CMakeFiles/fp_gpu.dir/warp_coalescer.cc.o" "gcc" "src/gpu/CMakeFiles/fp_gpu.dir/warp_coalescer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/fp_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/finepack/CMakeFiles/fp_finepack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
