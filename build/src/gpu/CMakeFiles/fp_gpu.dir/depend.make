# Empty dependencies file for fp_gpu.
# This may be replaced when dependencies are built.
