file(REMOVE_RECURSE
  "libfp_gpu.a"
)
