# Empty compiler generated dependencies file for fp_trace.
# This may be replaced when dependencies are built.
