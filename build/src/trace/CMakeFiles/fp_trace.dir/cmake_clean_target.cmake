file(REMOVE_RECURSE
  "libfp_trace.a"
)
