file(REMOVE_RECURSE
  "CMakeFiles/fp_trace.dir/store_stream.cc.o"
  "CMakeFiles/fp_trace.dir/store_stream.cc.o.d"
  "CMakeFiles/fp_trace.dir/trace.cc.o"
  "CMakeFiles/fp_trace.dir/trace.cc.o.d"
  "libfp_trace.a"
  "libfp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
