# Empty dependencies file for fp_interconnect.
# This may be replaced when dependencies are built.
