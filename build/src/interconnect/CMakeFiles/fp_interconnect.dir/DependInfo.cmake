
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/link.cc" "src/interconnect/CMakeFiles/fp_interconnect.dir/link.cc.o" "gcc" "src/interconnect/CMakeFiles/fp_interconnect.dir/link.cc.o.d"
  "/root/repo/src/interconnect/protocol.cc" "src/interconnect/CMakeFiles/fp_interconnect.dir/protocol.cc.o" "gcc" "src/interconnect/CMakeFiles/fp_interconnect.dir/protocol.cc.o.d"
  "/root/repo/src/interconnect/topology.cc" "src/interconnect/CMakeFiles/fp_interconnect.dir/topology.cc.o" "gcc" "src/interconnect/CMakeFiles/fp_interconnect.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
