file(REMOVE_RECURSE
  "CMakeFiles/fp_interconnect.dir/link.cc.o"
  "CMakeFiles/fp_interconnect.dir/link.cc.o.d"
  "CMakeFiles/fp_interconnect.dir/protocol.cc.o"
  "CMakeFiles/fp_interconnect.dir/protocol.cc.o.d"
  "CMakeFiles/fp_interconnect.dir/topology.cc.o"
  "CMakeFiles/fp_interconnect.dir/topology.cc.o.d"
  "libfp_interconnect.a"
  "libfp_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
