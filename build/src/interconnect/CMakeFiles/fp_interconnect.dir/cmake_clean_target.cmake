file(REMOVE_RECURSE
  "libfp_interconnect.a"
)
