/**
 * @file
 * Shared support for the figure/table reproduction harnesses: workload
 * set, trace access, geometric means, and uniform output formatting.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * evaluation; absolute values depend on this simulator, but the
 * qualitative shape (who wins, by what factor, where crossovers fall)
 * is the reproduction target recorded in EXPERIMENTS.md.
 */

#ifndef FP_BENCH_BENCH_COMMON_HH
#define FP_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/table.hh"
#include "obs/flow.hh"
#include "sim/driver.hh"
#include "sim/sweep.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

namespace fp::bench {

/** The eight evaluation applications, in the paper's order. */
inline const std::vector<std::string> &
apps()
{
    return workloads::allWorkloadNames();
}

/** Problem-size multiplier: FINEPACK_BENCH_SCALE overrides. */
inline double
benchScale(double fallback = 1.0)
{
    if (const char *env = std::getenv("FINEPACK_BENCH_SCALE"))
        return std::atof(env);
    return fallback;
}

inline workloads::WorkloadParams
benchParams(double scale, std::uint32_t num_gpus = 4)
{
    workloads::WorkloadParams params;
    params.num_gpus = num_gpus;
    params.scale = scale;
    params.seed = 42;
    return params;
}

inline const trace::WorkloadTrace &
benchTrace(const std::string &app, double scale,
           std::uint32_t num_gpus = 4)
{
    return sim::TraceCache::instance().get(app,
                                           benchParams(scale, num_gpus));
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        // A geometric mean is only defined over positive values; a
        // zero or negative sample would otherwise poison the whole
        // result with -inf / NaN.
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/**
 * Machine-readable bench output: when the binary was invoked with
 * `--json FILE`, every metric added through add() is written to FILE as
 * one flat JSON document
 *
 *     {"bench": ..., "schema_version": 1, "scale": ...,
 *      "metrics": {name: value, ...}}
 *
 * alongside the human-readable tables on stdout. Without the flag the
 * reporter is inert. Metric names are sorted in the output, so two
 * runs of the same bench are diffable.
 *
 * Every enabled reporter also emits simulator-throughput metrics under
 * the reserved `host.` prefix (host.wall_ns, host.events,
 * host.events_per_sec), measured from construction to write() via
 * sim::totalHostEventsProcessed(). They track ROADMAP item 1's "make
 * the simulator fast" progress over time but are machine-dependent, so
 * fp_bench_compare.py excludes them from regression checks by default
 * (--include-host opts in) and the CI serial-vs-parallel comparison
 * strips them.
 */
class JsonReporter
{
  public:
    JsonReporter(const std::string &bench, int argc, char **argv,
                 double scale)
        : _bench(bench), _scale(scale),
          // Wall-clock is fine here: bench binaries are not simulation
          // code (fp_lint covers src/ only) and host.* metrics are
          // machine-dependent by design.
          _start(std::chrono::steady_clock::now()),
          _events_base(sim::totalHostEventsProcessed())
    {
        for (int i = 0; i + 1 < argc; ++i)
            if (std::strcmp(argv[i], "--json") == 0)
                _path = argv[i + 1];
    }

    bool enabled() const { return !_path.empty(); }

    /** Record one metric; later add()s with the same name overwrite. */
    void add(const std::string &name, double value)
    { _metrics[name] = value; }

    /** Write the document; no-op (returning true) when disabled. */
    bool
    write() const
    {
        if (!enabled())
            return true;
        std::ofstream out(_path);
        if (!out) {
            std::cerr << "cannot open " << _path << " for writing\n";
            return false;
        }
        auto wall_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - _start)
                .count());
        auto events = static_cast<double>(
            sim::totalHostEventsProcessed() - _events_base);
        std::map<std::string, double> metrics = _metrics;
        metrics["host.wall_ns"] = wall_ns;
        metrics["host.events"] = events;
        metrics["host.events_per_sec"] =
            wall_ns > 0.0 ? events / (wall_ns / 1e9) : 0.0;
        common::JsonWriter json(out);
        json.beginObject();
        json.kv("bench", _bench);
        json.key("schema_version");
        json.value(1);
        json.kv("scale", _scale);
        json.key("metrics");
        json.beginObject();
        for (const auto &[name, value] : metrics)
            json.kv(name, value);
        json.endObject();
        json.endObject();
        out << "\n";
        std::cout << "json: " << _path << "\n";
        return true;
    }

  private:
    std::string _bench;
    std::string _path;
    double _scale;
    std::chrono::steady_clock::time_point _start;
    std::uint64_t _events_base;
    std::map<std::string, double> _metrics;
};

/**
 * Record the fabric flow-observability summary for one (app, config,
 * paradigm) point under `fabric.<app>.*`: hottest-link utilization,
 * fabric-wide busy/wait ticks, cross-GPU attributed delay (the
 * off-diagonal of the contention matrix), packing efficiency, and the
 * active-flow count. Runs one dedicated, serial instrumented
 * simulation - FlowCollector hooks must not be shared across parallel
 * sweep lanes - so it is skipped entirely when the reporter is
 * disabled. Schema: docs/fabric_observability.md.
 */
inline void
addFabricMetrics(JsonReporter &reporter, const std::string &app,
                 double scale, std::uint32_t gpus,
                 const sim::SimConfig &base_config,
                 sim::Paradigm paradigm = sim::Paradigm::finepack)
{
    if (!reporter.enabled())
        return;
    obs::FlowCollector flows;
    sim::SimConfig config = base_config;
    config.flows = &flows;
    sim::SimulationDriver driver(config);
    driver.run(benchTrace(app, scale, gpus), paradigm);

    double hot_util = 0.0;
    auto hottest = flows.hottestLinks(1);
    if (!hottest.empty())
        hot_util = flows.linkUtilization(flows.links()[hottest[0]]);
    Tick cross_delay = 0;
    for (GpuId by = 0; by < flows.numGpus(); ++by)
        for (GpuId on = 0; on < flows.numGpus(); ++on)
            if (by != on)
                cross_delay += flows.interferenceTicks(by, on);

    const std::string prefix = "fabric." + app + ".";
    reporter.add(prefix + "hot_link_utilization", hot_util);
    reporter.add(prefix + "total_busy_ticks",
                 static_cast<double>(flows.totalBusyTicks()));
    reporter.add(prefix + "total_wait_ticks",
                 static_cast<double>(flows.totalWaitTicks()));
    reporter.add(prefix + "cross_gpu_delay_ticks",
                 static_cast<double>(cross_delay));
    reporter.add(prefix + "packing_efficiency",
                 flows.packingEfficiency());
    reporter.add(prefix + "active_flows",
                 static_cast<double>(flows.activeFlows()));
}

/** One app's speedups over the 1-GPU baseline for a set of paradigms. */
inline std::map<sim::Paradigm, double>
speedups(sim::SimulationDriver &driver, const trace::WorkloadTrace &trace,
         const std::vector<sim::Paradigm> &paradigms)
{
    std::map<sim::Paradigm, double> result;
    Tick single =
        driver.run(trace, sim::Paradigm::single_gpu).total_time;
    for (sim::Paradigm paradigm : paradigms) {
        Tick t = driver.run(trace, paradigm).total_time;
        result[paradigm] = static_cast<double>(single) /
                           static_cast<double>(t);
    }
    return result;
}

/**
 * Sweep lane count: FINEPACK_BENCH_JOBS (exported by the
 * record_baselines.sh -j flag) overrides; the default of 1 keeps
 * plain bench invocations serial, which is also the reference order
 * the parallel path must reproduce byte-for-byte.
 */
inline unsigned
benchJobs()
{
    return sim::SweepRunner::defaultJobs();
}

/**
 * Run a batch of independent simulations on the shared bench sweep
 * runner (one pool per process, sized by benchJobs()); result i
 * corresponds to jobs[i] no matter how the batch was scheduled.
 */
inline std::vector<sim::RunResult>
runSweep(const std::vector<sim::SweepJob> &jobs)
{
    // fp-lint: allow(global-state) internally synchronized: ThreadPool
    // guards its queue with an fp::Mutex; construction is C++ magic-
    // static thread safe.
    static sim::SweepRunner runner(benchJobs());
    // Opt-in run-health heartbeat for long figure sweeps: with
    // FINEPACK_BENCH_HEARTBEAT_NS=N set, a watchdog thread reports
    // sweep progress (jobs done/total, ETA) every N nanoseconds as
    // line-delimited JSON on stderr (docs/run_health.md). Gated on an
    // environment variable so bench output and digests are untouched
    // by default.
    // fp-lint: allow(global-state) internally synchronized: the monitor
    // only reads the runner's progress atomics; magic-static init.
    static sim::HealthHeartbeatGuard heartbeat(runner);
    return runner.run(jobs);
}

/**
 * Per-app speedups over the 1-GPU baseline for a set of paradigms,
 * computed as one sweep batch: jobs are laid out app-major as
 * [single_gpu, paradigms...] and aggregated by index, so the numbers
 * are identical to calling speedups() per app in order.
 */
inline std::map<std::string, std::map<sim::Paradigm, double>>
sweepSpeedups(double scale, const std::vector<sim::Paradigm> &paradigms,
              const sim::SimConfig &config = sim::SimConfig(),
              std::uint32_t num_gpus = 4)
{
    std::vector<sim::SweepJob> jobs;
    for (const std::string &app : apps()) {
        sim::SweepJob job;
        job.workload = app;
        job.params = benchParams(scale, num_gpus);
        job.config = config;
        job.paradigm = sim::Paradigm::single_gpu;
        jobs.push_back(job);
        for (sim::Paradigm paradigm : paradigms) {
            job.paradigm = paradigm;
            jobs.push_back(job);
        }
    }
    std::vector<sim::RunResult> results = runSweep(jobs);

    std::map<std::string, std::map<sim::Paradigm, double>> out;
    std::size_t i = 0;
    for (const std::string &app : apps()) {
        Tick single = results[i++].total_time;
        for (sim::Paradigm paradigm : paradigms) {
            Tick t = results[i++].total_time;
            out[app][paradigm] = static_cast<double>(single) /
                                 static_cast<double>(t);
        }
    }
    return out;
}

} // namespace fp::bench

#endif // FP_BENCH_BENCH_COMMON_HH
