/**
 * Figure 4: average size distribution of remote stores exiting the
 * GPU's L1 cache, per application. The histogram comes from the warp
 * coalescer each workload's store stream runs through.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;

    double scale = benchScale(1.0);
    JsonReporter reporter("fig04_store_sizes", argc, argv, scale);

    common::Table table(
        "Figure 4: remote store sizes egressing L1 (% of stores)");
    table.setHeader({"app", "1-4B", "5-8B", "9-16B", "17-32B", "33-64B",
                     "65-128B", "avg size B"});

    const char *bucket_names[6] = {"le4", "le8", "le16", "le32", "le64",
                                   "le128"};
    for (const std::string &app : apps()) {
        // Generate outside the cache so the per-workload coalescer
        // histogram is isolated.
        auto workload = workloads::createWorkload(app);
        workload->generateTrace(benchParams(scale));
        const common::Histogram &hist =
            workload->coalescer().sizeHistogram();

        double total_bytes = 0.0, total_stores = 0.0;
        // Recompute the average from the trace bytes.
        const auto &trace = benchTrace(app, scale);
        total_stores = static_cast<double>(trace.totalRemoteStores());
        total_bytes =
            static_cast<double>(trace.totalRemoteStoreBytes());

        std::vector<std::string> row{app};
        for (std::size_t bucket = 0; bucket < 6; ++bucket) {
            row.push_back(
                common::Table::num(100.0 * hist.fraction(bucket), 1));
            reporter.add(app + ".pct." + bucket_names[bucket],
                         100.0 * hist.fraction(bucket));
        }
        double avg = total_stores > 0 ? total_bytes / total_stores : 0.0;
        reporter.add(app + ".avg_bytes", avg);
        row.push_back(common::Table::num(avg, 1));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nPaper shape checks: irregular apps (pagerank, sssp,"
                 " ct, eqwp, hit) are dominated by sub-32B stores;\n"
                 "regular apps (jacobi, diffusion) emit full 128B"
                 " lines. Section I: >63% of transfers below 32B on"
                 " average across irregular apps.\n";
    return reporter.write() ? 0 : 1;
}
