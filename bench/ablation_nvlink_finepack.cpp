/**
 * Section IV-C ablation: FinePack embedded in NVLink. The paper argues
 * the approach generalizes beyond PCIe because the small-packet
 * efficiency of both interconnects is similar; this harness packs the
 * workloads' real flushed transactions under both embeddings and
 * compares the packing gains.
 */

#include <iostream>

#include "bench_common.hh"
#include "finepack/nvlink_packing.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"

int
main()
{
    using namespace fp;
    using namespace fp::bench;
    using namespace fp::finepack;

    double scale = benchScale(0.5);

    FinePackConfig config = defaultConfig();
    icn::PcieProtocol pcie(icn::PcieGen::gen4);
    NvlinkFinePackModel nvlink;

    common::Table table(
        "FinePack packing gain (raw wire bytes / packed wire bytes) "
        "per interconnect embedding");
    table.setHeader({"app", "PCIe gain", "NVLink gain", "ratio"});

    std::vector<double> ratios;
    for (const std::string &app : apps()) {
        const auto &trace = benchTrace(app, scale);

        double pcie_raw = 0.0, pcie_packed = 0.0;
        double nv_raw = 0.0, nv_packed = 0.0;

        // Replay GPU 0's store stream through a real queue and pack
        // every flush under both embeddings.
        RemoteWriteQueue rwq(0, trace.num_gpus, config);
        Packetizer packetizer(0, config);
        auto account = [&](const FlushedPartition &flushed) {
            if (flushed.empty())
                return;
            FinePackTransaction txn = packetizer.packetize(flushed);
            nv_raw += static_cast<double>(nvlink.rawWireBytes(txn));
            nv_packed += static_cast<double>(nvlink.wireBytes(txn));
            for (const SubPacket &sub : txn.subPackets())
                pcie_raw += static_cast<double>(pcie.storeWireBytes(
                    txn.baseAddr() + sub.offset, sub.length));
            pcie_packed += static_cast<double>(pcie.tlpOverhead() +
                                               txn.wirePayloadBytes());
        };

        std::vector<FlushedPartition> sink;
        for (const auto &iter : trace.iterations) {
            for (const auto &store :
                 iter.per_gpu[0].remote_stores) {
                sink.clear();
                rwq.push(store, sink);
                for (const auto &flushed : sink)
                    account(flushed);
            }
            for (const auto &flushed :
                 rwq.flushAll(FlushReason::release))
                account(flushed);
        }

        double pcie_gain = pcie_packed > 0 ? pcie_raw / pcie_packed : 0;
        double nv_gain = nv_packed > 0 ? nv_raw / nv_packed : 0;
        if (pcie_gain > 0)
            ratios.push_back(nv_gain / pcie_gain);
        table.addRow({app, common::Table::num(pcie_gain, 2),
                      common::Table::num(nv_gain, 2),
                      common::Table::num(
                          pcie_gain > 0 ? nv_gain / pcie_gain : 0.0,
                          2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper claim (Section IV-C): the approach 'should"
                 " achieve similar benefits' on NVLink -> geomean"
                 " NVLink/PCIe gain ratio = "
              << common::Table::num(geomean(ratios), 2) << "\n";
    return 0;
}
