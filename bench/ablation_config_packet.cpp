/**
 * Section VI-B ablation: the alternate "stateful configuration packet"
 * design. The paper's analytical comparison found it approximately 18%
 * less efficient than FinePack for packets of 32-64 stores because
 * every store remains an independent TLP with its own sequence number
 * and CRC (~10 extra bytes per store).
 */

#include <iostream>

#include "common/table.hh"
#include "finepack/config_packet.hh"

int
main()
{
    using namespace fp;
    using namespace fp::finepack;

    FinePackConfig config = defaultConfig();
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    ConfigPacketModel model(config, protocol);

    common::Table table(
        "Config-packet alternative vs FinePack "
        "(wire bytes per burst; Section VI-B)");
    table.setHeader({"stores/burst", "store bytes", "config-pkt B",
                     "finepack B", "inefficiency %"});

    for (std::uint64_t stores : {8, 16, 32, 42, 64}) {
        for (std::uint64_t bytes : {8, 16, 48}) {
            if (stores * (config.subheader_bytes + bytes) >
                config.max_payload)
                continue;
            std::uint64_t cp = model.wireBytes(stores, bytes);
            std::uint64_t fpk = model.finePackWireBytes(stores, bytes);
            table.addRow(
                {std::to_string(stores), std::to_string(bytes),
                 std::to_string(cp), std::to_string(fpk),
                 common::Table::num(
                     100.0 * model.relativeInefficiency(stores, bytes),
                     1)});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper claim: ~18% less efficient for 32-64 store"
                 " packets -> measured "
              << common::Table::num(
                     100.0 * model.relativeInefficiency(42, 48), 1)
              << "% at 42 stores x 48B (the paper's typical"
                 " coalesced-run size).\n";
    return 0;
}
