/**
 * Figure 11: average number of program stores aggregated into a single
 * FinePack packet before egressing the source GPU.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;

    double scale = benchScale(1.0);
    JsonReporter reporter("fig11_coalescing", argc, argv, scale);

    std::vector<sim::SweepJob> jobs;
    for (const std::string &app : apps()) {
        sim::SweepJob job;
        job.workload = app;
        job.params = benchParams(scale);
        job.paradigm = sim::Paradigm::finepack;
        jobs.push_back(job);
    }
    std::vector<sim::RunResult> runs = runSweep(jobs);

    common::Table table(
        "Figure 11: average stores aggregated per FinePack packet");
    table.setHeader({"app", "stores/packet", "packets"});

    std::vector<double> all;
    std::size_t job_index = 0;
    for (const std::string &app : apps()) {
        const sim::RunResult &r = runs[job_index++];
        table.addRow({app,
                      common::Table::num(r.avg_stores_per_packet, 1),
                      std::to_string(r.finepack_packets)});
        all.push_back(r.avg_stores_per_packet);
        reporter.add("stores_per_packet." + app,
                     r.avg_stores_per_packet);
        reporter.add("packets." + app,
                     static_cast<double>(r.finepack_packets));
    }
    table.addRow({"mean", common::Table::num(mean(all), 1), "-"});
    table.print(std::cout);
    reporter.add("stores_per_packet.mean", mean(all));

    std::cout << "\nPaper shape checks: FinePack packs ~42 stores per"
                 " transaction on average;\nCT is the outlier with"
                 " minimal spatial locality and far fewer stores per"
                 " packet.\n";
    return reporter.write() ? 0 : 1;
}
