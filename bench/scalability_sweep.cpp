/**
 * GPU-count scalability sweep (companion to the paper's 4-GPU headline
 * and 16-GPU projection): geomean strong scaling of each paradigm at
 * 2, 4, 8, and 16 GPUs on PCIe 4.0, holding per-problem size constant
 * (strong scaling).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(0.5);
    JsonReporter reporter("scalability_sweep", argc, argv, scale);

    const std::vector<std::uint32_t> gpu_counts = {2, 4, 8, 16};
    const std::vector<Paradigm> paradigms = {
        Paradigm::p2p_stores, Paradigm::bulk_dma, Paradigm::finepack,
        Paradigm::infinite_bw};

    common::Table table(
        "Strong scaling vs GPU count (geomean speedup over 1 GPU, "
        "PCIe 4.0)");
    table.setHeader({"GPUs", "p2p-stores", "bulk-dma", "finepack",
                     "infinite-bw", "FP % of opportunity"});

    for (std::uint32_t gpus : gpu_counts) {
        auto by_app =
            sweepSpeedups(scale, paradigms, sim::SimConfig(), gpus);
        std::map<Paradigm, std::vector<double>> per_app;
        for (const std::string &app : apps())
            for (Paradigm p : paradigms)
                per_app[p].push_back(by_app[app][p]);
        double fp_geo = geomean(per_app[Paradigm::finepack]);
        double inf_geo = geomean(per_app[Paradigm::infinite_bw]);
        std::string prefix = "geomean." + std::to_string(gpus) + "gpu.";
        reporter.add(prefix + "p2p_stores",
                     geomean(per_app[Paradigm::p2p_stores]));
        reporter.add(prefix + "bulk_dma",
                     geomean(per_app[Paradigm::bulk_dma]));
        reporter.add(prefix + "finepack", fp_geo);
        reporter.add(prefix + "infinite_bw", inf_geo);
        reporter.add("fp_pct_of_opportunity." + std::to_string(gpus)
                         + "gpu",
                     100.0 * fp_geo / inf_geo);
        table.addRow(
            {std::to_string(gpus),
             common::Table::num(geomean(per_app[Paradigm::p2p_stores]),
                                2),
             common::Table::num(geomean(per_app[Paradigm::bulk_dma]),
                                2),
             common::Table::num(fp_geo, 2),
             common::Table::num(inf_geo, 2),
             common::Table::num(100.0 * fp_geo / inf_geo, 0) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nShape: the FinePack-vs-baselines gap widens with"
                 " GPU count (communication grows super-linearly under"
                 " strong scaling,\nSection I), while FinePack tracks"
                 " the infinite-bandwidth bound.\n";

    // Fabric hot-link / contention summary at the largest sweep point.
    addFabricMetrics(reporter, "jacobi", scale, 16, sim::SimConfig());
    return reporter.write() ? 0 : 1;
}
