/**
 * Extension ablation: the inactivity-timeout flush the paper discusses
 * but deliberately leaves disabled ("we chose not to implement such
 * timeouts to maximize the coalescing window and because flushing the
 * queue when it becomes full was sufficient", Section IV-B).
 *
 * This sweep quantifies that choice: small timeouts fragment packets
 * (fewer stores per packet, more protocol bytes) without improving
 * end-to-end time for these bulk-synchronous workloads.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace fp;
    using namespace fp::bench;

    double scale = benchScale(0.5);

    const std::vector<Tick> timeouts = {
        0, 200 * ticks_per_ns, 1 * ticks_per_us, 5 * ticks_per_us};

    common::Table table(
        "FinePack inactivity-timeout flush sweep (geomean over apps)");
    table.setHeader({"timeout", "geomean speedup", "stores/packet",
                     "wire bytes vs no-timeout"});

    double baseline_bytes = 0.0;
    for (Tick timeout : timeouts) {
        sim::SimConfig config;
        config.finepack_flush_timeout = timeout;
        sim::SimulationDriver driver(config);

        std::vector<double> speedups_v, packing;
        double wire = 0.0;
        for (const std::string &app : apps()) {
            const auto &trace = benchTrace(app, scale);
            Tick single =
                driver.run(trace, sim::Paradigm::single_gpu).total_time;
            sim::RunResult r =
                driver.run(trace, sim::Paradigm::finepack);
            speedups_v.push_back(static_cast<double>(single) /
                                 static_cast<double>(r.total_time));
            packing.push_back(r.avg_stores_per_packet);
            wire += static_cast<double>(r.wire_bytes);
        }
        if (timeout == 0)
            baseline_bytes = wire;

        std::string label =
            timeout == 0 ? "disabled (paper)"
                         : common::Table::num(
                               static_cast<double>(timeout) /
                                   ticks_per_us,
                               1) + " us";
        table.addRow({label,
                      common::Table::num(geomean(speedups_v), 2),
                      common::Table::num(mean(packing), 1),
                      common::Table::num(
                          100.0 * wire / baseline_bytes, 1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nShorter timeouts fragment packets and add wire"
                 " bytes; with kernel-end releases already bounding"
                 " staleness,\nthe paper's choice to disable the"
                 " timeout costs nothing here.\n";
    return 0;
}
