/**
 * Table II: the sub-transaction header size trade-off - bytes per
 * sub-header vs. length/address field widths and the addressable range
 * per outer transaction.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "finepack/config.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::finepack;

    // Analytic table: scale-independent, so the reported scale is 1.
    bench::JsonReporter reporter("tab02_subheader_ranges", argc, argv,
                                 1.0);

    common::Table table(
        "Table II: sub-transaction header size trade-off");
    table.setHeader({"sub-header bytes", "length bits", "address bits",
                     "addressable range"});

    auto human = [](std::uint64_t bytes) -> std::string {
        if (bytes >= GiB)
            return std::to_string(bytes / GiB) + "GB";
        if (bytes >= MiB)
            return std::to_string(bytes / MiB) + "MB";
        if (bytes >= KiB)
            return std::to_string(bytes / KiB) + "KB";
        return std::to_string(bytes) + "B";
    };

    for (std::uint32_t bytes = 2; bytes <= 6; ++bytes) {
        FinePackConfig config = configWithSubheader(bytes);
        std::string prefix = std::to_string(bytes) + "B.";
        reporter.add(prefix + "length_bits", config.length_bits);
        reporter.add(prefix + "address_bits", config.offsetBits());
        reporter.add(prefix + "range_bytes",
                     static_cast<double>(config.addressableRange()));
        table.addRow({std::to_string(bytes),
                      std::to_string(config.length_bits),
                      std::to_string(config.offsetBits()),
                      human(config.addressableRange())});
    }
    table.print(std::cout);

    std::cout << "\nMatches paper Table II: 2B->64B, 3B->16KB, "
                 "4B->4MB, 5B->1GB, 6B->256GB.\n";
    return reporter.write() ? 0 : 1;
}
