/**
 * Figure 2: percentage of useful bytes transferred vs. maximum
 * theoretical throughput, when varying the transfer size of
 * peer-to-peer stores, for PCIe and NVLink.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "interconnect/message.hh"
#include "interconnect/protocol.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::icn;

    bench::JsonReporter reporter("fig02_goodput", argc, argv, 1.0);

    PcieProtocol pcie3(PcieGen::gen3);
    PcieProtocol pcie4(PcieGen::gen4);
    NvlinkProtocol nvlink;

    common::Table table(
        "Figure 2: P2P store goodput vs transfer size "
        "(% of max theoretical throughput)");
    table.setHeader({"transfer size (B)", "PCIe 3.0 %", "PCIe 4.0 %",
                     "NVLink %"});

    for (std::uint64_t size :
         {4, 8, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096,
          16384, 65536}) {
        table.addRow({std::to_string(size),
                      common::Table::num(100.0 * pcie3.goodput(size), 1),
                      common::Table::num(100.0 * pcie4.goodput(size), 1),
                      common::Table::num(100.0 * nvlink.goodput(size),
                                         1)});
        std::string suffix = "[" + std::to_string(size) + "]";
        reporter.add("goodput.pcie3" + suffix, pcie3.goodput(size));
        reporter.add("goodput.pcie4" + suffix, pcie4.goodput(size));
        reporter.add("goodput.nvlink" + suffix, nvlink.goodput(size));
    }
    table.print(std::cout);

    std::cout << "\nPaper shape checks:\n"
              << "  32B vs >=128B efficiency ratio (PCIe 4.0): "
              << common::Table::num(
                     pcie4.goodput(32) / pcie4.goodput(4096), 2)
              << "  (paper: 'roughly half')\n"
              << "  NVLink goodput spike at flit-aligned 32B vs 24B: "
              << common::Table::num(nvlink.goodput(32), 3) << " vs "
              << common::Table::num(nvlink.goodput(24), 3)
              << "  (paper footnote 1: byte-enable flit spikes)\n";
    return reporter.write() ? 0 : 1;
}
