/**
 * Figure 9: 4-GPU speedups over a single GPU for the four communication
 * paradigms (P2P stores, bulk DMA, FinePack, infinite bandwidth),
 * across all eight evaluation applications, on PCIe 4.0.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(1.0);
    JsonReporter reporter("fig09_speedup", argc, argv, scale);

    const std::vector<Paradigm> paradigms = {
        Paradigm::p2p_stores, Paradigm::bulk_dma, Paradigm::finepack,
        Paradigm::infinite_bw};

    common::Table table(
        "Figure 9: 4-GPU speedup over 1 GPU (PCIe 4.0)");
    table.setHeader(
        {"app", "p2p-stores", "bulk-dma", "finepack", "infinite-bw"});

    auto by_app = sweepSpeedups(scale, paradigms);

    std::map<Paradigm, std::vector<double>> all;
    for (const std::string &app : apps()) {
        auto &result = by_app[app];
        table.addRow({app, common::Table::num(result[paradigms[0]], 2),
                      common::Table::num(result[paradigms[1]], 2),
                      common::Table::num(result[paradigms[2]], 2),
                      common::Table::num(result[paradigms[3]], 2)});
        for (Paradigm p : paradigms) {
            all[p].push_back(result[p]);
            reporter.add("speedup." + app + "." + toString(p),
                         result[p]);
        }
    }
    for (Paradigm p : paradigms)
        reporter.add(std::string("speedup.geomean.") + toString(p),
                     geomean(all[p]));
    table.addRow({"geomean", common::Table::num(geomean(all[paradigms[0]]), 2),
                  common::Table::num(geomean(all[paradigms[1]]), 2),
                  common::Table::num(geomean(all[paradigms[2]]), 2),
                  common::Table::num(geomean(all[paradigms[3]]), 2)});
    table.print(std::cout);

    // Per-app improvement ratios, as the paper's text quotes means.
    std::vector<double> fp_over_p2p, fp_over_dma;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        fp_over_p2p.push_back(all[Paradigm::finepack][i] /
                              all[Paradigm::p2p_stores][i]);
        fp_over_dma.push_back(all[Paradigm::finepack][i] /
                              all[Paradigm::bulk_dma][i]);
    }

    double fp_geo = geomean(all[Paradigm::finepack]);
    double inf_geo = geomean(all[Paradigm::infinite_bw]);
    std::cout << "\nPaper headline comparisons (paper -> measured):\n"
              << "  FinePack avg strong scaling: 2.4x -> "
              << common::Table::num(fp_geo, 2) << "x\n"
              << "  Infinite-BW opportunity:     3.4x -> "
              << common::Table::num(inf_geo, 2) << "x\n"
              << "  FinePack captures 71% of opportunity -> "
              << common::Table::num(100.0 * fp_geo / inf_geo, 0)
              << "%\n"
              << "  FinePack over P2P stores: 3.0x -> "
              << common::Table::num(mean(fp_over_p2p), 2)
              << "x (mean of per-app ratios), "
              << common::Table::num(geomean(all[Paradigm::finepack]) /
                                        geomean(all[Paradigm::p2p_stores]),
                                    2)
              << "x (geomean)\n"
              << "  FinePack over bulk DMA:   1.4x -> "
              << common::Table::num(mean(fp_over_dma), 2)
              << "x (mean of per-app ratios), "
              << common::Table::num(geomean(all[Paradigm::finepack]) /
                                        geomean(all[Paradigm::bulk_dma]),
                                    2)
              << "x (geomean)\n";
    return reporter.write() ? 0 : 1;
}
