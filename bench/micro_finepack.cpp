/**
 * Micro-benchmarks (google-benchmark) for the hot simulator structures:
 * remote write queue push/flush, packetization, warp coalescing, and
 * the event queue. These guard the simulation's own performance, not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "gpu/warp_coalescer.hh"

using namespace fp;

namespace {

/** Deterministic pseudo-random store stream with tunable locality. */
icn::Store
nextStore(common::Rng &rng, Addr region)
{
    Addr addr = 0x40000000 + rng.below(region);
    std::uint32_t size = 4u << rng.below(3); // 4, 8, 16
    Addr line_end = (addr & ~Addr{127}) + 128;
    if (addr + size > line_end)
        size = static_cast<std::uint32_t>(line_end - addr);
    return icn::Store(addr, size, 0, 1);
}

void
BM_RwqPushDense(benchmark::State &state)
{
    finepack::RwqPartition partition(1, finepack::defaultConfig());
    common::Rng rng(7);
    std::vector<finepack::FlushedPartition> sink;
    for (auto _ : state) {
        sink.clear();
        partition.push(nextStore(rng, 64 * KiB), sink);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwqPushDense);

void
BM_RwqPushScattered(benchmark::State &state)
{
    finepack::RwqPartition partition(1, finepack::defaultConfig());
    common::Rng rng(7);
    std::vector<finepack::FlushedPartition> sink;
    for (auto _ : state) {
        sink.clear();
        partition.push(nextStore(rng, 3 * GiB), sink);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwqPushScattered);

void
BM_PacketizeFlush(benchmark::State &state)
{
    finepack::FinePackConfig config = finepack::defaultConfig();
    finepack::Packetizer packetizer(0, config);
    common::Rng rng(11);

    for (auto _ : state) {
        state.PauseTiming();
        finepack::RwqPartition partition(1, config);
        std::vector<finepack::FlushedPartition> sink;
        for (int i = 0; i < 48; ++i)
            partition.push(nextStore(rng, 64 * KiB), sink);
        finepack::FlushedPartition flushed =
            partition.flush(finepack::FlushReason::release);
        state.ResumeTiming();

        if (!flushed.empty()) {
            auto txn = packetizer.packetize(flushed);
            benchmark::DoNotOptimize(txn);
        }
    }
}
BENCHMARK(BM_PacketizeFlush);

void
BM_WarpCoalesceContiguous(benchmark::State &state)
{
    gpu::WarpCoalescer coalescer;
    std::vector<gpu::LaneAccess> lanes, out;
    for (std::uint32_t i = 0; i < 32; ++i)
        lanes.push_back(gpu::LaneAccess{0x1000 + i * 8, 8});
    for (auto _ : state) {
        out.clear();
        coalescer.coalesce(lanes, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpCoalesceContiguous);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        common::EventQueue queue;
        std::uint64_t count = 0;
        for (int i = 0; i < 1024; ++i)
            queue.schedule([&count]() { ++count; },
                           static_cast<Tick>(i * 10));
        queue.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

} // namespace

BENCHMARK_MAIN();
