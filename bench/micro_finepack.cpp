/**
 * Micro-benchmarks (google-benchmark) for the hot simulator structures:
 * remote write queue push/flush, packetization, warp coalescing, and
 * the event queue. These guard the simulation's own performance, not
 * the paper's results.
 *
 * `--json FILE` additionally emits a deterministic packing-metrics
 * document (counts, not wall-clock timings, so the baseline harness can
 * diff it across machines); `--no-timing` skips the google-benchmark
 * timing loops, leaving only that deterministic pass (used by CI).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_common.hh"
#include "common/event_queue.hh"
#include "common/random.hh"
#include "finepack/packetizer.hh"
#include "finepack/remote_write_queue.hh"
#include "gpu/warp_coalescer.hh"
#include "interconnect/protocol.hh"

using namespace fp;

namespace {

/** Deterministic pseudo-random store stream with tunable locality. */
icn::Store
nextStore(common::Rng &rng, Addr region)
{
    Addr addr = 0x40000000 + rng.below(region);
    std::uint32_t size = 4u << rng.below(3); // 4, 8, 16
    Addr line_end = (addr & ~Addr{127}) + 128;
    if (addr + size > line_end)
        size = static_cast<std::uint32_t>(line_end - addr);
    return icn::Store(addr, size, 0, 1);
}

void
BM_RwqPushDense(benchmark::State &state)
{
    finepack::RwqPartition partition(1, finepack::defaultConfig());
    common::Rng rng(7);
    std::vector<finepack::FlushedPartition> sink;
    for (auto _ : state) {
        sink.clear();
        partition.push(nextStore(rng, 64 * KiB), sink);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwqPushDense);

void
BM_RwqPushScattered(benchmark::State &state)
{
    finepack::RwqPartition partition(1, finepack::defaultConfig());
    common::Rng rng(7);
    std::vector<finepack::FlushedPartition> sink;
    for (auto _ : state) {
        sink.clear();
        partition.push(nextStore(rng, 3 * GiB), sink);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwqPushScattered);

void
BM_PacketizeFlush(benchmark::State &state)
{
    finepack::FinePackConfig config = finepack::defaultConfig();
    finepack::Packetizer packetizer(0, config);
    common::Rng rng(11);

    for (auto _ : state) {
        state.PauseTiming();
        finepack::RwqPartition partition(1, config);
        std::vector<finepack::FlushedPartition> sink;
        for (int i = 0; i < 48; ++i)
            partition.push(nextStore(rng, 64 * KiB), sink);
        finepack::FlushedPartition flushed =
            partition.flush(finepack::FlushReason::release);
        state.ResumeTiming();

        if (!flushed.empty()) {
            auto txn = packetizer.packetize(flushed);
            benchmark::DoNotOptimize(txn);
        }
    }
}
BENCHMARK(BM_PacketizeFlush);

void
BM_WarpCoalesceContiguous(benchmark::State &state)
{
    gpu::WarpCoalescer coalescer;
    std::vector<gpu::LaneAccess> lanes, out;
    for (std::uint32_t i = 0; i < 32; ++i)
        lanes.push_back(gpu::LaneAccess{0x1000 + i * 8, 8});
    for (auto _ : state) {
        out.clear();
        coalescer.coalesce(lanes, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WarpCoalesceContiguous);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        common::EventQueue queue;
        std::uint64_t count = 0;
        for (int i = 0; i < 1024; ++i)
            queue.schedule([&count]() { ++count; },
                           static_cast<Tick>(i * 10));
        queue.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * Deterministic packing metrics for the regression baseline: stream
 * 4096 pseudo-random stores with @p region bytes of locality through a
 * partition + packetizer and report packing counts. Unlike the timing
 * loops above these are machine-independent, so fp_bench_compare.py can
 * diff them with zero tolerance.
 */
void
packingMetrics(bench::JsonReporter &reporter, const char *prefix,
               Addr region)
{
    finepack::FinePackConfig config = finepack::defaultConfig();
    finepack::RwqPartition partition(1, config);
    finepack::Packetizer packetizer(0, config);
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    common::Rng rng(7);

    std::uint64_t packets = 0, payload = 0, data = 0, wire = 0;
    auto emit = [&](const finepack::FlushedPartition &flushed) {
        if (flushed.empty())
            return;
        icn::WireMessagePtr msg = packetizer.toMessage(flushed, protocol);
        ++packets;
        payload += msg->payload_bytes;
        data += msg->data_bytes;
        wire += msg->wireBytes();
    };

    std::vector<finepack::FlushedPartition> sink;
    for (int i = 0; i < 4096; ++i) {
        sink.clear();
        partition.push(nextStore(rng, region), sink);
        for (const auto &flushed : sink)
            emit(flushed);
    }
    sink.clear();
    partition.flush(finepack::FlushReason::release, sink);
    for (const auto &flushed : sink)
        emit(flushed);

    std::string p = std::string(prefix) + ".";
    reporter.add(p + "packets", static_cast<double>(packets));
    reporter.add(p + "stores_per_packet", packetizer.avgStoresPerPacket());
    reporter.add(p + "payload_efficiency",
                 payload ? static_cast<double>(data) /
                               static_cast<double>(payload)
                         : 0.0);
    reporter.add(p + "wire_bytes", static_cast<double>(wire));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("micro_finepack", argc, argv, 1.0);
    if (reporter.enabled()) {
        packingMetrics(reporter, "dense", 64 * KiB);
        packingMetrics(reporter, "scattered", 3 * GiB);

        gpu::WarpCoalescer coalescer;
        std::vector<gpu::LaneAccess> lanes, out;
        for (std::uint32_t i = 0; i < 32; ++i)
            lanes.push_back(gpu::LaneAccess{0x1000 + i * 8, 8});
        coalescer.coalesce(lanes, out);
        reporter.add("coalesce.contiguous_runs",
                     static_cast<double>(out.size()));

        if (!reporter.write())
            return 1;
    }

    // Strip the reporter's flags before handing argv to google-benchmark.
    bool no_timing = false;
    std::vector<char *> filtered;
    filtered.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            ++i;
        else if (std::strcmp(argv[i], "--no-timing") == 0)
            no_timing = true;
        else
            filtered.push_back(argv[i]);
    }
    if (no_timing)
        return 0;

    int filtered_argc = static_cast<int>(filtered.size());
    benchmark::Initialize(&filtered_argc, filtered.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               filtered.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
