/**
 * Section VI-B scaling study: a 16-GPU system on a projected PCIe 6.0
 * interconnect. The paper reports FinePack outperforming P2P stores by
 * 3x and bulk DMA by 1.9x at that scale, with the remote write queue
 * SRAM growing to 120 KB per GPU (15 partitions).
 */

#include <iostream>

#include "bench_common.hh"
#include "finepack/remote_write_queue.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(0.5);
    const std::uint32_t gpus = 16;
    JsonReporter reporter("scale16_gpu", argc, argv, scale);

    sim::SimConfig config;
    config.pcie_gen = icn::PcieGen::gen6;

    const std::vector<Paradigm> paradigms = {
        Paradigm::p2p_stores, Paradigm::bulk_dma, Paradigm::finepack,
        Paradigm::infinite_bw};

    common::Table table(
        "16-GPU speedup over 1 GPU (PCIe 6.0)");
    table.setHeader(
        {"app", "p2p-stores", "bulk-dma", "finepack", "infinite-bw"});

    auto by_app = sweepSpeedups(scale, paradigms, config, gpus);

    std::map<Paradigm, std::vector<double>> all;
    for (const std::string &app : apps()) {
        auto &result = by_app[app];
        table.addRow({app, common::Table::num(result[paradigms[0]], 2),
                      common::Table::num(result[paradigms[1]], 2),
                      common::Table::num(result[paradigms[2]], 2),
                      common::Table::num(result[paradigms[3]], 2)});
        for (Paradigm p : paradigms)
            all[p].push_back(result[p]);
    }
    std::vector<std::string> geo_row{"geomean"};
    for (Paradigm p : paradigms) {
        geo_row.push_back(common::Table::num(geomean(all[p]), 2));
        reporter.add(std::string("geomean.") + sim::toString(p),
                     geomean(all[p]));
    }
    table.addRow(std::move(geo_row));
    table.print(std::cout);

    for (const std::string &app : apps())
        for (Paradigm p : paradigms)
            reporter.add("speedup." + app + "." + sim::toString(p),
                         by_app[app][p]);

    std::vector<double> fp_over_p2p, fp_over_dma;
    for (std::size_t i = 0; i < apps().size(); ++i) {
        fp_over_p2p.push_back(all[Paradigm::finepack][i] /
                              all[Paradigm::p2p_stores][i]);
        fp_over_dma.push_back(all[Paradigm::finepack][i] /
                              all[Paradigm::bulk_dma][i]);
    }

    finepack::RemoteWriteQueue rwq(0, gpus, finepack::defaultConfig());
    std::uint64_t sram_kb = rwq.totalSramBytes() / 1024;

    std::cout << "\nPaper claims at 16 GPUs / PCIe 6.0 "
                 "(paper -> measured):\n"
              << "  FinePack over P2P stores: 3.0x -> "
              << common::Table::num(mean(fp_over_p2p), 2)
              << "x (mean of per-app ratios)\n"
              << "  FinePack over bulk DMA:   1.9x -> "
              << common::Table::num(mean(fp_over_dma), 2)
              << "x (mean of per-app ratios)\n"
              << "  Remote write queue SRAM per GPU: 120KB -> "
              << sram_kb
              << "KB of line data (15 partitions x 64 x 128B; "
                 "+15KB of byte enables)\n";

    reporter.add("ratio.finepack_over_p2p", mean(fp_over_p2p));
    reporter.add("ratio.finepack_over_dma", mean(fp_over_dma));
    reporter.add("rwq_sram_kb", static_cast<double>(sram_kb));

    // Fabric hot-link / contention summary at the headline point.
    addFabricMetrics(reporter, "pagerank", scale, gpus, config);
    return reporter.write() ? 0 : 1;
}
