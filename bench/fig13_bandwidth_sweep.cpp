/**
 * Figure 13: geometric-mean strong-scaling performance of each
 * paradigm as the inter-GPU interconnect bandwidth grows from PCIe 4.0
 * (32 GB/s) through PCIe 6.0 (128 GB/s, comparable to today's fastest
 * NVLink), with GPU compute held constant.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(0.5);
    JsonReporter reporter("fig13_bandwidth_sweep", argc, argv, scale);

    auto genLabel = [](icn::PcieGen gen) {
        switch (gen) {
          case icn::PcieGen::gen3: return "pcie3";
          case icn::PcieGen::gen4: return "pcie4";
          case icn::PcieGen::gen5: return "pcie5";
          case icn::PcieGen::gen6: return "pcie6";
        }
        return "pcie?";
    };
    auto paradigmLabel = [](Paradigm p) {
        switch (p) {
          case Paradigm::p2p_stores: return "p2p_stores";
          case Paradigm::bulk_dma: return "bulk_dma";
          case Paradigm::finepack: return "finepack";
          case Paradigm::infinite_bw: return "infinite_bw";
          default: return "other";
        }
    };

    const std::vector<icn::PcieGen> gens = {
        icn::PcieGen::gen4, icn::PcieGen::gen5, icn::PcieGen::gen6};
    const std::vector<Paradigm> paradigms = {
        Paradigm::p2p_stores, Paradigm::bulk_dma, Paradigm::finepack,
        Paradigm::infinite_bw};

    common::Table table(
        "Figure 13: geomean 4-GPU speedup vs interconnect bandwidth");
    table.setHeader({"interconnect", "p2p-stores", "bulk-dma",
                     "finepack", "infinite-bw"});

    std::map<icn::PcieGen, std::map<Paradigm, double>> geo;
    for (icn::PcieGen gen : gens) {
        sim::SimConfig config;
        config.pcie_gen = gen;

        auto by_app = sweepSpeedups(scale, paradigms, config);
        std::map<Paradigm, std::vector<double>> per_app;
        for (const std::string &app : apps())
            for (Paradigm p : paradigms)
                per_app[p].push_back(by_app[app][p]);
        std::vector<std::string> row{toString(gen)};
        for (Paradigm p : paradigms) {
            geo[gen][p] = geomean(per_app[p]);
            reporter.add(std::string("geomean.") + genLabel(gen) + "."
                             + paradigmLabel(p),
                         geo[gen][p]);
            row.push_back(common::Table::num(geo[gen][p], 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nPaper shape checks: every paradigm improves with"
                 " bandwidth, but neither P2P stores nor bulk DMA"
                 " reaches\nFinePack at any step short of infinite"
                 " bandwidth.\n";
    for (icn::PcieGen gen : gens) {
        bool fp_wins =
            geo[gen][Paradigm::finepack] >
                geo[gen][Paradigm::p2p_stores] &&
            geo[gen][Paradigm::finepack] > geo[gen][Paradigm::bulk_dma];
        std::cout << "  " << toString(gen)
                  << ": FinePack ahead of both baselines: "
                  << (fp_wins ? "yes" : "NO") << "\n";
    }
    return reporter.write() ? 0 : 1;
}
