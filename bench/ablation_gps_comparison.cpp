/**
 * Section VI-B ablation: FinePack vs GPS (MICRO'21). GPS couples
 * cacheline-granularity write combining with per-page subscriptions;
 * the paper reports FinePack is on average 17.8% slower than GPS but
 * needs no application porting or VM changes, and that the two win on
 * different workloads. Write-combining alone is included to separate
 * the subscription benefit from the coalescing granularity.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(1.0);
    sim::SimulationDriver driver;

    // A second GPS configuration with finer subscription granularity:
    // 4 KiB pages rarely filter dense reader sets, so the sweep shows
    // how much of GPS's advantage hinges on tracking granularity.
    sim::SimConfig fine_config;
    fine_config.gps_page_bytes = 256;
    sim::SimulationDriver fine_driver(fine_config);

    const std::vector<Paradigm> paradigms = {
        Paradigm::write_combine, Paradigm::gps, Paradigm::finepack};

    common::Table table(
        "GPS comparison: speedup over 1 GPU (PCIe 4.0)");
    table.setHeader({"app", "write-combine", "gps (4KB)", "gps (256B)",
                     "finepack", "winner"});

    std::vector<double> gps_all, gps_fine_all, fp_all;
    for (const std::string &app : apps()) {
        const auto &trace = benchTrace(app, scale);
        auto result = speedups(driver, trace, paradigms);
        double gps_fine =
            fine_driver.speedupOverSingleGpu(trace, Paradigm::gps);
        double gps = result[Paradigm::gps];
        double fpk = result[Paradigm::finepack];
        gps_all.push_back(gps);
        gps_fine_all.push_back(gps_fine);
        fp_all.push_back(fpk);
        double best_gps = std::max(gps, gps_fine);
        table.addRow({app,
                      common::Table::num(result[Paradigm::write_combine],
                                         2),
                      common::Table::num(gps, 2),
                      common::Table::num(gps_fine, 2),
                      common::Table::num(fpk, 2),
                      fpk >= best_gps ? "finepack" : "gps"});
    }
    table.addRow({"geomean", "-", common::Table::num(geomean(gps_all), 2),
                  common::Table::num(geomean(gps_fine_all), 2),
                  common::Table::num(geomean(fp_all), 2), "-"});
    table.print(std::cout);

    double fp_geo = geomean(fp_all);
    double gps_geo = geomean(gps_all);
    std::cout
        << "\nPaper claims (paper -> measured):\n"
        << "  FinePack ~17.8% slower than GPS on average -> "
        << common::Table::num(100.0 * (1.0 - fp_geo / gps_geo), 1)
        << "% (negative means FinePack faster here)\n"
        << "\nKnown deviation: in this reproduction GPS's page-level\n"
        << "subscriptions filter little traffic because the workloads'\n"
        << "reader sets are dense at 4 KiB granularity, while its\n"
        << "full-cacheline transfers pay heavily on divergent-store\n"
        << "apps - so FinePack wins everywhere. The paper's GPS\n"
        << "comparison used GPS's own reference implementations,\n"
        << "whose replica broadcast gives subscriptions much more to\n"
        << "eliminate. See EXPERIMENTS.md.\n";
    return 0;
}
