/**
 * Figure 10: breakdown of total bytes transferred over the
 * interconnect, normalized to bulk DMA, categorized into useful bytes,
 * protocol overhead, and wasted bytes. Also reproduces the Section VI-A
 * aggregate claims (FinePack moves 2.7x less data than P2P stores,
 * 1.3x less than bulk DMA, and 24% less than write combining alone).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;
    using sim::Paradigm;

    double scale = benchScale(1.0);
    JsonReporter reporter("fig10_traffic_breakdown", argc, argv, scale);

    const std::vector<Paradigm> paradigms = {
        Paradigm::bulk_dma, Paradigm::p2p_stores,
        Paradigm::write_combine, Paradigm::finepack};

    std::vector<sim::SweepJob> jobs;
    for (const std::string &app : apps()) {
        sim::SweepJob job;
        job.workload = app;
        job.params = benchParams(scale);
        for (Paradigm paradigm : paradigms) {
            job.paradigm = paradigm;
            jobs.push_back(job);
        }
    }
    std::vector<sim::RunResult> runs = runSweep(jobs);

    common::Table table(
        "Figure 10: bytes on the wire, normalized to bulk DMA "
        "(useful / protocol / wasted as fractions of each bar)");
    table.setHeader({"app", "paradigm", "total (xDMA)", "useful %",
                     "protocol %", "wasted %"});

    double p2p_total = 0.0, dma_total = 0.0, fp_total = 0.0,
           wc_total = 0.0, wc_alone_total = 0.0, wc_line_total = 0.0,
           uncompressed_total = 0.0;

    std::size_t job_index = 0;
    for (const std::string &app : apps()) {
        double dma_bytes = 0.0;
        for (Paradigm paradigm : paradigms) {
            const sim::RunResult &r = runs[job_index++];
            auto total = static_cast<double>(r.wire_bytes);
            if (paradigm == Paradigm::bulk_dma) {
                dma_bytes = total;
                dma_total += total;
            } else if (paradigm == Paradigm::p2p_stores) {
                p2p_total += total;
            } else if (paradigm == Paradigm::finepack) {
                fp_total += total;
                wc_alone_total +=
                    static_cast<double>(r.wc_alone_wire_bytes);
                wc_line_total +=
                    static_cast<double>(r.wc_line_wire_bytes);
                uncompressed_total +=
                    static_cast<double>(r.uncompressed_wire_bytes);
            } else {
                wc_total += total;
            }
            auto pct = [&](std::uint64_t v) {
                return common::Table::num(100.0 * v / total, 1);
            };
            table.addRow({app, toString(paradigm),
                          common::Table::num(total / dma_bytes, 2),
                          pct(r.useful_bytes), pct(r.protocol_bytes),
                          pct(r.wasted_bytes)});
            std::string prefix =
                std::string(toString(paradigm)) + "." + app;
            reporter.add(prefix + ".wire_bytes", total);
            reporter.add(prefix + ".useful_bytes",
                         static_cast<double>(r.useful_bytes));
            reporter.add(prefix + ".protocol_bytes",
                         static_cast<double>(r.protocol_bytes));
            reporter.add(prefix + ".wasted_bytes",
                         static_cast<double>(r.wasted_bytes));
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper aggregate claims (paper -> measured):\n"
              << "  FinePack transfers 2.7x less data than P2P "
                 "stores -> "
              << common::Table::num(p2p_total / fp_total, 2) << "x\n"
              << "  FinePack transfers 1.3x less data than bulk "
                 "DMA -> "
              << common::Table::num(dma_total / fp_total, 2) << "x\n"
              << "  FinePack reduces wire data by 24% vs write "
                 "combining alone ->\n"
              << "      "
              << common::Table::num(
                     100.0 * (1.0 - fp_total / uncompressed_total), 0)
              << "% vs aggregation without address compression "
                 "(the paper's write-combining baseline),\n"
              << "      "
              << common::Table::num(
                     100.0 * (1.0 - fp_total / wc_line_total), 0)
              << "% vs one TLP per coalesced line (written span),\n"
              << "      "
              << common::Table::num(
                     100.0 * (1.0 - fp_total / wc_alone_total), 0)
              << "% vs one TLP per coalesced run,\n"
              << "      "
              << common::Table::num(100.0 * (1.0 - fp_total / wc_total),
                                    0)
              << "% vs full-cacheline GPS-style write combining\n";

    reporter.add("aggregate.p2p_over_finepack", p2p_total / fp_total);
    reporter.add("aggregate.dma_over_finepack", dma_total / fp_total);
    reporter.add("aggregate.saving_vs_uncompressed",
                 1.0 - fp_total / uncompressed_total);
    reporter.add("aggregate.saving_vs_wc_line",
                 1.0 - fp_total / wc_line_total);

    // Fabric hot-link / contention summary for the traffic headline.
    addFabricMetrics(reporter, "pagerank", scale, 4, sim::SimConfig());
    return reporter.write() ? 0 : 1;
}
