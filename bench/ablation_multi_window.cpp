/**
 * Extension ablation: multiple open outer transactions (windows) per
 * remote-write-queue partition, the Section IV-C design alternative
 * the paper leaves to future work ("It is also possible to allocate
 * more than one buffer partition per remote GPU to avoid thrashing, at
 * the cost of fewer entries per any individual partition").
 *
 * CT - whose concurrent rays scatter stores across a 4 GB volume and
 * thrash a single 1 GiB window - is the intended beneficiary; the
 * regular workloads should be insensitive.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace fp;
    using namespace fp::bench;

    double scale = benchScale(0.5);
    const std::vector<std::uint32_t> window_counts = {1, 2, 4, 8};

    common::Table table(
        "Multi-window remote write queue sweep: FinePack "
        "stores/packet (entry budget fixed at 64)");
    table.setHeader({"app", "1 window", "2 windows", "4 windows",
                     "8 windows"});

    common::Table speed_table(
        "Multi-window sweep: FinePack speedup over 1 GPU");
    speed_table.setHeader({"app", "1 window", "2 windows", "4 windows",
                           "8 windows"});

    std::map<std::uint32_t, std::vector<double>> geo;
    for (const std::string &app : apps()) {
        const auto &trace = benchTrace(app, scale);
        std::vector<std::string> pack_row{app}, speed_row{app};
        for (std::uint32_t windows : window_counts) {
            sim::SimConfig config;
            config.finepack.windows_per_partition = windows;
            sim::SimulationDriver driver(config);
            Tick single =
                driver.run(trace, sim::Paradigm::single_gpu).total_time;
            sim::RunResult r =
                driver.run(trace, sim::Paradigm::finepack);
            double speedup = static_cast<double>(single) /
                             static_cast<double>(r.total_time);
            geo[windows].push_back(speedup);
            pack_row.push_back(
                common::Table::num(r.avg_stores_per_packet, 1));
            speed_row.push_back(common::Table::num(speedup, 2));
        }
        table.addRow(std::move(pack_row));
        speed_table.addRow(std::move(speed_row));
    }
    std::vector<std::string> geo_row{"geomean"};
    for (std::uint32_t windows : window_counts)
        geo_row.push_back(common::Table::num(geomean(geo[windows]), 2));
    speed_table.addRow(std::move(geo_row));

    table.print(std::cout);
    speed_table.print(std::cout);

    std::cout << "\nExpected shape: CT's packing recovers sharply with"
                 " 2-8 windows (concurrent rays live in distinct\n"
                 "regions); workloads whose streams already fit one"
                 " window are unaffected, and the halved per-window\n"
                 "entry budget can slightly hurt dense streams.\n";
    return 0;
}
