/**
 * Figure 12: FinePack performance sensitivity to the number of
 * sub-transaction header bytes (2..6; Table II geometries). Values are
 * speedups over the single-GPU baseline, and per-app performance
 * normalized to the 4-byte configuration as the paper plots it.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fp;
    using namespace fp::bench;

    double scale = benchScale(0.5);
    JsonReporter reporter("fig12_subheader_sweep", argc, argv, scale);
    const std::vector<std::uint32_t> sweep = {2, 3, 4, 5, 6};

    common::Table table(
        "Figure 12: FinePack speedup vs sub-header bytes "
        "(speedup over 1 GPU)");
    table.setHeader({"app", "2B (64B)", "3B (16KB)", "4B (4MB)",
                     "5B (1GB)", "6B (256GB)"});

    // Two jobs per (app, sub-header bytes): the single-GPU baseline
    // and the FinePack run, both under that sub-header configuration
    // (exactly what speedupOverSingleGpu did serially).
    std::vector<sim::SweepJob> jobs;
    for (const std::string &app : apps()) {
        sim::SweepJob job;
        job.workload = app;
        job.params = benchParams(scale);
        for (std::uint32_t bytes : sweep) {
            job.config.finepack = finepack::configWithSubheader(bytes);
            job.paradigm = sim::Paradigm::single_gpu;
            jobs.push_back(job);
            job.paradigm = sim::Paradigm::finepack;
            jobs.push_back(job);
        }
    }
    std::vector<sim::RunResult> runs = runSweep(jobs);

    std::map<std::uint32_t, std::vector<double>> per_config;
    std::size_t job_index = 0;
    for (const std::string &app : apps()) {
        std::vector<std::string> row{app};
        for (std::uint32_t bytes : sweep) {
            Tick single = runs[job_index++].total_time;
            Tick finepack_time = runs[job_index++].total_time;
            double speedup = static_cast<double>(single) /
                             static_cast<double>(finepack_time);
            per_config[bytes].push_back(speedup);
            reporter.add("speedup." + app + "." + std::to_string(bytes)
                             + "B",
                         speedup);
            row.push_back(common::Table::num(speedup, 2));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo_row{"geomean"};
    for (std::uint32_t bytes : sweep)
        geo_row.push_back(common::Table::num(
            geomean(per_config[bytes]), 2));
    table.addRow(std::move(geo_row));
    table.print(std::cout);

    double at4 = geomean(per_config[4]);
    std::cout << "\nGeomean normalized to the 4-byte sub-header"
                 " (paper: performance peaks at 4-5 bytes):\n";
    for (std::uint32_t bytes : sweep) {
        std::cout << "  " << bytes << "B: "
                  << common::Table::num(
                         geomean(per_config[bytes]) / at4, 3)
                  << "\n";
        reporter.add("geomean." + std::to_string(bytes) + "B",
                     geomean(per_config[bytes]));
        reporter.add("normalized." + std::to_string(bytes) + "B",
                     geomean(per_config[bytes]) / at4);
    }
    return reporter.write() ? 0 : 1;
}
