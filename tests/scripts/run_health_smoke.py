#!/usr/bin/env python3
"""End-to-end smoke test for the run-health layer (docs/run_health.md).

Drives the real fptrace binary through the three failure-shaped
scenarios the flight recorder / watchdog / fatal handler exist for,
checking the *process-level* contract the unit tests cannot:

  1. stall:   a replay wedged by --wedge-ms emits a `kind:"stall"`
              heartbeat-stream document diagnosing mode "wedged"
              within the configured stall threshold, then finishes
              cleanly (exit 0) once the wedge clears.
  2. SIGINT:  an interrupted replay exits 130, writes a parsable
              `kind:"postmortem"` document with ring records, and
              still flushes a stats document marked "partial": true.
  3. SIGTERM: termination exits 143 with a postmortem naming the
              signal.

Usage: run_health_smoke.py <fptrace-binary>

Stdlib only (subprocess/signal/json/tempfile); registered with ctest
from tests/CMakeLists.txt. Exits nonzero with a diagnostic on the
first failed expectation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def fail(message):
    print("run_health_smoke: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def check(cond, message):
    if not cond:
        fail(message)


def read_json_lines(path):
    docs = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                docs.append(json.loads(line))
    return docs


def generate_trace(fptrace, tmp):
    trace = os.path.join(tmp, "smoke.fpt")
    result = subprocess.run(
        [fptrace, "generate", "jacobi", trace, "--scale", "0.05"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    check(result.returncode == 0,
          "trace generation failed: " + result.stdout)
    return trace


def scenario_stall(fptrace, trace, tmp):
    """A wedged handler must be diagnosed within the stall window."""
    heartbeat = os.path.join(tmp, "stall_heartbeat.ndjson")
    result = subprocess.run(
        [fptrace, "replay", trace,
         "--wedge-ms", "600",
         "--flight-recorder",
         "--heartbeat-ns", "50000000",      # beat every 50 ms
         "--stall-ns", "150000000",         # diagnose after 150 ms
         "--heartbeat-out", heartbeat],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=120)
    check(result.returncode == 0,
          "wedged replay should still finish cleanly, got %d:\n%s"
          % (result.returncode, result.stdout))

    docs = read_json_lines(heartbeat)
    stalls = [d for d in docs if d.get("kind") == "stall"]
    beats = [d for d in docs if d.get("kind") == "heartbeat"]
    check(len(beats) >= 2, "expected >= 2 heartbeats, got %d" % len(beats))
    check(len(stalls) >= 1, "wedged run produced no stall document")
    stall = stalls[0]
    check(stall["mode"] == "wedged",
          "expected mode wedged, got %r" % stall.get("mode"))
    check(stall["queue"]["depth"] > 0,
          "wedged stall must report queued work")
    check(stall["stalled_ns"] >= 150000000,
          "stall fired before the threshold")
    # Diagnosed *within* the watchdog interval: the wedge lasts 600 ms,
    # so the stall document must appear while the handler is still
    # stuck, not after the run completes -- i.e. the frozen interval it
    # reports is well under the total wedge time plus one beat.
    check(stall["stalled_ns"] < 600000000 + 50000000,
          "stall diagnosed too late (stalled_ns=%d)" % stall["stalled_ns"])
    check(stall.get("last_event") == "driver.wedge_host",
          "stall should name the wedged event, got %r"
          % stall.get("last_event"))
    print("run_health_smoke: stall scenario ok "
          "(%d beats, stalled_ns=%d)" % (len(beats), stall["stalled_ns"]))


def launch_wedged(fptrace, trace, tmp, tag):
    """Start a replay that wedges for 5 s, leaving time to signal it."""
    stats = os.path.join(tmp, tag + "_stats.json")
    postmortem = os.path.join(tmp, tag + "_postmortem.json")
    proc = subprocess.Popen(
        [fptrace, "replay", trace,
         "--wedge-ms", "5000",
         "--flight-recorder",
         "--stats-json", stats,
         "--postmortem-out", postmortem],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    # Give the run time to install handlers and enter the wedge. The
    # wedge spin polls the interrupt flag, so the signal lands mid-run.
    time.sleep(0.7)
    return proc, stats, postmortem


def check_postmortem(postmortem, expected_reason):
    check(os.path.exists(postmortem),
          "no postmortem written at " + postmortem)
    with open(postmortem, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    check(doc.get("kind") == "postmortem",
          "postmortem kind is %r" % doc.get("kind"))
    check(doc.get("reason") == expected_reason,
          "postmortem reason %r != %r" % (doc.get("reason"),
                                          expected_reason))
    check(doc.get("schema_version") == 1, "postmortem schema_version")
    check("provenance" in doc, "postmortem lacks provenance")
    check(len(doc.get("ring", [])) >= 1, "postmortem ring is empty")
    check(doc.get("records_written", 0) >= 1,
          "postmortem lacks recorder progress")


def scenario_sigint(fptrace, trace, tmp):
    """SIGINT: exit 130, postmortem, partial stats still flushed."""
    proc, stats, postmortem = launch_wedged(fptrace, trace, tmp, "int")
    proc.send_signal(signal.SIGINT)
    out, _ = proc.communicate(timeout=120)
    check(proc.returncode == 130,
          "SIGINT exit code %d != 130:\n%s" % (proc.returncode, out))
    check("interrupted: results above are partial" in out,
          "missing partial-results notice:\n" + out)
    check_postmortem(postmortem, "signal:SIGINT")
    # The partial stats document still made it to disk, marked as such.
    with open(stats, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    check(doc.get("partial") is True, "stats document not marked partial")
    check("groups" in doc, "partial stats lack metric groups")
    print("run_health_smoke: SIGINT scenario ok")


def scenario_sigterm(fptrace, trace, tmp):
    """SIGTERM: exit 143 with a postmortem naming the signal."""
    proc, _, postmortem = launch_wedged(fptrace, trace, tmp, "term")
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    check(proc.returncode == 143,
          "SIGTERM exit code %d != 143:\n%s" % (proc.returncode, out))
    check_postmortem(postmortem, "signal:SIGTERM")
    print("run_health_smoke: SIGTERM scenario ok")


def main():
    if len(sys.argv) != 2:
        fail("usage: run_health_smoke.py <fptrace-binary>")
    fptrace = sys.argv[1]
    check(os.path.exists(fptrace), "no such binary: " + fptrace)
    with tempfile.TemporaryDirectory(prefix="fp_health_") as tmp:
        trace = generate_trace(fptrace, tmp)
        scenario_stall(fptrace, trace, tmp)
        scenario_sigint(fptrace, trace, tmp)
        scenario_sigterm(fptrace, trace, tmp)
    print("run_health_smoke: all scenarios ok")


if __name__ == "__main__":
    main()
