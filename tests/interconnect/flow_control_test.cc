/** Unit tests for credit-based link flow control. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "interconnect/link.hh"
#include "interconnect/topology.hh"

using namespace fp;
using namespace fp::icn;

namespace {

WireMessagePtr
makeMessage(std::uint64_t bytes, GpuId src = 0, GpuId dst = 1)
{
    auto msg = std::make_shared<WireMessage>();
    msg->src = src;
    msg->dst = dst;
    msg->payload_bytes = bytes;
    msg->data_bytes = bytes;
    return msg;
}

} // namespace

TEST(FlowControlTest, SendsFreelyWithinCredits)
{
    common::EventQueue queue;
    int delivered = 0;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) { ++delivered; });
    link.setCreditLimit(300);
    link.send(makeMessage(100));
    link.send(makeMessage(100));
    EXPECT_EQ(link.creditsInUse(), 200u);
    EXPECT_EQ(link.waitingMessages(), 0u);
    queue.run();
    EXPECT_EQ(delivered, 2);
}

TEST(FlowControlTest, BlocksWhenCreditsExhausted)
{
    common::EventQueue queue;
    int delivered = 0;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) { ++delivered; });
    link.setCreditLimit(150);
    link.send(makeMessage(100));
    link.send(makeMessage(100)); // does not fit: waits
    EXPECT_EQ(link.waitingMessages(), 1u);
    EXPECT_EQ(link.creditStalls(), 1u);
    queue.run();
    EXPECT_EQ(delivered, 1); // second message still stuck

    link.releaseCredits(100);
    EXPECT_EQ(link.waitingMessages(), 0u);
    queue.run();
    EXPECT_EQ(delivered, 2);
}

TEST(FlowControlTest, FifoOrderPreservedUnderStalls)
{
    common::EventQueue queue;
    std::vector<std::uint64_t> delivered;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &msg) {
                  delivered.push_back(msg->payload_bytes);
              });
    link.setCreditLimit(100);
    link.send(makeMessage(90)); // fits
    link.send(makeMessage(60)); // waits
    link.send(makeMessage(5));  // would fit, but must queue behind 60
    EXPECT_EQ(link.waitingMessages(), 2u);
    queue.run();
    link.releaseCredits(90);
    queue.run();
    link.releaseCredits(65);
    queue.run();
    EXPECT_EQ(delivered,
              (std::vector<std::uint64_t>{90, 60, 5}));
}

TEST(FlowControlTest, OversizedMessagePanics)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.setCreditLimit(50);
    EXPECT_THROW(link.send(makeMessage(100)), common::SimError);
}

TEST(FlowControlTest, ReleaseUnderflowPanics)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.setCreditLimit(100);
    EXPECT_THROW(link.releaseCredits(10), common::SimError);
}

TEST(FlowControlTest, ZeroLimitMeansUnlimited)
{
    common::EventQueue queue;
    int delivered = 0;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) { ++delivered; });
    for (int i = 0; i < 64; ++i)
        link.send(makeMessage(1 << 20));
    EXPECT_EQ(link.waitingMessages(), 0u);
    queue.run();
    EXPECT_EQ(delivered, 64);
}

TEST(FlowControlTest, OnTransmitFiresWhenSerializationStarts)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.setCreditLimit(100);
    bool first_started = false, second_started = false;
    link.send(makeMessage(80), [&]() { first_started = true; });
    link.send(makeMessage(80), [&]() { second_started = true; });
    EXPECT_TRUE(first_started);
    EXPECT_FALSE(second_started);
    link.releaseCredits(80);
    EXPECT_TRUE(second_started);
}

TEST(FlowControlTest, SlowEndpointBackpressuresThroughSwitch)
{
    // Endpoint buffer of 2 messages; the endpoint consumes slowly.
    // The downlink stalls, the switch buffer fills, and the uplink
    // stalls in turn - classic credit back-pressure.
    common::EventQueue queue;
    FabricParams params;
    params.bytes_per_tick = 1.0;
    params.link_latency = 1;
    params.switch_latency = 1;
    params.switch_buffer_bytes = 200;  // two 100 B messages
    params.endpoint_buffer_bytes = 200;
    SwitchedFabric fabric("fab", queue, 2, params);

    std::vector<Tick> arrivals;
    fabric.setIngressHandler(1, [&](const WireMessagePtr &msg) {
        arrivals.push_back(queue.now());
        // Consume only after a long delay.
        queue.scheduleIn(
            [&fabric, msg]() {
                fabric.releaseEndpointCredits(1, msg->wireBytes());
            },
            10000);
    });

    for (int i = 0; i < 6; ++i)
        fabric.inject(makeMessage(100, 0, 1));
    queue.run();

    ASSERT_EQ(arrivals.size(), 6u);
    // Without flow control all six would arrive within ~800 ticks;
    // with it, later arrivals are gated by the 10000-tick consumption.
    EXPECT_LT(arrivals[1], 2000u);
    EXPECT_GT(arrivals[3], 10000u);
    EXPECT_GT(arrivals[5], 20000u);
    EXPECT_GT(fabric.downlink(1).creditStalls(), 0u);
    EXPECT_GT(fabric.uplink(0).creditStalls(), 0u);
}
