/** Unit tests for the bandwidth-limited link model. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "interconnect/link.hh"
#include "obs/flow.hh"

using namespace fp;
using namespace fp::icn;

namespace {

WireMessagePtr
makeMessage(std::uint64_t payload, std::uint64_t header,
            MessageKind kind = MessageKind::raw_store)
{
    auto msg = std::make_shared<WireMessage>();
    msg->kind = kind;
    msg->src = 0;
    msg->dst = 1;
    msg->payload_bytes = payload;
    msg->header_bytes = header;
    msg->data_bytes = payload;
    return msg;
}

} // namespace

TEST(LinkTest, SerializationTimeMatchesBandwidth)
{
    common::EventQueue queue;
    std::vector<Tick> arrivals;
    // 1 byte per tick, zero latency.
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) {
                  arrivals.push_back(queue.now());
              });

    link.send(makeMessage(100, 0));
    queue.run();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], 100u);
}

TEST(LinkTest, LatencyAddsToDelivery)
{
    common::EventQueue queue;
    std::vector<Tick> arrivals;
    Link link("l", queue, 1.0, 50,
              [&](const WireMessagePtr &) {
                  arrivals.push_back(queue.now());
              });
    link.send(makeMessage(10, 0));
    queue.run();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], 60u);
}

TEST(LinkTest, BackToBackMessagesSerialize)
{
    common::EventQueue queue;
    std::vector<Tick> arrivals;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) {
                  arrivals.push_back(queue.now());
              });
    link.send(makeMessage(100, 0));
    link.send(makeMessage(100, 0));
    EXPECT_EQ(link.busyUntil(), 200u);
    queue.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 100u);
    EXPECT_EQ(arrivals[1], 200u); // queued behind the first
}

TEST(LinkTest, IdleGapsDoNotAccumulate)
{
    common::EventQueue queue;
    std::vector<Tick> arrivals;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) {
                  arrivals.push_back(queue.now());
              });
    link.send(makeMessage(10, 0));
    queue.run();
    // Inject a second message later, after the link went idle.
    queue.schedule([&]() { link.send(makeMessage(10, 0)); }, 1000);
    queue.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1], 1010u);
}

TEST(LinkTest, HeaderBytesOccupyWireTime)
{
    common::EventQueue queue;
    std::vector<Tick> arrivals;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &) {
                  arrivals.push_back(queue.now());
              });
    link.send(makeMessage(50, 30));
    queue.run();
    EXPECT_EQ(arrivals[0], 80u);
}

TEST(LinkTest, FractionalBandwidthCeils)
{
    common::EventQueue queue;
    Link link("l", queue, 0.032, 0, nullptr); // PCIe 4.0 B/ps
    link.send(makeMessage(32, 0));
    // 32 / 0.032 = 1000 ticks exactly.
    EXPECT_EQ(link.busyUntil(), 1000u);
}

TEST(LinkTest, StatsAccumulate)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.send(makeMessage(100, 20));
    link.send(makeMessage(50, 10, MessageKind::finepack_packet));
    queue.run();
    EXPECT_EQ(link.payloadBytes(), 150u);
    EXPECT_EQ(link.headerBytes(), 30u);
    EXPECT_EQ(link.messageCount(), 2u);
    EXPECT_EQ(link.totalWireBytes(), 180u);
    EXPECT_EQ(link.busyTicks(), 180u);

    const auto &raw = link.kindStats(MessageKind::raw_store);
    EXPECT_EQ(raw.payload_bytes, 100u);
    EXPECT_EQ(raw.messages, 1u);
    const auto &fpk = link.kindStats(MessageKind::finepack_packet);
    EXPECT_EQ(fpk.payload_bytes, 50u);
    EXPECT_EQ(fpk.header_bytes, 10u);
}

TEST(LinkTest, ResetStatsClearsEverything)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.send(makeMessage(100, 20));
    queue.run();
    link.resetStats();
    EXPECT_EQ(link.totalWireBytes(), 0u);
    EXPECT_EQ(link.messageCount(), 0u);
    EXPECT_EQ(link.kindStats(MessageKind::raw_store).messages, 0u);
}

TEST(LinkTest, TxScalarsTrackWireTraffic)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.send(makeMessage(100, 20));
    link.send(makeMessage(50, 10)); // queued behind the first
    queue.run();
    EXPECT_EQ(link.bytesTx(), 180u);
    EXPECT_EQ(link.msgsTx(), 2u);
    // The second message enqueued at 0 but started at 120.
    EXPECT_EQ(link.queueWaitTicks(), 120u);
}

TEST(LinkTest, ResetStatsClearsTxScalars)
{
    common::EventQueue queue;
    Link link("l", queue, 1.0, 0, nullptr);
    link.send(makeMessage(100, 20));
    link.send(makeMessage(50, 10));
    queue.run();
    link.resetStats();
    EXPECT_EQ(link.bytesTx(), 0u);
    EXPECT_EQ(link.msgsTx(), 0u);
    EXPECT_EQ(link.queueWaitTicks(), 0u);
}

TEST(LinkTest, FlowCollectorSeesTransmitsAndOccupantWait)
{
    common::EventQueue queue;
    obs::FlowCollector flows(1000);
    flows.beginRun(2);
    Link link("l", queue, 1.0, 0, nullptr);
    std::uint32_t id = flows.registerLink(
        link.name(), obs::FlowCollector::LinkKind::uplink, 0);
    link.setFlowCollector(&flows, id);

    link.send(makeMessage(100, 0));
    link.send(makeMessage(50, 0)); // waits 100 ticks behind the first
    queue.run();
    flows.endRun(queue.now());

    const auto &stats = flows.links()[id];
    EXPECT_EQ(stats.msgs, 2u);
    EXPECT_EQ(stats.wire_bytes, 150u);
    EXPECT_EQ(stats.busy_ticks, 150u);
    EXPECT_EQ(stats.wait_ticks, 100u);
    // Both messages belong to flow g0->g1, so the wait self-attributes
    // through the occupant (the first message), not the fallback.
    EXPECT_EQ(flows.flow(0, 1).delay_caused_ticks, 100u);
    EXPECT_EQ(flows.flow(0, 1).delay_suffered_ticks, 100u);
    EXPECT_EQ(flows.interferenceTicks(0, 0), 100u);

    // Detaching stops the reporting.
    link.setFlowCollector(nullptr, 0);
    link.send(makeMessage(10, 0));
    queue.run();
    EXPECT_EQ(flows.links()[id].msgs, 2u);
}

TEST(LinkTest, DeliveryPreservesMessageContents)
{
    common::EventQueue queue;
    WireMessagePtr received;
    Link link("l", queue, 1.0, 0,
              [&](const WireMessagePtr &msg) { received = msg; });
    auto sent = makeMessage(64, 26);
    sent->stores.emplace_back(0x1000, 8, 0, 1);
    link.send(sent);
    queue.run();
    ASSERT_NE(received, nullptr);
    EXPECT_EQ(received.get(), sent.get());
    ASSERT_EQ(received->stores.size(), 1u);
    EXPECT_EQ(received->stores[0].addr, 0x1000u);
}
