/** Unit tests for the PCIe / NVLink byte-accounting models (Figure 2). */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "interconnect/message.hh"
#include "interconnect/protocol.hh"

using namespace fp;
using namespace fp::icn;

TEST(PcieProtocolTest, GenerationBandwidths)
{
    // The paper: "bandwidths ranging from 32GB/s for PCIe 4.0 to
    // 128GB/s for PCIe 6.0".
    EXPECT_EQ(pcieBandwidthBytesPerSec(PcieGen::gen4),
              32ull * 1000 * 1000 * 1000);
    EXPECT_EQ(pcieBandwidthBytesPerSec(PcieGen::gen6),
              128ull * 1000 * 1000 * 1000);
    EXPECT_EQ(pcieBandwidthBytesPerSec(PcieGen::gen5),
              2 * pcieBandwidthBytesPerSec(PcieGen::gen4));
}

TEST(PcieProtocolTest, TlpOverheadIsFixedPerPacket)
{
    PcieProtocol pcie(PcieGen::gen4);
    const auto &p = pcie.params();
    EXPECT_EQ(pcie.tlpOverhead(),
              p.framing_bytes + p.header_bytes + p.lcrc_bytes +
                  p.dllp_bytes_per_tlp);
    EXPECT_EQ(pcie.maxPayload(), 4096u);
}

TEST(PcieProtocolTest, PayloadIsDwPadded)
{
    PcieProtocol pcie(PcieGen::gen4);
    EXPECT_EQ(pcie.payloadOnWire(0, 4), 4u);
    EXPECT_EQ(pcie.payloadOnWire(0, 1), 4u);
    EXPECT_EQ(pcie.payloadOnWire(0, 5), 8u);
    // Misaligned access covers an extra DW.
    EXPECT_EQ(pcie.payloadOnWire(2, 4), 8u);
    EXPECT_EQ(pcie.payloadOnWire(0, 128), 128u);
    EXPECT_EQ(pcie.payloadOnWire(0, 0), 0u);
}

TEST(PcieProtocolTest, GoodputIncreasesWithSize)
{
    PcieProtocol pcie(PcieGen::gen4);
    double prev = 0.0;
    for (std::uint64_t size : {4, 8, 16, 32, 64, 128, 256, 1024, 4096}) {
        double g = pcie.goodput(size);
        EXPECT_GT(g, prev) << "size " << size;
        EXPECT_LT(g, 1.0);
        prev = g;
    }
}

TEST(PcieProtocolTest, SmallStoresRoughlyHalfAsEfficientAs128B)
{
    // Figure 2 / Section I: "32B transfers are roughly half as
    // efficient as transfers of 128B or larger".
    PcieProtocol pcie(PcieGen::gen4);
    double ratio = pcie.goodput(32) / pcie.goodput(4096);
    EXPECT_GT(ratio, 0.35);
    EXPECT_LT(ratio, 0.65);
}

TEST(PcieProtocolTest, BulkTransfersNearPeak)
{
    PcieProtocol pcie(PcieGen::gen4);
    EXPECT_GT(pcie.goodput(4096), 0.98);
    // Multi-TLP transfers keep the per-TLP overheads.
    EXPECT_GT(pcie.goodput(1 << 20), 0.98);
    EXPECT_LT(pcie.goodput(1 << 20), 1.0);
}

TEST(PcieProtocolTest, StoreWireBytesComposition)
{
    PcieProtocol pcie(PcieGen::gen4);
    EXPECT_EQ(pcie.storeWireBytes(0, 8),
              pcie.tlpOverhead() + 8);
    EXPECT_EQ(pcie.storeWireBytes(0, 7),
              pcie.tlpOverhead() + 8); // padded
}

TEST(PcieProtocolTest, OversizedStorePanics)
{
    PcieProtocol pcie(PcieGen::gen4);
    EXPECT_THROW(pcie.storeWireBytes(0, 8192), common::SimError);
}

TEST(PcieProtocolTest, BytesPerTickConsistent)
{
    PcieProtocol pcie(PcieGen::gen4);
    // 32 GB/s = 0.032 bytes per picosecond tick.
    EXPECT_NEAR(pcie.bytesPerTick(), 0.032, 1e-9);
}

TEST(NvlinkProtocolTest, ByteEnableFlitRule)
{
    NvlinkProtocol nvlink;
    // Flit-aligned multiples of the flit size need no BE flit.
    EXPECT_FALSE(nvlink.needsByteEnableFlit(0, 16));
    EXPECT_FALSE(nvlink.needsByteEnableFlit(32, 64));
    // Partial or misaligned coverage needs one.
    EXPECT_TRUE(nvlink.needsByteEnableFlit(0, 8));
    EXPECT_TRUE(nvlink.needsByteEnableFlit(8, 16));
    EXPECT_TRUE(nvlink.needsByteEnableFlit(0, 24));
}

TEST(NvlinkProtocolTest, GoodputSpikesAtFlitMultiples)
{
    // Footnote 1: NVLink may or may not send a byte-enable flit based
    // on size and alignment, producing goodput spikes.
    NvlinkProtocol nvlink;
    double g16 = nvlink.goodput(16);
    double g24 = nvlink.goodput(24);
    double g32 = nvlink.goodput(32);
    EXPECT_GT(g16, g24); // 16 B aligned beats the larger 24 B write
    EXPECT_GT(g32, g24);
}

TEST(NvlinkProtocolTest, WireBytesAreWholeFlits)
{
    NvlinkProtocol nvlink;
    for (std::uint64_t size : {1, 8, 16, 31, 32, 100, 256}) {
        EXPECT_EQ(nvlink.storeWireBytes(0, size) % 16, 0u)
            << "size " << size;
    }
}

TEST(NvlinkProtocolTest, SmallStoreEfficiencySimilarToPcie)
{
    // Section IV-C: "the small packet efficiency of PCIe and NVLink is
    // similar for sub-cache line stores".
    PcieProtocol pcie(PcieGen::gen4);
    NvlinkProtocol nvlink;
    for (std::uint64_t size : {8, 32}) {
        double ratio = nvlink.goodput(size) / pcie.goodput(size);
        EXPECT_GT(ratio, 0.5) << "size " << size;
        EXPECT_LT(ratio, 2.0) << "size " << size;
    }
}

TEST(MessageKindTest, ToStringCoversAllKinds)
{
    EXPECT_STREQ(toString(MessageKind::raw_store), "raw-store");
    EXPECT_STREQ(toString(MessageKind::finepack_packet), "finepack");
    EXPECT_STREQ(toString(MessageKind::dma_chunk), "dma");
    EXPECT_STREQ(toString(MessageKind::write_combine_line), "wc-line");
    EXPECT_STREQ(toString(MessageKind::atomic_op), "atomic");
}

TEST(PcieGenTest, ToStringNames)
{
    EXPECT_STREQ(toString(PcieGen::gen4), "PCIe 4.0");
    EXPECT_STREQ(toString(PcieGen::gen6), "PCIe 6.0");
}
