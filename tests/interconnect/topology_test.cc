/** Unit tests for the switched star fabric. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "common/logging.hh"
#include "interconnect/topology.hh"

using namespace fp;
using namespace fp::icn;

namespace {

WireMessagePtr
makeMessage(GpuId src, GpuId dst, std::uint64_t bytes)
{
    auto msg = std::make_shared<WireMessage>();
    msg->src = src;
    msg->dst = dst;
    msg->payload_bytes = bytes;
    msg->header_bytes = 0;
    msg->data_bytes = bytes;
    return msg;
}

struct Fixture
{
    common::EventQueue queue;
    FabricParams params;
    std::unique_ptr<SwitchedFabric> fabric;
    std::vector<std::vector<std::pair<GpuId, Tick>>> received;

    explicit Fixture(std::uint32_t gpus = 4)
    {
        params.bytes_per_tick = 1.0;
        params.link_latency = 10;
        params.switch_latency = 5;
        fabric = std::make_unique<SwitchedFabric>("fab", queue, gpus,
                                                  params);
        received.resize(gpus);
        for (GpuId g = 0; g < gpus; ++g) {
            fabric->setIngressHandler(
                g, [this, g](const WireMessagePtr &msg) {
                    received[g].emplace_back(msg->src, queue.now());
                });
        }
    }
};

} // namespace

TEST(TopologyTest, RoutesToCorrectDestination)
{
    Fixture f;
    f.fabric->inject(makeMessage(0, 2, 100));
    f.queue.run();
    EXPECT_TRUE(f.received[1].empty());
    EXPECT_TRUE(f.received[3].empty());
    ASSERT_EQ(f.received[2].size(), 1u);
    EXPECT_EQ(f.received[2][0].first, 0u);
}

TEST(TopologyTest, TwoHopTiming)
{
    Fixture f;
    f.fabric->inject(makeMessage(0, 1, 100));
    f.queue.run();
    // Uplink: 100 ticks serialize + 15 (wire + switch), then downlink:
    // 100 serialize + 10 wire.
    ASSERT_EQ(f.received[1].size(), 1u);
    EXPECT_EQ(f.received[1][0].second, 100u + 15u + 100u + 10u);
}

TEST(TopologyTest, UplinkSharedBySameSourceTraffic)
{
    Fixture f;
    // Two messages from GPU 0 to different destinations share 0's
    // uplink and serialize there.
    f.fabric->inject(makeMessage(0, 1, 100));
    f.fabric->inject(makeMessage(0, 2, 100));
    f.queue.run();
    ASSERT_EQ(f.received[1].size(), 1u);
    ASSERT_EQ(f.received[2].size(), 1u);
    EXPECT_EQ(f.received[1][0].second, 225u);
    EXPECT_EQ(f.received[2][0].second, 325u); // queued on the uplink
}

TEST(TopologyTest, DownlinkContentionFromManySources)
{
    Fixture f;
    // Different uplinks, same destination: contention at 3's downlink.
    f.fabric->inject(makeMessage(0, 3, 100));
    f.fabric->inject(makeMessage(1, 3, 100));
    f.queue.run();
    ASSERT_EQ(f.received[3].size(), 2u);
    Tick first = f.received[3][0].second;
    Tick second = f.received[3][1].second;
    EXPECT_EQ(first, 225u);
    // The second message arrives at the switch at the same time but
    // must wait for the downlink to free.
    EXPECT_EQ(second, 325u);
}

TEST(TopologyTest, DistinctPairsFlowInParallel)
{
    Fixture f;
    f.fabric->inject(makeMessage(0, 1, 100));
    f.fabric->inject(makeMessage(2, 3, 100));
    f.queue.run();
    // No shared links: both take the unloaded time.
    EXPECT_EQ(f.received[1][0].second, 225u);
    EXPECT_EQ(f.received[3][0].second, 225u);
}

TEST(TopologyTest, SelfSendPanics)
{
    Fixture f;
    EXPECT_THROW(f.fabric->inject(makeMessage(1, 1, 10)),
                 common::SimError);
}

TEST(TopologyTest, BadGpuIdPanics)
{
    Fixture f;
    EXPECT_THROW(f.fabric->inject(makeMessage(0, 9, 10)),
                 common::SimError);
}

TEST(TopologyTest, InjectedBytesCountedOncePerMessage)
{
    Fixture f;
    f.fabric->inject(makeMessage(0, 1, 64));
    f.fabric->inject(makeMessage(2, 1, 64));
    f.queue.run();
    EXPECT_EQ(f.fabric->totalInjectedWireBytes(), 128u);
    // Downlink 1 carried both messages.
    EXPECT_EQ(f.fabric->downlink(1).totalWireBytes(), 128u);
    EXPECT_EQ(f.fabric->downlink(0).totalWireBytes(), 0u);
}

TEST(TopologyTest, PcieFabricParamsMatchProtocol)
{
    FabricParams params = FabricParams::forPcie(PcieGen::gen4);
    EXPECT_NEAR(params.bytes_per_tick, 0.032, 1e-9);
    FabricParams params6 = FabricParams::forPcie(PcieGen::gen6);
    EXPECT_NEAR(params6.bytes_per_tick / params.bytes_per_tick, 4.0,
                1e-9);
}

TEST(TopologyTest, BusyUntilTracksLatestLink)
{
    Fixture f;
    EXPECT_EQ(f.fabric->busyUntil(), 0u);
    f.fabric->inject(makeMessage(0, 1, 100));
    EXPECT_EQ(f.fabric->busyUntil(), 100u); // uplink busy
    f.queue.run();
    EXPECT_GE(f.fabric->busyUntil(), 215u); // downlink finished later
}
