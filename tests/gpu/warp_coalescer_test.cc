/** Unit tests for intra-warp store coalescing (Section III / Fig. 4). */

#include <gtest/gtest.h>

#include "gpu/warp_coalescer.hh"

using namespace fp;
using namespace fp::gpu;

namespace {

std::vector<LaneAccess>
contiguousWarp(Addr base, std::uint32_t lanes, std::uint32_t size)
{
    std::vector<LaneAccess> result;
    for (std::uint32_t i = 0; i < lanes; ++i)
        result.push_back(LaneAccess{base + i * size, size});
    return result;
}

} // namespace

TEST(WarpCoalescerTest, ContiguousWarpCoalescesToCacheLines)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    // 32 threads x 8 B contiguous = 256 B = two full 128 B lines.
    coalescer.coalesce(contiguousWarp(0x1000, 32, 8), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(out[0].size, 128u);
    EXPECT_EQ(out[1].addr, 0x1080u);
    EXPECT_EQ(out[1].size, 128u);
}

TEST(WarpCoalescerTest, Contiguous4ByteWarpIsOneAccess)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    coalescer.coalesce(contiguousWarp(0x1000, 32, 4), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size, 128u);
}

TEST(WarpCoalescerTest, StridedWarpDoesNotCoalesce)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    std::vector<LaneAccess> lanes;
    for (std::uint32_t i = 0; i < 32; ++i)
        lanes.push_back(LaneAccess{static_cast<Addr>(i) * 1024, 8});
    coalescer.coalesce(lanes, out);
    ASSERT_EQ(out.size(), 32u);
    for (const auto &access : out)
        EXPECT_EQ(access.size, 8u);
}

TEST(WarpCoalescerTest, UnsortedLanesStillCoalesce)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> lanes = {
        {0x1010, 8}, {0x1000, 8}, {0x1008, 8}, {0x1018, 8}};
    std::vector<LaneAccess> out;
    coalescer.coalesce(lanes, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(out[0].size, 32u);
}

TEST(WarpCoalescerTest, OverlappingLanesMerge)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> lanes = {{0x1000, 8}, {0x1004, 8}};
    std::vector<LaneAccess> out;
    coalescer.coalesce(lanes, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size, 12u);
}

TEST(WarpCoalescerTest, GapSplitsAccesses)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> lanes = {{0x1000, 8}, {0x1010, 8}};
    std::vector<LaneAccess> out;
    coalescer.coalesce(lanes, out);
    ASSERT_EQ(out.size(), 2u);
}

TEST(WarpCoalescerTest, LineBoundarySplitsContiguousRun)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> lanes = {{0x1070, 16}, {0x1080, 16}};
    std::vector<LaneAccess> out;
    coalescer.coalesce(lanes, out);
    // Contiguous 32 B run crossing the 128 B line at 0x1080 splits.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x1070u);
    EXPECT_EQ(out[0].size, 16u);
    EXPECT_EQ(out[1].addr, 0x1080u);
    EXPECT_EQ(out[1].size, 16u);
}

TEST(WarpCoalescerTest, SingleLaneScalarStore)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    coalescer.coalesce({{0xdeadbe00, 8}}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0xdeadbe00u);
    EXPECT_EQ(out[0].size, 8u);
}

TEST(WarpCoalescerTest, EmptyWarpProducesNothing)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    EXPECT_EQ(coalescer.coalesce({}, out), 0u);
    EXPECT_TRUE(out.empty());
}

TEST(WarpCoalescerTest, HistogramTracksSizes)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    coalescer.coalesce(contiguousWarp(0x0, 32, 4), out);   // one 128 B
    coalescer.coalesce({{0x10000, 8}}, out);               // one 8 B
    const auto &hist = coalescer.sizeHistogram();
    EXPECT_EQ(hist.total(), 2u);
    // Bucket 5 covers 65..128 B, bucket 1 covers 5..8 B.
    EXPECT_EQ(hist.counts()[5], 1u);
    EXPECT_EQ(hist.counts()[1], 1u);
}

TEST(WarpCoalescerTest, CoalesceToStoresTagsEndpoints)
{
    WarpCoalescer coalescer;
    std::vector<icn::Store> stores;
    coalescer.coalesceToStores(contiguousWarp(0x2000, 16, 8), 2, 3,
                               stores);
    ASSERT_EQ(stores.size(), 1u);
    EXPECT_EQ(stores[0].src, 2u);
    EXPECT_EQ(stores[0].dst, 3u);
    EXPECT_EQ(stores[0].size, 128u);
}

TEST(WarpCoalescerTest, CountersAccumulate)
{
    WarpCoalescer coalescer;
    std::vector<LaneAccess> out;
    coalescer.coalesce(contiguousWarp(0x0, 32, 8), out);
    EXPECT_EQ(coalescer.lanesIn(), 32u);
    EXPECT_EQ(coalescer.accessesOut(), 2u);
}
