/** Unit tests for the paradigm-dependent GPU egress port. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "gpu/egress_port.hh"
#include "interconnect/topology.hh"

using namespace fp;
using namespace fp::gpu;
using fp::icn::Store;

namespace {

struct Fixture
{
    common::EventQueue queue;
    icn::FabricParams params;
    std::unique_ptr<icn::SwitchedFabric> fabric;
    std::unique_ptr<EgressPort> port;
    std::vector<icn::WireMessagePtr> arrived;

    explicit Fixture(EgressMode mode,
                     finepack::FinePackConfig config =
                         finepack::defaultConfig())
    {
        params.bytes_per_tick = 1.0;
        params.link_latency = 1;
        params.switch_latency = 1;
        fabric = std::make_unique<icn::SwitchedFabric>("fab", queue, 4,
                                                       params);
        for (GpuId g = 0; g < 4; ++g) {
            fabric->setIngressHandler(
                g, [this](const icn::WireMessagePtr &msg) {
                    arrived.push_back(msg);
                });
        }
        port = std::make_unique<EgressPort>(
            "egress", queue, 0, 4, mode, config,
            icn::PcieProtocol(icn::PcieGen::gen4), *fabric);
    }

    Store
    store(Addr addr, std::uint32_t size, GpuId dst = 1)
    {
        return Store(addr, size, 0, dst);
    }
};

} // namespace

TEST(EgressPortTest, RawModeOneMessagePerStore)
{
    Fixture f(EgressMode::raw_p2p);
    f.port->issueStore(f.store(0x1000, 8));
    f.port->issueStore(f.store(0x2000, 8, 2));
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 2u);
    EXPECT_EQ(f.arrived[0]->kind, icn::MessageKind::raw_store);
    EXPECT_EQ(f.port->storesIssued(), 2u);
    EXPECT_EQ(f.port->messagesSent(), 2u);
}

TEST(EgressPortTest, RawBatchGroupsByDestination)
{
    Fixture f(EgressMode::raw_p2p);
    std::vector<Store> stores = {
        f.store(0x1000, 8, 1), f.store(0x2000, 8, 2),
        f.store(0x1100, 8, 1), f.store(0x3000, 8, 3),
    };
    f.port->issueStores(stores, 0, stores.size());
    f.queue.run();
    // One aggregate message per destination present in the batch.
    ASSERT_EQ(f.arrived.size(), 3u);
    std::uint64_t total_stores = 0;
    for (const auto &msg : f.arrived)
        total_stores += msg->stores.size();
    EXPECT_EQ(total_stores, 4u);

    // Byte accounting matches the per-store sum exactly.
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    for (const auto &msg : f.arrived) {
        std::uint64_t expect_header =
            msg->stores.size() * protocol.tlpOverhead();
        EXPECT_EQ(msg->header_bytes, expect_header);
    }
}

TEST(EgressPortTest, FinePackModeBuffersUntilFence)
{
    Fixture f(EgressMode::finepack);
    f.port->issueStore(f.store(0x1000, 8));
    f.port->issueStore(f.store(0x1100, 8));
    f.queue.run();
    EXPECT_TRUE(f.arrived.empty()); // still buffered

    f.port->releaseFence();
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_EQ(f.arrived[0]->kind, icn::MessageKind::finepack_packet);
    EXPECT_EQ(f.arrived[0]->packed_store_count, 2u);
    EXPECT_DOUBLE_EQ(f.port->avgStoresPerMessage(), 2.0);
}

TEST(EgressPortTest, FinePackWindowViolationEmitsPacket)
{
    Fixture f(EgressMode::finepack);
    f.port->issueStore(f.store(0x1000, 8));
    // 5 B sub-header -> 1 GiB window; jump past it.
    f.port->issueStore(f.store(0x1000 + 2 * GiB, 8));
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_EQ(f.arrived[0]->stores.size(), 1u);
}

TEST(EgressPortTest, CrossLineStoreIsSplit)
{
    Fixture f(EgressMode::finepack);
    // 16 B store crossing a line boundary splits into two pieces.
    f.port->issueStore(f.store(0x1078, 16));
    f.port->releaseFence();
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_EQ(f.arrived[0]->stores.size(), 2u);
    EXPECT_EQ(f.arrived[0]->data_bytes, 16u);
    EXPECT_EQ(f.port->storesIssued(), 2u);
}

TEST(EgressPortTest, AtomicBypassesCoalescingAndFlushesConflict)
{
    Fixture f(EgressMode::finepack);
    f.port->issueStore(f.store(0x1000, 8));
    Store atomic = f.store(0x1004, 4);
    atomic.is_atomic = true;
    f.port->issueStore(atomic);
    f.queue.run();
    // The conflicting partition flushed, then the atomic went out.
    ASSERT_EQ(f.arrived.size(), 2u);
    EXPECT_EQ(f.arrived[0]->kind, icn::MessageKind::finepack_packet);
    EXPECT_EQ(f.arrived[1]->kind, icn::MessageKind::atomic_op);
    EXPECT_EQ(f.port->atomicsSent(), 1u);
}

TEST(EgressPortTest, AtomicWithoutConflictJustSends)
{
    Fixture f(EgressMode::finepack);
    f.port->issueStore(f.store(0x1000, 8));
    Store atomic = f.store(0x9000, 4);
    atomic.is_atomic = true;
    f.port->issueStore(atomic);
    f.queue.run();
    // No overlap: only the atomic leaves; the store stays buffered.
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_EQ(f.arrived[0]->kind, icn::MessageKind::atomic_op);
}

TEST(EgressPortTest, RemoteLoadFlushesSameAddress)
{
    Fixture f(EgressMode::finepack);
    f.port->issueStore(f.store(0x1000, 8));
    f.port->notifyRemoteLoad(1, 0x1004, 2);
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    // Loads to other destinations or addresses leave the queue alone.
    f.arrived.clear();
    f.port->issueStore(f.store(0x1000, 8));
    f.port->notifyRemoteLoad(2, 0x1000, 8);
    f.port->notifyRemoteLoad(1, 0x8000, 8);
    f.queue.run();
    EXPECT_TRUE(f.arrived.empty());
}

TEST(EgressPortTest, WriteCombineModeEmitsFullLines)
{
    Fixture f(EgressMode::write_combine);
    f.port->issueStore(f.store(0x1000, 8));
    f.port->issueStore(f.store(0x1040, 8));
    f.port->releaseFence();
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_EQ(f.arrived[0]->kind,
              icn::MessageKind::write_combine_line);
    EXPECT_EQ(f.arrived[0]->payload_bytes, 128u);
    EXPECT_EQ(f.arrived[0]->data_bytes, 16u);
}

TEST(EgressPortTest, FenceOnRawModeIsNoOp)
{
    Fixture f(EgressMode::raw_p2p);
    f.port->releaseFence();
    f.queue.run();
    EXPECT_TRUE(f.arrived.empty());
}

TEST(EgressPortTest, StatsAccessorsGuardedByMode)
{
    Fixture f(EgressMode::raw_p2p);
    EXPECT_THROW(f.port->writeQueue(), common::SimError);
    EXPECT_THROW(f.port->packetizer(), common::SimError);
}

TEST(EgressPortTest, TimeoutFlushDrainsIdlePartition)
{
    common::EventQueue queue;
    icn::FabricParams params;
    params.bytes_per_tick = 1.0;
    params.link_latency = 1;
    params.switch_latency = 1;
    icn::SwitchedFabric fabric("fab", queue, 4, params);
    std::vector<icn::WireMessagePtr> arrived;
    for (GpuId g = 0; g < 4; ++g)
        fabric.setIngressHandler(
            g, [&](const icn::WireMessagePtr &msg) {
                arrived.push_back(msg);
            });

    const Tick timeout = 1000;
    EgressPort port("egress", queue, 0, 4, EgressMode::finepack,
                    finepack::defaultConfig(),
                    icn::PcieProtocol(icn::PcieGen::gen4), fabric,
                    timeout);

    port.issueStore(icn::Store(0x1000, 8, 0, 1));
    // Nothing flushes before the timeout.
    queue.run(timeout - 1);
    EXPECT_TRUE(arrived.empty());
    // The idle partition flushes at the timeout.
    queue.run();
    ASSERT_EQ(arrived.size(), 1u);
    EXPECT_EQ(port.timeoutFlushes(), 1u);
}

TEST(EgressPortTest, TimeoutReArmsWhilePushesContinue)
{
    common::EventQueue queue;
    icn::FabricParams params;
    params.bytes_per_tick = 1.0;
    params.link_latency = 1;
    params.switch_latency = 1;
    icn::SwitchedFabric fabric("fab", queue, 4, params);
    std::vector<icn::WireMessagePtr> arrived;
    for (GpuId g = 0; g < 4; ++g)
        fabric.setIngressHandler(
            g, [&](const icn::WireMessagePtr &msg) {
                arrived.push_back(msg);
            });

    const Tick timeout = 1000;
    EgressPort port("egress", queue, 0, 4, EgressMode::finepack,
                    finepack::defaultConfig(),
                    icn::PcieProtocol(icn::PcieGen::gen4), fabric,
                    timeout);

    // Keep the partition warm: pushes every 400 ticks < timeout.
    for (int i = 0; i < 5; ++i) {
        queue.schedule(
            [&port, i]() {
                port.issueStore(
                    icn::Store(0x1000 + i * 8, 8, 0, 1));
            },
            static_cast<Tick>(i) * 400);
    }
    queue.run(2000);
    EXPECT_TRUE(arrived.empty()); // never idle long enough
    queue.run();                  // idle period after the last push
    ASSERT_EQ(arrived.size(), 1u);
    EXPECT_EQ(arrived[0]->packed_store_count, 5u);
}

TEST(EgressPortTest, ZeroTimeoutDisablesFeature)
{
    common::EventQueue queue;
    icn::FabricParams params;
    params.bytes_per_tick = 1.0;
    icn::SwitchedFabric fabric("fab", queue, 4, params);
    std::vector<icn::WireMessagePtr> arrived;
    for (GpuId g = 0; g < 4; ++g)
        fabric.setIngressHandler(
            g, [&](const icn::WireMessagePtr &msg) {
                arrived.push_back(msg);
            });
    EgressPort port("egress", queue, 0, 4, EgressMode::finepack,
                    finepack::defaultConfig(),
                    icn::PcieProtocol(icn::PcieGen::gen4), fabric, 0);
    port.issueStore(icn::Store(0x1000, 8, 0, 1));
    queue.run();
    EXPECT_TRUE(arrived.empty());
    EXPECT_EQ(port.timeoutFlushes(), 0u);
}
