/** Unit tests for the ingress port, DMA engine, and GPU config. */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "gpu/dma_engine.hh"
#include "gpu/functional_memory.hh"
#include "gpu/gpu_config.hh"
#include "gpu/ingress_port.hh"
#include "interconnect/topology.hh"

using namespace fp;
using namespace fp::gpu;

TEST(GpuConfigTest, TableIIIParameters)
{
    GpuConfig config = gv100Config();
    EXPECT_EQ(config.cache_line, 128u);
    EXPECT_EQ(config.global_memory, 16 * GiB);
    EXPECT_EQ(config.num_sms, 80u);
    EXPECT_EQ(config.cores_per_sm, 64u);
    EXPECT_EQ(config.l2_size, 6 * MiB);
    EXPECT_EQ(config.warp_size, 32u);
    EXPECT_EQ(config.max_threads_per_sm, 2048u);
    EXPECT_EQ(config.max_threads_per_cta, 1024u);
}

TEST(GpuConfigTest, RooflineModel)
{
    GpuConfig config = gv100Config();
    // Memory-bound kernel: 1 MB at 900 GB/s x 0.75 efficiency.
    Tick mem_time = config.computeTime(0.0, 1 << 20, 0.75);
    double expect = (1 << 20) / (config.hbmBytesPerTick() * 0.75);
    EXPECT_NEAR(static_cast<double>(mem_time), expect, 2.0);

    // Compute-bound kernel dominates when flops are large.
    Tick flop_time = config.computeTime(1e9, 64, 0.75);
    EXPECT_GT(flop_time, mem_time);

    // Zero work still takes at least one tick.
    EXPECT_GE(config.computeTime(0.0, 0), 1u);
}

TEST(GpuConfigTest, PeakFlopsMatchesClockAndCores)
{
    GpuConfig config = gv100Config();
    EXPECT_NEAR(config.peakFlopsPerSec(),
                80.0 * 64 * 2 * 1.4e9, 1e6);
}

namespace {

struct IngressFixture
{
    common::EventQueue queue;
    GpuConfig config = gv100Config();
    IngressPort port{"ingress", queue, 1, config};

    icn::WireMessagePtr
    makeMessage(std::uint64_t data_bytes)
    {
        auto msg = std::make_shared<icn::WireMessage>();
        msg->dst = 1;
        msg->src = 0;
        msg->payload_bytes = data_bytes;
        msg->data_bytes = data_bytes;
        return msg;
    }
};

} // namespace

TEST(IngressPortTest, CountsDeliveries)
{
    IngressFixture f;
    auto msg = f.makeMessage(64);
    msg->stores.emplace_back(0x1000, 64, 0, 1);
    f.port.receive(msg);
    f.queue.run();
    EXPECT_EQ(f.port.messagesReceived(), 1u);
    EXPECT_EQ(f.port.storesDelivered(), 1u);
    EXPECT_EQ(f.port.bytesDelivered(), 64u);
}

TEST(IngressPortTest, DrainSerializesAtHbmBandwidth)
{
    IngressFixture f;
    f.port.receive(f.makeMessage(9000));
    f.port.receive(f.makeMessage(9000));
    Tick expected = static_cast<Tick>(
        2.0 * 9000.0 / f.config.hbmBytesPerTick()) ;
    EXPECT_NEAR(static_cast<double>(f.port.drainedAt()),
                static_cast<double>(expected), 4.0);
}

TEST(IngressPortTest, AppliesDataToFunctionalMemory)
{
    IngressFixture f;
    FunctionalMemory memory;
    f.port.attachMemory(&memory);
    auto msg = f.makeMessage(4);
    icn::Store store(0x1000, 4, 0, 1);
    store.data = {1, 2, 3, 4};
    msg->stores.push_back(store);
    f.port.receive(msg);
    f.queue.run();
    EXPECT_EQ(memory.readByte(0x1000), 1);
    EXPECT_EQ(memory.readByte(0x1003), 4);
}

TEST(IngressPortTest, DeliveredCallbackFires)
{
    IngressFixture f;
    int called = 0;
    f.port.setDeliveredCallback(
        [&](const icn::WireMessagePtr &) { ++called; });
    f.port.receive(f.makeMessage(8));
    f.queue.run();
    EXPECT_EQ(called, 1);
}

TEST(IngressPortTest, WrongDestinationPanics)
{
    IngressFixture f;
    auto msg = f.makeMessage(8);
    msg->dst = 3;
    EXPECT_THROW(f.port.receive(msg), common::SimError);
}

namespace {

struct DmaFixture
{
    common::EventQueue queue;
    GpuConfig config = gv100Config();
    icn::FabricParams params;
    std::unique_ptr<icn::SwitchedFabric> fabric;
    std::unique_ptr<DmaEngine> engine;
    std::vector<icn::WireMessagePtr> arrived;

    DmaFixture()
    {
        params.bytes_per_tick = 1.0;
        params.link_latency = 0;
        params.switch_latency = 0;
        fabric = std::make_unique<icn::SwitchedFabric>("fab", queue, 4,
                                                       params);
        for (GpuId g = 0; g < 4; ++g)
            fabric->setIngressHandler(
                g, [this](const icn::WireMessagePtr &msg) {
                    arrived.push_back(msg);
                });
        engine = std::make_unique<DmaEngine>(
            "dma", queue, 0, config,
            icn::PcieProtocol(icn::PcieGen::gen4), *fabric);
    }
};

} // namespace

TEST(DmaEngineTest, CopySplitsIntoChunks)
{
    DmaFixture f;
    f.engine->copy(1, icn::AddrRange{0x1000, 200 * KiB});
    f.queue.run();
    // 64 KiB chunks: 200 KiB -> 4 messages (3 full + 1 partial).
    ASSERT_EQ(f.arrived.size(), 4u);
    std::uint64_t total = 0;
    for (const auto &msg : f.arrived) {
        EXPECT_EQ(msg->kind, icn::MessageKind::dma_chunk);
        total += msg->dma_range.size;
    }
    EXPECT_EQ(total, 200 * KiB);
    EXPECT_EQ(f.engine->bytesCopied(), 200 * KiB);
}

TEST(DmaEngineTest, HeaderCostPerMaxPayloadTlp)
{
    DmaFixture f;
    icn::PcieProtocol protocol(icn::PcieGen::gen4);
    f.engine->copy(1, icn::AddrRange{0, 64 * KiB});
    f.queue.run();
    ASSERT_EQ(f.arrived.size(), 1u);
    // 64 KiB / 4 KiB payloads = 16 TLPs worth of headers.
    EXPECT_EQ(f.arrived[0]->header_bytes, 16 * protocol.tlpOverhead());
    EXPECT_EQ(f.arrived[0]->payload_bytes, 64 * KiB);
}

TEST(DmaEngineTest, ApiOverheadDelaysData)
{
    DmaFixture f;
    f.engine->copy(1, icn::AddrRange{0, 4096});
    f.queue.run();
    // Nothing can arrive before the software call overhead elapsed.
    ASSERT_EQ(f.arrived.size(), 1u);
    EXPECT_GE(f.queue.now(), f.config.dma_call_overhead);
}

TEST(DmaEngineTest, ConsecutiveCopiesSerializeOnApiPath)
{
    DmaFixture f;
    f.engine->copy(1, icn::AddrRange{0, 4096});
    f.engine->copy(2, icn::AddrRange{0, 4096});
    f.queue.run();
    EXPECT_EQ(f.engine->copiesIssued(), 2u);
    // Two call overheads must have elapsed before the last arrival.
    EXPECT_GE(f.queue.now(), 2 * f.config.dma_call_overhead);
}

TEST(DmaEngineTest, EmptyCopyPanics)
{
    DmaFixture f;
    EXPECT_THROW(f.engine->copy(1, icn::AddrRange{0, 0}),
                 common::SimError);
    EXPECT_THROW(f.engine->copy(0, icn::AddrRange{0, 64}),
                 common::SimError);
}

TEST(FunctionalMemoryTest, ZeroFillAndReadback)
{
    FunctionalMemory memory;
    EXPECT_EQ(memory.readByte(0x1234), 0);
    std::uint8_t data[3] = {7, 8, 9};
    memory.write(0xfff, data, 3); // crosses a page boundary
    EXPECT_EQ(memory.readByte(0xfff), 7);
    EXPECT_EQ(memory.readByte(0x1000), 8);
    EXPECT_EQ(memory.readByte(0x1001), 9);
    EXPECT_EQ(memory.pageCount(), 2u);
}

TEST(FunctionalMemoryTest, SameContentsIgnoresZeroPages)
{
    FunctionalMemory a, b;
    std::uint8_t zero = 0;
    a.write(0x5000, &zero, 1); // allocates an all-zero page
    EXPECT_TRUE(a.sameContents(b));
    EXPECT_TRUE(b.sameContents(a));
    std::uint8_t one = 1;
    b.write(0x9000, &one, 1);
    EXPECT_FALSE(a.sameContents(b));
}

TEST(FunctionalMemoryTest, ApplyRequiresData)
{
    FunctionalMemory memory;
    icn::Store store(0x100, 8, 0, 1);
    EXPECT_THROW(memory.apply(store), common::SimError);
}
