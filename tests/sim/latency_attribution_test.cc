/**
 * End-to-end tests for latency attribution through the simulation
 * driver: every delivered message must carry a complete, monotonic
 * milestone trail (violations == 0) on real workloads across
 * paradigms; attaching the collector must not perturb simulated
 * results; the aggregate latency profile must be invariant under
 * same-tick schedule perturbation; and full-detail traces must carry
 * balanced issue->commit flow event chains.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "obs/latency.hh"
#include "obs/trace_event.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::sim;
using fp::testing::parseJson;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name, std::uint32_t num_gpus = 4,
           double scale = 0.05)
{
    workloads::WorkloadParams params;
    params.num_gpus = num_gpus;
    params.scale = scale;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

/** Order-independent summary of everything the collector aggregated. */
using LatencyDigest =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
               std::vector<std::vector<std::uint64_t>>>;

LatencyDigest
digest(const obs::LatencyCollector &collector)
{
    std::vector<std::vector<std::uint64_t>> counts;
    for (const common::Histogram *hist :
         {&collector.residency(), &collector.serialization(),
          &collector.propagation(), &collector.ingressWait(),
          &collector.total()})
        counts.push_back(hist->counts());
    return {collector.messages(), collector.stores(),
            collector.violations(), std::move(counts)};
}

} // namespace

TEST(LatencyAttributionTest, MilestonesMonotonicAcrossWorkloads)
{
    for (const char *workload : {"pagerank", "sssp"}) {
        for (Paradigm paradigm :
             {Paradigm::finepack, Paradigm::bulk_dma}) {
            obs::LatencyCollector collector;
            SimConfig config;
            config.latency = &collector;
            RunResult result = SimulationDriver(config).run(
                smallTrace(workload), paradigm);

            SCOPED_TRACE(std::string(workload) + " / "
                         + std::to_string(static_cast<int>(paradigm)));
            // Milestone validation happens in record(); any missing or
            // reordered stamp shows up here, and the ingress port
            // additionally hard-fails via FP_INVARIANT.
            EXPECT_EQ(collector.violations(), 0u);
            EXPECT_GT(collector.messages(), 0u);
            EXPECT_EQ(collector.messages(),
                      static_cast<std::uint64_t>(result.messages));
            if (paradigm == Paradigm::finepack) {
                // FinePack stores carry per-store issue stamps.
                EXPECT_GT(collector.stores(), 0u);
                EXPECT_GT(collector.residency().total(), 0u);
            }
            EXPECT_EQ(collector.serialization().total(),
                      collector.messages());
            EXPECT_EQ(collector.propagation().total(),
                      collector.messages());
            EXPECT_EQ(collector.ingressWait().total(),
                      collector.messages());
        }
    }
}

TEST(LatencyAttributionTest, CollectorDoesNotPerturbSimulation)
{
    const auto &trace = smallTrace("pagerank");
    RunResult plain = SimulationDriver().run(trace, Paradigm::finepack);

    obs::LatencyCollector collector;
    SimConfig config;
    config.latency = &collector;
    RunResult observed =
        SimulationDriver(config).run(trace, Paradigm::finepack);

    EXPECT_EQ(observed.total_time, plain.total_time);
    EXPECT_EQ(observed.wire_bytes, plain.wire_bytes);
    EXPECT_EQ(observed.messages, plain.messages);
    EXPECT_EQ(observed.finepack_packets, plain.finepack_packets);
    EXPECT_EQ(observed.oracle_digest, plain.oracle_digest);
}

TEST(LatencyAttributionTest, DigestStableUnderScheduleShuffle)
{
    // Two GPUs: each downlink has a single source, so message arrival
    // order (and therefore the latency aggregate) is schedule
    // independent even under same-tick tie-break permutation.
    const auto &trace = smallTrace("pagerank", /*num_gpus=*/2);

    std::vector<LatencyDigest> digests;
    for (std::uint64_t seed : {0ull, 1ull, 12345ull}) {
        obs::LatencyCollector collector;
        SimConfig config;
        config.latency = &collector;
        config.tie_break_shuffle_seed = seed;
        SimulationDriver(config).run(trace, Paradigm::finepack);
        digests.push_back(digest(collector));
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

TEST(LatencyAttributionTest, FullDetailTraceCarriesFlowChains)
{
    obs::TraceSink tracer(obs::TraceDetail::full);
    SimConfig config;
    config.tracer = &tracer;
    SimulationDriver(config).run(smallTrace("pagerank"),
                                 Paradigm::finepack);

    std::ostringstream os;
    tracer.write(os);
    auto events = parseJson(os.str()).at("traceEvents");

    // Every flow id must open with exactly one "s" and close with
    // exactly one "f" (steps in between are per-hop).
    std::map<double, int> starts, ends;
    std::size_t flow_events = 0;
    for (const auto &e : events.array) {
        const std::string &ph = e.at("ph").string;
        if (ph != "s" && ph != "t" && ph != "f")
            continue;
        ++flow_events;
        double id = e.at("id").number;
        if (ph == "s")
            ++starts[id];
        if (ph == "f") {
            ++ends[id];
            EXPECT_EQ(e.at("bp").string, "e");
        }
    }
    ASSERT_GT(flow_events, 0u);
    EXPECT_EQ(starts.size(), ends.size());
    for (const auto &[id, n] : starts)
        EXPECT_EQ(n, 1) << "flow " << id;
    for (const auto &[id, n] : ends)
        EXPECT_EQ(n, 1) << "flow " << id;
}

TEST(LatencyAttributionTest, NoFlowEventsBelowFullDetail)
{
    obs::TraceSink tracer(obs::TraceDetail::flush);
    SimConfig config;
    config.tracer = &tracer;
    SimulationDriver(config).run(smallTrace("jacobi"),
                                 Paradigm::finepack);
    std::ostringstream os;
    tracer.write(os);
    auto events = parseJson(os.str()).at("traceEvents");
    for (const auto &e : events.array) {
        const std::string &ph = e.at("ph").string;
        EXPECT_TRUE(ph != "s" && ph != "t" && ph != "f") << ph;
    }
}
