/**
 * @file
 * The run-health layer must be a pure observer: attaching the flight
 * recorder and the heartbeat/stall watchdog to a checked finepack run
 * may change nothing the simulation produces -- not the oracle digest,
 * not the stats document, not any RunResult field. This is the same
 * acceptance gate the profiler (PR 7) and sampler rode through; see
 * tests/sim/profiler_digest_test.cc for the mold.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/flight_recorder.hh"
#include "obs/health.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::sim;
using fp::testing::parseJson;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = 0.05;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

/** One checked, instrumented run; flight recorder optional. */
struct CheckedRun
{
    obs::PeriodicSampler sampler{10 * ticks_per_us};
    obs::MetricsCapture metrics;
    RunResult result;

    explicit CheckedRun(const trace::WorkloadTrace &trace,
                        obs::FlightRecorder *recorder = nullptr)
    {
        SimConfig config;
        config.check = true;
        config.sampler = &sampler;
        config.metrics = &metrics;
        config.recorder = recorder;
        result = SimulationDriver(config).run(trace, Paradigm::finepack);
    }

    std::string
    document(bool partial = false)
    {
        std::ostringstream os;
        metrics.writeDocument(os, &sampler, nullptr, nullptr, partial);
        return os.str();
    }
};

void
expectIdenticalResults(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.oracle_digest, b.oracle_digest);
    EXPECT_EQ(a.oracle_transactions, b.oracle_transactions);
    EXPECT_EQ(a.oracle_stores, b.oracle_stores);
    EXPECT_EQ(a.oracle_bytes, b.oracle_bytes);
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.payload_bytes, b.payload_bytes);
    EXPECT_EQ(a.header_bytes, b.header_bytes);
    EXPECT_EQ(a.data_bytes, b.data_bytes);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.useful_bytes, b.useful_bytes);
    EXPECT_EQ(a.protocol_bytes, b.protocol_bytes);
    EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
    EXPECT_EQ(a.finepack_packets, b.finepack_packets);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_EQ(a.interrupted, b.interrupted);
}

} // namespace

TEST(HealthDigest, RecordedRunIsBitIdenticalToPlainRun)
{
    const auto &trace = smallTrace("jacobi");
    CheckedRun plain(trace);
    obs::FlightRecorder recorder; // default 256-slot ring
    CheckedRun recorded(trace, &recorder);

    // The oracle verified real work in both runs ...
    ASSERT_GT(plain.result.oracle_transactions, 0u);
    ASSERT_NE(plain.result.oracle_digest, 0u);
    // ... and the recorder actually rode the run it claims to observe:
    // every executed event became a ring record, the RWQ and fabric
    // taps fired, and the queue counters were published.
    ASSERT_GT(recorder.eventsSeen(), 0u);
    EXPECT_EQ(recorder.eventsSeen(), recorded.result.events_processed);
    EXPECT_GT(recorder.kindCount(obs::FlightKind::rwq_flush), 0u);
    EXPECT_GT(recorder.kindCount(obs::FlightKind::fabric_inject), 0u);
    EXPECT_EQ(recorder.queueProcessed(),
              recorded.result.events_processed);
    EXPECT_EQ(recorder.queueDepth(), 0u);

    expectIdenticalResults(recorded.result, plain.result);
    // The serialized stats document is byte-identical too.
    EXPECT_EQ(recorded.document(), plain.document());
}

TEST(HealthDigest, WatchdogRunIsBitIdenticalToPlainRun)
{
    const auto &trace = smallTrace("sssp");
    CheckedRun plain(trace);

    // Full run-health rig: recorder attached to the driver AND a live
    // watchdog thread beating every 1 ms while the simulation runs,
    // with heartbeats routed to a file so test output stays clean.
    obs::FlightRecorder recorder;
    obs::HealthMonitor::Options options;
    options.heartbeat_ns = 1'000'000ULL;
    options.heartbeat_path =
        ::testing::TempDir() + "health_digest_heartbeat.ndjson";
    obs::HealthMonitor monitor(options);
    monitor.attachRecorder(&recorder);
    monitor.start();
    CheckedRun watched(trace, &recorder);
    monitor.stop();

    expectIdenticalResults(watched.result, plain.result);
    EXPECT_EQ(watched.document(), plain.document());
}

TEST(HealthDigest, PartialFlagOnlyAppearsWhenRequested)
{
    const auto &trace = smallTrace("jacobi");
    CheckedRun run(trace);

    // Complete documents carry no "partial" key at all -- the key's
    // absence is what keeps historical digests stable.
    auto complete = parseJson(run.document());
    EXPECT_FALSE(complete.has("partial"));
    EXPECT_TRUE(complete.has("provenance"));

    auto partial = parseJson(run.document(/*partial=*/true));
    ASSERT_TRUE(partial.has("partial"));
    EXPECT_TRUE(partial.at("partial").boolean);
    // The flag is a prefix splice: every other section is untouched.
    EXPECT_EQ(partial.at("groups").array.size(),
              complete.at("groups").array.size());
}
