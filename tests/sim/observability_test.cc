/**
 * End-to-end tests for the observability layer wired through the
 * simulation driver: one event-driven run with a tracer, sampler, and
 * metrics capture attached must produce a valid trace, populated time
 * series, and a stats document containing the pipeline's stat groups -
 * and attaching the instrumentation must not change simulated results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/trace_event.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::sim;
using fp::testing::JsonValue;
using fp::testing::parseJson;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name, double scale = 0.05)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = scale;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

struct Instruments
{
    obs::TraceSink tracer;
    obs::PeriodicSampler sampler{10 * ticks_per_us};
    obs::MetricsCapture metrics;

    explicit Instruments(
        obs::TraceDetail detail = obs::TraceDetail::full)
        : tracer(detail)
    {}

    SimConfig
    config() const
    {
        SimConfig c;
        c.tracer = const_cast<obs::TraceSink *>(&tracer);
        c.sampler = const_cast<obs::PeriodicSampler *>(&sampler);
        c.metrics = const_cast<obs::MetricsCapture *>(&metrics);
        return c;
    }
};

} // namespace

TEST(ObservabilityTest, InstrumentedRunMatchesPlainRun)
{
    const auto &trace = smallTrace("pagerank");
    RunResult plain =
        SimulationDriver().run(trace, Paradigm::finepack);

    Instruments inst;
    RunResult instrumented =
        SimulationDriver(inst.config()).run(trace, Paradigm::finepack);

    EXPECT_EQ(instrumented.total_time, plain.total_time);
    EXPECT_EQ(instrumented.wire_bytes, plain.wire_bytes);
    EXPECT_EQ(instrumented.messages, plain.messages);
    EXPECT_EQ(instrumented.finepack_packets, plain.finepack_packets);
}

TEST(ObservabilityTest, TraceCoversThePipeline)
{
    Instruments inst;
    SimulationDriver(inst.config())
        .run(smallTrace("pagerank"), Paradigm::finepack);
    ASSERT_GT(inst.tracer.eventCount(), 0u);

    std::ostringstream os;
    inst.tracer.write(os);
    auto events = parseJson(os.str()).at("traceEvents");

    bool saw_kernel = false, saw_flush = false, saw_packet = false,
         saw_link = false, saw_ingress = false, saw_meta = false;
    for (const auto &e : events.array) {
        const std::string &ph = e.at("ph").string;
        if (ph == "M") {
            saw_meta = true;
            continue;
        }
        if (!e.has("cat"))
            continue;
        const std::string &cat = e.at("cat").string;
        saw_kernel |= e.at("name").string == "kernel";
        saw_flush |= cat == "rwq_flush";
        saw_packet |= cat == "packetizer";
        saw_link |= cat == "link";
        saw_ingress |= cat == "ingress";
    }
    EXPECT_TRUE(saw_meta);
    EXPECT_TRUE(saw_kernel);
    EXPECT_TRUE(saw_flush);
    EXPECT_TRUE(saw_packet);
    EXPECT_TRUE(saw_link);
    EXPECT_TRUE(saw_ingress);
}

TEST(ObservabilityTest, FlushDetailOmitsPerStoreEvents)
{
    Instruments full(obs::TraceDetail::full);
    Instruments flush(obs::TraceDetail::flush);
    const auto &trace = smallTrace("jacobi");
    SimulationDriver(full.config()).run(trace, Paradigm::finepack);
    SimulationDriver(flush.config()).run(trace, Paradigm::finepack);
    EXPECT_LT(flush.tracer.eventCount(), full.tracer.eventCount());

    std::ostringstream os;
    flush.tracer.write(os);
    auto events = parseJson(os.str()).at("traceEvents");
    for (const auto &e : events.array) {
        if (!e.has("cat"))
            continue;
        // Per-store enqueue instants are full-detail only.
        EXPECT_NE(e.at("cat").string, "rwq");
        EXPECT_NE(e.at("cat").string, "ingress");
    }
}

TEST(ObservabilityTest, SamplerRecordsRwqOccupancySeries)
{
    Instruments inst;
    // pagerank scatters enough stores per iteration for the remote
    // write queue to stay occupied across sample boundaries.
    SimulationDriver(inst.config())
        .run(smallTrace("pagerank", 0.3), Paradigm::finepack);

    bool saw_rwq_track = false, saw_nonzero = false;
    std::size_t points = 0;
    for (const auto &series : inst.sampler.series()) {
        points = std::max(points, series.ticks.size());
        if (series.name.find(".rwq.entries[") == std::string::npos)
            continue;
        saw_rwq_track = true;
        for (double v : series.values)
            saw_nonzero |= v > 0.0;
    }
    EXPECT_TRUE(saw_rwq_track);
    EXPECT_TRUE(saw_nonzero);
    EXPECT_GE(points, 2u);
}

TEST(ObservabilityTest, MetricsDocumentContainsPipelineGroups)
{
    Instruments inst;
    SimulationDriver(inst.config())
        .run(smallTrace("pagerank"), Paradigm::finepack);
    ASSERT_TRUE(inst.metrics.captured());

    std::ostringstream os;
    inst.metrics.writeDocument(os, &inst.sampler);
    auto doc = parseJson(os.str());
    EXPECT_DOUBLE_EQ(doc.at("schema_version").number, 1.0);

    bool saw_egress_histogram = false, saw_uplink = false;
    for (const auto &group : doc.at("groups").array) {
        const std::string &name = group.at("name").string;
        if (name.find("egress") != std::string::npos &&
            group.at("histograms").has("store_size_bytes")) {
            const JsonValue &hist =
                group.at("histograms").at("store_size_bytes");
            saw_egress_histogram = hist.at("total").number > 0.0;
        }
        saw_uplink |= name.find("fabric.up") != std::string::npos;
    }
    EXPECT_TRUE(saw_egress_histogram);
    EXPECT_TRUE(saw_uplink);

    // Time series ride along in the same document.
    const JsonValue &timeseries = doc.at("timeseries");
    EXPECT_GT(timeseries.at("tracks").object.size(), 0u);
}

TEST(ObservabilityTest, InstrumentedRunsAreDeterministic)
{
    const auto &trace = smallTrace("sssp");
    auto run = [&](Instruments &inst) {
        SimulationDriver(inst.config()).run(trace, Paradigm::finepack);
    };
    Instruments a, b;
    run(a);
    run(b);
    EXPECT_EQ(a.tracer.eventCount(), b.tracer.eventCount());
    ASSERT_EQ(a.sampler.series().size(), b.sampler.series().size());
    for (std::size_t i = 0; i < a.sampler.series().size(); ++i) {
        EXPECT_EQ(a.sampler.series()[i].ticks,
                  b.sampler.series()[i].ticks);
        EXPECT_EQ(a.sampler.series()[i].values,
                  b.sampler.series()[i].values);
    }
}

TEST(ObservabilityTest, InstrumentsAreReusableAcrossRuns)
{
    Instruments inst;
    SimulationDriver driver(inst.config());
    driver.run(smallTrace("jacobi"), Paradigm::finepack);
    auto first_events = inst.tracer.eventCount();
    // A second run reuses the same sampler; beginRun() must reset it.
    driver.run(smallTrace("jacobi"), Paradigm::finepack);
    EXPECT_GT(inst.tracer.eventCount(), first_events);
    for (const auto &series : inst.sampler.series()) {
        // Series from the second run only: ticks restart near zero.
        ASSERT_FALSE(series.ticks.empty());
        EXPECT_EQ(series.ticks.front(), 0u);
    }
}
