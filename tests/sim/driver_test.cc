/**
 * Integration tests for the simulation driver: paradigm orderings, byte
 * accounting consistency, and bandwidth sensitivity on small-scale
 * workload traces (the full-scale results live in bench/).
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace fp;
using namespace fp::sim;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name, double scale = 0.05)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = scale;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

} // namespace

TEST(DriverTest, SingleGpuHasNoTraffic)
{
    SimulationDriver driver;
    RunResult result = driver.run(smallTrace("pagerank"),
                                  Paradigm::single_gpu);
    EXPECT_GT(result.total_time, 0u);
    EXPECT_EQ(result.wire_bytes, 0u);
    EXPECT_EQ(result.messages, 0u);
}

TEST(DriverTest, InfiniteBandwidthIsFastestParadigm)
{
    SimulationDriver driver;
    const auto &trace = smallTrace("sssp");
    Tick inf = driver.run(trace, Paradigm::infinite_bw).total_time;
    for (auto paradigm : {Paradigm::bulk_dma, Paradigm::p2p_stores,
                          Paradigm::finepack, Paradigm::write_combine,
                          Paradigm::gps}) {
        EXPECT_GE(driver.run(trace, paradigm).total_time, inf)
            << toString(paradigm);
    }
}

TEST(DriverTest, FinePackBeatsRawStoresOnIrregularApps)
{
    SimulationDriver driver;
    for (const char *name : {"sssp", "eqwp", "pagerank"}) {
        const auto &trace = smallTrace(name);
        Tick fp_time = driver.run(trace, Paradigm::finepack).total_time;
        Tick p2p_time =
            driver.run(trace, Paradigm::p2p_stores).total_time;
        EXPECT_LT(fp_time, p2p_time) << name;
    }
}

TEST(DriverTest, FinePackTransfersFewerBytesThanRawStores)
{
    SimulationDriver driver;
    for (const char *name : {"sssp", "pagerank", "eqwp", "hit"}) {
        const auto &trace = smallTrace(name);
        auto fp_run = driver.run(trace, Paradigm::finepack);
        auto p2p_run = driver.run(trace, Paradigm::p2p_stores);
        EXPECT_LT(fp_run.wire_bytes, p2p_run.wire_bytes) << name;
        // And far fewer link-level transactions than program stores
        // (raw messages are batch-accounted, so compare against the
        // store count).
        EXPECT_LT(fp_run.finepack_packets,
                  trace.totalRemoteStores() / 2)
            << name;
    }
}

TEST(DriverTest, ByteClassificationIsConsistent)
{
    SimulationDriver driver;
    for (auto paradigm : {Paradigm::p2p_stores, Paradigm::bulk_dma,
                          Paradigm::finepack, Paradigm::write_combine}) {
        RunResult r = driver.run(smallTrace("sssp"), paradigm);
        // useful + wasted + protocol covers the whole wire.
        EXPECT_EQ(r.useful_bytes + r.wasted_bytes + r.protocol_bytes,
                  r.wire_bytes)
            << toString(paradigm);
        EXPECT_EQ(r.wire_bytes, r.payload_bytes + r.header_bytes);
        EXPECT_LE(r.data_bytes, r.payload_bytes);
    }
}

TEST(DriverTest, UsefulBytesAreParadigmIndependent)
{
    SimulationDriver driver;
    const auto &trace = smallTrace("pagerank");
    std::uint64_t useful =
        driver.run(trace, Paradigm::finepack).useful_bytes;
    EXPECT_EQ(driver.run(trace, Paradigm::p2p_stores).useful_bytes,
              useful);
    EXPECT_EQ(driver.run(trace, Paradigm::bulk_dma).useful_bytes,
              useful);
    EXPECT_GT(useful, 0u);
}

TEST(DriverTest, DmaOverTransfersOnSparseUpdates)
{
    // SSSP's memcpy twin copies whole distance blocks; almost all of it
    // is wasted (Figure 10's bulk-DMA bar).
    SimulationDriver driver;
    RunResult r = driver.run(smallTrace("sssp"), Paradigm::bulk_dma);
    EXPECT_GT(r.wasted_bytes, r.useful_bytes);
}

TEST(DriverTest, FinePackPacksMultipleStoresPerPacket)
{
    SimulationDriver driver;
    RunResult r = driver.run(smallTrace("pagerank"), Paradigm::finepack);
    EXPECT_GT(r.avg_stores_per_packet, 2.0);
    EXPECT_GT(r.finepack_packets, 0u);
}

TEST(DriverTest, HigherBandwidthNeverHurts)
{
    const auto &trace = smallTrace("eqwp");
    SimConfig gen4;
    gen4.pcie_gen = icn::PcieGen::gen4;
    SimConfig gen6;
    gen6.pcie_gen = icn::PcieGen::gen6;
    for (auto paradigm : {Paradigm::p2p_stores, Paradigm::bulk_dma,
                          Paradigm::finepack}) {
        Tick slow =
            SimulationDriver(gen4).run(trace, paradigm).total_time;
        Tick fast =
            SimulationDriver(gen6).run(trace, paradigm).total_time;
        EXPECT_LE(fast, slow) << toString(paradigm);
    }
}

TEST(DriverTest, GpsFiltersUnconsumedTraffic)
{
    // On a workload with unconsumed pushes (ALS), subscription filtering
    // must reduce the bytes on the wire relative to plain WC.
    SimulationDriver driver;
    const auto &trace = smallTrace("als");
    auto wc = driver.run(trace, Paradigm::write_combine);
    auto gps = driver.run(trace, Paradigm::gps);
    EXPECT_LE(gps.wire_bytes, wc.wire_bytes);
    EXPECT_LE(gps.total_time, wc.total_time);
}

TEST(DriverTest, SpeedupHelperMatchesManualRatio)
{
    SimulationDriver driver;
    const auto &trace = smallTrace("diffusion");
    double helper =
        driver.speedupOverSingleGpu(trace, Paradigm::finepack);
    Tick single = driver.run(trace, Paradigm::single_gpu).total_time;
    Tick fp_time = driver.run(trace, Paradigm::finepack).total_time;
    EXPECT_NEAR(helper,
                static_cast<double>(single) /
                    static_cast<double>(fp_time),
                1e-9);
}

TEST(DriverTest, SubheaderSweepChangesTraffic)
{
    // Figure 12's mechanism: the sub-header geometry affects FinePack
    // wire bytes (bigger offsets pack more, but cost more per store).
    const auto &trace = smallTrace("ct", 0.2);
    std::uint64_t bytes2, bytes5;
    {
        SimConfig config;
        config.finepack = finepack::configWithSubheader(2);
        bytes2 = SimulationDriver(config)
                     .run(trace, Paradigm::finepack)
                     .wire_bytes;
    }
    {
        SimConfig config;
        config.finepack = finepack::configWithSubheader(5);
        bytes5 = SimulationDriver(config)
                     .run(trace, Paradigm::finepack)
                     .wire_bytes;
    }
    // CT scatters over gigabytes: 64 B windows thrash far worse than
    // 1 GiB windows.
    EXPECT_GT(bytes2, bytes5);
}

TEST(DriverTest, ResultsAreReproducible)
{
    SimulationDriver driver;
    const auto &trace = smallTrace("hit");
    auto a = driver.run(trace, Paradigm::finepack);
    auto b = driver.run(trace, Paradigm::finepack);
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.messages, b.messages);
}

TEST(DriverTest, TwoGpuSystemWorks)
{
    workloads::WorkloadParams params;
    params.num_gpus = 2;
    params.scale = 0.05;
    auto trace = workloads::createWorkload("jacobi")
                     ->generateTrace(params);
    SimulationDriver driver;
    for (auto paradigm : {Paradigm::p2p_stores, Paradigm::bulk_dma,
                          Paradigm::finepack, Paradigm::infinite_bw}) {
        RunResult r = driver.run(trace, paradigm);
        EXPECT_GT(r.total_time, 0u) << toString(paradigm);
    }
}

TEST(TraceCacheTest, ReturnsSameObjectForSameKey)
{
    workloads::WorkloadParams params;
    params.scale = 0.05;
    const auto &a = TraceCache::instance().get("jacobi", params);
    const auto &b = TraceCache::instance().get("jacobi", params);
    EXPECT_EQ(&a, &b);
    params.seed = 43;
    const auto &c = TraceCache::instance().get("jacobi", params);
    EXPECT_NE(&a, &c);
}
