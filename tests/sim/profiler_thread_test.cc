/**
 * @file
 * Per-shard profilers under the parallel sweep runner: each SweepJob
 * carries its own obs::Profiler (observability sinks are per-job by
 * contract), so host profiling must neither perturb parallel results
 * nor tangle attribution across lanes. Runs under TSan via the
 * threadsafe ctest label - the only cross-thread profiler state is
 * common::AllocCounters, which is atomic and documented as coarse.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "sim/driver.hh"
#include "sim/sweep.hh"
#include "workloads/workload.hh"

using namespace fp;
using namespace fp::sim;

namespace {

std::vector<SweepJob>
smallBatch()
{
    const char *workloads[] = {"jacobi", "pagerank", "sssp", "jacobi"};
    const Paradigm paradigms[] = {Paradigm::finepack, Paradigm::finepack,
                                  Paradigm::bulk_dma, Paradigm::gps};
    std::vector<SweepJob> batch;
    for (int i = 0; i < 4; ++i) {
        SweepJob job;
        job.workload = workloads[i];
        job.params.num_gpus = 4;
        job.params.scale = 0.05;
        job.params.seed = 42;
        job.paradigm = paradigms[i];
        batch.push_back(job);
    }
    return batch;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.finepack_packets, b.finepack_packets);
    EXPECT_EQ(a.events_processed, b.events_processed);
}

} // namespace

TEST(ProfilerThread, PerShardProfilersUnderParallelSweep)
{
    // Reference: the same batch, serial, unprofiled.
    SweepRunner serial(1);
    auto expected = serial.run(smallBatch());

    auto batch = smallBatch();
    std::vector<std::unique_ptr<obs::Profiler>> profilers;
    for (auto &job : batch) {
        profilers.push_back(std::make_unique<obs::Profiler>());
        job.config.profiler = profilers.back().get();
    }
    SweepRunner parallel(4);
    ASSERT_GE(parallel.jobs(), 1u);
    auto results = parallel.run(batch);

    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(batch[i].workload);
        expectSameResult(results[i], expected[i]);
        // Each shard's profiler observed exactly its own queue: the
        // event count matches the result's even when lanes overlap.
        EXPECT_EQ(profilers[i]->events(), results[i].events_processed);
        if (results[i].events_processed > 0)
            EXPECT_FALSE(profilers[i]->hotspots().empty());
    }
}

TEST(ProfilerThread, SharedBatchRepeatsDeterministically)
{
    // Two parallel profiled runs agree with each other (the profiler
    // adds no schedule-dependent behavior on top of the sweep).
    auto run_once = [](std::vector<RunResult> &out,
                       std::vector<std::uint64_t> &events) {
        auto batch = smallBatch();
        std::vector<std::unique_ptr<obs::Profiler>> profilers;
        for (auto &job : batch) {
            profilers.push_back(std::make_unique<obs::Profiler>());
            job.config.profiler = profilers.back().get();
        }
        SweepRunner runner(4);
        out = runner.run(batch);
        for (const auto &profiler : profilers)
            events.push_back(profiler->events());
    };
    std::vector<RunResult> a, b;
    std::vector<std::uint64_t> ea, eb;
    run_once(a, ea);
    run_once(b, eb);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSameResult(a[i], b[i]);
    EXPECT_EQ(ea, eb);
}
