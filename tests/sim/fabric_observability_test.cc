/**
 * @file
 * End-to-end invariants of the fabric flow observability layer on real
 * figure workloads: the per-flow conservation ledger closes (injected
 * == committed at ingress), link utilization stays in [0, 1], and the
 * contention-attribution matrix reconciles exactly with the link wait
 * ledger at every level (cell, row, column, link, fabric total).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hh"
#include "obs/flow.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"

using namespace fp;
using namespace fp::sim;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name, std::uint32_t gpus = 4)
{
    workloads::WorkloadParams params;
    params.num_gpus = gpus;
    params.scale = 0.05;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

RunResult
observedRun(const trace::WorkloadTrace &trace, obs::FlowCollector &flows,
            Paradigm paradigm = Paradigm::finepack)
{
    SimConfig config;
    config.flows = &flows;
    return SimulationDriver(config).run(trace, paradigm);
}

/** Every cross-layer invariant the collector promises, in one sweep. */
void
expectInvariantsHold(const obs::FlowCollector &flows,
                     const RunResult &result)
{
    const std::uint32_t gpus = flows.numGpus();
    ASSERT_GT(gpus, 0u);
    ASSERT_GT(flows.activeFlows(), 0u);

    // ---- Conservation: what enters the fabric leaves it ------------
    std::uint64_t injected_wire = 0;
    for (GpuId src = 0; src < gpus; ++src) {
        for (GpuId dst = 0; dst < gpus; ++dst) {
            const auto &flow = flows.flow(src, dst);
            EXPECT_EQ(flow.injected_msgs, flow.committed_msgs)
                << obs::FlowCollector::flowName(src, dst);
            EXPECT_EQ(flow.injected_wire_bytes, flow.committed_wire_bytes)
                << obs::FlowCollector::flowName(src, dst);
            EXPECT_EQ(flow.injected_data_bytes, flow.committed_data_bytes)
                << obs::FlowCollector::flowName(src, dst);
            EXPECT_LE(flow.injected_data_bytes, flow.injected_wire_bytes);
            injected_wire += flow.injected_wire_bytes;
        }
    }
    // The flow ledger agrees with the driver's uplink traffic totals.
    EXPECT_EQ(injected_wire, result.wire_bytes);

    // ---- Utilization bounds ----------------------------------------
    ASSERT_GT(flows.endTick(), 0u);
    EXPECT_LE(flows.endTick(), result.total_time);
    for (const auto &link : flows.links()) {
        double util = flows.linkUtilization(link);
        EXPECT_GE(util, 0.0) << link.name;
        EXPECT_LE(util, 1.0) << link.name;
        // Windowed accounting re-sums to the lifetime ledger.
        Tick windowed_busy = 0;
        Tick windowed_wait = 0;
        for (std::size_t w = 0; w < link.windows.size(); ++w) {
            windowed_busy += link.windows[w].busy_ticks;
            windowed_wait += link.windows[w].wait_msg_ticks;
            Tick len = flows.windowLength(w);
            ASSERT_GT(len, 0u);
            EXPECT_LE(link.windows[w].busy_ticks, len) << link.name;
        }
        EXPECT_EQ(windowed_busy, link.busy_ticks) << link.name;
        EXPECT_EQ(windowed_wait, link.wait_ticks) << link.name;
        // Per-link interference ledger sums to the link's wait.
        Tick interference = 0;
        for (const auto &[key, ticks] : link.interference)
            interference += ticks;
        EXPECT_EQ(interference, link.wait_ticks) << link.name;
    }

    // ---- Matrix reconciliation -------------------------------------
    // Row sums = delay each source GPU's traffic caused; column sums =
    // delay each source GPU's traffic suffered; total = fabric wait.
    Tick matrix_total = 0;
    for (GpuId by = 0; by < gpus; ++by) {
        Tick row = 0;
        for (GpuId on = 0; on < gpus; ++on)
            row += flows.interferenceTicks(by, on);
        matrix_total += row;
        Tick caused = 0;
        for (GpuId dst = 0; dst < gpus; ++dst)
            caused += flows.flow(by, dst).delay_caused_ticks;
        EXPECT_EQ(row, caused) << "row g" << by;
    }
    for (GpuId on = 0; on < gpus; ++on) {
        Tick col = 0;
        for (GpuId by = 0; by < gpus; ++by)
            col += flows.interferenceTicks(by, on);
        Tick suffered = 0;
        for (GpuId dst = 0; dst < gpus; ++dst)
            suffered += flows.flow(on, dst).delay_suffered_ticks;
        EXPECT_EQ(col, suffered) << "column g" << on;
    }
    EXPECT_EQ(matrix_total, flows.totalWaitTicks());

    // Suffered delay re-sums as uplink wait + downlink wait.
    for (GpuId src = 0; src < gpus; ++src) {
        for (GpuId dst = 0; dst < gpus; ++dst) {
            const auto &flow = flows.flow(src, dst);
            EXPECT_EQ(flow.delay_suffered_ticks,
                      flow.uplink_wait_ticks + flow.downlink_wait_ticks)
                << obs::FlowCollector::flowName(src, dst);
        }
    }
}

std::string
dump(const obs::FlowCollector &flows)
{
    std::ostringstream os;
    common::JsonWriter json(os);
    flows.dumpJson(json);
    return os.str();
}

} // namespace

TEST(FabricObservability, PagerankLedgerCloses)
{
    obs::FlowCollector flows;
    RunResult result = observedRun(smallTrace("pagerank"), flows);
    expectInvariantsHold(flows, result);
    // A star fabric registers one uplink + one downlink per GPU.
    EXPECT_EQ(flows.links().size(), 2u * flows.numGpus());
}

TEST(FabricObservability, JacobiLedgerCloses)
{
    obs::FlowCollector flows;
    RunResult result = observedRun(smallTrace("jacobi"), flows);
    expectInvariantsHold(flows, result);
}

TEST(FabricObservability, LedgerClosesUnderBulkDmaParadigm)
{
    // Flow accounting is paradigm-agnostic: the bulk-DMA path injects
    // its copy messages through the same fabric.
    obs::FlowCollector flows;
    RunResult result =
        observedRun(smallTrace("sssp"), flows, Paradigm::bulk_dma);
    expectInvariantsHold(flows, result);
}

TEST(FabricObservability, InstrumentedRunsAreDeterministic)
{
    obs::FlowCollector first, second;
    RunResult r1 = observedRun(smallTrace("pagerank"), first);
    RunResult r2 = observedRun(smallTrace("pagerank"), second);
    EXPECT_EQ(r1.total_time, r2.total_time);
    // The whole serialized fabric section is byte-identical.
    EXPECT_EQ(dump(first), dump(second));
}
