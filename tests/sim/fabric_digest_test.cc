/**
 * @file
 * The fabric flow collector must be a pure observer: attaching it to a
 * checked finepack run may change nothing the simulation produces -
 * not the oracle digest, not the stats document, not any RunResult
 * field. This is the digest-neutrality gate promised in
 * src/obs/flow.hh; it mirrors tests/sim/profiler_digest_test.cc.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/flow.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::sim;
using fp::testing::parseJson;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = 0.05;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

/** One checked, fully instrumented run; flow collector optional. */
struct CheckedRun
{
    obs::PeriodicSampler sampler{10 * ticks_per_us};
    obs::MetricsCapture metrics;
    RunResult result;

    explicit CheckedRun(const trace::WorkloadTrace &trace,
                        obs::FlowCollector *flows = nullptr)
    {
        SimConfig config;
        config.check = true;
        config.sampler = &sampler;
        config.metrics = &metrics;
        config.flows = flows;
        result = SimulationDriver(config).run(trace, Paradigm::finepack);
    }

    /** The stats document, serialized WITHOUT a fabric section. */
    std::string
    document()
    {
        std::ostringstream os;
        metrics.writeDocument(os, &sampler);
        return os.str();
    }
};

} // namespace

TEST(FabricDigest, ObservedRunIsBitIdenticalToPlainRun)
{
    const auto &trace = smallTrace("pagerank");
    CheckedRun plain(trace);
    obs::FlowCollector flows;
    CheckedRun observed(trace, &flows);

    // The oracle verified real work in both runs...
    ASSERT_GT(plain.result.oracle_transactions, 0u);
    ASSERT_NE(plain.result.oracle_digest, 0u);
    // ... and the collector actually observed the run it rode on.
    ASSERT_GT(flows.activeFlows(), 0u);
    ASSERT_GT(flows.totalBusyTicks(), 0u);

    EXPECT_EQ(observed.result.oracle_digest, plain.result.oracle_digest);
    EXPECT_EQ(observed.result.oracle_transactions,
              plain.result.oracle_transactions);
    EXPECT_EQ(observed.result.oracle_stores, plain.result.oracle_stores);
    EXPECT_EQ(observed.result.oracle_bytes, plain.result.oracle_bytes);
    EXPECT_EQ(observed.result.total_time, plain.result.total_time);
    EXPECT_EQ(observed.result.wire_bytes, plain.result.wire_bytes);
    EXPECT_EQ(observed.result.payload_bytes, plain.result.payload_bytes);
    EXPECT_EQ(observed.result.header_bytes, plain.result.header_bytes);
    EXPECT_EQ(observed.result.data_bytes, plain.result.data_bytes);
    EXPECT_EQ(observed.result.messages, plain.result.messages);
    EXPECT_EQ(observed.result.useful_bytes, plain.result.useful_bytes);
    EXPECT_EQ(observed.result.protocol_bytes,
              plain.result.protocol_bytes);
    EXPECT_EQ(observed.result.wasted_bytes, plain.result.wasted_bytes);
    EXPECT_EQ(observed.result.finepack_packets,
              plain.result.finepack_packets);
    EXPECT_EQ(observed.result.events_processed,
              plain.result.events_processed);

    // The serialized stats document (groups + timeseries + provenance)
    // is byte-identical: the collector registers no StatGroups and the
    // fabric section appears only when writeDocument is asked for it.
    EXPECT_EQ(observed.document(), plain.document());
}

TEST(FabricDigest, FabricSectionAppearsOnlyWhenRequested)
{
    const auto &trace = smallTrace("pagerank");
    obs::FlowCollector flows;
    CheckedRun run(trace, &flows);

    auto without = parseJson(run.document());
    EXPECT_FALSE(without.has("fabric"));
    EXPECT_TRUE(without.has("provenance"));

    std::ostringstream os;
    run.metrics.writeDocument(os, &run.sampler, nullptr, &flows);
    auto with = parseJson(os.str());
    ASSERT_TRUE(with.has("fabric"));
    EXPECT_GT(with.at("fabric").at("totals").at("busy_ticks").number,
              0.0);
    EXPECT_GT(with.at("fabric").at("totals").at("active_flows").number,
              0.0);
    // Opting in must not disturb the simulated sections.
    std::ostringstream plain_os;
    run.metrics.writeDocument(plain_os, &run.sampler);
    auto plain = parseJson(plain_os.str());
    EXPECT_EQ(with.at("groups").array.size(),
              plain.at("groups").array.size());
}

TEST(FabricDigest, CollectorIsReattachableAcrossRuns)
{
    const auto &trace = smallTrace("jacobi");
    obs::FlowCollector flows;
    RunResult first, second;
    {
        SimConfig config;
        config.flows = &flows;
        SimulationDriver driver(config);
        first = driver.run(trace, Paradigm::finepack);
        second = driver.run(trace, Paradigm::finepack);
    }
    // beginRun resets the ledgers, so the second rep stands alone and
    // matches the first exactly (deterministic simulation).
    EXPECT_EQ(first.total_time, second.total_time);
    EXPECT_EQ(first.wire_bytes, second.wire_bytes);
    EXPECT_EQ(flows.endTick(), second.total_time);
    std::uint64_t injected = 0;
    for (GpuId src = 0; src < flows.numGpus(); ++src)
        for (GpuId dst = 0; dst < flows.numGpus(); ++dst)
            injected += flows.flow(src, dst).injected_wire_bytes;
    EXPECT_EQ(injected, second.wire_bytes);
}
