/**
 * @file
 * The self-profiler must be a pure observer: attaching it to a checked
 * finepack run may change nothing the simulation produces - not the
 * oracle digest, not the stats document, not any RunResult field. This
 * is the acceptance gate for the host-profiling layer (see
 * src/obs/profiler.hh's cost-model note).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "sim/driver.hh"
#include "sim/trace_cache.hh"
#include "workloads/workload.hh"
#include "../support/mini_json.hh"

using namespace fp;
using namespace fp::sim;
using fp::testing::parseJson;

namespace {

const trace::WorkloadTrace &
smallTrace(const std::string &name)
{
    workloads::WorkloadParams params;
    params.num_gpus = 4;
    params.scale = 0.05;
    params.seed = 42;
    return TraceCache::instance().get(name, params);
}

/** One checked, fully instrumented run; profiler optional. */
struct CheckedRun
{
    obs::PeriodicSampler sampler{10 * ticks_per_us};
    obs::MetricsCapture metrics;
    RunResult result;

    explicit CheckedRun(const trace::WorkloadTrace &trace,
                        obs::Profiler *profiler = nullptr)
    {
        SimConfig config;
        config.check = true;
        config.sampler = &sampler;
        config.metrics = &metrics;
        config.profiler = profiler;
        result = SimulationDriver(config).run(trace, Paradigm::finepack);
    }

    /** The stats document, serialized WITHOUT a host section. */
    std::string
    document()
    {
        std::ostringstream os;
        metrics.writeDocument(os, &sampler);
        return os.str();
    }
};

} // namespace

TEST(ProfilerDigest, ProfiledRunIsBitIdenticalToPlainRun)
{
    const auto &trace = smallTrace("jacobi");
    CheckedRun plain(trace);
    obs::Profiler profiler;
    CheckedRun profiled(trace, &profiler);

    // The oracle verified real work in both runs...
    ASSERT_GT(plain.result.oracle_transactions, 0u);
    ASSERT_NE(plain.result.oracle_digest, 0u);
    // ... and the profiler actually observed the run it rode on.
    ASSERT_GT(profiler.events(), 0u);
    EXPECT_EQ(profiler.events(), profiled.result.events_processed);

    EXPECT_EQ(profiled.result.oracle_digest, plain.result.oracle_digest);
    EXPECT_EQ(profiled.result.oracle_transactions,
              plain.result.oracle_transactions);
    EXPECT_EQ(profiled.result.oracle_stores, plain.result.oracle_stores);
    EXPECT_EQ(profiled.result.oracle_bytes, plain.result.oracle_bytes);
    EXPECT_EQ(profiled.result.total_time, plain.result.total_time);
    EXPECT_EQ(profiled.result.wire_bytes, plain.result.wire_bytes);
    EXPECT_EQ(profiled.result.payload_bytes, plain.result.payload_bytes);
    EXPECT_EQ(profiled.result.header_bytes, plain.result.header_bytes);
    EXPECT_EQ(profiled.result.data_bytes, plain.result.data_bytes);
    EXPECT_EQ(profiled.result.messages, plain.result.messages);
    EXPECT_EQ(profiled.result.useful_bytes, plain.result.useful_bytes);
    EXPECT_EQ(profiled.result.protocol_bytes,
              plain.result.protocol_bytes);
    EXPECT_EQ(profiled.result.wasted_bytes, plain.result.wasted_bytes);
    EXPECT_EQ(profiled.result.finepack_packets,
              plain.result.finepack_packets);
    EXPECT_EQ(profiled.result.events_processed,
              plain.result.events_processed);

    // The serialized stats document (groups + timeseries + provenance)
    // is byte-identical: host profiling adds nothing unless the caller
    // passes the profiler to writeDocument explicitly.
    EXPECT_EQ(profiled.document(), plain.document());
}

TEST(ProfilerDigest, HostSectionAppearsOnlyWhenRequested)
{
    const auto &trace = smallTrace("jacobi");
    obs::Profiler profiler;
    CheckedRun run(trace, &profiler);

    auto without = parseJson(run.document());
    EXPECT_FALSE(without.has("host"));
    EXPECT_TRUE(without.has("provenance"));

    std::ostringstream os;
    run.metrics.writeDocument(os, &run.sampler, &profiler);
    auto with = parseJson(os.str());
    ASSERT_TRUE(with.has("host"));
    EXPECT_GT(with.at("host").at("events").number, 0.0);
    EXPECT_GT(with.at("host").at("queue").at("pushes").number, 0.0);
    // Opting in must not disturb the simulated sections.
    std::ostringstream plain_os;
    run.metrics.writeDocument(plain_os, &run.sampler);
    auto plain = parseJson(plain_os.str());
    // Groups compare as serialized substrings: carve them out by
    // re-serializing the parsed values' key sets instead - simplest
    // robust check is count equality plus digest-bearing metrics above.
    EXPECT_EQ(with.at("groups").array.size(),
              plain.at("groups").array.size());
}

TEST(ProfilerDigest, ProfilerIsReusableAcrossParadigmsAndReps)
{
    const auto &trace = smallTrace("sssp");
    obs::Profiler profiler;
    RunResult first, second;
    {
        SimConfig config;
        config.profiler = &profiler;
        SimulationDriver driver(config);
        first = driver.run(trace, Paradigm::finepack);
        second = driver.run(trace, Paradigm::finepack);
    }
    // Two reps fold into one aggregate...
    EXPECT_EQ(profiler.events(),
              first.events_processed + second.events_processed);
    // ... and both reps simulated identically.
    EXPECT_EQ(first.total_time, second.total_time);
    EXPECT_EQ(first.wire_bytes, second.wire_bytes);
}
